/**
 * @file
 * Property tests of the ORAM tree substrate: geometry arithmetic
 * (parameterized across tree depths), buckets, and the lazy encrypted
 * tree store.
 */

#include <gtest/gtest.h>

#include "mem/bucket.hh"
#include "mem/tree_geometry.hh"
#include "mem/tree_store.hh"
#include "util/random.hh"

namespace fp::mem
{
namespace
{

// --- geometry: fixed-point checks -----------------------------------------

TEST(Geometry, PaperConfiguration)
{
    // 4 GB data, 64 B blocks, 50% utilization, Z=4 -> L=24,
    // path length 25 (the paper's "baseline path length equals 25").
    auto geo = TreeGeometry::forCapacity(4ULL << 30, 64, 0.5, 4);
    EXPECT_EQ(geo.leafLevel(), 24u);
    EXPECT_EQ(geo.numLevels(), 25u);
}

TEST(Geometry, CapacitySweep)
{
    // Fig 17(b): ORAM sizes 1/4/16/32 GB.
    EXPECT_EQ(TreeGeometry::forCapacity(1ULL << 30, 64, 0.5, 4)
                  .leafLevel(),
              22u);
    EXPECT_EQ(TreeGeometry::forCapacity(16ULL << 30, 64, 0.5, 4)
                  .leafLevel(),
              26u);
    EXPECT_EQ(TreeGeometry::forCapacity(32ULL << 30, 64, 0.5, 4)
                  .leafLevel(),
              27u);
}

TEST(Geometry, SmallTreeByHand)
{
    TreeGeometry geo(2); // 7 buckets: level 0 {0}, 1 {1,2}, 2 {3..6}
    EXPECT_EQ(geo.numLeaves(), 4u);
    EXPECT_EQ(geo.numBuckets(), 7u);
    EXPECT_EQ(geo.bucketAt(0, 0), 0u);
    EXPECT_EQ(geo.bucketAt(0, 1), 1u);
    EXPECT_EQ(geo.bucketAt(0, 2), 3u);
    EXPECT_EQ(geo.bucketAt(3, 1), 2u);
    EXPECT_EQ(geo.bucketAt(3, 2), 6u);
    EXPECT_EQ(geo.overlap(0, 0), 3u);
    EXPECT_EQ(geo.overlap(0, 1), 2u); // share root + level-1 node
    EXPECT_EQ(geo.overlap(0, 2), 1u); // share root only
    EXPECT_EQ(geo.overlap(0, 3), 1u);
    EXPECT_EQ(geo.overlap(2, 3), 2u);
}

TEST(Geometry, PathIndicesRootFirst)
{
    TreeGeometry geo(3);
    auto path = geo.pathIndices(5);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0], 0u);
    for (std::size_t i = 0; i < path.size(); ++i)
        EXPECT_EQ(geo.levelOf(path[i]), i);
}

// --- geometry: properties across depths -----------------------------------

class GeometryProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GeometryProperty, LevelOffsetRoundTrip)
{
    TreeGeometry geo(GetParam());
    Rng rng(GetParam() * 31 + 1);
    for (int i = 0; i < 500; ++i) {
        BucketIndex idx = rng.uniformInt(geo.numBuckets());
        unsigned level = geo.levelOf(idx);
        std::uint64_t off = geo.offsetInLevel(idx);
        EXPECT_EQ(((std::uint64_t{1} << level) - 1) + off, idx);
        EXPECT_LT(off, std::uint64_t{1} << level);
    }
}

TEST_P(GeometryProperty, AncestorConsistency)
{
    TreeGeometry geo(GetParam());
    Rng rng(GetParam() * 37 + 2);
    for (int i = 0; i < 200; ++i) {
        LeafLabel l = rng.uniformInt(geo.numLeaves());
        // Each path node's parent is the next node up the path.
        for (unsigned d = 1; d <= geo.leafLevel(); ++d) {
            BucketIndex child = geo.bucketAt(l, d);
            BucketIndex parent = geo.bucketAt(l, d - 1);
            EXPECT_EQ((child - 1) / 2, parent);
        }
    }
}

TEST_P(GeometryProperty, OverlapSymmetricAndBounded)
{
    TreeGeometry geo(GetParam());
    Rng rng(GetParam() * 41 + 3);
    for (int i = 0; i < 500; ++i) {
        LeafLabel a = rng.uniformInt(geo.numLeaves());
        LeafLabel b = rng.uniformInt(geo.numLeaves());
        unsigned ov = geo.overlap(a, b);
        EXPECT_EQ(ov, geo.overlap(b, a));
        EXPECT_GE(ov, 1u);
        EXPECT_LE(ov, geo.numLevels());
        if (a == b) {
            EXPECT_EQ(ov, geo.numLevels());
        }
    }
}

TEST_P(GeometryProperty, OverlapMatchesSharedPathPrefix)
{
    TreeGeometry geo(GetParam());
    Rng rng(GetParam() * 43 + 4);
    for (int i = 0; i < 200; ++i) {
        LeafLabel a = rng.uniformInt(geo.numLeaves());
        LeafLabel b = rng.uniformInt(geo.numLeaves());
        auto pa = geo.pathIndices(a);
        auto pb = geo.pathIndices(b);
        unsigned shared = 0;
        while (shared < pa.size() && pa[shared] == pb[shared])
            ++shared;
        EXPECT_EQ(geo.overlap(a, b), shared);
    }
}

TEST_P(GeometryProperty, CanResideMatchesPathMembership)
{
    TreeGeometry geo(GetParam());
    Rng rng(GetParam() * 47 + 5);
    for (int i = 0; i < 200; ++i) {
        LeafLabel blk = rng.uniformInt(geo.numLeaves());
        LeafLabel path = rng.uniformInt(geo.numLeaves());
        for (unsigned d = 0; d <= geo.leafLevel(); ++d) {
            bool expect =
                geo.bucketAt(blk, d) == geo.bucketAt(path, d);
            EXPECT_EQ(geo.canReside(blk, path, d), expect);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, GeometryProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u,
                                           16u, 24u, 27u));

// --- bucket -----------------------------------------------------------------

TEST(Bucket, AddAndTake)
{
    Bucket b(4);
    EXPECT_TRUE(b.empty());
    b.add(Block(1, 0));
    b.add(Block(2, 1));
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_FALSE(b.full());
    auto blocks = b.takeAll();
    EXPECT_EQ(blocks.size(), 2u);
    EXPECT_TRUE(b.empty());
}

TEST(Bucket, FullAtZ)
{
    Bucket b(2);
    b.add(Block(1, 0));
    b.add(Block(2, 0));
    EXPECT_TRUE(b.full());
}

TEST(BucketDeathTest, OverflowPanics)
{
    Bucket b(1);
    b.add(Block(1, 0));
    EXPECT_DEATH(b.add(Block(2, 0)), "overflow");
}

// --- tree store ---------------------------------------------------------------

TEST(TreeStore, LazyMaterialization)
{
    // The paper's full-size tree: reading must not allocate.
    TreeGeometry geo(24);
    TreeStore store(geo, 4, 0);
    EXPECT_EQ(store.materializedBuckets(), 0u);
    Bucket b = store.readBucket(12345);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(store.materializedBuckets(), 0u);
    store.writeBucket(12345, b);
    EXPECT_EQ(store.materializedBuckets(), 1u);
}

TEST(TreeStore, ReadBack)
{
    TreeGeometry geo(4);
    TreeStore store(geo, 4, 8);
    Bucket b(4);
    b.add(Block(7, 3, {1, 2, 3, 4, 5, 6, 7, 8}));
    store.writeBucket(9, b);
    Bucket rb = store.readBucket(9);
    ASSERT_EQ(rb.occupancy(), 1u);
    EXPECT_EQ(rb.blocks()[0].addr, 7u);
    EXPECT_EQ(rb.blocks()[0].leaf, 3u);
    EXPECT_EQ(rb.blocks()[0].payload,
              (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(TreeStore, EncryptedRoundTrip)
{
    TreeGeometry geo(4);
    TreeStore store(geo, 4, 16, /*encrypt=*/true, 0xbeef);
    Bucket b(4);
    std::vector<std::uint8_t> payload(16, 0xCD);
    b.add(Block(11, 2, payload));
    b.add(Block(12, 3, payload));
    store.writeBucket(5, b);
    Bucket rb = store.readBucket(5);
    ASSERT_EQ(rb.occupancy(), 2u);
    EXPECT_EQ(rb.blocks()[0].payload, payload);
}

TEST(TreeStore, CiphertextHidesOccupancy)
{
    TreeGeometry geo(3);
    TreeStore store(geo, 4, 8, /*encrypt=*/true);
    Bucket empty(4);
    Bucket fullb(4);
    for (int i = 0; i < 4; ++i)
        fullb.add(Block(100 + i, 1, std::vector<std::uint8_t>(8, 1)));
    store.writeBucket(1, empty);
    store.writeBucket(2, fullb);
    EXPECT_EQ(store.rawCiphertext(1).size(),
              store.rawCiphertext(2).size());
}

TEST(TreeStore, ProbabilisticRewrites)
{
    TreeGeometry geo(3);
    TreeStore store(geo, 4, 8, /*encrypt=*/true);
    Bucket b(4);
    b.add(Block(5, 0, std::vector<std::uint8_t>(8, 9)));
    store.writeBucket(3, b);
    auto first = store.rawCiphertext(3);
    store.writeBucket(3, b);
    auto second = store.rawCiphertext(3);
    EXPECT_NE(first, second); // same plaintext, fresh counter
}

TEST(TreeStore, CountsAccesses)
{
    TreeGeometry geo(3);
    TreeStore store(geo, 4, 0);
    store.readBucket(0);
    store.readBucket(1);
    store.writeBucket(0, Bucket(4));
    EXPECT_EQ(store.readCount(), 2u);
    EXPECT_EQ(store.writeCount(), 1u);
}

TEST(TreeStore, ResidentBlocks)
{
    TreeGeometry geo(3);
    TreeStore store(geo, 4, 0);
    Bucket b(4);
    b.add(Block(1, 0));
    b.add(Block(2, 1));
    store.writeBucket(0, b);
    Bucket c(4);
    c.add(Block(3, 2));
    store.writeBucket(4, c);
    EXPECT_EQ(store.residentBlocks(), 3u);
}

} // anonymous namespace
} // namespace fp::mem
