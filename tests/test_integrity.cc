/**
 * @file
 * Tests of the Merkle integrity extension: digest algebra, slice
 * verification against tampering, fork-shaped partial updates, and
 * the controller integration (tamper detection as an active-attack
 * countermeasure, paper Section 2.2).
 */

#include <gtest/gtest.h>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "oram/integrity.hh"
#include "util/random.hh"

namespace fp::oram
{
namespace
{

mem::Bucket
bucketWith(std::initializer_list<BlockAddr> addrs)
{
    mem::Bucket b(4);
    for (BlockAddr a : addrs)
        b.add(mem::Block(a, 0, {1, 2, 3}));
    return b;
}

std::vector<mem::Bucket>
emptyPath(const mem::TreeGeometry &geo)
{
    return std::vector<mem::Bucket>(geo.numLevels(), mem::Bucket(4));
}

TEST(Merkle, FreshTreeVerifies)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 42);
    EXPECT_TRUE(tree.verifySlice(3, 0, emptyPath(geo)));
    EXPECT_EQ(tree.failures(), 0u);
}

TEST(Merkle, HashDependsOnContent)
{
    mem::TreeGeometry geo(4);
    MerkleTree tree(geo, 1);
    auto a = tree.hashBucket(bucketWith({1}));
    auto b = tree.hashBucket(bucketWith({2}));
    auto c = tree.hashBucket(bucketWith({1, 2}));
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(tree.hashBucket(mem::Bucket(4)), a);
}

TEST(Merkle, HashDependsOnPayload)
{
    mem::TreeGeometry geo(4);
    MerkleTree tree(geo, 1);
    mem::Bucket x(4), y(4);
    x.add(mem::Block(1, 0, {9, 9, 9}));
    y.add(mem::Block(1, 0, {9, 9, 8}));
    EXPECT_NE(tree.hashBucket(x), tree.hashBucket(y));
}

TEST(Merkle, UpdateThenVerifyRoundTrip)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 7);
    auto path = emptyPath(geo);
    path[2] = bucketWith({10, 11});
    path[5] = bucketWith({12});
    tree.updateSlice(9, 0, path);
    EXPECT_TRUE(tree.verifySlice(9, 0, path));
}

TEST(Merkle, DetectsTamperedBucket)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 7);
    auto path = emptyPath(geo);
    path[3] = bucketWith({20});
    tree.updateSlice(17, 0, path);

    auto tampered = path;
    tampered[3] = bucketWith({21}); // adversary swaps a block
    EXPECT_FALSE(tree.verifySlice(17, 0, tampered));
    EXPECT_EQ(tree.failures(), 1u);
}

TEST(Merkle, DetectsReplayOfStaleBucket)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 7);
    auto v1 = emptyPath(geo);
    v1[4] = bucketWith({30});
    tree.updateSlice(3, 0, v1);
    auto v2 = v1;
    v2[4] = bucketWith({31});
    tree.updateSlice(3, 0, v2);
    // Replaying the older (authenticated at the time!) version must
    // now fail: the root has moved on.
    EXPECT_FALSE(tree.verifySlice(3, 0, v1));
}

TEST(Merkle, DetectsCrossPathSwap)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 7);
    // Two sibling leaves: paths 0 and 1 share all but the leaf.
    auto p0 = emptyPath(geo);
    p0[5] = bucketWith({40});
    tree.updateSlice(0, 0, p0);
    auto p1 = emptyPath(geo);
    p1[5] = bucketWith({41});
    // Path 1's top levels were just rewritten by path 0's update;
    // verify-then-update through the proper sequence instead.
    p1 = p0;
    p1[5] = bucketWith({41});
    tree.updateSlice(1, 0, p1);
    // Swapping the two leaf buckets between paths must be detected.
    auto swapped = p0;
    swapped[5] = bucketWith({41});
    EXPECT_FALSE(tree.verifySlice(0, 0, swapped));
}

TEST(Merkle, ForkShapedPartialUpdate)
{
    mem::TreeGeometry geo(6);
    MerkleTree tree(geo, 9);
    Rng rng(11);

    // Simulate merged accesses: full write, then partial writes and
    // partial reads at the fork levels, verifying each read slice.
    auto full = emptyPath(geo);
    full[6] = bucketWith({50});
    LeafLabel prev = rng.uniformInt(geo.numLeaves());
    tree.updateSlice(prev, 0, full);

    for (int i = 0; i < 200; ++i) {
        LeafLabel next = rng.uniformInt(geo.numLeaves());
        unsigned k = geo.overlap(prev, next);
        if (k >= geo.numLevels()) {
            prev = next;
            continue;
        }
        // Read slice [k, L] of `next` must verify (contents: we did
        // not track them, so rebuild what the tree believes by
        // writing first). Write slice then read slice round-trips.
        std::vector<mem::Bucket> slice(geo.numLevels() - k,
                                       mem::Bucket(4));
        if (!slice.empty())
            slice.back() = bucketWith({100 + (std::uint64_t)i});
        tree.updateSlice(next, k, slice);
        EXPECT_TRUE(tree.verifySlice(next, k, slice)) << i;
        prev = next;
    }
}

TEST(Merkle, PointUpdateTracksMutation)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 13);
    auto path = emptyPath(geo);
    path[2] = bucketWith({60, 61});
    tree.updateSlice(5, 0, path);

    // On-chip mutation (e.g. MAC data hit removes block 60).
    auto mutated = bucketWith({61});
    tree.updateBucket(geo.bucketAt(5, 2), mutated);
    auto new_path = path;
    new_path[2] = mutated;
    EXPECT_TRUE(tree.verifySlice(5, 0, new_path));
    EXPECT_FALSE(tree.verifySlice(5, 0, path));
}

TEST(Merkle, RootChangesOnEveryUpdate)
{
    mem::TreeGeometry geo(5);
    MerkleTree tree(geo, 15);
    auto r0 = tree.root();
    auto path = emptyPath(geo);
    path[1] = bucketWith({70});
    tree.updateSlice(2, 0, path);
    auto r1 = tree.root();
    EXPECT_NE(r0, r1);
}

// --- controller integration --------------------------------------------------

core::ControllerParams
integrityParams()
{
    core::ControllerParams p;
    p.oram.leafLevel = 6;
    p.oram.payloadBytes = 8;
    p.oram.seed = 77;
    p.policy = core::PolicyKind::forkpath;
    p.labelQueueSize = 8;
    p.enableIntegrity = true;
    return p;
}

struct Harness
{
    EventQueue eq;
    dram::DramSystem dram;
    core::OramController ctrl;

    explicit Harness(const core::ControllerParams &p)
        : dram(dram::DramParams::ddr3_1600(2), eq), ctrl(p, eq, dram)
    {
    }

    void
    writeSync(BlockAddr addr, std::vector<std::uint8_t> data)
    {
        ctrl.request(oram::Op::write, addr, std::move(data),
                     [](Tick, const auto &) {});
        eq.run();
    }

    std::vector<std::uint8_t>
    readSync(BlockAddr addr)
    {
        std::vector<std::uint8_t> out;
        ctrl.request(oram::Op::read, addr, {},
                     [&](Tick, const auto &d) { out = d; });
        eq.run();
        return out;
    }
};

TEST(MerkleController, CleanRunVerifies)
{
    Harness h(integrityParams());
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        BlockAddr a = rng.uniformInt(48);
        if (rng.chance(0.5))
            h.writeSync(a, std::vector<std::uint8_t>(8, 1));
        else
            h.readSync(a);
    }
    ASSERT_NE(h.ctrl.merkle(), nullptr);
    EXPECT_GT(h.ctrl.merkle()->verifications(), 100u);
    EXPECT_EQ(h.ctrl.merkle()->failures(), 0u);
}

TEST(MerkleController, IntegrityWithMacAndDataHits)
{
    auto p = integrityParams();
    p.cachePolicy = core::CachePolicy::mac;
    p.macM1 = 2;
    p.cacheBudgetBytes = 32 << 10;
    Harness h(p);
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
        BlockAddr a = rng.uniformInt(32); // small set: hits likely
        if (rng.chance(0.5))
            h.writeSync(a, std::vector<std::uint8_t>(8, 2));
        else
            h.readSync(a);
    }
    EXPECT_EQ(h.ctrl.merkle()->failures(), 0u);
}

TEST(MerkleControllerDeathTest, TamperDetected)
{
    EXPECT_DEATH(
        {
            Harness h(integrityParams());
            Rng rng(9);
            // Warm up so real blocks reach external memory.
            for (int i = 0; i < 60; ++i)
                h.writeSync(rng.uniformInt(16),
                            std::vector<std::uint8_t>(8, 7));
            // Adversary flips a payload bit in every resident block
            // of external memory.
            auto &store = h.ctrl.store();
            std::uint64_t tampered = 0;
            for (BucketIndex idx = 0;
                 idx < h.ctrl.geometry().numBuckets(); ++idx) {
                mem::Bucket b = store.readBucket(idx);
                if (b.empty())
                    continue;
                mem::Bucket nb(4);
                for (const auto &blk : b.blocks()) {
                    mem::Block copy = blk;
                    copy.payload[0] ^= 0xFF;
                    nb.add(std::move(copy));
                }
                store.writeBucket(idx, nb);
                ++tampered;
            }
            fp_assert(tampered > 0, "nothing reached memory");
            // Churn until a tampered bucket is fetched.
            for (int i = 0; i < 200; ++i)
                h.readSync(rng.uniformInt(16));
        },
        "integrity violation");
}

} // anonymous namespace
} // namespace fp::oram
