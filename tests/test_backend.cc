/**
 * @file
 * Tests of the mem::MemoryBackend seam: the golden identity check
 * that pins the DRAM adapter to the pre-refactor RunResult JSON, unit
 * tests of the NetBackend timing model (propagation, serialization,
 * windowing), a randomized read-after-write functional test driving
 * the full controller over the network store, and the full-system
 * harness running end-to-end on each backend.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dram/dram_backend.hh"
#include "dram/dram_system.hh"
#include "mem/net_backend.hh"
#include "sim/runner.hh"
#include "sim/sim_config.hh"
#include "sim/sync_oram.hh"
#include "util/event_queue.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace fp
{
namespace
{

/**
 * The `bench_fig* --quick` Fig-10 "merge q=64 / Mix3" point, captured
 * from the tree immediately before the MemoryBackend seam was
 * introduced (controller wired straight to dram::DramSystem &). The
 * DRAM adapter must reproduce it byte for byte: same events in the
 * same order at the same ticks, and the same serialised JSON.
 */
const char *kGoldenMergeQ64Mix3 =
    R"({"hit_tick_limit":false,"execution_ticks":325271250,)"
    R"("avg_llc_latency_ns":31222.810833333333,)"
    R"("avg_read_path_len":9.0490196078431371,)"
    R"("avg_dram_buckets_read":9.0490196078431371,)"
    R"("avg_dram_service_ns":511.52414075286418,)"
    R"("real_accesses":595,"dummy_accesses":16,"total_accesses":611,)"
    R"("dummy_replacements":6,"pending_swaps":3,"stash_shortcuts":1,)"
    R"("llc_requests":600,"merged_levels_skipped":3642,)"
    R"("row_hits":10066,"row_misses":995,)"
    R"("row_hit_rate":0.91004429979206225,)"
    R"("dram_energy_nj":303697.88076923077,)"
    R"("controller_energy_nj":633.78736175537108,"stash_peak":85,)"
    R"("stash_overflows":0,"cache_hits":0,"cache_misses":0,)"
    R"("cache_hit_rate":0,"merge_skips_per_level":)"
    R"([611,582,531,481,423,357,267,170,104,63,28,14,7,2,2]})";

sim::SimConfig
goldenConfig()
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 150;
    cfg.controller.oram.leafLevel = 14;
    return sim::withMergeOnly(cfg, 64);
}

TEST(BackendGolden, DramAdapterMatchesPreRefactorJson)
{
    sim::RunResult r = sim::runMix(goldenConfig(), "Mix3");
    EXPECT_EQ(sim::toJson(r), kGoldenMergeQ64Mix3);
    EXPECT_EQ(r.backendKind, "dram");
}

TEST(BackendGolden, NetBackendEmitsBackendFields)
{
    sim::SimConfig cfg = goldenConfig();
    cfg.backendKind = sim::BackendKind::net;
    sim::RunResult r = sim::runMix(cfg, "Mix3");
    EXPECT_EQ(r.backendKind, "net");
    EXPECT_EQ(r.rowHits, 0u); // no row buffers in the net model

    JsonValue doc = JsonValue::parse(sim::toJson(r));
    EXPECT_EQ(doc.at("backend_kind").asString(), "net");
    EXPECT_GT(doc.at("backend_read_bursts").asNumber(), 0.0);
    EXPECT_GT(doc.at("backend_avg_latency_ns").asNumber(), 0.0);
}

// ---------------------------------------------------------------------------
// NetBackend unit tests.

mem::NetBackendParams
netParams()
{
    mem::NetBackendParams p;
    p.oneWayLatencyUs = 10.0; // 20 us RTT
    p.linkGbps = 8.0;         // 1 byte per ns
    p.window = 2;
    return p;
}

TEST(NetBackendParams, TickConversionRoundsToNearest)
{
    // Boundary values pinning round-to-nearest (llround, half away
    // from zero) in the double -> Tick conversions; plain truncation
    // used to bias every non-representable latency low.
    mem::NetBackendParams p;

    // 64 B * 8 * 1e3 / 3 Gbps = 170666.67 ps: truncation said
    // 170666, rounding says 170667.
    p.linkGbps = 3.0;
    EXPECT_EQ(p.serializationTicks(64), 170667u);
    // 2/3 of a tick rounds up; 1/3 rounds down.
    EXPECT_EQ(p.serializationTicks(1), 2667u);  // 2666.67 ps
    p.linkGbps = 6.0;
    EXPECT_EQ(p.serializationTicks(1), 1333u);  // 1333.33 ps

    // Exactly representable values stay exact (the pre-fix test
    // vectors elsewhere in this file are unchanged by the fix).
    p.linkGbps = 8.0;
    EXPECT_EQ(p.serializationTicks(256), 256'000u);

    // One-way latency: 12.3456789 us = 12345678.9 ps rounds up.
    p.oneWayLatencyUs = 12.3456789;
    EXPECT_EQ(p.oneWayTicks(), 12'345'679u);
    // Half a tick rounds away from zero, not down.
    p.oneWayLatencyUs = 5e-7; // 0.5 ps
    EXPECT_EQ(p.oneWayTicks(), 1u);
    p.oneWayLatencyUs = 0.0;
    EXPECT_EQ(p.oneWayTicks(), 0u);
}

TEST(NetBackend, SingleRequestPaysRttPlusSerialization)
{
    EventQueue eq;
    mem::NetBackend net(netParams(), eq);
    ASSERT_TRUE(net.idle());

    Tick done_at = 0;
    mem::BackendRequest req;
    req.addr = 0;
    req.bytes = 256;
    req.onComplete = [&](Tick t) { done_at = t; };
    net.access(std::move(req));
    EXPECT_FALSE(net.idle());
    EXPECT_EQ(net.queueDepth(), 1u);
    eq.run();

    // 256 B at 1 B/ns = 256 ns serialization + 20 us RTT.
    const Tick expect = 256'000 + 2 * 10'000'000;
    EXPECT_EQ(done_at, expect);
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.queueDepth(), 0u);
}

TEST(NetBackend, TransfersSerializeOnTheLink)
{
    EventQueue eq;
    mem::NetBackend net(netParams(), eq);

    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        mem::BackendRequest req;
        req.addr = static_cast<Addr>(i) * 256;
        req.bytes = 256;
        req.onComplete = [&](Tick t) { done.push_back(t); };
        net.access(std::move(req));
    }
    eq.run();

    // Same RTT, but the second transfer waits out the first one's
    // link occupancy: exactly one serialization time later.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 256'000 + 20'000'000);
    EXPECT_EQ(done[1] - done[0], 256'000);
}

TEST(NetBackend, WindowBoundsOutstandingRequests)
{
    EventQueue eq;
    mem::NetBackend net(netParams(), eq); // window = 2

    int completed = 0;
    for (int i = 0; i < 5; ++i) {
        mem::BackendRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.bytes = 64;
        req.onComplete = [&](Tick) { ++completed; };
        net.access(std::move(req));
    }
    // 2 admitted, 3 parked locally behind the window.
    EXPECT_EQ(net.queueDepth(), 5u);
    EXPECT_EQ(net.windowStalls(), 3u);

    eq.run();
    EXPECT_EQ(completed, 5);
    EXPECT_TRUE(net.idle());

    const mem::BackendStats s = net.statsSnapshot();
    EXPECT_EQ(s.readBursts, 5u);
    EXPECT_EQ(s.bytesRead, 5u * 64u);
    EXPECT_EQ(s.writeBursts, 0u);
    EXPECT_GT(s.avgLatencyNs, 0.0);
}

TEST(NetBackend, ResetStatsClearsCounters)
{
    EventQueue eq;
    mem::NetBackend net(netParams(), eq);
    mem::BackendRequest req;
    req.isWrite = true;
    req.bytes = 64;
    req.onComplete = [](Tick) {};
    net.access(std::move(req));
    eq.run();
    EXPECT_EQ(net.statsSnapshot().writeBursts, 1u);
    net.resetStats();
    EXPECT_EQ(net.statsSnapshot().writeBursts, 0u);
    EXPECT_EQ(net.statsSnapshot().bytesWritten, 0u);
}

TEST(DramBackend, AdapterForwardsToDramSystem)
{
    EventQueue eq;
    dram::DramSystem dram(sim::SimConfig::defaultDram(), eq);
    dram::DramBackend backend(dram);
    EXPECT_STREQ(backend.kind(), "dram");
    EXPECT_TRUE(backend.idle());

    Tick done_at = 0;
    mem::BackendRequest req;
    req.addr = 1 << 20;
    req.bytes = 256; // = 4 bursts of 64 B
    req.onComplete = [&](Tick t) { done_at = t; };
    backend.access(std::move(req));
    eq.run();

    EXPECT_GT(done_at, 0u);
    const mem::BackendStats s = backend.statsSnapshot();
    EXPECT_EQ(s.readBursts, 4u);
    EXPECT_EQ(s.bytesRead, 256u);
}

// ---------------------------------------------------------------------------
// Randomized functional coverage: the full ORAM controller running
// read-after-write traffic against the network store.

TEST(NetBackendFunctional, RandomizedReadAfterWrite)
{
    auto params = core::ControllerParams::forkPath();
    params.oram.leafLevel = 9;
    params.oram.payloadBytes = 16;
    params.oram.seed = 77;
    params.labelQueueSize = 8;
    params.cacheBudgetBytes = 32 << 10;

    mem::NetBackendParams net;
    net.oneWayLatencyUs = 2.0; // keep the simulated run short
    net.linkGbps = 40.0;
    net.window = 8;

    sim::SyncOram oram(params, net);
    EXPECT_EQ(oram.dram(), nullptr);
    EXPECT_STREQ(oram.backend().kind(), "net");

    Rng rng(20260806);
    std::map<BlockAddr, std::vector<std::uint8_t>> shadow;
    for (int i = 0; i < 300; ++i) {
        BlockAddr addr = rng.uniformInt(128);
        if (shadow.empty() || rng.chance(0.5)) {
            std::vector<std::uint8_t> v(16);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng.uniformInt(256));
            oram.write(addr, v);
            shadow[addr] = std::move(v);
        } else if (shadow.count(addr)) {
            EXPECT_EQ(oram.read(addr), shadow[addr]);
        } else {
            EXPECT_EQ(oram.read(addr),
                      std::vector<std::uint8_t>(16, 0));
        }
    }
    // Final sweep: every written block reads back.
    for (const auto &[addr, v] : shadow)
        EXPECT_EQ(oram.read(addr), v);

    // The remote store actually served the traffic.
    const mem::BackendStats s = oram.backend().statsSnapshot();
    EXPECT_GT(s.readBursts, 0u);
    EXPECT_GT(s.writeBursts, 0u);
    EXPECT_GT(oram.now(), 0u);
}

TEST(NetBackendFunctional, LatencyScalesWithLinkRate)
{
    auto params = core::ControllerParams::traditional();
    params.oram.leafLevel = 9;
    params.oram.payloadBytes = 16;
    params.oram.seed = 3;

    auto avg_latency = [&](double gbps) {
        mem::NetBackendParams net;
        net.oneWayLatencyUs = 5.0;
        net.linkGbps = gbps;
        sim::SyncOram oram(params, net);
        std::vector<std::uint8_t> v(16, 0x42);
        for (BlockAddr a = 0; a < 16; ++a)
            oram.write(a, v);
        return oram.controller().oramLatency().mean();
    };

    // A slower link must cost simulated time, never change results.
    EXPECT_GT(avg_latency(1.0), avg_latency(100.0));
}

} // anonymous namespace
} // namespace fp
