/**
 * @file
 * Long-horizon stress: tens of thousands of operations through the
 * full Fork Path configuration at a realistic tree depth, with
 * end-state invariant audits (single live copy per block, stash
 * bounds, functional consistency, clean drain). Sized to stay under
 * a few seconds in Release builds.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "util/random.hh"

namespace fp::core
{
namespace
{

TEST(Stress, LongRunForkPathWithMacAndIntegrity)
{
    ControllerParams p;
    p.oram.leafLevel = 16;
    p.oram.payloadBytes = 8;
    p.oram.seed = 777;
    p.oram.stashCapacity = 200;
    p.policy = core::PolicyKind::forkpath;
    p.enableDummyReplacing = true;
    p.labelQueueSize = 32;
    p.cachePolicy = CachePolicy::mac;
    p.cacheBudgetBytes = 128 << 10;
    p.enableIntegrity = true;

    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    OramController ctrl(p, eq, dram);

    std::map<BlockAddr, std::uint8_t> ref;
    Rng rng(4242);
    const std::uint64_t space = 6000;
    std::uint64_t done = 0, issued = 0;

    // Pipelined driving: up to 24 in flight.
    for (int round = 0; round < 1500; ++round) {
        for (int k = 0; k < 24 && ctrl.canAccept(); ++k) {
            BlockAddr a = rng.uniformInt(space);
            if (rng.chance(0.5)) {
                auto v = static_cast<std::uint8_t>(rng());
                ctrl.request(oram::Op::write, a,
                             std::vector<std::uint8_t>(8, v),
                             [&done](Tick, const auto &) {
                                 ++done;
                             });
                ref[a] = v;
            } else {
                // Reads' expected values are checked post-hoc below;
                // concurrent reads only assert completion here.
                ctrl.request(oram::Op::read, a, {},
                             [&done](Tick, const auto &) {
                                 ++done;
                             });
            }
            ++issued;
        }
        eq.run();
    }
    ASSERT_EQ(done, issued);
    EXPECT_GT(issued, 30000u);

    // --- end-state audits -------------------------------------------------
    EXPECT_FALSE(ctrl.busy());
    EXPECT_EQ(ctrl.stash().overflowEvents(), 0u);
    EXPECT_LE(ctrl.stash().peakSize(), 200u);
    EXPECT_EQ(ctrl.merkle()->failures(), 0u);

    // Functional consistency: every written block reads back.
    for (const auto &[addr, val] : ref) {
        std::vector<std::uint8_t> out;
        bool ok = false;
        ctrl.request(oram::Op::read, addr, {},
                     [&](Tick, const auto &d) {
                         out = d;
                         ok = true;
                     });
        eq.run();
        ASSERT_TRUE(ok);
        ASSERT_EQ(out[0], val) << "addr " << addr;
    }

    // Single-live-copy audit: every block appears exactly once
    // across stash, MAC and the tree.
    std::map<BlockAddr, unsigned> copies;
    for (const auto &[addr, blk] : ctrl.stash().contents())
        ++copies[addr];
    ctrl.mac()->forEachBucket(
        [&](BucketIndex, const mem::Bucket &bucket) {
            for (const auto &blk : bucket.blocks())
                ++copies[blk.addr];
        });
    for (BucketIndex idx = 0; idx < ctrl.geometry().numBuckets();
         ++idx) {
        mem::Bucket bucket = ctrl.store().readBucket(idx);
        for (const auto &blk : bucket.blocks()) {
            // Skip stale copies shadowed by MAC/stash: a stale tree
            // copy is only legal if a fresher copy exists on-chip,
            // which the ordering of the counts below verifies.
            ++copies[blk.addr];
        }
    }
    // Every referenced block exists somewhere.
    for (const auto &[addr, val] : ref) {
        EXPECT_GE(copies[addr], 1u) << "addr " << addr << " lost";
    }
    // No block should be wildly duplicated (stale tree copies behind
    // a MAC-resident version are possible by design; more than two
    // locations means the invariant machinery broke).
    for (const auto &[addr, n] : copies) {
        EXPECT_LE(n, 2u) << "addr " << addr << " has " << n
                         << " copies";
    }
}

TEST(Stress, PeriodicModeLongRunStaysHealthy)
{
    ControllerParams p;
    p.oram.leafLevel = 12;
    p.oram.payloadBytes = 0;
    p.oram.seed = 888;
    p.labelQueueSize = 16;
    p.periodicIntervalTicks = 900'000;

    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    OramController ctrl(p, eq, dram);

    Rng rng(99);
    std::uint64_t done = 0, issued = 0;
    for (int i = 0; i < 300; ++i) {
        ctrl.request(oram::Op::read, rng.uniformInt(4096), {},
                     [&done](Tick, const auto &) { ++done; });
        ++issued;
        eq.run(eq.now() + 3'000'000);
    }
    eq.runWhile([&] { return done < issued; });
    EXPECT_EQ(done, issued);
    EXPECT_EQ(ctrl.stash().overflowEvents(), 0u);
    // The stream kept running between requests.
    EXPECT_GT(ctrl.dummyAccessesRun(), 200u);
}

} // anonymous namespace
} // namespace fp::core
