/**
 * @file
 * Tests of the merging-aware cache: band computation from the byte
 * budget, Eq. (1) set indexing, hit/extract semantics, LRU eviction
 * and write-back victims.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/merging_cache.hh"

namespace fp::core
{
namespace
{

mem::TreeGeometry geo24(24);

MergingCacheParams
params(unsigned m1 = 9, std::uint64_t budget = 1 << 20,
       unsigned ways = 2, std::uint64_t bucket_bytes = 256)
{
    MergingCacheParams p;
    p.m1 = m1;
    p.budgetBytes = budget;
    p.bucketsPerSet = ways;
    p.bucketBytes = bucket_bytes;
    return p;
}

mem::Bucket
bucketWith(BlockAddr addr, LeafLabel leaf)
{
    mem::Bucket b(4);
    b.add(mem::Block(addr, leaf));
    return b;
}

TEST(MergingCache, BandFromBudget)
{
    // 1 MB / 256 B = 4096 frames: levels 9 (512), 10 (1024) and
    // 11 (2048) are fully covered; the remaining 512 frames form a
    // partial region for level 12.
    MergingAwareCache cache(geo24, params(9));
    EXPECT_EQ(cache.m1(), 9u);
    EXPECT_EQ(cache.m2(), 12u);
    EXPECT_EQ(cache.capacityBuckets(), 4096u);
    EXPECT_TRUE(cache.inRange(9));
    EXPECT_TRUE(cache.inRange(12));
    EXPECT_FALSE(cache.inRange(8));
    EXPECT_FALSE(cache.inRange(13));
}

TEST(MergingCache, SmallBudget)
{
    // 1 KB / 256 B = 4 frames -> a 4-frame partial region of m1.
    MergingAwareCache cache(geo24, params(9, 1024));
    EXPECT_EQ(cache.m1(), 9u);
    EXPECT_EQ(cache.m2(), 9u);
    EXPECT_EQ(cache.capacityBuckets(), 4u);
}

TEST(MergingCache, QuadrupleBudgetAddsTwoLevels)
{
    MergingAwareCache small(geo24, params(9, 256 << 10));
    MergingAwareCache big(geo24, params(9, 1 << 20));
    EXPECT_EQ(big.m2(), small.m2() + 2);
}

TEST(MergingCache, SetIndexInRangeAndLevelDisjoint)
{
    MergingAwareCache cache(geo24, params(9));
    // Eq (1): different levels occupy disjoint set regions (when
    // each level's allocation is at least one full set).
    std::set<std::uint64_t> level9_sets, level10_sets;
    for (std::uint64_t y = 0; y < 64; ++y) {
        BucketIndex idx9 = ((1ULL << 9) - 1) + (y % (1ULL << 9));
        BucketIndex idx10 = ((1ULL << 10) - 1) + (y % (1ULL << 10));
        auto s9 = cache.setIndex(idx9);
        auto s10 = cache.setIndex(idx10);
        EXPECT_LT(s9, cache.numSets());
        EXPECT_LT(s10, cache.numSets());
        level9_sets.insert(s9);
        level10_sets.insert(s10);
    }
    for (auto s : level9_sets)
        EXPECT_EQ(level10_sets.count(s), 0u);
}

TEST(MergingCache, InsertThenExtractHits)
{
    MergingAwareCache cache(geo24, params(9));
    BucketIndex idx = (1ULL << 9) - 1 + 5; // level 9, offset 5
    EXPECT_FALSE(cache.insert(idx, bucketWith(1, 2)).has_value());
    auto hit = cache.extract(idx);
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->occupancy(), 1u);
    EXPECT_EQ(hit->blocks()[0].addr, 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Extraction invalidates: a second lookup misses.
    EXPECT_FALSE(cache.extract(idx).has_value());
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(MergingCache, ReinsertSameBucketNoVictim)
{
    MergingAwareCache cache(geo24, params(9));
    BucketIndex idx = (1ULL << 9) - 1 + 3;
    cache.insert(idx, bucketWith(1, 0));
    // Refilling the same bucket must update in place.
    EXPECT_FALSE(cache.insert(idx, bucketWith(2, 0)).has_value());
    auto hit = cache.extract(idx);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->blocks()[0].addr, 2u);
}

TEST(MergingCache, LruEvictionProducesVictim)
{
    // Tiny cache: 4 frames, 2 ways -> 2 sets, only level m1.
    MergingAwareCache cache(geo24, params(9, 1024));
    // Level 9's region is 4 frames (2 sets of 2 ways); offsets hash
    // by y % 4, so offsets 0 and 4 collide in set 0.
    BucketIndex base = (1ULL << 9) - 1;
    cache.insert(base + 0, bucketWith(10, 0));
    cache.insert(base + 1, bucketWith(11, 0));
    // Offset 4 maps onto frame 0 -> set 0: evicts LRU (base+0).
    auto victim = cache.insert(base + 4, bucketWith(12, 0));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->idx, base + 0);
    ASSERT_EQ(victim->bucket.occupancy(), 1u);
    EXPECT_EQ(victim->bucket.blocks()[0].addr, 10u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(MergingCache, LruOrderRespected)
{
    MergingAwareCache cache(geo24, params(9, 1024));
    BucketIndex base = (1ULL << 9) - 1;
    cache.insert(base + 0, bucketWith(10, 0));
    cache.insert(base + 1, bucketWith(11, 0));
    // Touch base+0 by re-inserting it; base+1 becomes LRU in set 0.
    // Offset 5 (5 % 4 = 1 -> frame 1 -> set 0) displaces it.
    cache.insert(base + 0, bucketWith(20, 0));
    auto victim = cache.insert(base + 5, bucketWith(13, 0));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->idx, base + 1);
}

TEST(MergingCache, CapacityAccounting)
{
    MergingAwareCache cache(geo24, params(9, 1 << 20));
    EXPECT_EQ(cache.sizeBytes(), cache.capacityBuckets() * 256);
    EXPECT_LE(cache.sizeBytes(), 1u << 20);
}

TEST(MergingCache, ForEachVisitsResidents)
{
    MergingAwareCache cache(geo24, params(9));
    BucketIndex a = (1ULL << 9) - 1 + 1;
    BucketIndex b = (1ULL << 10) - 1 + 7;
    cache.insert(a, bucketWith(1, 0));
    cache.insert(b, bucketWith(2, 0));
    // Fully-covered levels are pre-warmed with empty buckets; the
    // two inserted buckets must be visited with their contents.
    std::set<BlockAddr> contents;
    cache.forEachBucket(
        [&](BucketIndex idx, const mem::Bucket &bucket) {
            for (const auto &blk : bucket.blocks())
                contents.insert(blk.addr);
            if (idx == a || idx == b) {
                EXPECT_EQ(bucket.occupancy(), 1u);
            }
        });
    EXPECT_EQ(contents, (std::set<BlockAddr>{1, 2}));
}

TEST(MergingCache, PrewarmedLevelsHitEmpty)
{
    MergingAwareCache cache(geo24, params(9));
    // A never-inserted bucket of a fully-covered level hits with an
    // empty bucket (the controller initialised the tree, so it knows
    // the content); the partial level m2 stays cold.
    BucketIndex warm = (1ULL << 10) - 1 + 123;
    auto hit = cache.extract(warm);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->empty());
    BucketIndex cold =
        (1ULL << cache.m2()) - 1 + (1ULL << (cache.m2() - 1));
    EXPECT_FALSE(cache.extract(cold).has_value());
}

} // anonymous namespace
} // namespace fp::core
