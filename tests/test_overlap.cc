/**
 * @file
 * Tests of the overlap analysis: closed-form expectations against
 * Monte-Carlo simulation, and the MAC m1 derivation.
 */

#include <gtest/gtest.h>

#include "core/overlap.hh"
#include "util/random.hh"

namespace fp::core
{
namespace
{

TEST(Overlap, PairwiseExpectationNearTwo)
{
    mem::TreeGeometry geo(24);
    // sum of 2^-(k-1) for k=1..L -> 2 - 2^-(L-1), plus the tail term.
    EXPECT_NEAR(expectedPairwiseOverlap(geo), 2.0, 0.01);
}

TEST(Overlap, BestOfOneEqualsPairwise)
{
    mem::TreeGeometry geo(20);
    EXPECT_DOUBLE_EQ(expectedBestOverlap(geo, 1),
                     expectedPairwiseOverlap(geo));
}

TEST(Overlap, GrowsLogarithmically)
{
    mem::TreeGeometry geo(24);
    double prev = 0.0;
    // Doubling the queue should add about one level each time.
    for (unsigned q : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        double e = expectedBestOverlap(geo, q);
        if (prev > 0.0) {
            EXPECT_NEAR(e - prev, 1.0, 0.35) << "step to q=" << q;
        }
        prev = e;
    }
    EXPECT_NEAR(expectedBestOverlap(geo, 64), 7.34, 0.1);
}

TEST(Overlap, MatchesMonteCarlo)
{
    mem::TreeGeometry geo(16);
    Rng rng(31);
    for (unsigned q : {1u, 8u, 64u}) {
        double sum = 0.0;
        constexpr int trials = 20000;
        for (int t = 0; t < trials; ++t) {
            LeafLabel cur = rng.uniformInt(geo.numLeaves());
            unsigned best = 0;
            for (unsigned i = 0; i < q; ++i) {
                LeafLabel x = rng.uniformInt(geo.numLeaves());
                best = std::max(best, geo.overlap(cur, x));
            }
            sum += best;
        }
        double mc = sum / trials;
        EXPECT_NEAR(expectedBestOverlap(geo, q), mc, 0.06)
            << "q=" << q;
    }
}

TEST(Overlap, MacBottomLevel)
{
    mem::TreeGeometry geo(24);
    // len_overlap is the pairwise expectation (~2 - eps) -> m1 = 2,
    // independent of queue size (see macBottomLevel's rationale).
    EXPECT_EQ(macBottomLevel(geo, 64), 2u);
    EXPECT_EQ(macBottomLevel(geo, 1), 2u);
}

TEST(Overlap, MacBottomLevelClamped)
{
    mem::TreeGeometry geo(3);
    EXPECT_LE(macBottomLevel(geo, 1 << 20), geo.leafLevel());
}

} // anonymous namespace
} // namespace fp::core
