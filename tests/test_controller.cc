/**
 * @file
 * Integration tests of the Fork Path ORAM controller against the
 * event-driven DRAM model: functional correctness (read-your-writes
 * under every feature combination), the fork-shape invariant on the
 * revealed access sequence, dummy accounting, hazards, caching and
 * recursion chains.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "sim/sim_config.hh"
#include "util/random.hh"

namespace fp::core
{
namespace
{

struct Harness
{
    EventQueue eq;
    dram::DramSystem dram;
    OramController ctrl;

    explicit Harness(const ControllerParams &params,
                     unsigned channels = 2)
        : dram(dram::DramParams::ddr3_1600(channels), eq),
          ctrl(params, eq, dram)
    {
    }

    std::vector<std::uint8_t>
    readSync(BlockAddr addr)
    {
        std::vector<std::uint8_t> out;
        bool done = false;
        auto id = ctrl.request(oram::Op::read, addr, {},
                               [&](Tick, const auto &data) {
                                   out = data;
                                   done = true;
                               });
        EXPECT_NE(id, 0u);
        eq.run();
        EXPECT_TRUE(done);
        return out;
    }

    void
    writeSync(BlockAddr addr, std::vector<std::uint8_t> data)
    {
        bool done = false;
        auto id = ctrl.request(oram::Op::write, addr, std::move(data),
                               [&](Tick, const auto &) {
                                   done = true;
                               });
        EXPECT_NE(id, 0u);
        eq.run();
        EXPECT_TRUE(done);
    }
};

ControllerParams
smallParams(unsigned leaf_level = 6, std::size_t payload = 8)
{
    ControllerParams p;
    p.oram.leafLevel = leaf_level;
    p.oram.z = 4;
    p.oram.payloadBytes = payload;
    p.oram.seed = 4321;
    p.policy = core::PolicyKind::forkpath;
    p.enableDummyReplacing = true;
    p.labelQueueSize = 8;
    p.cachePolicy = CachePolicy::none;
    return p;
}

std::vector<std::uint8_t>
valueFor(std::uint64_t x, std::size_t n = 8)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(x * 17 + i);
    return v;
}

void
randomWorkload(Harness &h, std::uint64_t addr_space, int ops,
               std::uint64_t seed)
{
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(seed);
    for (int i = 0; i < ops; ++i) {
        BlockAddr a = rng.uniformInt(addr_space);
        if (rng.chance(0.5)) {
            auto v = valueFor(rng());
            h.writeSync(a, v);
            ref[a] = v;
        } else {
            auto expect = ref.count(a)
                              ? ref[a]
                              : std::vector<std::uint8_t>(8, 0);
            EXPECT_EQ(h.readSync(a), expect) << "addr " << a;
        }
    }
}

TEST(Controller, ForkPathReadYourWrites)
{
    Harness h(smallParams());
    randomWorkload(h, 48, 600, 11);
    EXPECT_FALSE(h.ctrl.busy());
    EXPECT_EQ(h.ctrl.inFlight(), 0u);
}

TEST(Controller, TraditionalReadYourWrites)
{
    auto p = smallParams();
    p.policy = core::PolicyKind::traditional;
    p.enableDummyReplacing = false;
    p.labelQueueSize = 1;
    Harness h(p);
    randomWorkload(h, 48, 400, 13);
}

TEST(Controller, MergeWithMacReadYourWrites)
{
    auto p = smallParams();
    p.cachePolicy = CachePolicy::mac;
    p.macM1 = 2;
    p.cacheBudgetBytes = 16 << 10;
    Harness h(p);
    randomWorkload(h, 48, 600, 17);
}

TEST(Controller, MergeWithTreetopReadYourWrites)
{
    auto p = smallParams();
    p.cachePolicy = CachePolicy::treetop;
    p.cacheBudgetBytes = 4 << 10; // pins a few top levels
    Harness h(p);
    randomWorkload(h, 48, 400, 19);
}

TEST(Controller, RecursionChainsReadYourWrites)
{
    auto p = smallParams();
    p.recursionDepth = 2;
    Harness h(p);
    randomWorkload(h, 32, 200, 23);
    // Each LLC miss that reaches the tree runs a 3-access chain.
    EXPECT_GE(h.ctrl.realAccesses(),
              3 * (h.ctrl.realAccesses() / 3));
    EXPECT_GT(h.ctrl.realAccesses(), 150u);
}

TEST(Controller, ForkShapeInvariant)
{
    auto p = smallParams();
    Harness h(p);
    h.ctrl.setRevealTraceEnabled(true);
    randomWorkload(h, 64, 300, 29);

    const auto &trace = h.ctrl.revealTrace();
    ASSERT_GT(trace.size(), 100u);
    const auto &geo = h.ctrl.geometry();
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        // The refill of access i stops exactly at its overlap with
        // the next revealed path, and the next read starts there.
        unsigned ov = geo.overlap(trace[i].label, trace[i + 1].label);
        EXPECT_EQ(trace[i].writeStopLevel, ov) << "at " << i;
        EXPECT_EQ(trace[i + 1].readStartLevel,
                  trace[i].writeStopLevel)
            << "at " << i;
    }
}

TEST(Controller, TraditionalAccessesFullPaths)
{
    auto p = smallParams();
    p.policy = core::PolicyKind::traditional;
    p.labelQueueSize = 1;
    Harness h(p);
    h.ctrl.setRevealTraceEnabled(true);
    randomWorkload(h, 64, 200, 31);
    for (const auto &r : h.ctrl.revealTrace()) {
        EXPECT_EQ(r.readStartLevel, 0u);
        EXPECT_EQ(r.writeStopLevel, 0u);
    }
    EXPECT_DOUBLE_EQ(h.ctrl.avgReadPathLength(),
                     h.ctrl.geometry().numLevels());
    EXPECT_EQ(h.ctrl.dummyAccessesRun(), 0u);
}

TEST(Controller, MergingShortensPaths)
{
    Harness h(smallParams());
    randomWorkload(h, 64, 300, 37);
    // Every consecutive pair shares at least the root, so merging
    // must strictly shorten the average fetched path.
    EXPECT_LT(h.ctrl.avgReadPathLength(),
              h.ctrl.geometry().numLevels() - 0.5);
    EXPECT_GT(h.ctrl.avgReadPathLength(), 1.0);
}

TEST(Controller, SyncTrafficInsertsDummies)
{
    // Synchronous (one-at-a-time) requests leave the label queue
    // empty of real work at every refill, so merging must insert and
    // run dummy accesses.
    Harness h(smallParams());
    for (int i = 0; i < 50; ++i)
        h.writeSync(static_cast<BlockAddr>(i), valueFor(i));
    EXPECT_GT(h.ctrl.dummyAccessesRun(), 0u);
}

TEST(Controller, ParkedControllerDrainsEventQueue)
{
    Harness h(smallParams());
    h.writeSync(1, valueFor(1));
    // After completion the committed dummy parks; no events remain.
    EXPECT_TRUE(h.eq.empty());
    // A later request unparks and completes normally.
    EXPECT_EQ(h.readSync(1), valueFor(1));
}

TEST(Controller, StashShortcutServesStashResidents)
{
    Harness h(smallParams());
    h.writeSync(5, valueFor(5));
    // The block is now in the stash (just accessed); an immediate
    // re-read should be served without a new ORAM access.
    auto before = h.ctrl.realAccesses();
    EXPECT_EQ(h.readSync(5), valueFor(5));
    EXPECT_GT(h.ctrl.stashShortcuts(), 0u);
    EXPECT_EQ(h.ctrl.realAccesses(), before);
}

TEST(Controller, WriteReadForwarding)
{
    Harness h(smallParams());
    // Warm up so the pipeline is realistic.
    h.writeSync(40, valueFor(1));

    // Issue a write and a read to a fresh address back-to-back; the
    // read must observe the write's data through WbR forwarding or
    // ordering, never the stale zero block.
    std::vector<std::uint8_t> read_data;
    bool read_done = false;
    h.ctrl.request(oram::Op::write, 41, valueFor(9),
                   [](Tick, const auto &) {});
    h.ctrl.request(oram::Op::read, 41, {},
                   [&](Tick, const auto &d) {
                       read_data = d;
                       read_done = true;
                   });
    h.eq.run();
    ASSERT_TRUE(read_done);
    EXPECT_EQ(read_data, valueFor(9));
}

TEST(Controller, WriteWriteCancellation)
{
    Harness h(smallParams());
    int acks = 0;
    // A read to the address holds the first write un-issued (RbW),
    // so the second write arrives while it can still be cancelled.
    std::vector<std::uint8_t> read_out;
    h.ctrl.request(oram::Op::read, 7, {},
                   [&](Tick, const auto &d) { read_out = d; });
    h.ctrl.request(oram::Op::write, 7, valueFor(1),
                   [&](Tick, const auto &) { ++acks; });
    h.ctrl.request(oram::Op::write, 7, valueFor(2),
                   [&](Tick, const auto &) { ++acks; });
    h.eq.run();
    EXPECT_EQ(acks, 2);
    EXPECT_EQ(read_out, std::vector<std::uint8_t>(8, 0));
    EXPECT_EQ(h.readSync(7), valueFor(2));
    EXPECT_GE(h.ctrl.addressQueue().cancels(), 1u);
}

TEST(Controller, PipelinedReadsSameAddress)
{
    Harness h(smallParams());
    h.writeSync(9, valueFor(9));
    // Make sure the block is out of the stash by churning others.
    for (int i = 0; i < 30; ++i)
        h.writeSync(100 + i, valueFor(i));

    int done = 0;
    std::vector<std::uint8_t> a, b;
    h.ctrl.request(oram::Op::read, 9, {},
                   [&](Tick, const auto &d) { a = d; ++done; });
    h.ctrl.request(oram::Op::read, 9, {},
                   [&](Tick, const auto &d) { b = d; ++done; });
    h.eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(a, valueFor(9));
    EXPECT_EQ(b, valueFor(9));
}

TEST(Controller, MacGetsHitsUnderMerging)
{
    auto p = smallParams(8);
    p.cachePolicy = CachePolicy::mac;
    p.macM1 = 2;
    p.cacheBudgetBytes = 64 << 10;
    Harness h(p);
    randomWorkload(h, 64, 400, 41);
    ASSERT_NE(h.ctrl.mac(), nullptr);
    EXPECT_GT(h.ctrl.mac()->hits(), 0u);
}

TEST(Controller, TreetopEliminatesTopLevelDram)
{
    auto p = smallParams(6);
    p.policy = core::PolicyKind::traditional;
    p.labelQueueSize = 1;
    p.cachePolicy = CachePolicy::treetop;
    p.cacheBudgetBytes = 2 << 10; // 8 buckets -> levels 0..2
    Harness h(p);
    randomWorkload(h, 48, 200, 43);
    ASSERT_NE(h.ctrl.treetop(), nullptr);
    unsigned pinned = h.ctrl.treetop()->numCachedLevels();
    EXPECT_GT(pinned, 0u);
    EXPECT_DOUBLE_EQ(h.ctrl.avgDramBucketsRead(),
                     h.ctrl.geometry().numLevels() - pinned);
}

TEST(Controller, MidRefillArrivalsReplaceDummyPending)
{
    // A request arriving while the in-flight access is refilling
    // with a dummy pending should replace the dummy (paper Case-3).
    // Sweep the injection delay so some arrivals land inside the
    // write phase's replacement window.
    auto p = smallParams(8);
    p.labelQueueSize = 4;
    Harness h(p);
    Rng rng(47);
    int done = 0, issued = 0;
    for (int round = 0; round < 60; ++round) {
        h.ctrl.request(oram::Op::read, rng.uniformInt(64), {},
                       [&](Tick, const auto &) { ++done; });
        ++issued;
        Tick delay = 50'000 + 25'000 * (round % 40); // 50ns..1.05us
        BlockAddr addr = 64 + rng.uniformInt(64);
        h.eq.scheduleIn(delay, [&h, &done, &issued, addr] {
            if (h.ctrl.canAccept()) {
                h.ctrl.request(oram::Op::read, addr, {},
                               [&done](Tick, const auto &) {
                                   ++done;
                               });
                ++issued;
            }
        });
        h.eq.run();
    }
    EXPECT_EQ(done, issued);
    EXPECT_GT(h.ctrl.dummyReplacements(), 0u);
}

TEST(Controller, LatencyRecorded)
{
    Harness h(smallParams());
    randomWorkload(h, 32, 100, 53);
    EXPECT_GT(h.ctrl.oramLatency().count(), 50u);
    EXPECT_GT(h.ctrl.oramLatency().mean(), 0.0);
}

TEST(Controller, StashOccupancyBounded)
{
    Harness h(smallParams(8));
    randomWorkload(h, 300, 800, 59);
    EXPECT_EQ(h.ctrl.stash().overflowEvents(), 0u);
    EXPECT_LT(h.ctrl.stash().peakSize(), 150u);
}

TEST(Controller, RejectsWhenAddressQueueFull)
{
    auto p = smallParams();
    p.addressQueueSize = 2;
    Harness h(p);
    // Without running the event loop, flood the queue.
    int cb = 0;
    auto noop = [&](Tick, const std::vector<std::uint8_t> &) { ++cb; };
    EXPECT_NE(h.ctrl.request(oram::Op::read, 1, {}, noop), 0u);
    EXPECT_NE(h.ctrl.request(oram::Op::read, 2, {}, noop), 0u);
    // Queue can be full now (entries pending until events run).
    if (!h.ctrl.canAccept()) {
        EXPECT_EQ(h.ctrl.request(oram::Op::read, 3, {}, noop), 0u);
    }
    h.eq.run();
}

} // anonymous namespace
} // namespace fp::core
