/**
 * @file
 * Tests of the DDR3 model: address decomposition, the subtree bucket
 * layout, bank/row-buffer timing, FR-FCFS behaviour and energy
 * accounting.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/address_mapping.hh"
#include "dram/dram_system.hh"
#include "mem/tree_geometry.hh"
#include "util/event_queue.hh"
#include "util/logging.hh"

namespace fp::dram
{
namespace
{

DramParams
testParams(unsigned channels = 2)
{
    return DramParams::ddr3_1600(channels);
}

// --- address mapping -------------------------------------------------------

TEST(AddressMapping, DecodeRoundTrip)
{
    DramOrganization org;
    org.channels = 2;
    org.banksPerRank = 8;
    org.rowBytes = 8192;
    AddressMapping map(org);

    auto loc = map.decode(0);
    EXPECT_EQ(loc.channel, 0u);
    EXPECT_EQ(loc.bank, 0u);
    EXPECT_EQ(loc.row, 0u);
    EXPECT_EQ(loc.column, 0u);

    // Next row rotates channel first.
    auto loc2 = map.decode(8192);
    EXPECT_EQ(loc2.channel, 1u);
    EXPECT_EQ(loc2.row, 0u);

    // Same row, different column.
    auto loc3 = map.decode(4096);
    EXPECT_EQ(loc3.channel, 0u);
    EXPECT_EQ(loc3.column, 4096u);
}

TEST(AddressMapping, AllFieldsInRange)
{
    DramOrganization org;
    AddressMapping map(org);
    for (Addr a = 0; a < (1ULL << 26); a += 4093) {
        auto loc = map.decode(a);
        EXPECT_LT(loc.channel, org.channels);
        EXPECT_LT(loc.bank, org.banksTotal());
        EXPECT_LT(loc.column, org.rowBytes);
    }
}

TEST(AddressMapping, LineInterleaveRejectsRowStraddlingBursts)
{
    // Regression: with rowBytes not a multiple of burstBytes (per
    // channel), the line interleave places bursts that straddle a row
    // boundary, but decode() charges each burst entirely to the row
    // of its first byte — silently mis-modelling row-buffer hits.
    // Such an organization is now rejected at construction.
    DramOrganization org;
    org.rowBytes = 8192;
    org.burstBytes = 96; // 8192 % 96 != 0
    org.mapPolicy = AddressMapPolicy::lineInterleaved;
    ScopedRecoverableFailures recover;
    EXPECT_THROW(AddressMapping{org}, SimFailure);

    // A zero burst size would divide by zero before it straddled.
    DramOrganization zero;
    zero.burstBytes = 0;
    zero.mapPolicy = AddressMapPolicy::lineInterleaved;
    EXPECT_THROW(AddressMapping{zero}, SimFailure);

    // The row interleave never splits on burst granularity, so the
    // same organization stays legal there.
    DramOrganization row_ok;
    row_ok.rowBytes = 8192;
    row_ok.burstBytes = 96;
    EXPECT_NO_THROW(AddressMapping{row_ok});

    // And a burst-aligned row is fine under the line interleave.
    DramOrganization line_ok;
    line_ok.rowBytes = 8192;
    line_ok.burstBytes = 64;
    line_ok.mapPolicy = AddressMapPolicy::lineInterleaved;
    EXPECT_NO_THROW(AddressMapping{line_ok});
}

// --- bucket layout -----------------------------------------------------------

TEST(BucketLayout, LinearIsDense)
{
    mem::TreeGeometry geo(4);
    BucketLayout layout(geo, 256, 8192, LayoutPolicy::linear);
    for (BucketIndex i = 0; i < geo.numBuckets(); ++i)
        EXPECT_EQ(layout.physAddr(i), i * 256);
}

TEST(BucketLayout, SubtreeDepthFromRow)
{
    mem::TreeGeometry geo(24);
    BucketLayout layout(geo, 256, 8192, LayoutPolicy::subtree);
    // 8192/256 = 32 buckets per row -> 5-level subtrees.
    EXPECT_EQ(layout.subtreeLevels(), 5u);
}

TEST(BucketLayout, SubtreeNoAliasing)
{
    mem::TreeGeometry geo(8);
    BucketLayout layout(geo, 256, 8192, LayoutPolicy::subtree);
    std::set<Addr> seen;
    for (BucketIndex i = 0; i < geo.numBuckets(); ++i) {
        Addr a = layout.physAddr(i);
        EXPECT_TRUE(seen.insert(a).second)
            << "bucket " << i << " aliases address " << a;
    }
}

TEST(BucketLayout, SubtreeNeverStraddlesRow)
{
    mem::TreeGeometry geo(9);
    // 320 B buckets: 25.6 per row, a non-power-of-two case.
    BucketLayout layout(geo, 320, 8192, LayoutPolicy::subtree);
    for (BucketIndex i = 0; i < geo.numBuckets(); ++i) {
        Addr a = layout.physAddr(i);
        EXPECT_EQ(a / 8192, (a + 320 - 1) / 8192)
            << "bucket " << i << " straddles a row";
    }
}

TEST(BucketLayout, SubtreeMappingExhaustivelyInjectiveAndRowAligned)
{
    // Exhaustive proof over small geometries that the subtree layout
    // is injective and never lets a bucket straddle a row, including
    // the awkward cases: a non-power-of-two number of buckets per row
    // (per_row in {2,3,5,7,9,17}), rows that are not a multiple of
    // the bucket size, and tree depths where numLevels is not a
    // multiple of the subtree depth (the last super-level is
    // truncated).
    const std::uint64_t bucket_bytes = 96;
    for (unsigned leaf = 0; leaf <= 8; ++leaf) {
        mem::TreeGeometry geo(leaf);
        for (std::uint64_t per_row : {2, 3, 5, 7, 8, 9, 17}) {
            // +37 makes the row a non-multiple of the bucket size.
            const std::uint64_t row_bytes =
                per_row * bucket_bytes + 37;
            BucketLayout layout(geo, bucket_bytes, row_bytes,
                                LayoutPolicy::subtree);
            std::set<Addr> seen;
            for (BucketIndex i = 0; i < geo.numBuckets(); ++i) {
                Addr a = layout.physAddr(i);
                EXPECT_TRUE(seen.insert(a).second)
                    << "leaf " << leaf << " per_row " << per_row
                    << ": bucket " << i << " aliases address " << a;
                EXPECT_EQ(a / row_bytes,
                          (a + bucket_bytes - 1) / row_bytes)
                    << "leaf " << leaf << " per_row " << per_row
                    << ": bucket " << i << " straddles a row";
            }
        }
    }
}

TEST(BucketLayout, SubtreeRejectsRowsSmallerThanTwoBuckets)
{
    // A row holding fewer than two buckets cannot host any subtree;
    // that is a configuration error (reject loudly), not a simulator
    // invariant.
    mem::TreeGeometry geo(4);
    ScopedRecoverableFailures recover;
    EXPECT_THROW(
        BucketLayout(geo, 8192, 8192 + 1, LayoutPolicy::subtree),
        SimFailure);
}

TEST(BucketLayout, PathTouchesFewRowsUnderSubtree)
{
    mem::TreeGeometry geo(24);
    BucketLayout subtree(geo, 256, 8192, LayoutPolicy::subtree);
    BucketLayout linear(geo, 256, 8192, LayoutPolicy::linear);

    auto rows_touched = [&](const BucketLayout &l, LeafLabel leaf) {
        std::set<std::uint64_t> rows;
        for (unsigned d = 0; d <= geo.leafLevel(); ++d)
            rows.insert(l.physAddr(geo.bucketAt(leaf, d)) / 8192);
        return rows.size();
    };

    // 25 levels / 5-level subtrees = 5 rows; the linear layout
    // scatters the upper path across many rows.
    EXPECT_EQ(rows_touched(subtree, 0x5a5a5a), 5u);
    EXPECT_GT(rows_touched(linear, 0x5a5a5a), 15u);
}

TEST(BucketLayout, SubtreeSharedPrefixSharesRows)
{
    mem::TreeGeometry geo(24);
    BucketLayout layout(geo, 256, 8192, LayoutPolicy::subtree);
    // Two paths overlapping in the top 10 levels share the top two
    // 5-level subtree rows.
    LeafLabel a = 0;
    LeafLabel b = 1 << (24 - 10); // differs at level 10
    for (unsigned d = 0; d < 10; ++d) {
        EXPECT_EQ(layout.physAddr(geo.bucketAt(a, d)) / 8192,
                  layout.physAddr(geo.bucketAt(b, d)) / 8192);
    }
}

// --- timing ---------------------------------------------------------------

/** Issue one transaction and return its completion latency. */
Tick
oneAccess(DramSystem &dram, EventQueue &eq, Addr addr, bool write,
          unsigned bursts = 4)
{
    Tick done = 0;
    Tick start = eq.now();
    DramRequest req;
    req.addr = addr;
    req.isWrite = write;
    req.bursts = bursts;
    req.onComplete = [&](Tick t) { done = t; };
    dram.access(std::move(req));
    eq.run();
    return done - start;
}

TEST(DramTiming, RowHitFasterThanMiss)
{
    EventQueue eq;
    DramSystem dram(testParams(1), eq);
    Tick miss = oneAccess(dram, eq, 0, false);     // cold: row miss
    Tick hit = oneAccess(dram, eq, 64, false);     // same row
    Tick conflict = oneAccess(dram, eq,
                              8192 * 16, false);   // same bank? other row
    EXPECT_LT(hit, miss);
    EXPECT_GE(conflict, miss); // needs PRE + ACT
}

TEST(DramTiming, LatencyMatchesParameters)
{
    EventQueue eq;
    auto p = testParams(1);
    DramSystem dram(p, eq);
    // Cold single-burst read: ACT + tRCD + CL + tBURST.
    Tick lat = oneAccess(dram, eq, 0, false, 1);
    Tick expected = p.timing.cycles(p.timing.tRCD + p.timing.cl +
                                    p.timing.tBURST);
    EXPECT_EQ(lat, expected);
}

TEST(DramTiming, BurstsSerializeOnDataBus)
{
    EventQueue eq;
    auto p = testParams(1);
    DramSystem dram(p, eq);
    Tick one = oneAccess(dram, eq, 0, false, 1);
    // A different bank so no precharge/tRAS interaction intrudes.
    Tick four = oneAccess(dram, eq, 8192 * 65, false, 4);
    EXPECT_EQ(four - one, p.timing.cycles(p.timing.tBURST) * 3);
}

TEST(DramTiming, ChannelsServeInParallel)
{
    EventQueue eq1;
    DramSystem one(testParams(1), eq1);
    EventQueue eq2;
    DramSystem two(testParams(2), eq2);

    auto flood = [](DramSystem &dram, EventQueue &eq) {
        int done = 0;
        for (int i = 0; i < 64; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i) * 8192;
            req.isWrite = false;
            req.bursts = 4;
            req.onComplete = [&done](Tick) { ++done; };
            dram.access(std::move(req));
        }
        eq.run();
        EXPECT_EQ(done, 64);
        return eq.now();
    };
    Tick t1 = flood(one, eq1);
    Tick t2 = flood(two, eq2);
    EXPECT_LT(t2, t1);
    EXPECT_GT(t1, t2 + t2 / 2); // roughly 2x throughput
}

TEST(DramTiming, FrFcfsPrefersRowHits)
{
    EventQueue eq;
    DramSystem dram(testParams(1), eq);
    // Open row 0 of bank 0.
    oneAccess(dram, eq, 0, false);

    // Occupy the scheduler with a transaction to another bank, then
    // queue a row-conflict ahead of a row-hit; FR-FCFS should still
    // serve the hit first.
    std::vector<int> order;
    DramRequest blocker;
    blocker.addr = 8192 * 17; // bank 1
    blocker.bursts = 4;
    blocker.onComplete = [&](Tick) { order.push_back(0); };
    DramRequest conflict;
    conflict.addr = 8192 * 16; // bank 0, other row
    conflict.bursts = 4;
    conflict.onComplete = [&](Tick) { order.push_back(1); };
    DramRequest hit;
    hit.addr = 128; // bank 0, open row
    hit.bursts = 4;
    hit.onComplete = [&](Tick) { order.push_back(2); };
    dram.access(std::move(blocker));
    dram.access(std::move(conflict));
    dram.access(std::move(hit));
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 1);
}

TEST(DramTiming, RowHitStatsTracked)
{
    EventQueue eq;
    DramSystem dram(testParams(1), eq);
    oneAccess(dram, eq, 0, false);
    oneAccess(dram, eq, 64, false);
    oneAccess(dram, eq, 128, false);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 2u);
}

TEST(DramTiming, PeakBandwidth)
{
    auto p = testParams(2);
    // DDR3-1600 x64: 12.8 GB/s per channel, 2 channels.
    EXPECT_NEAR(p.org.peakBandwidth(p.timing) / 1e9, 25.6, 0.1);
}

TEST(DramTiming, TwoRanksDoubleTheBanks)
{
    auto p = testParams(1);
    p.org.ranksPerChannel = 2;
    EXPECT_EQ(p.org.banksTotal(), 16u);
    EventQueue eq;
    DramSystem dram(p, eq);
    // Row ids 0..15 now land in 16 distinct banks: no bank conflicts
    // across 16 consecutive rows.
    AddressMapping map(p.org);
    std::set<unsigned> banks;
    for (std::uint64_t r = 0; r < 16; ++r)
        banks.insert(map.decode(r * 8192).bank);
    EXPECT_EQ(banks.size(), 16u);
}

TEST(DramTiming, RefreshClosesRowsAcrossEpochs)
{
    EventQueue eq;
    auto p = testParams(1);
    DramSystem dram(p, eq);
    // Open a row, then idle past a refresh interval; the next access
    // to the same row must be a row miss (refresh closed it).
    oneAccess(dram, eq, 0, false);
    Tick refi = p.timing.cycles(p.timing.tREFI);
    eq.schedule(eq.now() + 2 * refi, [] {});
    eq.run();
    oneAccess(dram, eq, 64, false);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(DramTiming, FourActivateWindowThrottles)
{
    EventQueue eq;
    auto p = testParams(1);
    DramSystem dram(p, eq);
    // Five row misses to five different banks back-to-back: the
    // fifth ACT must respect tFAW from the first.
    std::vector<Tick> completions;
    for (int i = 0; i < 5; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 8192; // banks 0..4
        req.bursts = 1;
        req.onComplete = [&](Tick t) { completions.push_back(t); };
        dram.access(std::move(req));
    }
    eq.run();
    ASSERT_EQ(completions.size(), 5u);
    // First ACT at ~0; fifth no earlier than tFAW + tRCD + CL + BL.
    Tick lower = p.timing.cycles(p.timing.tFAW + p.timing.tRCD +
                                 p.timing.cl + p.timing.tBURST);
    EXPECT_GE(completions[4], lower);
}

// --- energy ----------------------------------------------------------------

TEST(DramEnergy, GrowsWithTraffic)
{
    EventQueue eq;
    DramSystem dram(testParams(1), eq);
    auto e0 = dram.energy(eq.now()).total();
    for (int i = 0; i < 16; ++i)
        oneAccess(dram, eq, static_cast<Addr>(i) * 8192 * 16, false);
    auto e1 = dram.energy(eq.now()).total();
    EXPECT_GT(e1, e0);
}

TEST(DramEnergy, WritesCostMoreThanReads)
{
    auto p = testParams(1);
    EXPECT_GT(p.energy.writeBurstNj, p.energy.readBurstNj);
}

TEST(DramEnergy, BreakdownComponents)
{
    EventQueue eq;
    DramSystem dram(testParams(1), eq);
    oneAccess(dram, eq, 0, false);
    oneAccess(dram, eq, 0, true);
    auto e = dram.energy(eq.now());
    EXPECT_GT(e.activateNj, 0.0);
    EXPECT_GT(e.readNj, 0.0);
    EXPECT_GT(e.writeNj, 0.0);
    EXPECT_GT(e.backgroundNj, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.activateNj + e.readNj + e.writeNj +
                                    e.refreshNj + e.backgroundNj);
}

} // anonymous namespace
} // namespace fp::dram
