/**
 * @file
 * Tests of the label queue: Algorithm 1 insertion, dummy padding,
 * overlap-maximising selection, real-over-dummy tie-breaking, aging
 * promotion and the two dummy policies.
 */

#include <gtest/gtest.h>

#include "core/label_queue.hh"

namespace fp::core
{
namespace
{

mem::TreeGeometry geo8(8);

LabelQueue
makeQueue(std::size_t cap, unsigned aging = 100,
          DummySelectPolicy policy = DummySelectPolicy::compete)
{
    return LabelQueue(geo8, cap, aging, policy, 77);
}

TEST(LabelQueue, PadsToCapacity)
{
    auto q = makeQueue(8);
    EXPECT_EQ(q.size(), 0u);
    q.ensureFull();
    EXPECT_EQ(q.size(), 8u);
    EXPECT_EQ(q.realCount(), 0u);
    EXPECT_EQ(q.dummyCount(), 8u);
}

TEST(LabelQueue, RealReplacesFirstDummy)
{
    auto q = makeQueue(4);
    q.ensureFull();
    EXPECT_TRUE(q.insertReal(3, 1));
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.realCount(), 1u);
    EXPECT_FALSE(q.entries()[0].dummy);
    EXPECT_EQ(q.entries()[0].label, 3u);
}

TEST(LabelQueue, RejectsWhenFullOfReals)
{
    auto q = makeQueue(2);
    EXPECT_TRUE(q.insertReal(0, 1));
    EXPECT_TRUE(q.insertReal(1, 2));
    EXPECT_FALSE(q.insertReal(2, 3));
    EXPECT_TRUE(q.insertReal(2, 3, /*allow_overflow=*/true));
    EXPECT_EQ(q.size(), 3u);
}

TEST(LabelQueue, HasSpaceForReal)
{
    auto q = makeQueue(2);
    EXPECT_TRUE(q.hasSpaceForReal());
    q.insertReal(0, 1);
    q.insertReal(1, 2);
    EXPECT_FALSE(q.hasSpaceForReal());
    auto q2 = makeQueue(2);
    q2.ensureFull();
    EXPECT_TRUE(q2.hasSpaceForReal()); // dummies are replaceable
}

TEST(LabelQueue, OverflowDrainsBackToCapacity)
{
    // Regression: recursion-chain spawns insert with allow_overflow
    // while the queue is padded full of reals; the over-capacity
    // entry must not become permanent.
    auto q = makeQueue(4);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(q.insertReal(i, i + 1));
    EXPECT_FALSE(q.hasSpaceForReal());
    EXPECT_TRUE(q.insertReal(4, 5, /*allow_overflow=*/true));
    EXPECT_EQ(q.size(), 5u);

    // Over capacity: no space even though ensureFull could add
    // dummies, and padding must not grow the queue further.
    EXPECT_FALSE(q.hasSpaceForReal());
    q.ensureFull();
    EXPECT_EQ(q.size(), 5u); // all real, nothing to shed yet

    // Drain one real; the queue is back at capacity, all real.
    ASSERT_TRUE(q.selectNext(0).has_value());
    EXPECT_EQ(q.size(), 4u);
    q.ensureFull();
    EXPECT_EQ(q.size(), 4u);
    EXPECT_FALSE(q.hasSpaceForReal()); // full of reals again

    // Drain another: padding replaces it and space is back.
    ASSERT_TRUE(q.selectNext(0).has_value());
    q.ensureFull();
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.realCount(), 3u);
    EXPECT_TRUE(q.hasSpaceForReal());
}

TEST(LabelQueue, OverflowedDummiesAreShedOnEnsureFull)
{
    // Overflow while dummies are present (chain spawn raced ahead of
    // padding): ensureFull drops excess dummies, never reals.
    auto q = makeQueue(3);
    q.ensureFull();
    EXPECT_TRUE(q.insertReal(0, 1));
    EXPECT_TRUE(q.insertReal(1, 2));
    EXPECT_TRUE(q.insertReal(2, 3));
    // 3 reals at capacity 3; force two overflow inserts.
    EXPECT_TRUE(q.insertReal(3, 4, /*allow_overflow=*/true));
    EXPECT_TRUE(q.insertReal(4, 5, /*allow_overflow=*/true));
    EXPECT_EQ(q.size(), 5u);
    ASSERT_TRUE(q.selectNext(0).has_value()); // one real leaves
    q.ensureFull();
    // 4 reals remain, still one over capacity; nothing to shed.
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.realCount(), 4u);
    ASSERT_TRUE(q.selectNext(0).has_value());
    ASSERT_TRUE(q.selectNext(0).has_value());
    q.ensureFull();
    // Back under capacity: padded to exactly 3, reals preserved.
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.realCount(), 2u);
}

TEST(LabelQueue, SelectsMaxOverlap)
{
    auto q = makeQueue(4);
    // current = leaf 0 (binary 00000000 at L=8). Candidates:
    // 255 overlaps 1 (root only), 1 overlaps 8, 128 overlaps 1.
    q.insertReal(255, 1);
    q.insertReal(1, 2);
    q.insertReal(128, 3);
    auto sel = q.selectNext(0);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->label, 1u);
    EXPECT_EQ(sel->token, 2u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(LabelQueue, RealBeatsDummyOnTie)
{
    auto q = makeQueue(2);
    q.ensureFull();
    // Replace the first dummy with a real of label 200; then force a
    // tie by checking against current = the dummy's own label is
    // unlikely; instead verify the property directly: insert a real
    // whose overlap equals the best dummy's.
    auto dummy_label = q.entries()[1].label;
    q.insertReal(dummy_label, 9); // same label -> same overlap
    auto sel = q.selectNext(dummy_label);
    ASSERT_TRUE(sel.has_value());
    EXPECT_FALSE(sel->dummy);
    EXPECT_EQ(sel->token, 9u);
}

TEST(LabelQueue, EmptySelectReturnsNullopt)
{
    auto q = makeQueue(4);
    EXPECT_FALSE(q.selectNext(0).has_value());
}

TEST(LabelQueue, AgingPromotesStarvedReal)
{
    // Aging threshold 2: after losing twice, the real must win even
    // against better-overlapping dummies.
    auto q = makeQueue(4, /*aging=*/2);
    q.insertReal(255, 1); // poor overlap with current=0
    q.ensureFull();
    int rounds_until_selected = 0;
    for (int i = 0; i < 10; ++i) {
        auto sel = q.selectNext(0);
        ASSERT_TRUE(sel.has_value());
        ++rounds_until_selected;
        if (!sel->dummy) {
            EXPECT_EQ(sel->token, 1u);
            break;
        }
        q.ensureFull();
    }
    EXPECT_LE(rounds_until_selected, 3);
    EXPECT_GE(q.agingPromotions() + 1, 1u);
}

TEST(LabelQueue, RealFirstPolicyIgnoresDummies)
{
    auto q = makeQueue(8, 100, DummySelectPolicy::realFirst);
    q.ensureFull();
    q.insertReal(255, 5); // worst possible overlap with 0
    auto sel = q.selectNext(0);
    ASSERT_TRUE(sel.has_value());
    EXPECT_FALSE(sel->dummy);
    EXPECT_EQ(sel->token, 5u);
}

TEST(LabelQueue, RealFirstFallsBackToDummies)
{
    auto q = makeQueue(4, 100, DummySelectPolicy::realFirst);
    q.ensureFull();
    auto sel = q.selectNext(0);
    ASSERT_TRUE(sel.has_value());
    EXPECT_TRUE(sel->dummy);
}

TEST(LabelQueue, CompetePolicyCountsDummySelections)
{
    auto q = makeQueue(16);
    q.ensureFull();
    q.selectNext(0);
    EXPECT_EQ(q.dummiesSelected(), 1u);
    EXPECT_EQ(q.selections(), 1u);
}

TEST(LabelQueue, LosingToRealDoesNotAge)
{
    auto q = makeQueue(4, 100);
    q.insertReal(255, 1);
    q.insertReal(0, 2);
    q.selectNext(0); // selects token 2 (exact match)
    ASSERT_EQ(q.realCount(), 1u);
    EXPECT_EQ(q.entries()[0].age, 0u);
}

TEST(LabelQueue, LosingToDummyAges)
{
    auto q = makeQueue(4, 100);
    q.ensureFull();
    auto dummy_label = q.entries()[1].label;
    // A real whose overlap is strictly worse than a full-match dummy.
    q.insertReal(dummy_label ^ ((1u << 7)), 1);
    auto sel = q.selectNext(dummy_label);
    ASSERT_TRUE(sel.has_value());
    ASSERT_TRUE(sel->dummy);
    for (const auto &e : q.entries()) {
        if (!e.dummy) {
            EXPECT_EQ(e.age, 1u);
        }
    }
}

TEST(LabelQueue, SelectionKeepsQueueConsistent)
{
    auto q = makeQueue(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        q.insertReal(i * 37 % 256, 100 + i);
    q.ensureFull();
    std::size_t reals = q.realCount();
    for (int i = 0; i < 8; ++i) {
        auto sel = q.selectNext(13);
        ASSERT_TRUE(sel.has_value());
        if (!sel->dummy)
            --reals;
        EXPECT_EQ(q.realCount(), reals);
    }
    EXPECT_EQ(reals, 0u);
}

} // anonymous namespace
} // namespace fp::core
