/**
 * @file
 * Full-system integration tests: insecure vs traditional vs Fork
 * Path on small configurations, checking the qualitative shapes the
 * paper's figures rely on.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/mixes.hh"
#include "workload/spec_profiles.hh"

namespace fp::sim
{
namespace
{

SimConfig
smallConfig(unsigned cores = 2, std::uint64_t requests = 250)
{
    SimConfig cfg = SimConfig::paperDefault();
    cfg.cores = cores;
    cfg.requestsPerCore = requests;
    cfg.controller.oram.leafLevel = 12; // keep runs quick
    cfg.seed = 7;
    return cfg;
}

std::vector<workload::WorkloadProfile>
intenseProfiles(unsigned cores)
{
    std::vector<workload::WorkloadProfile> out;
    for (unsigned i = 0; i < cores; ++i)
        out.push_back(workload::specProfile(i % 2 ? "mcf" : "lbm"));
    return out;
}

TEST(System, RunsToCompletion)
{
    auto cfg = withTraditional(smallConfig());
    auto result = runProfiles(cfg, intenseProfiles(2));
    EXPECT_GT(result.executionTicks, 0u);
    EXPECT_EQ(result.llcRequests, 2u * 250u);
    EXPECT_GT(result.avgLlcLatencyNs, 0.0);
}

TEST(System, OramSlowsDownVsInsecure)
{
    auto profiles = intenseProfiles(2);
    auto secure = runProfiles(withTraditional(smallConfig()),
                              profiles);
    auto insecure = runProfiles(withInsecure(smallConfig()),
                                profiles);
    // The paper reports ~10x slowdowns at L=24; at L=12 the factor
    // is smaller but must still be clearly > 2.
    double slowdown = static_cast<double>(secure.executionTicks) /
                      static_cast<double>(insecure.executionTicks);
    EXPECT_GT(slowdown, 2.0);
}

TEST(System, ForkPathBeatsTraditionalOnIntenseWorkloads)
{
    auto profiles = intenseProfiles(4);
    auto cfg = smallConfig(4, 400);
    auto trad = runProfiles(withTraditional(cfg), profiles);
    auto fork = runProfiles(withMergeOnly(cfg, 16), profiles);
    EXPECT_LT(fork.avgLlcLatencyNs, trad.avgLlcLatencyNs);
    EXPECT_LT(fork.executionTicks, trad.executionTicks);
    EXPECT_LT(fork.avgReadPathLen, trad.avgReadPathLen);
}

TEST(System, MacReducesLatencyFurther)
{
    auto profiles = intenseProfiles(4);
    auto cfg = smallConfig(4, 400);
    auto merge = runProfiles(withMergeOnly(cfg, 16), profiles);
    auto mac =
        runProfiles(withMergeMac(cfg, 64 << 10, 16), profiles);
    EXPECT_LT(mac.avgLlcLatencyNs, merge.avgLlcLatencyNs);
}

TEST(System, ForkPathSavesDramEnergy)
{
    auto profiles = intenseProfiles(4);
    auto cfg = smallConfig(4, 400);
    auto trad = runProfiles(withTraditional(cfg), profiles);
    auto fork = runProfiles(withMergeMac(cfg, 64 << 10, 16),
                            profiles);
    // Same work, fewer bucket transfers -> less DRAM energy.
    EXPECT_LT(fork.dramEnergyNj, trad.dramEnergyNj);
}

TEST(System, QueueSizeOneMeansMergingOnly)
{
    auto profiles = intenseProfiles(2);
    auto cfg = smallConfig(2, 300);
    auto merge1 = runProfiles(withMergeOnly(cfg, 1), profiles);
    auto trad = runProfiles(withTraditional(cfg), profiles);
    // Even merging alone shortens paths (expected overlap ~2).
    EXPECT_LT(merge1.avgReadPathLen, trad.avgReadPathLen);
    EXPECT_GE(merge1.avgReadPathLen, trad.avgReadPathLen - 4.0);
}

TEST(System, SchedulingImprovesOverlapWithQueueSize)
{
    auto profiles = intenseProfiles(4);
    auto cfg = smallConfig(4, 400);
    auto q1 = runProfiles(withMergeOnly(cfg, 1), profiles);
    auto q16 = runProfiles(withMergeOnly(cfg, 16), profiles);
    EXPECT_LT(q16.avgReadPathLen, q1.avgReadPathLen);
}

TEST(System, InOrderSuffersMoreDummies)
{
    auto profiles = intenseProfiles(2);
    auto cfg = smallConfig(2, 300);
    auto ooo_cfg = withMergeOnly(cfg, 8);
    ooo_cfg.maxOutstanding = 8;
    auto inorder_cfg = withMergeOnly(cfg, 8);
    inorder_cfg.maxOutstanding = 1;
    auto ooo = runProfiles(ooo_cfg, profiles);
    auto inorder = runProfiles(inorder_cfg, profiles);
    double ooo_ratio = static_cast<double>(ooo.dummyAccesses) /
                       static_cast<double>(ooo.realAccesses);
    double io_ratio =
        static_cast<double>(inorder.dummyAccesses) /
        static_cast<double>(inorder.realAccesses);
    EXPECT_GT(io_ratio, ooo_ratio);
}

TEST(System, MixRunnersWork)
{
    auto cfg = withMergeOnly(smallConfig(4, 150), 8);
    auto result = runMix(cfg, "Mix4");
    EXPECT_EQ(result.llcRequests, 4u * 150u);
    EXPECT_GT(result.realAccesses, 0u);
}

TEST(System, ParsecRunnerSharesAddressSpace)
{
    auto cfg = withMergeOnly(smallConfig(4, 150), 8);
    auto result = runParsec(cfg, "canneal");
    EXPECT_EQ(result.llcRequests, 4u * 150u);
}

TEST(System, StashHealthyAtScale)
{
    auto cfg = withMergeOnly(smallConfig(4, 800), 16);
    auto result = runProfiles(cfg, intenseProfiles(4));
    EXPECT_EQ(result.stashOverflows, 0u);
    EXPECT_LT(result.stashPeak, 200u);
}

TEST(System, EnergyBreakdownPopulated)
{
    auto cfg = withMergeMac(smallConfig(2, 200), 64 << 10, 8);
    auto result = runProfiles(cfg, intenseProfiles(2));
    EXPECT_GT(result.dramEnergyNj, 0.0);
    EXPECT_GT(result.controllerEnergyNj, 0.0);
    // The paper's premise: external memory dominates.
    EXPECT_GT(result.dramEnergyNj, result.controllerEnergyNj);
}

TEST(System, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(System, FullSizeTreeSmoke)
{
    // The paper's L=24 tree must run (lazy materialization).
    auto cfg = withMergeOnly(SimConfig::paperDefault(), 64);
    cfg.cores = 4;
    cfg.requestsPerCore = 50;
    auto result = runProfiles(cfg, intenseProfiles(4));
    EXPECT_EQ(result.llcRequests, 200u);
    EXPECT_GT(result.avgReadPathLen, 15.0);
}

} // anonymous namespace
} // namespace fp::sim
