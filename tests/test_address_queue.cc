/**
 * @file
 * Tests of the address queue's hazard rules: RbR piggybacking, RbW
 * holds, WbR forwarding, WbW cancellation, and retirement.
 */

#include <gtest/gtest.h>

#include "core/address_queue.hh"

namespace fp::core
{
namespace
{

AddressEntry
entry(std::uint64_t id, BlockAddr addr, oram::Op op,
      std::vector<std::uint8_t> data = {})
{
    AddressEntry e;
    e.id = id;
    e.addr = addr;
    e.op = op;
    e.payload = std::move(data);
    return e;
}

TEST(AddressQueue, AcceptsUpToCapacity)
{
    AddressQueue q(2);
    EXPECT_TRUE(q.insert(entry(1, 10, oram::Op::read)).accepted);
    EXPECT_TRUE(q.insert(entry(2, 11, oram::Op::read)).accepted);
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.insert(entry(3, 12, oram::Op::read)).accepted);
}

TEST(AddressQueue, IndependentAddressesAllIssuable)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::read));
    q.insert(entry(2, 11, oram::Op::write, {1}));
    EXPECT_EQ(q.issuableCount(), 2u);
    EXPECT_EQ(q.nextIssuable()->id, 1u);
}

TEST(AddressQueue, ReadAfterReadPiggybacks)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::read));
    q.insert(entry(2, 10, oram::Op::read));
    // Only the first is issuable; the second rides along.
    EXPECT_EQ(q.issuableCount(), 1u);
    EXPECT_EQ(q.piggybacks(), 1u);
    q.markIssued(1);
    auto released = q.complete(1, {42});
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], 2u);
}

TEST(AddressQueue, ReadAfterWriteForwards)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::write, {9, 9}));
    auto res = q.insert(entry(2, 10, oram::Op::read));
    EXPECT_TRUE(res.accepted);
    EXPECT_TRUE(res.forwarded);
    EXPECT_EQ(res.forwardData, (std::vector<std::uint8_t>{9, 9}));
    EXPECT_EQ(q.forwards(), 1u);
    // The forwarded read never occupies the queue.
    EXPECT_EQ(q.size(), 1u);
}

TEST(AddressQueue, WriteAfterReadHeld)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::read));
    q.insert(entry(2, 10, oram::Op::write, {5}));
    EXPECT_EQ(q.issuableCount(), 1u);
    q.markIssued(1);
    q.complete(1, {1});
    // Read done: the write becomes issuable.
    EXPECT_EQ(q.issuableCount(), 1u);
    EXPECT_EQ(q.nextIssuable()->id, 2u);
}

TEST(AddressQueue, WriteAfterWriteCancelsOlder)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::write, {1}));
    auto res = q.insert(entry(2, 10, oram::Op::write, {2}));
    EXPECT_EQ(res.cancelledId, 1u);
    EXPECT_EQ(q.cancels(), 1u);
    // Only the younger write issues.
    EXPECT_EQ(q.issuableCount(), 1u);
    EXPECT_EQ(q.nextIssuable()->id, 2u);
}

TEST(AddressQueue, WriteAfterIssuedWriteOrders)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::write, {1}));
    q.markIssued(1);
    auto res = q.insert(entry(2, 10, oram::Op::write, {2}));
    EXPECT_EQ(res.cancelledId, 0u);
    EXPECT_EQ(q.issuableCount(), 0u); // held behind the issued write
    q.complete(1, {});
    EXPECT_EQ(q.issuableCount(), 1u);
}

TEST(AddressQueue, ForwardFromCompletedRead)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::read));
    // Hold retirement by keeping a dependent in the queue.
    q.insert(entry(2, 10, oram::Op::write, {7}));
    q.markIssued(1);
    q.complete(1, {3});
    // A read arriving now forwards from the completed read's data if
    // the entry is still resident, or misses cleanly if retired.
    auto res = q.insert(entry(3, 10, oram::Op::read));
    EXPECT_TRUE(res.accepted);
}

TEST(AddressQueue, RetiresCompletedEntries)
{
    AddressQueue q(2);
    q.insert(entry(1, 10, oram::Op::read));
    q.markIssued(1);
    q.complete(1, {});
    EXPECT_EQ(q.size(), 0u);
    // Space reclaimed.
    EXPECT_TRUE(q.insert(entry(2, 11, oram::Op::read)).accepted);
    EXPECT_TRUE(q.insert(entry(3, 12, oram::Op::read)).accepted);
}

TEST(AddressQueue, ChainedPiggybacks)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::read));
    q.insert(entry(2, 10, oram::Op::read));
    q.insert(entry(3, 10, oram::Op::read));
    q.markIssued(1);
    EXPECT_EQ(q.issuableCount(), 0u);
    auto released = q.complete(1, {8});
    // Releasing 1 frees 2 (and possibly 3 transitively through 2).
    EXPECT_GE(released.size(), 1u);
    for (std::uint64_t id : released) {
        for (std::uint64_t sub : q.complete(id, {8}))
            q.complete(sub, {8});
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(AddressQueue, HazardsOnlyApplyPerAddress)
{
    AddressQueue q(8);
    q.insert(entry(1, 10, oram::Op::write, {1}));
    q.insert(entry(2, 11, oram::Op::write, {2}));
    EXPECT_EQ(q.cancels(), 0u);
    EXPECT_EQ(q.issuableCount(), 2u);
}

} // anonymous namespace
} // namespace fp::core
