/**
 * @file
 * Tests of the scheduling-policy seam (core::AccessPolicy): registry
 * name parsing, the canonical presets behind the legacy factories,
 * ControllerParams validation at construction, the policy objects'
 * admission/selection contracts, end-to-end batched runs (including
 * determinism and the batching hold actually firing), and the
 * sim-layer --policy/--batch-size flag plumbing.
 */

#include <gtest/gtest.h>

#include "core/access_policy.hh"
#include "core/controller_params.hh"
#include "core/oram_controller.hh"
#include "sim/runner.hh"
#include "sim/sim_config.hh"
#include "sim/system.hh"
#include "util/cli.hh"
#include "workload/mixes.hh"

namespace fp
{
namespace
{

// ---------------------------------------------------------------------------
// Registry.

TEST(PolicyRegistry, NamesRoundTripThroughParse)
{
    const auto names = core::accessPolicyNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "traditional");
    EXPECT_EQ(names[1], "forkpath");
    EXPECT_EQ(names[2], "batched");
    for (const auto &name : names) {
        core::PolicyKind kind = core::parsePolicyKind(name);
        EXPECT_STREQ(core::policyKindName(kind), name.c_str());
    }
}

TEST(PolicyRegistry, UnknownNameIsFatalWithTheValidList)
{
    EXPECT_DEATH(core::parsePolicyKind("zigzag"), "traditional");
}

TEST(PolicyRegistry, PresetsBackTheLegacyFactories)
{
    core::ControllerParams trad;
    core::applyPolicyPreset(trad, core::PolicyKind::traditional);
    const auto trad_factory = core::ControllerParams::traditional();
    EXPECT_EQ(trad.policy, core::PolicyKind::traditional);
    EXPECT_FALSE(trad.merging());
    EXPECT_EQ(trad.enableDummyReplacing,
              trad_factory.enableDummyReplacing);
    EXPECT_EQ(trad.labelQueueSize, trad_factory.labelQueueSize);
    EXPECT_EQ(trad.cachePolicy, trad_factory.cachePolicy);

    core::ControllerParams fork;
    core::applyPolicyPreset(fork, core::PolicyKind::forkpath);
    const auto fork_factory = core::ControllerParams::forkPath();
    EXPECT_EQ(fork.policy, core::PolicyKind::forkpath);
    EXPECT_TRUE(fork.merging());
    EXPECT_EQ(fork.enableDummyReplacing,
              fork_factory.enableDummyReplacing);
    EXPECT_EQ(fork.labelQueueSize, fork_factory.labelQueueSize);
    EXPECT_EQ(fork.cachePolicy, fork_factory.cachePolicy);

    // Presets leave the ORAM geometry and timing knobs alone.
    core::ControllerParams geo;
    geo.oram.leafLevel = 11;
    geo.writeWindow = 9;
    core::applyPolicyPreset(geo, core::PolicyKind::batched);
    EXPECT_EQ(geo.policy, core::PolicyKind::batched);
    EXPECT_EQ(geo.oram.leafLevel, 11u);
    EXPECT_EQ(geo.writeWindow, 9u);
}

// ---------------------------------------------------------------------------
// Policy objects.

TEST(PolicyObjects, FlagsFollowTheParams)
{
    auto pol = core::makeAccessPolicy(
        core::ControllerParams::traditional());
    EXPECT_EQ(pol->kind(), core::PolicyKind::traditional);
    EXPECT_STREQ(pol->name(), "traditional");
    EXPECT_FALSE(pol->merging());
    EXPECT_FALSE(pol->replacing());
    // The default admission gate never holds.
    EXPECT_TRUE(pol->admitFrontend(0, true));

    core::ControllerParams p = core::ControllerParams::forkPath();
    pol = core::makeAccessPolicy(p);
    EXPECT_EQ(pol->kind(), core::PolicyKind::forkpath);
    EXPECT_TRUE(pol->merging());
    EXPECT_TRUE(pol->replacing());
    EXPECT_TRUE(pol->admitFrontend(0, true));

    // The ablation knob disables replacing without leaving forkpath.
    p.enableDummyReplacing = false;
    pol = core::makeAccessPolicy(p);
    EXPECT_EQ(pol->kind(), core::PolicyKind::forkpath);
    EXPECT_FALSE(pol->replacing());
}

TEST(PolicyObjects, BatchedHoldsUntilABatchWhileBusy)
{
    core::ControllerParams p;
    core::applyPolicyPreset(p, core::PolicyKind::batched);
    p.batchSize = 4;
    auto pol = core::makeAccessPolicy(p);
    EXPECT_EQ(pol->kind(), core::PolicyKind::batched);
    EXPECT_TRUE(pol->merging());
    EXPECT_FALSE(pol->replacing());
    // Idle pipeline: everything (including a partial batch) flushes.
    EXPECT_TRUE(pol->admitFrontend(1, false));
    EXPECT_TRUE(pol->admitFrontend(0, false));
    // Busy pipeline: hold below the batch, admit at or above it.
    EXPECT_FALSE(pol->admitFrontend(0, true));
    EXPECT_FALSE(pol->admitFrontend(3, true));
    EXPECT_TRUE(pol->admitFrontend(4, true));
    EXPECT_TRUE(pol->admitFrontend(5, true));
}

// ---------------------------------------------------------------------------
// ControllerParams validation (fatal at controller construction).

TEST(ControllerParamsValidate, RejectsDegenerateKnobs)
{
    {
        core::ControllerParams p = core::ControllerParams::forkPath();
        p.labelQueueSize = 0;
        EXPECT_DEATH(p.validate(), "labelQueueSize");
    }
    {
        core::ControllerParams p = core::ControllerParams::forkPath();
        p.addressQueueSize = 0;
        EXPECT_DEATH(p.validate(), "addressQueueSize");
    }
    {
        core::ControllerParams p = core::ControllerParams::forkPath();
        p.recursionFanout = 0;
        EXPECT_DEATH(p.validate(), "recursionFanout");
    }
    {
        core::ControllerParams p = core::ControllerParams::forkPath();
        p.writeWindow = 0;
        EXPECT_DEATH(p.validate(), "writeWindow");
    }
    {
        core::ControllerParams p;
        core::applyPolicyPreset(p, core::PolicyKind::batched);
        p.batchSize = 0;
        EXPECT_DEATH(p.validate(), "batchSize");
    }
    {
        core::ControllerParams p = core::ControllerParams::forkPath();
        p.cachePolicy = core::CachePolicy::mac;
        p.macBucketsPerSet = 0;
        EXPECT_DEATH(p.validate(), "macBucketsPerSet");
    }
}

TEST(ControllerParamsValidate, AcceptsEveryRegisteredPreset)
{
    for (const auto &name : core::accessPolicyNames()) {
        core::ControllerParams p;
        core::applyPolicyPreset(p, core::parsePolicyKind(name));
        p.validate(); // must not abort
    }
}

// ---------------------------------------------------------------------------
// End-to-end batched runs.

sim::SimConfig
batchedConfig()
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 80;
    cfg.controller.oram.leafLevel = 10;
    cfg = sim::withPolicy(std::move(cfg), core::PolicyKind::batched);
    cfg.controller.batchSize = 4;
    return cfg;
}

TEST(BatchedPolicy, RunsEndToEndDeterministically)
{
    sim::RunResult a = sim::runMix(batchedConfig(), "Mix3");
    EXPECT_FALSE(a.hitTickLimit);
    EXPECT_EQ(a.llcRequests, 4u * 80u);
    EXPECT_GT(a.realAccesses, 0u);
    sim::RunResult b = sim::runMix(batchedConfig(), "Mix3");
    EXPECT_EQ(sim::toJson(a), sim::toJson(b));
}

TEST(BatchedPolicy, HoldFiresAndNothingStarves)
{
    sim::System sys(batchedConfig(), workload::mixProfiles("Mix3"));
    sim::RunResult r = sys.run();
    EXPECT_FALSE(r.hitTickLimit);
    EXPECT_EQ(r.llcRequests, 4u * 80u);

    core::OramController *ctrl = sys.controller();
    ASSERT_NE(ctrl, nullptr);
    EXPECT_EQ(ctrl->policy().kind(), core::PolicyKind::batched);
    // The hold actually gated pumps (4 cores x 16 MSHRs pile up well
    // past batchSize=4 while an access is in flight) — and despite
    // that, every request above completed.
    EXPECT_GT(ctrl->admission().heldPumps(), 0u);
}

TEST(ForkpathPolicy, ControllerReportsTheDefaultPolicy)
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 20;
    cfg.controller.oram.leafLevel = 10;
    cfg = sim::withMergeOnly(std::move(cfg), 16);
    sim::System sys(cfg, workload::mixProfiles("Mix3"));
    ASSERT_NE(sys.controller(), nullptr);
    EXPECT_EQ(sys.controller()->policy().kind(),
              core::PolicyKind::forkpath);
    EXPECT_EQ(sys.controller()->admission().heldPumps(), 0u);
}

// ---------------------------------------------------------------------------
// Sim-layer flag plumbing.

TEST(PolicyFlags, CliSelectsPolicyAndBatchSize)
{
    const char *argv[] = {"bench", "--policy=batched",
                          "--batch-size=5"};
    CliArgs args(3, const_cast<char **>(argv));
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    sim::applyPolicyFlags(cfg, args);
    EXPECT_EQ(cfg.controller.policy, core::PolicyKind::batched);
    EXPECT_EQ(cfg.controller.batchSize, 5u);
}

TEST(PolicyFlags, AbsentFlagsLeaveTheConfigUntouched)
{
    const char *argv[] = {"bench"};
    CliArgs args(1, const_cast<char **>(argv));
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    const auto before_policy = cfg.controller.policy;
    const auto before_batch = cfg.controller.batchSize;
    sim::applyPolicyFlags(cfg, args);
    EXPECT_EQ(cfg.controller.policy, before_policy);
    EXPECT_EQ(cfg.controller.batchSize, before_batch);
}

TEST(PolicyFlags, WithPolicyNameMatchesTheFactories)
{
    sim::SimConfig base = sim::SimConfig::paperDefault();
    sim::SimConfig byname =
        sim::withPolicyName(base, "traditional");
    EXPECT_EQ(byname.controller.policy,
              core::PolicyKind::traditional);
    EXPECT_EQ(byname.controller.labelQueueSize,
              core::ControllerParams::traditional().labelQueueSize);

    byname = sim::withPolicyName(base, "forkpath");
    EXPECT_EQ(byname.controller.policy, core::PolicyKind::forkpath);
    EXPECT_EQ(byname.controller.cachePolicy,
              core::ControllerParams::forkPath().cachePolicy);
}

} // anonymous namespace
} // namespace fp
