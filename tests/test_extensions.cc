/**
 * @file
 * Tests of the extensions beyond the paper's core contribution: the
 * PosMap Lookaside Buffer (Freecursive), background eviction (Ren et
 * al.), and trace capture/replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "core/plb.hh"
#include "util/random.hh"
#include "workload/trace_io.hh"

namespace fp
{
namespace
{

// --- PLB ----------------------------------------------------------------

TEST(Plb, ColdMissesStartAtChainHead)
{
    core::PosmapLookasideBuffer plb(3, 8, 64);
    EXPECT_EQ(plb.lookupChainStart(100), 0u);
    EXPECT_EQ(plb.misses(), 1u);
}

TEST(Plb, FullChainFillSkipsToData)
{
    core::PosmapLookasideBuffer plb(3, 8, 64);
    // Complete all posmap elements for address 100.
    plb.fill(100, 0);
    plb.fill(100, 1);
    plb.fill(100, 2);
    // All translations cached: only the data element must run.
    EXPECT_EQ(plb.lookupChainStart(100), 3u);
    EXPECT_EQ(plb.hits(), 1u);
}

TEST(Plb, PartialFillStartsMidChain)
{
    core::PosmapLookasideBuffer plb(3, 8, 64);
    plb.fill(100, 0); // outermost translation only
    EXPECT_EQ(plb.lookupChainStart(100), 1u);
}

TEST(Plb, SpatialLocalityAcrossFanoutGroup)
{
    core::PosmapLookasideBuffer plb(2, 8, 64);
    plb.fill(100, 0);
    plb.fill(100, 1);
    // Address 101 shares every translation group with 100
    // (101/8 == 100/8), so the whole chain is covered.
    EXPECT_EQ(plb.lookupChainStart(101), 2u);
    // Address in a different group at the last level but the same
    // outer group starts mid-chain.
    EXPECT_EQ(plb.lookupChainStart(100 + 8), 1u);
}

TEST(Plb, DataElementFillIsNoop)
{
    core::PosmapLookasideBuffer plb(2, 8, 4);
    plb.fill(100, 2); // data element produces no translation
    EXPECT_EQ(plb.size(), 0u);
}

TEST(Plb, LruEvicts)
{
    core::PosmapLookasideBuffer plb(1, 8, 2);
    plb.fill(0, 0);   // group 0
    plb.fill(64, 0);  // group 8
    plb.fill(128, 0); // group 16 -> evicts group 0
    EXPECT_EQ(plb.size(), 2u);
    EXPECT_EQ(plb.lookupChainStart(0), 0u);   // miss (evicted)
    EXPECT_EQ(plb.lookupChainStart(64), 1u);  // hit
}

TEST(Plb, ControllerChainShortening)
{
    // With a PLB, repeated accesses to the same region should run
    // fewer ORAM accesses per LLC miss than the full chain.
    auto run = [](std::size_t plb_entries) {
        core::ControllerParams p;
        p.oram.leafLevel = 6;
        p.oram.payloadBytes = 0;
        p.oram.seed = 31;
        p.labelQueueSize = 8;
        p.recursionDepth = 2;
        p.plbEntries = plb_entries;
        EventQueue eq;
        dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
        core::OramController ctrl(p, eq, dram);
        Rng rng(7);
        for (int i = 0; i < 300; ++i) {
            // A tight region: PLB groups overlap heavily.
            ctrl.request(oram::Op::read, rng.uniformInt(64), {},
                         [](Tick, const auto &) {});
            eq.run();
        }
        return ctrl.realAccesses();
    };
    auto without = run(0);
    auto with = run(256);
    EXPECT_LT(with, without);
    EXPECT_LT(with, without * 3 / 4);
}

// --- background eviction -------------------------------------------------

TEST(BackgroundEviction, DrainsOverfullStash)
{
    core::ControllerParams p;
    p.oram.leafLevel = 7;
    p.oram.payloadBytes = 0;
    p.oram.seed = 41;
    p.oram.stashCapacity = 30; // tiny soft capacity
    p.labelQueueSize = 8;
    p.backgroundEviction = true;
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(p, eq, dram);
    Rng rng(13);
    for (int i = 0; i < 400; ++i) {
        ctrl.request(oram::Op::write, rng.uniformInt(300), {},
                     [](Tick, const auto &) {});
        eq.run();
    }
    // The run ends quiescent: pressure-driven dummies must have
    // brought the stash back under its soft capacity.
    EXPECT_LT(ctrl.stash().size(), 30u);
}

TEST(BackgroundEviction, DisabledLeavesStashAlone)
{
    core::ControllerParams p;
    p.oram.leafLevel = 7;
    p.oram.payloadBytes = 0;
    p.oram.seed = 41;
    p.oram.stashCapacity = 1; // pressure would always be on
    p.labelQueueSize = 8;
    p.backgroundEviction = false;
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(p, eq, dram);
    ctrl.request(oram::Op::write, 1, {}, [](Tick, const auto &) {});
    eq.run();
    // Without background eviction the controller parks even though
    // the stash exceeds its (absurd) soft capacity; the event queue
    // must still drain rather than spin dummies forever.
    EXPECT_TRUE(eq.empty());
}

// --- trace I/O ------------------------------------------------------------

TEST(TraceIo, ParseBasics)
{
    std::istringstream in("# comment\n"
                          "r 10\n"
                          "w 0x20\n"
                          "\n"
                          "R 30 # trailing comment\n");
    auto trace = workload::readTrace(in);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_FALSE(trace[0].isWrite);
    EXPECT_EQ(trace[0].addr, 10u);
    EXPECT_TRUE(trace[1].isWrite);
    EXPECT_EQ(trace[1].addr, 0x20u);
    EXPECT_FALSE(trace[2].isWrite);
    EXPECT_EQ(trace[2].addr, 30u);
}

TEST(TraceIo, RoundTrip)
{
    std::vector<workload::MemRequest> trace;
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        trace.push_back({rng.uniformInt(1 << 20), rng.chance(0.5)});
    std::ostringstream out;
    workload::writeTrace(out, trace);
    std::istringstream in(out.str());
    auto back = workload::readTrace(in);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back[i].addr, trace[i].addr);
        EXPECT_EQ(back[i].isWrite, trace[i].isWrite);
    }
}

TEST(TraceIo, FileRoundTrip)
{
    std::vector<workload::MemRequest> trace = {{1, false},
                                               {2, true},
                                               {3, false}};
    std::string path = "/tmp/fp_test_trace.txt";
    workload::saveTrace(path, trace);
    auto back = workload::loadTrace(path);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_TRUE(back[1].isWrite);
}

TEST(TraceIo, StreamCycles)
{
    workload::TraceStream stream({{5, false}, {6, true}});
    EXPECT_EQ(stream.next().addr, 5u);
    EXPECT_EQ(stream.next().addr, 6u);
    EXPECT_EQ(stream.next().addr, 5u); // wraps
}

} // anonymous namespace
} // namespace fp
