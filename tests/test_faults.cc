/**
 * @file
 * Tests of the resilience stack at the memory-backend seam:
 * mem::FaultInjector (deterministic seeded fault model) and
 * mem::ResilientBackend (deadline timers, exponential backoff
 * retries, dedup of late completions, escalation), plus the
 * end-to-end behaviour of the stack under SyncOram and the
 * full-system harness on both backends.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "mem/fault_injector.hh"
#include "mem/resilient_backend.hh"
#include "sim/runner.hh"
#include "sim/sim_config.hh"
#include "sim/sync_oram.hh"
#include "util/event_queue.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace fp
{
namespace
{

/**
 * A scriptable inner backend: records every request it is handed and
 * lets the test deliver completions/errors itself (via the event
 * queue, honouring the no-re-entrant-completion contract). Default
 * behaviour completes every request after a fixed latency.
 */
class ScriptedBackend final : public mem::MemoryBackend
{
  public:
    enum class Mode
    {
        complete,  //!< complete after `latency`
        error,     //!< fail (onError) after `latency`
        blackHole, //!< swallow: neither callback ever fires
        manual,    //!< record only; the test delivers by hand
    };

    ScriptedBackend(EventQueue &eq, Tick latency = 1000,
                    Mode mode = Mode::complete)
        : eq_(eq), latency_(latency), mode_(mode)
    {
    }

    void
    access(mem::BackendRequest req) override
    {
        issued.push_back(
            {req.addr, req.isWrite, req.bytes, eq_.now()});
        switch (mode_) {
        case Mode::complete:
            ++inFlight_;
            eq_.scheduleIn(latency_,
                           [this, cb = std::move(req.onComplete)] {
                               --inFlight_;
                               if (cb)
                                   cb(eq_.now());
                           });
            break;
        case Mode::error:
            ++inFlight_;
            eq_.scheduleIn(latency_,
                           [this, cb = std::move(req.onError)] {
                               --inFlight_;
                               if (cb)
                                   cb(eq_.now());
                           });
            break;
        case Mode::blackHole:
            break;
        case Mode::manual:
            pending.push_back(std::move(req));
            break;
        }
    }

    bool idle() const override
    {
        return inFlight_ == 0 && pending.empty();
    }
    std::size_t queueDepth() const override
    {
        return inFlight_ + pending.size();
    }
    mem::BackendStats statsSnapshot() const override { return {}; }
    void setTracer(obs::Tracer *) override {}
    void resetStats() override {}
    std::uint64_t burstBytes() const override { return 64; }
    std::uint64_t rowBytes() const override { return 8192; }
    const char *kind() const override { return "scripted"; }

    struct Issued
    {
        Addr addr;
        bool isWrite;
        std::uint64_t bytes;
        Tick at;
    };
    std::vector<Issued> issued;
    /** Mode::manual: requests awaiting hand delivery. */
    std::vector<mem::BackendRequest> pending;

  private:
    EventQueue &eq_;
    Tick latency_;
    Mode mode_;
    std::size_t inFlight_ = 0;
};

mem::BackendRequest
makeReq(Addr addr, int *completions = nullptr, int *errors = nullptr)
{
    mem::BackendRequest r;
    r.addr = addr;
    r.bytes = 64;
    if (completions)
        r.onComplete = [completions](Tick) { ++*completions; };
    if (errors)
        r.onError = [errors](Tick) { ++*errors; };
    return r;
}

// --- FaultInjector --------------------------------------------------------

/** Drive N requests through an injector; returns which were dropped
 *  (loss), errored, or forwarded, as a decision string. */
std::string
decisionString(const mem::FaultParams &fp, int n)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 10);
    mem::FaultInjector inj(fp, eq, inner);
    std::string decisions;
    std::uint64_t loss_before = 0, err_before = 0, spike_before = 0;
    for (int i = 0; i < n; ++i) {
        inj.access(makeReq(static_cast<Addr>(i) * 64));
        if (inj.lossInjected() > loss_before)
            decisions += 'L';
        else if (inj.errorInjected() > err_before)
            decisions += 'E';
        else if (inj.spikeInjected() > spike_before)
            decisions += 'S';
        else
            decisions += '.';
        loss_before = inj.lossInjected();
        err_before = inj.errorInjected();
        spike_before = inj.spikeInjected();
        eq.run();
    }
    return decisions;
}

TEST(FaultInjector, DecisionStreamIsDeterministic)
{
    mem::FaultParams fp;
    fp.lossRate = 0.1;
    fp.errorRate = 0.05;
    fp.spikeRate = 0.05;
    fp.seed = 42;

    const std::string a = decisionString(fp, 400);
    const std::string b = decisionString(fp, 400);
    EXPECT_EQ(a, b);
    // All three fault classes actually occurred at these rates.
    EXPECT_NE(a.find('L'), std::string::npos);
    EXPECT_NE(a.find('E'), std::string::npos);
    EXPECT_NE(a.find('S'), std::string::npos);

    // A different seed gives a different stream.
    mem::FaultParams fp2 = fp;
    fp2.seed = 43;
    EXPECT_NE(decisionString(fp2, 400), a);
}

TEST(FaultInjector, DecisionStreamIndependentOfEnabledClasses)
{
    // Four draws are consumed per request whether or not each class
    // is on, so turning error injection OFF must not re-shuffle which
    // requests get lost.
    mem::FaultParams both;
    both.lossRate = 0.1;
    both.errorRate = 0.2;
    both.seed = 7;
    mem::FaultParams loss_only = both;
    loss_only.errorRate = 0.0;

    std::string with_errors = decisionString(both, 300);
    std::string without = decisionString(loss_only, 300);
    ASSERT_EQ(with_errors.size(), without.size());
    for (std::size_t i = 0; i < with_errors.size(); ++i) {
        if (with_errors[i] == 'L') {
            EXPECT_EQ(without[i], 'L') << "request " << i;
        } else if (with_errors[i] == '.') {
            EXPECT_EQ(without[i], '.') << "request " << i;
        } else if (with_errors[i] == 'E') {
            // 'E' positions become forwards when errors are off.
            EXPECT_EQ(without[i], '.') << "request " << i;
        }
    }
}

TEST(FaultInjector, LossRateMatchesExpectation)
{
    mem::FaultParams fp;
    fp.lossRate = 0.25;
    fp.seed = 9;
    EventQueue eq;
    ScriptedBackend inner(eq, 10);
    mem::FaultInjector inj(fp, eq, inner);
    const int n = 4000;
    int completions = 0;
    for (int i = 0; i < n; ++i)
        inj.access(makeReq(static_cast<Addr>(i) * 64, &completions));
    eq.run();
    const double observed =
        static_cast<double>(inj.lossInjected()) / n;
    EXPECT_NEAR(observed, 0.25, 0.03);
    EXPECT_EQ(completions,
              n - static_cast<int>(inj.lossInjected()));
    EXPECT_EQ(inj.forwarded() + inj.lossInjected(),
              static_cast<std::uint64_t>(n));
}

TEST(FaultInjector, SpikeDelaysCompletionButStillDelivers)
{
    mem::FaultParams fp;
    fp.spikeRate = 1.0; // every request spikes
    fp.spikeUs = 100.0;
    fp.spikeJitterUs = 0.0;
    EventQueue eq;
    ScriptedBackend inner(eq, 1000);
    mem::FaultInjector inj(fp, eq, inner);
    Tick done_at = 0;
    auto req = makeReq(0);
    req.onComplete = [&](Tick t) { done_at = t; };
    inj.access(std::move(req));
    eq.run();
    // Inner latency 1000 ticks + 100 us spike, no jitter.
    EXPECT_EQ(done_at, 1000u + 100'000'000u);
    EXPECT_EQ(inj.spikeInjected(), 1u);
    EXPECT_TRUE(inj.idle());
}

TEST(FaultInjector, ErrorAnswersOnErrorChannel)
{
    mem::FaultParams fp;
    fp.errorRate = 1.0;
    fp.errorLatencyUs = 5.0;
    EventQueue eq;
    ScriptedBackend inner(eq, 10);
    mem::FaultInjector inj(fp, eq, inner);
    int completions = 0, errors = 0;
    Tick err_at = 0;
    auto req = makeReq(0, &completions);
    req.onError = [&](Tick t) {
        ++errors;
        err_at = t;
    };
    inj.access(std::move(req));
    EXPECT_FALSE(inj.idle()); // error answer still owed
    eq.run();
    EXPECT_EQ(completions, 0);
    EXPECT_EQ(errors, 1);
    EXPECT_EQ(err_at, 5'000'000u);
    // The store never saw the request.
    EXPECT_TRUE(inner.issued.empty());
    EXPECT_TRUE(inj.idle());
}

TEST(FaultInjector, OutageWindowTiming)
{
    mem::FaultParams fp;
    fp.outageStartUs = 10.0; // [10us, 20us)
    fp.outageEndUs = 20.0;
    EventQueue eq;
    ScriptedBackend inner(eq, 1);
    mem::FaultInjector inj(fp, eq, inner);
    ASSERT_TRUE(fp.hasOutage());
    ASSERT_TRUE(fp.enabled());

    const Tick us = 1'000'000;
    int completions = 0;
    auto issue_at = [&](Tick t) {
        eq.schedule(t, [&inj, &completions, t] {
            mem::BackendRequest r;
            r.addr = t;
            r.bytes = 64;
            r.onComplete = [&completions](Tick) { ++completions; };
            inj.access(std::move(r));
        });
    };
    issue_at(9 * us);      // before: forwarded
    issue_at(10 * us);     // boundary t0: dropped (closed start)
    issue_at(15 * us);     // inside: dropped
    issue_at(20 * us - 1); // last outage tick: dropped
    issue_at(20 * us);     // boundary t1: forwarded (open end)
    issue_at(25 * us);     // after: forwarded
    eq.run();

    EXPECT_EQ(inj.outageDropped(), 3u);
    EXPECT_EQ(inj.forwarded(), 3u);
    EXPECT_EQ(completions, 3);
    EXPECT_FALSE(inj.inOutage(9 * us));
    EXPECT_TRUE(inj.inOutage(10 * us));
    EXPECT_TRUE(inj.inOutage(20 * us - 1));
    EXPECT_FALSE(inj.inOutage(20 * us));
}

// --- ResilientBackend -----------------------------------------------------

TEST(ResilientBackend, PassThroughWhenInnerHealthy)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 1000);
    mem::RetryParams rp;
    rp.timeoutUs = 100.0;
    mem::ResilientBackend res(rp, eq, inner);
    int completions = 0;
    for (int i = 0; i < 10; ++i)
        res.access(makeReq(static_cast<Addr>(i) * 64, &completions));
    eq.run();
    EXPECT_EQ(completions, 10);
    EXPECT_EQ(res.requests(), 10u);
    EXPECT_EQ(res.retries(), 0u);
    EXPECT_EQ(res.timeouts(), 0u);
    EXPECT_EQ(res.maxAttempts(), 1u);
    EXPECT_TRUE(res.idle());
    EXPECT_TRUE(eq.empty()); // no timer debris left behind
}

TEST(ResilientBackend, RecoversLostRequestByTimeoutRetry)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 1000, ScriptedBackend::Mode::manual);
    mem::RetryParams rp;
    rp.timeoutUs = 50.0;
    rp.backoffBaseUs = 10.0;
    rp.backoffJitter = 0.0;
    mem::ResilientBackend res(rp, eq, inner);
    int completions = 0;
    res.access(makeReq(0x40, &completions));

    // First attempt vanishes (never delivered). The deadline fires at
    // 50us, backoff 10us, re-issue at 60us.
    eq.run(49'999'999);
    ASSERT_EQ(inner.issued.size(), 1u);
    eq.run(60'000'000);
    ASSERT_EQ(inner.issued.size(), 2u);
    EXPECT_EQ(inner.issued[1].at, 60'000'000u);
    EXPECT_EQ(inner.issued[1].addr, 0x40u);
    EXPECT_EQ(inner.issued[1].bytes, 64u); // byte-identical re-issue

    // Deliver the second attempt.
    auto cb = std::move(inner.pending[1].onComplete);
    inner.pending.clear();
    eq.scheduleIn(1000, [&cb, &eq] { cb(eq.now()); });
    eq.run();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(res.timeouts(), 1u);
    EXPECT_EQ(res.retries(), 1u);
    EXPECT_EQ(res.maxAttempts(), 2u);
    EXPECT_TRUE(res.idle());
}

TEST(ResilientBackend, BackoffScheduleIsExponentialAndCapped)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 1000, ScriptedBackend::Mode::error);
    mem::RetryParams rp;
    rp.timeoutUs = 1000.0; // errors come back at 1000 ticks << this
    rp.maxRetries = 6;
    rp.backoffBaseUs = 10.0;
    rp.backoffCapUs = 50.0;
    rp.backoffJitter = 0.0; // exact schedule
    mem::ResilientBackend res(rp, eq, inner);
    int errors = 0;
    res.access(makeReq(0, nullptr, &errors));
    eq.run();

    // 7 attempts total; every attempt errors 1000 ticks after issue,
    // then waits min(50, 10*2^(k-1)) us: 10, 20, 40, 50, 50, 50.
    ASSERT_EQ(inner.issued.size(), 7u);
    const double us = 1e6;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < inner.issued.size(); ++i) {
        gaps.push_back(
            static_cast<double>(inner.issued[i].at -
                                inner.issued[i - 1].at) /
                us -
            1000.0 / us); // subtract the error turnaround
    }
    const std::vector<double> expect = {10, 20, 40, 50, 50, 50};
    ASSERT_EQ(gaps.size(), expect.size());
    for (std::size_t i = 0; i < gaps.size(); ++i)
        EXPECT_DOUBLE_EQ(gaps[i], expect[i]) << "retry " << i + 1;

    EXPECT_EQ(errors, 1); // escalated exactly once, to the caller
    EXPECT_EQ(res.exhausted(), 1u);
    EXPECT_EQ(res.errors(), 7u);
    EXPECT_EQ(res.maxAttempts(), 7u);
    EXPECT_TRUE(res.idle());
}

TEST(ResilientBackend, BackoffJitterStaysInBand)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 100, ScriptedBackend::Mode::error);
    mem::RetryParams rp;
    rp.timeoutUs = 1000.0;
    rp.maxRetries = 20;
    rp.backoffBaseUs = 10.0;
    rp.backoffCapUs = 10.0; // flat base, isolates the jitter term
    rp.backoffJitter = 0.5;
    mem::ResilientBackend res(rp, eq, inner);
    int errors = 0;
    res.access(makeReq(0, nullptr, &errors));
    eq.run();
    ASSERT_EQ(inner.issued.size(), 21u);
    EXPECT_EQ(errors, 1);

    // Every backoff is flat-10us scaled by (1 + 0.5*u), u in [0,1):
    // gaps (minus the 100-tick error turnaround) live in [10, 15) us
    // and actually vary (the jitter draw is live).
    std::vector<double> gaps;
    for (std::size_t i = 1; i < inner.issued.size(); ++i)
        gaps.push_back(static_cast<double>(inner.issued[i].at -
                                           inner.issued[i - 1].at -
                                           100) /
                       1e6);
    for (double g : gaps) {
        EXPECT_GE(g, 10.0);
        EXPECT_LT(g, 15.0);
    }
    EXPECT_GT(*std::max_element(gaps.begin(), gaps.end()),
              *std::min_element(gaps.begin(), gaps.end()));
}

TEST(ResilientBackend, DedupsLateCompletionRacingRetry)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 0, ScriptedBackend::Mode::manual);
    mem::RetryParams rp;
    rp.timeoutUs = 50.0;
    rp.backoffBaseUs = 10.0;
    rp.backoffJitter = 0.0;
    mem::ResilientBackend res(rp, eq, inner);
    int completions = 0;
    res.access(makeReq(0x80, &completions));
    ASSERT_EQ(inner.pending.size(), 1u);
    auto first = std::move(inner.pending[0].onComplete);
    inner.pending.clear();

    // Let the deadline fire (50us) and the retry issue (60us); the
    // first attempt was slow, not lost: it completes at 70us, BEFORE
    // the second attempt's completion at 80us.
    eq.schedule(70'000'000, [&first, &eq] { first(eq.now()); });
    eq.run(65'000'000);
    ASSERT_EQ(inner.pending.size(), 1u); // the retry, in flight
    auto second = std::move(inner.pending[0].onComplete);
    inner.pending.clear();
    eq.schedule(80'000'000, [&second, &eq] { second(eq.now()); });
    eq.run();

    // Exactly one completion surfaced: the late first attempt won,
    // the retry's completion was deduplicated.
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(res.lateWins(), 1u);
    EXPECT_EQ(res.dedupDropped(), 1u);
    EXPECT_EQ(res.timeouts(), 1u);
    EXPECT_TRUE(res.idle());
}

TEST(ResilientBackend, ExhaustionWithoutErrorSinkIsRecoverableFailure)
{
    EventQueue eq;
    ScriptedBackend inner(eq, 0, ScriptedBackend::Mode::blackHole);
    mem::RetryParams rp;
    rp.timeoutUs = 10.0;
    rp.maxRetries = 0; // fail fast
    mem::ResilientBackend res(rp, eq, inner);
    int completions = 0;
    res.access(makeReq(0, &completions));
    ScopedRecoverableFailures recover;
    EXPECT_THROW(eq.run(), SimFailure);
    EXPECT_EQ(completions, 0);
    EXPECT_EQ(res.exhausted(), 1u);
}

// --- stacked: injector under resilient layer ------------------------------

TEST(ResilienceStack, LossyStoreDeliversEveryRequestExactlyOnce)
{
    EventQueue eq;
    ScriptedBackend store(eq, 1000);
    mem::FaultParams fp;
    fp.lossRate = 0.2;
    fp.errorRate = 0.05;
    fp.seed = 1234;
    mem::FaultInjector inj(fp, eq, store);
    mem::RetryParams rp;
    rp.timeoutUs = 10.0;
    rp.maxRetries = 50; // loss^51: escalation impossible in practice
    rp.backoffBaseUs = 1.0;
    mem::ResilientBackend res(rp, eq, inj);

    const int n = 500;
    int completions = 0;
    for (int i = 0; i < n; ++i)
        res.access(makeReq(static_cast<Addr>(i) * 64, &completions));
    eq.run();

    EXPECT_EQ(completions, n); // exactly once each, zero lost
    EXPECT_EQ(res.exhausted(), 0u);
    EXPECT_GT(res.retries(), 0u);
    EXPECT_GT(res.timeouts(), 0u);
    EXPECT_EQ(res.retries(),
              inj.lossInjected() + inj.errorInjected());
    EXPECT_TRUE(res.idle());
    EXPECT_TRUE(inj.idle());
}

// --- SyncOram: obliviousness under retry ----------------------------------

core::ControllerParams
smallController()
{
    auto params = core::ControllerParams::forkPath();
    params.oram.leafLevel = 8;
    params.oram.payloadBytes = 16;
    params.oram.seed = 77;
    params.labelQueueSize = 8;
    // Minimal on-chip cache band: at this tree size the default 1 MiB
    // budget absorbs nearly every bucket, starving the backend (and
    // the injector under test) of traffic.
    params.cacheBudgetBytes = 4 << 10;
    return params;
}

mem::NetBackendParams
fastNet()
{
    mem::NetBackendParams net;
    net.oneWayLatencyUs = 2.0;
    net.linkGbps = 40.0;
    net.window = 8;
    return net;
}

TEST(ResilienceStack, SyncOramStreamIdenticalUnderFaults)
{
    // Closed-loop traffic: the controller's issued request stream is
    // a pure function of the request sequence and its seeds, so the
    // fingerprint above the resilience stack must be bit-identical
    // between a fault-free run and a heavily faulted one.
    auto drive = [](sim::SyncOram &oram) {
        std::vector<std::uint8_t> v(16, 0x5a);
        for (BlockAddr a = 0; a < 24; ++a)
            oram.write(a, v);
        for (BlockAddr a = 0; a < 24; ++a)
            EXPECT_EQ(oram.read(a), v);
        return oram.controller().reqStreamFingerprint();
    };

    sim::SyncOram clean(smallController(), fastNet());
    const std::uint64_t clean_fp = drive(clean);
    EXPECT_NE(clean_fp, 0u);

    mem::FaultParams fp;
    fp.lossRate = 0.05;
    fp.errorRate = 0.02;
    fp.spikeRate = 0.02;
    fp.spikeUs = 30.0;
    fp.seed = 99;
    mem::RetryParams rp;
    rp.timeoutUs = 200.0;
    rp.maxRetries = 10;
    sim::SyncOram faulty(smallController(), fastNet(), fp, rp);
    ASSERT_NE(faulty.faultInjector(), nullptr);
    ASSERT_NE(faulty.resilientBackend(), nullptr);
    const std::uint64_t faulty_fp = drive(faulty);

    // Faults really happened, every request was recovered, and the
    // stream the controller emitted is unchanged.
    EXPECT_GT(faulty.faultInjector()->lossInjected(), 0u);
    EXPECT_GT(faulty.resilientBackend()->retries(), 0u);
    EXPECT_EQ(faulty.resilientBackend()->exhausted(), 0u);
    EXPECT_EQ(faulty_fp, clean_fp);
    // The faulted run took longer in simulated time (timeouts,
    // backoff), proving the comparison is not vacuous.
    EXPECT_GT(faulty.now(), clean.now());
}

TEST(ResilienceStack, SyncOramDataIntactUnderFaults)
{
    mem::FaultParams fp;
    fp.lossRate = 0.1;
    fp.seed = 5;
    mem::RetryParams rp;
    rp.timeoutUs = 150.0;
    rp.maxRetries = 10;
    sim::SyncOram oram(smallController(), fastNet(), fp, rp);

    Rng rng(20260807);
    std::map<BlockAddr, std::vector<std::uint8_t>> shadow;
    for (int i = 0; i < 120; ++i) {
        BlockAddr addr = rng.uniformInt(48);
        if (shadow.empty() || rng.chance(0.5)) {
            std::vector<std::uint8_t> v(16);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng.uniformInt(256));
            oram.write(addr, v);
            shadow[addr] = std::move(v);
        } else if (shadow.count(addr)) {
            EXPECT_EQ(oram.read(addr), shadow[addr]);
        }
    }
    for (const auto &[addr, v] : shadow)
        EXPECT_EQ(oram.read(addr), v);
    EXPECT_GT(oram.faultInjector()->lossInjected(), 0u);
    EXPECT_EQ(oram.resilientBackend()->exhausted(), 0u);
}

// --- full-system ----------------------------------------------------------

sim::SimConfig
quickConfig()
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 150;
    cfg.controller.oram.leafLevel = 14;
    return sim::withMergeOnly(cfg, 64);
}

TEST(ResilienceSystem, ZeroLostUserRequestsOnBothBackends)
{
    for (sim::BackendKind kind :
         {sim::BackendKind::dram, sim::BackendKind::net}) {
        sim::SimConfig cfg = quickConfig();
        cfg.backendKind = kind;
        cfg.faults.lossRate = 0.01;
        cfg.retry.maxRetries = 5;

        sim::RunResult r = sim::runMix(cfg, "Mix3");
        SCOPED_TRACE(kind == sim::BackendKind::dram ? "dram" : "net");
        EXPECT_FALSE(r.failed) << r.failureMessage;
        EXPECT_FALSE(r.hitTickLimit);
        // Every core retired its full budget: no user request lost.
        EXPECT_EQ(r.llcRequests, 4u * 150u);
        EXPECT_TRUE(r.faultsEnabled);
        EXPECT_TRUE(r.retryEnabled);
        EXPECT_GT(r.faultLossInjected, 0u);
        EXPECT_EQ(r.retryAttempts, r.faultLossInjected);
        EXPECT_EQ(r.retryTimeouts, r.faultLossInjected);
        EXPECT_EQ(r.retryExhausted, 0u);
        EXPECT_GE(r.retryMaxAttempts, 2u);
    }
}

TEST(ResilienceSystem, NetStreamIdenticalToFaultFreeRun)
{
    // On the window-bounded net store the controller's issued stream
    // is insensitive to the completion-time shifts retries introduce
    // (the label queue stays saturated), so the fingerprint must
    // match the fault-free run exactly. (The DRAM backend's stream is
    // timing-sensitive at 4 cores; docs/ROBUSTNESS.md discusses why
    // that is a scheduling property, not an information leak.)
    sim::SimConfig clean = quickConfig();
    clean.backendKind = sim::BackendKind::net;
    sim::RunResult r0 = sim::runMix(clean, "Mix3");
    ASSERT_FALSE(r0.faultsEnabled);

    sim::SimConfig faulty = clean;
    faulty.faults.lossRate = 0.01;
    faulty.retry.maxRetries = 5;
    sim::RunResult r1 = sim::runMix(faulty, "Mix3");
    EXPECT_FALSE(r1.failed) << r1.failureMessage;
    EXPECT_GT(r1.faultLossInjected, 0u);
    EXPECT_EQ(r1.reqStreamFingerprint, r0.reqStreamFingerprint);
    EXPECT_NE(r1.reqStreamFingerprint, 0u);
}

TEST(ResilienceSystem, RunsAreDeterministic)
{
    sim::SimConfig cfg = quickConfig();
    cfg.backendKind = sim::BackendKind::net;
    cfg.faults.lossRate = 0.02;
    cfg.faults.spikeRate = 0.01;
    cfg.retry.maxRetries = 8;
    sim::RunResult a = sim::runMix(cfg, "Mix3");
    sim::RunResult b = sim::runMix(cfg, "Mix3");
    EXPECT_EQ(sim::toJson(a), sim::toJson(b));
    EXPECT_EQ(a.faultLossInjected, b.faultLossInjected);
    EXPECT_EQ(a.executionTicks, b.executionTicks);
}

TEST(ResilienceSystem, ExhaustedRetriesDegradeToFailedResult)
{
    // An outage longer than the whole retry schedule with a zero
    // retry budget: the first lost request escalates, and the run
    // must end in a captured recoverable failure, not a crash.
    sim::SimConfig cfg = quickConfig();
    cfg.faults.outageStartUs = 0.0;
    cfg.faults.outageEndUs = 1e9; // forever, effectively
    cfg.retry.maxRetries = 0;
    cfg.retry.timeoutUs = 20.0;

    sim::RunResult r = sim::runMix(cfg, "Mix3");
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.failureMessage.find("attempts"), std::string::npos)
        << r.failureMessage;
    EXPECT_TRUE(r.faultsEnabled);
    EXPECT_GT(r.faultOutageDropped, 0u);
    EXPECT_EQ(r.retryExhausted, 1u);

    // The failure serialises into the JSON record.
    const std::string json = sim::toJson(r);
    EXPECT_NE(json.find("\"fault_run_failed\":true"),
              std::string::npos);
}

TEST(ResilienceSystem, FaultFreeJsonCarriesNoFaultFields)
{
    sim::SimConfig cfg = quickConfig();
    ASSERT_FALSE(cfg.faults.enabled());
    sim::RunResult r = sim::runMix(cfg, "Mix3");
    const std::string json = sim::toJson(r);
    EXPECT_EQ(json.find("fault_"), std::string::npos);
    EXPECT_EQ(json.find("retry_"), std::string::npos);

    sim::SimConfig faulty = cfg;
    faulty.faults.lossRate = 0.01;
    const std::string fjson = sim::toJson(sim::runMix(faulty, "Mix3"));
    EXPECT_NE(fjson.find("\"fault_loss_injected\""),
              std::string::npos);
    EXPECT_NE(fjson.find("\"retry_attempts\""), std::string::npos);
    EXPECT_NE(fjson.find("\"fault_stream_fingerprint\""),
              std::string::npos);
}

} // anonymous namespace
} // namespace fp
