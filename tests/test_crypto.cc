/**
 * @file
 * Tests of the crypto substrate: SPECK-64/128 block cipher and the
 * counter-mode probabilistic encryption layer.
 */

#include <gtest/gtest.h>

#include <set>

#include "crypto/counter_mode.hh"
#include "crypto/speck.hh"

namespace fp::crypto
{
namespace
{

TEST(Speck, RoundTrip)
{
    Speck64 cipher(std::uint64_t{0xdeadbeef});
    for (std::uint64_t p :
         {0ULL, 1ULL, 0xffffffffffffffffULL, 0x0123456789abcdefULL}) {
        EXPECT_EQ(cipher.decryptBlock(cipher.encryptBlock(p)), p);
    }
}

TEST(Speck, RoundTripMany)
{
    Speck64 cipher(std::uint64_t{7});
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        EXPECT_EQ(cipher.decryptBlock(cipher.encryptBlock(x)), x);
    }
}

TEST(Speck, DifferentKeysDifferentCiphertexts)
{
    Speck64 a(std::uint64_t{1}), b(std::uint64_t{2});
    int same = 0;
    for (std::uint64_t p = 0; p < 64; ++p)
        same += a.encryptBlock(p) == b.encryptBlock(p);
    EXPECT_EQ(same, 0);
}

TEST(Speck, NotIdentity)
{
    Speck64 cipher(std::uint64_t{3});
    int fixed = 0;
    for (std::uint64_t p = 0; p < 256; ++p)
        fixed += cipher.encryptBlock(p) == p;
    EXPECT_EQ(fixed, 0);
}

TEST(Speck, AvalancheOnPlaintextBitFlip)
{
    Speck64 cipher(std::uint64_t{11});
    std::uint64_t base = cipher.encryptBlock(0x1234);
    std::uint64_t flip = cipher.encryptBlock(0x1235);
    int diff = __builtin_popcountll(base ^ flip);
    // A healthy cipher flips roughly half the 64 output bits.
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
}

TEST(CounterMode, RoundTrip)
{
    CounterModeCipher cm(99);
    std::vector<std::uint8_t> plain(64);
    for (std::size_t i = 0; i < plain.size(); ++i)
        plain[i] = static_cast<std::uint8_t>(i * 7);
    SealedBlock sealed = cm.encrypt(plain, 42);
    EXPECT_EQ(cm.decrypt(sealed), plain);
}

TEST(CounterMode, OddSizes)
{
    CounterModeCipher cm(5);
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 65u}) {
        std::vector<std::uint8_t> plain(n, 0xAB);
        EXPECT_EQ(cm.decrypt(cm.encrypt(plain, n)), plain);
    }
}

TEST(CounterMode, ProbabilisticEncryption)
{
    // The Path ORAM requirement: the same plaintext written to the
    // same location twice must yield different ciphertexts.
    CounterModeCipher cm(123);
    std::vector<std::uint8_t> plain(64, 0);
    SealedBlock first = cm.encrypt(plain, 7);
    SealedBlock second = cm.encrypt(plain, 7);
    EXPECT_NE(first.bytes, second.bytes);
    EXPECT_NE(first.counter, second.counter);
    EXPECT_EQ(cm.decrypt(first), plain);
    EXPECT_EQ(cm.decrypt(second), plain);
}

TEST(CounterMode, DummyIndistinguishableShape)
{
    // Dummy and data blocks must have equal-size ciphertexts.
    CounterModeCipher cm(1);
    std::vector<std::uint8_t> data(64, 0x5A);
    std::vector<std::uint8_t> dummy(64, 0x00);
    EXPECT_EQ(cm.encrypt(data, 1).bytes.size(),
              cm.encrypt(dummy, 2).bytes.size());
}

TEST(CounterMode, CiphertextsLookRandomish)
{
    CounterModeCipher cm(77);
    std::vector<std::uint8_t> plain(64, 0);
    std::set<std::vector<std::uint8_t>> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(cm.encrypt(plain, 3).bytes);
    EXPECT_EQ(seen.size(), 100u);
}

TEST(CounterMode, CounterAdvances)
{
    CounterModeCipher cm(8);
    std::vector<std::uint8_t> plain(8, 1);
    auto before = cm.encryptionCount();
    cm.encrypt(plain, 0);
    cm.encrypt(plain, 0);
    EXPECT_EQ(cm.encryptionCount(), before + 2);
}

} // anonymous namespace
} // namespace fp::crypto
