/**
 * @file
 * Randomized mirror-model fuzz tests: each component is driven with
 * long random operation sequences and checked step-by-step against a
 * trivially-correct reference model (or its own declared invariants).
 * These catch state-machine corner cases the directed tests miss.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/address_queue.hh"
#include "core/label_queue.hh"
#include "core/merging_cache.hh"
#include "mem/tree_store.hh"
#include "util/random.hh"

namespace fp
{
namespace
{

// --- merging cache vs a mirror map ------------------------------------------

TEST(FuzzMergingCache, MirrorsReferenceMap)
{
    mem::TreeGeometry geo(16);
    core::MergingCacheParams params;
    params.m1 = 3;
    params.budgetBytes = 64 << 10; // 256 frames
    core::MergingAwareCache cache(geo, params);

    // Reference: bucket index -> block addrs it holds. Pre-warmed
    // full levels start as known-empty buckets; the last (partial)
    // level is cold, mirroring the cache's allocation walk.
    std::map<BucketIndex, std::multiset<BlockAddr>> mirror;
    std::uint64_t frames_left =
        params.budgetBytes / params.bucketBytes;
    for (unsigned lvl = cache.m1(); lvl <= cache.m2(); ++lvl) {
        std::uint64_t full = std::uint64_t{1} << lvl;
        if (frames_left < full)
            break; // partial level is cold
        frames_left -= full;
        for (std::uint64_t y = 0; y < full; ++y)
            mirror[((std::uint64_t{1} << lvl) - 1) + y] = {};
    }

    Rng rng(404);
    auto random_idx = [&] {
        unsigned lvl =
            cache.m1() +
            static_cast<unsigned>(
                rng.uniformInt(cache.m2() - cache.m1() + 1));
        std::uint64_t y =
            rng.uniformInt(std::uint64_t{1} << lvl);
        return ((std::uint64_t{1} << lvl) - 1) + y;
    };

    for (int op = 0; op < 20000; ++op) {
        BucketIndex idx = random_idx();
        double dice = rng.uniformDouble();
        if (dice < 0.5) {
            // Insert a bucket with 0-2 blocks.
            mem::Bucket b(4);
            std::multiset<BlockAddr> addrs;
            for (unsigned k = 0; k < rng.uniformInt(3); ++k) {
                BlockAddr a = rng.uniformInt(1000);
                b.add(mem::Block(a, 0));
                addrs.insert(a);
            }
            auto victim = cache.insert(idx, std::move(b));
            if (victim) {
                auto it = mirror.find(victim->idx);
                ASSERT_NE(it, mirror.end())
                    << "evicted a bucket the mirror never saw";
                std::multiset<BlockAddr> vaddrs;
                for (const auto &blk : victim->bucket.blocks())
                    vaddrs.insert(blk.addr);
                EXPECT_EQ(vaddrs, it->second);
                mirror.erase(it);
            }
            mirror[idx] = addrs;
        } else if (dice < 0.8) {
            auto got = cache.extract(idx);
            auto it = mirror.find(idx);
            if (it == mirror.end()) {
                EXPECT_FALSE(got.has_value()) << "phantom hit";
            } else {
                ASSERT_TRUE(got.has_value()) << "lost bucket";
                std::multiset<BlockAddr> gaddrs;
                for (const auto &blk : got->blocks())
                    gaddrs.insert(blk.addr);
                EXPECT_EQ(gaddrs, it->second);
                mirror.erase(it);
            }
        } else {
            BlockAddr a = rng.uniformInt(1000);
            auto got = cache.extractBlock(idx, a);
            auto it = mirror.find(idx);
            bool expect =
                it != mirror.end() && it->second.count(a) > 0;
            EXPECT_EQ(got.has_value(), expect);
            if (got)
                it->second.erase(it->second.find(a));
        }
    }
}

// --- encrypted tree store vs plain store -------------------------------------

TEST(FuzzTreeStore, EncryptedMatchesPlain)
{
    mem::TreeGeometry geo(10);
    mem::TreeStore plain(geo, 4, 16, /*encrypt=*/false);
    mem::TreeStore sealed(geo, 4, 16, /*encrypt=*/true, 0xfeed);

    Rng rng(505);
    for (int op = 0; op < 3000; ++op) {
        BucketIndex idx = rng.uniformInt(geo.numBuckets());
        if (rng.chance(0.6)) {
            mem::Bucket b(4);
            unsigned n = static_cast<unsigned>(rng.uniformInt(5));
            std::set<BlockAddr> used;
            for (unsigned k = 0; k < n; ++k) {
                BlockAddr a = rng.uniformInt(10000);
                if (!used.insert(a).second)
                    continue;
                std::vector<std::uint8_t> payload(16);
                for (auto &byte : payload)
                    byte = static_cast<std::uint8_t>(rng());
                b.add(mem::Block(a, rng.uniformInt(geo.numLeaves()),
                                 payload));
            }
            plain.writeBucket(idx, b);
            sealed.writeBucket(idx, b);
        } else {
            mem::Bucket a = plain.readBucket(idx);
            mem::Bucket b = sealed.readBucket(idx);
            ASSERT_EQ(a.occupancy(), b.occupancy()) << idx;
            // Compare as sets (slot order may differ after sealing).
            std::map<BlockAddr,
                     std::pair<LeafLabel, std::vector<std::uint8_t>>>
                ma, mb;
            for (const auto &blk : a.blocks())
                ma[blk.addr] = {blk.leaf, blk.payload};
            for (const auto &blk : b.blocks())
                mb[blk.addr] = {blk.leaf, blk.payload};
            EXPECT_EQ(ma, mb) << idx;
        }
    }
}

// --- label queue invariants under random driving ------------------------------

TEST(FuzzLabelQueue, InvariantsHold)
{
    mem::TreeGeometry geo(12);
    core::LabelQueue q(geo, 16, 3,
                       core::DummySelectPolicy::compete, 606);
    Rng rng(707);
    std::set<std::uint64_t> live_tokens;
    std::uint64_t next_token = 1;
    std::uint64_t popped_reals = 0, pushed_reals = 0;

    for (int op = 0; op < 30000; ++op) {
        double dice = rng.uniformDouble();
        if (dice < 0.35) {
            bool overflow = rng.chance(0.1);
            std::uint64_t token = next_token++;
            if (q.insertReal(rng.uniformInt(geo.numLeaves()), token,
                             overflow)) {
                live_tokens.insert(token);
                ++pushed_reals;
            }
        } else if (dice < 0.55) {
            q.ensureFull();
            EXPECT_GE(q.size(), 16u);
        } else {
            auto sel = q.selectNext(rng.uniformInt(geo.numLeaves()));
            if (sel && !sel->dummy) {
                EXPECT_EQ(live_tokens.count(sel->token), 1u)
                    << "selected unknown/duplicate token";
                live_tokens.erase(sel->token);
                ++popped_reals;
            }
        }
        // Core invariant: tracked real count matches our bookkeeping.
        EXPECT_EQ(q.realCount(), live_tokens.size());
        EXPECT_EQ(q.realCount() + q.dummyCount(), q.size());
    }
    EXPECT_EQ(pushed_reals - popped_reals, live_tokens.size());
}

// --- address queue liveness under random driving -------------------------------

TEST(FuzzAddressQueue, EveryAcceptedRequestCompletes)
{
    core::AddressQueue q(12);
    Rng rng(808);
    std::uint64_t next_id = 1;
    std::set<std::uint64_t> completed;
    std::uint64_t accepted = 0, forwarded = 0, issued_done = 0;

    // Transitive completion, exactly like the controller's respond()
    // recursion: releasing a piggybacked read may unblock further
    // dependents of that read.
    std::function<void(std::uint64_t)> finish =
        [&](std::uint64_t id) {
            completed.insert(id);
            for (auto pid : q.complete(id, {9}))
                finish(pid);
        };

    for (int op = 0; op < 30000; ++op) {
        if (rng.chance(0.55) && !q.full()) {
            core::AddressEntry e;
            e.id = next_id++;
            e.addr = rng.uniformInt(6); // few addrs: dense hazards
            e.op = rng.chance(0.5) ? oram::Op::write
                                   : oram::Op::read;
            e.payload = {static_cast<std::uint8_t>(e.id)};
            auto res = q.insert(std::move(e));
            ASSERT_TRUE(res.accepted);
            ++accepted;
            if (res.forwarded)
                ++forwarded;
            if (res.cancelledId)
                finish(res.cancelledId);
        } else if (auto *e = q.nextIssuable()) {
            std::uint64_t id = e->id;
            q.markIssued(id);
            finish(id);
            ++issued_done;
        }
    }
    // Drain.
    while (auto *e = q.nextIssuable()) {
        std::uint64_t id = e->id;
        q.markIssued(id);
        finish(id);
    }
    EXPECT_EQ(q.size(), 0u)
        << "entries stranded in the address queue";
    // Everything accepted either forwarded instantly or completed.
    EXPECT_EQ(completed.size() + forwarded, accepted);
}

} // anonymous namespace
} // namespace fp
