/**
 * @file
 * Security-property tests for Fork Path ORAM, matching the paper's
 * Section 3.6 arguments:
 *
 *  - the revealed leaf-label sequence is uniform even under heavily
 *    skewed program access patterns;
 *  - the revealed access shape (labels + fork levels) is a
 *    deterministic function of public information and independent of
 *    the data values written;
 *  - the revealed overlap-degree distribution does not leak memory
 *    intensity (Figure 7), thanks to dummy padding;
 *  - path merging leaves the stash occupancy distribution unchanged
 *    w.r.t. traditional Path ORAM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "util/random.hh"
#include "util/stat_tests.hh"

namespace fp::core
{
namespace
{

struct Harness
{
    EventQueue eq;
    dram::DramSystem dram;
    OramController ctrl;

    explicit Harness(const ControllerParams &params)
        : dram(dram::DramParams::ddr3_1600(2), eq),
          ctrl(params, eq, dram)
    {
        ctrl.setRevealTraceEnabled(true);
    }

    void
    syncAccess(oram::Op op, BlockAddr addr,
               std::vector<std::uint8_t> data = {})
    {
        ctrl.request(op, addr, std::move(data),
                     [](Tick, const auto &) {});
        eq.run();
    }
};

ControllerParams
forkParams(unsigned leaf_level = 10)
{
    ControllerParams p;
    p.oram.leafLevel = leaf_level;
    p.oram.payloadBytes = 8;
    p.oram.seed = 9001;
    // Force a full ORAM access per request so the revealed trace has
    // statistical weight even for tiny, stash-resident working sets.
    p.oram.stashShortcut = false;
    p.policy = core::PolicyKind::forkpath;
    p.enableDummyReplacing = true;
    p.labelQueueSize = 8;
    return p;
}

double
chiSquareTopBits(const std::vector<RevealedAccess> &trace,
                 unsigned leaf_level, unsigned buckets_log2 = 4)
{
    std::vector<std::uint64_t> counts(1ULL << buckets_log2, 0);
    std::uint64_t n = 0;
    for (const auto &r : trace) {
        ++counts[r.label >> (leaf_level - buckets_log2)];
        ++n;
    }
    double expect = static_cast<double>(n) /
                    static_cast<double>(counts.size());
    double chi2 = 0.0;
    for (auto c : counts) {
        double d = static_cast<double>(c) - expect;
        chi2 += d * d / expect;
    }
    return chi2;
}

TEST(Security, RevealedLabelsUniformUnderSkewedAccesses)
{
    Harness h(forkParams());
    // Pathological program pattern: hammer two addresses only.
    Rng rng(3);
    for (int i = 0; i < 1500; ++i) {
        std::vector<std::uint8_t> v(8, static_cast<std::uint8_t>(i));
        h.syncAccess(oram::Op::write, rng.uniformInt(2), v);
    }
    const auto &trace = h.ctrl.revealTrace();
    ASSERT_GT(trace.size(), 500u);
    // 15 dof chi-square, 99.9th percentile ~ 37.7.
    EXPECT_LT(chiSquareTopBits(trace, 10), 37.7);
}

TEST(Security, RevealedShapeIndependentOfDataValues)
{
    // Two runs with identical request sequences but different data
    // values must reveal byte-identical access shapes.
    auto run = [](std::uint8_t fill) {
        Harness h(forkParams());
        Rng rng(77);
        for (int i = 0; i < 300; ++i) {
            BlockAddr a = rng.uniformInt(64);
            if (i % 3 == 0) {
                h.syncAccess(oram::Op::read, a);
            } else {
                h.syncAccess(oram::Op::write, a,
                             std::vector<std::uint8_t>(8, fill));
            }
        }
        return h.ctrl.revealTrace();
    };
    auto t1 = run(0x00);
    auto t2 = run(0xFF);
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].label, t2[i].label) << i;
        EXPECT_EQ(t1[i].readStartLevel, t2[i].readStartLevel) << i;
        EXPECT_EQ(t1[i].writeStopLevel, t2[i].writeStopLevel) << i;
        EXPECT_EQ(t1[i].dummy, t2[i].dummy) << i;
    }
}

TEST(Security, DeterministicGivenSeed)
{
    auto run = [] {
        Harness h(forkParams());
        Rng rng(123);
        for (int i = 0; i < 200; ++i)
            h.syncAccess(oram::Op::write, rng.uniformInt(32),
                         std::vector<std::uint8_t>(8, 1));
        return h.ctrl.revealTrace();
    };
    auto t1 = run();
    auto t2 = run();
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i)
        EXPECT_EQ(t1[i].label, t2[i].label);
}

TEST(Security, OverlapDistributionIndependentOfIntensity)
{
    // Figure 7: scheduling always operates on a full (padded) queue,
    // so the revealed overlap degrees must not reflect how many real
    // requests were pending.
    auto mean_overlap = [](bool burst) {
        auto p = forkParams();
        // Disable aging so only the padding argument is under test;
        // with aging, forced FIFO promotions under backlog lower the
        // high-intensity overlap for fairness reasons.
        p.agingThreshold = 1u << 30;
        Harness h(p);
        const auto &geo = h.ctrl.geometry();
        Rng rng(55);
        if (burst) {
            // High intensity: many requests in flight at once.
            int done = 0, issued = 0;
            for (int round = 0; round < 40; ++round) {
                for (int k = 0; k < 16; ++k) {
                    if (h.ctrl.canAccept()) {
                        h.ctrl.request(
                            oram::Op::read, rng.uniformInt(4096),
                            {},
                            [&done](Tick, const auto &) { ++done; });
                        ++issued;
                    }
                }
                h.eq.run();
            }
            EXPECT_EQ(done, issued);
        } else {
            // Low intensity: strictly one at a time.
            for (int i = 0; i < 640; ++i)
                h.syncAccess(oram::Op::read, rng.uniformInt(4096));
        }
        const auto &trace = h.ctrl.revealTrace();
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
            sum += geo.overlap(trace[i].label, trace[i + 1].label);
            ++n;
        }
        return sum / static_cast<double>(n);
    };

    double low = mean_overlap(false);
    double high = mean_overlap(true);
    // Both should be near E[max of queue-size samples]; allow a
    // modest statistical gap but nothing like the >1-level gap an
    // unpadded scheduler would show.
    EXPECT_NEAR(low, high, 0.8);
}

TEST(Security, MergingPreservesStashOccupancy)
{
    // Paper Section 3.6: merging does not change the stash
    // occupancy distribution (the retained fork handle blocks would
    // have been written out and immediately read back).
    auto p_base = forkParams(8);
    p_base.policy = core::PolicyKind::traditional;
    p_base.enableDummyReplacing = false;
    p_base.labelQueueSize = 1;
    Harness base(p_base);
    Harness fork(forkParams(8));
    Rng rng(99);
    for (int i = 0; i < 1200; ++i) {
        BlockAddr a = rng.uniformInt(700);
        std::vector<std::uint8_t> v(8, 1);
        base.syncAccess(oram::Op::write, a, v);
        fork.syncAccess(oram::Op::write, a, v);
    }
    double base_mean = base.ctrl.stash().occupancy().mean();
    double fork_mean = fork.ctrl.stash().occupancy().mean();
    // Distributions should be comparable: neither explodes.
    EXPECT_EQ(base.ctrl.stash().overflowEvents(), 0u);
    EXPECT_EQ(fork.ctrl.stash().overflowEvents(), 0u);
    EXPECT_NEAR(fork_mean, base_mean, base_mean * 0.5 + 8.0);
}

TEST(Security, LabelQueueObservedFull)
{
    // After any selection the controller re-pads, so the queue the
    // scheduler operates on is always at capacity once warm.
    Harness h(forkParams());
    Rng rng(1);
    for (int i = 0; i < 50; ++i)
        h.syncAccess(oram::Op::read, rng.uniformInt(128));
    // Warm steady state: padded to capacity or one short (the
    // committed pending holds one slot's worth of work).
    EXPECT_GE(h.ctrl.labelQueue().size() + 1,
              h.ctrl.labelQueue().capacity());
}

TEST(Security, TraditionalLabelsSeriallyIndependent)
{
    // Without scheduling the revealed label sequence is i.i.d.
    // uniform; lag-1 correlation must vanish. (With scheduling the
    // top bits correlate BY DESIGN — that reordering is a public
    // function of an i.i.d. pool, the paper's Section 3.6 argument.)
    auto p = forkParams();
    p.policy = core::PolicyKind::traditional;
    p.enableDummyReplacing = false;
    p.labelQueueSize = 1;
    Harness h(p);
    Rng rng(7);
    for (int i = 0; i < 1200; ++i)
        h.syncAccess(oram::Op::read, rng.uniformInt(512));
    std::vector<double> labels;
    for (const auto &r : h.ctrl.revealTrace())
        labels.push_back(static_cast<double>(r.label));
    ASSERT_GT(labels.size(), 1000u);
    EXPECT_LT(std::abs(serialCorrelation(labels)), 0.08);
}

TEST(Security, ForkLowLabelBitsSeriallyIndependent)
{
    // Scheduling correlates the *top* label bits of consecutive
    // accesses (that is the optimisation); the low bits — which pin
    // the leaf within the shared subtree — must stay independent.
    Harness h(forkParams());
    Rng rng(9);
    for (int i = 0; i < 1200; ++i)
        h.syncAccess(oram::Op::read, rng.uniformInt(512));
    std::vector<double> low_bits;
    for (const auto &r : h.ctrl.revealTrace())
        low_bits.push_back(static_cast<double>(r.label & 0x1F));
    ASSERT_GT(low_bits.size(), 1000u);
    EXPECT_LT(std::abs(serialCorrelation(low_bits)), 0.08);
}

TEST(Security, DummiesIndistinguishableInTraceShape)
{
    // Dummy accesses traverse paths exactly like real ones: fork
    // levels obey the same chaining rule (checked in
    // test_controller's ForkShapeInvariant); here: dummies' labels
    // are also uniform.
    Harness h(forkParams());
    for (int i = 0; i < 800; ++i)
        h.syncAccess(oram::Op::read, 1); // maximally boring program
    std::vector<RevealedAccess> dummies;
    for (const auto &r : h.ctrl.revealTrace())
        if (r.dummy)
            dummies.push_back(r);
    ASSERT_GT(dummies.size(), 200u);
    EXPECT_LT(chiSquareTopBits(dummies, 10), 37.7);
}

} // anonymous namespace
} // namespace fp::core
