/**
 * @file
 * Functional tests of the baseline Path ORAM engine: the RAM
 * interface contract (read-your-writes under random workloads), the
 * path invariant, stash behaviour, dummy accesses and the access
 * trace shape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "oram/path_oram.hh"
#include "oram/stash.hh"
#include "oram/treetop_cache.hh"
#include "util/random.hh"

namespace fp::oram
{
namespace
{

OramParams
smallParams(unsigned leaf_level = 6, std::size_t payload = 8,
            bool encrypt = false)
{
    OramParams p;
    p.leafLevel = leaf_level;
    p.z = 4;
    p.payloadBytes = payload;
    p.stashCapacity = 200;
    p.encrypt = encrypt;
    p.seed = 1234;
    return p;
}

std::vector<std::uint8_t>
valueFor(std::uint64_t x, std::size_t n = 8)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>((x >> (8 * (i % 8))) + i);
    return v;
}

/** Check the Path ORAM invariant: every mapped block is in the stash
 *  or on the path of its current label. */
void
checkInvariant(PathOram &oram, const std::vector<BlockAddr> &addrs)
{
    for (BlockAddr a : addrs) {
        if (!oram.positionMap().contains(a))
            continue;
        LeafLabel l = oram.positionMap().get(a);
        if (oram.stash().contains(a))
            continue;
        bool on_path = false;
        for (BucketIndex idx : oram.geometry().pathIndices(l)) {
            mem::Bucket bucket = oram.store().readBucket(idx);
            for (const auto &blk : bucket.blocks()) {
                if (blk.addr == a) {
                    EXPECT_EQ(blk.leaf, l)
                        << "stale label in tree for " << a;
                    on_path = true;
                }
            }
        }
        EXPECT_TRUE(on_path)
            << "block " << a << " neither stashed nor on path " << l;
    }
}

TEST(PathOram, FreshReadIsZero)
{
    PathOram oram(smallParams());
    EXPECT_EQ(oram.read(42),
              std::vector<std::uint8_t>(8, 0));
}

TEST(PathOram, ReadYourWrite)
{
    PathOram oram(smallParams());
    oram.write(7, valueFor(7));
    EXPECT_EQ(oram.read(7), valueFor(7));
}

TEST(PathOram, WriteReturnsOldValue)
{
    PathOram oram(smallParams());
    oram.write(3, valueFor(1));
    auto v2 = valueFor(2);
    auto old = oram.access(Op::write, 3, &v2);
    EXPECT_EQ(old, valueFor(1));
    EXPECT_EQ(oram.read(3), valueFor(2));
}

TEST(PathOram, RandomWorkloadMatchesReferenceMap)
{
    PathOram oram(smallParams());
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(99);
    std::vector<BlockAddr> addrs;
    for (int i = 0; i < 2000; ++i) {
        BlockAddr a = rng.uniformInt(64);
        if (rng.chance(0.5)) {
            auto v = valueFor(rng());
            oram.write(a, v);
            ref[a] = v;
        } else {
            auto expect = ref.count(a)
                              ? ref[a]
                              : std::vector<std::uint8_t>(8, 0);
            EXPECT_EQ(oram.read(a), expect) << "addr " << a;
        }
        addrs.push_back(a);
    }
    checkInvariant(oram, addrs);
}

TEST(PathOram, EncryptedWorkload)
{
    PathOram oram(smallParams(5, 16, /*encrypt=*/true));
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        BlockAddr a = rng.uniformInt(32);
        if (rng.chance(0.5)) {
            auto v = valueFor(rng(), 16);
            oram.write(a, v);
            ref[a] = v;
        } else if (ref.count(a)) {
            EXPECT_EQ(oram.read(a), ref[a]);
        }
    }
}

TEST(PathOram, InvariantHoldsThroughout)
{
    PathOram oram(smallParams(5));
    Rng rng(17);
    std::vector<BlockAddr> addrs;
    for (int i = 0; i < 300; ++i) {
        BlockAddr a = rng.uniformInt(40);
        oram.write(a, valueFor(a));
        addrs.push_back(a);
        if (i % 50 == 49)
            checkInvariant(oram, addrs);
    }
}

TEST(PathOram, StashStaysBounded)
{
    PathOram oram(smallParams(8));
    Rng rng(23);
    for (int i = 0; i < 3000; ++i)
        oram.write(rng.uniformInt(400), valueFor(i));
    // Z=4, 50%-style load: the stash should stay tiny relative to
    // the working set; overflows of the 200 soft cap must not occur.
    EXPECT_EQ(oram.stash().overflowEvents(), 0u);
    EXPECT_LT(oram.stash().peakSize(), 150u);
}

TEST(PathOram, StashHitReturnsWithoutPathAccess)
{
    auto params = smallParams();
    PathOram oram(params);
    oram.write(5, valueFor(5));
    // Force the block into the stash by accessing it, then check the
    // shortcut: a stash-resident block answers without tree traffic.
    oram.read(5);
    if (oram.stash().contains(5)) {
        auto reads_before = oram.store().readCount();
        oram.read(5);
        EXPECT_EQ(oram.store().readCount(), reads_before);
        EXPECT_GT(oram.stashHits(), 0u);
    }
}

TEST(PathOram, TraceCoversFullPath)
{
    PathOram oram(smallParams(4));
    oram.setTraceEnabled(true);
    oram.write(1, valueFor(1));
    ASSERT_FALSE(oram.trace().empty());
    const AccessTrace &tr = oram.trace().back();
    EXPECT_EQ(tr.bucketsRead.size(), oram.geometry().numLevels());
    EXPECT_EQ(tr.bucketsWritten.size(), oram.geometry().numLevels());
    // Read is root-first; write is leaf-first.
    EXPECT_EQ(tr.bucketsRead.front(), 0u);
    EXPECT_EQ(tr.bucketsWritten.back(), 0u);
    // Both cover exactly the labelled path.
    auto path = oram.geometry().pathIndices(tr.label);
    EXPECT_EQ(tr.bucketsRead, path);
}

TEST(PathOram, DummyAccessKeepsState)
{
    PathOram oram(smallParams());
    oram.write(9, valueFor(9));
    for (int i = 0; i < 50; ++i)
        oram.dummyAccess();
    EXPECT_EQ(oram.read(9), valueFor(9));
}

TEST(PathOram, AccessWithLabelsRoundTrip)
{
    auto params = smallParams();
    params.stashShortcut = false;
    PathOram oram(params);
    LeafLabel l1 = 3, l2 = 9, l3 = 12;
    auto v = valueFor(77);
    oram.accessWithLabels(Op::write, 77, l1, l2, &v);
    auto out = oram.accessWithLabels(Op::read, 77, l2, l3);
    EXPECT_EQ(out, v);
}

TEST(PathOram, AccessWithLabelsMutateRunsBeforeRefill)
{
    PathOram oram(smallParams());
    auto v = valueFor(1);
    bool ran = false;
    oram.accessWithLabels(Op::write, 11, 0, 1, &v,
                          [&](mem::Block &blk) {
                              ran = true;
                              EXPECT_EQ(blk.addr, 11u);
                              blk.payload = valueFor(2);
                          });
    EXPECT_TRUE(ran);
    // Read back through the external-label interface (the block is
    // not registered in the internal position map).
    EXPECT_EQ(oram.accessWithLabels(Op::read, 11, 1, 2), valueFor(2));
}

TEST(PathOram, RemapsOnEveryAccess)
{
    auto params = smallParams(10);
    params.stashShortcut = false; // force a full access every time
    PathOram oram(params);
    oram.write(1, valueFor(1));
    std::set<LeafLabel> labels;
    for (int i = 0; i < 20; ++i) {
        labels.insert(oram.positionMap().get(1));
        oram.read(1);
    }
    EXPECT_GT(labels.size(), 5u); // 20 draws over 1024 leaves
}

TEST(PathOram, CountsAccesses)
{
    PathOram oram(smallParams());
    oram.write(1, valueFor(1));
    oram.read(1);
    oram.dummyAccess();
    EXPECT_EQ(oram.accessCount(), 2u);
}

// --- parameterized functional sweep -------------------------------------------

struct OramSweep
{
    unsigned leafLevel;
    unsigned z;
    std::size_t payload;
    bool encrypt;
    bool shortcut;

    friend std::ostream &
    operator<<(std::ostream &os, const OramSweep &s)
    {
        os << "L" << s.leafLevel << "_Z" << s.z << "_p" << s.payload
           << (s.encrypt ? "_enc" : "_plain")
           << (s.shortcut ? "_sc" : "_nosc");
        return os;
    }
};

class PathOramSweep : public ::testing::TestWithParam<OramSweep>
{
};

TEST_P(PathOramSweep, RandomWorkloadContract)
{
    const OramSweep &s = GetParam();
    OramParams params;
    params.leafLevel = s.leafLevel;
    params.z = s.z;
    params.payloadBytes = s.payload;
    params.encrypt = s.encrypt;
    params.stashShortcut = s.shortcut;
    params.seed = 9090 + s.leafLevel + s.z;
    PathOram oram(params);

    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(100 + s.leafLevel * 3 + s.z);
    const std::uint64_t space =
        std::min<std::uint64_t>(40, oram.geometry().numLeaves());
    for (int i = 0; i < 400; ++i) {
        BlockAddr a = rng.uniformInt(space);
        if (rng.chance(0.5)) {
            std::vector<std::uint8_t> v(s.payload);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng());
            oram.write(a, v);
            ref[a] = v;
        } else {
            auto expect =
                ref.count(a)
                    ? ref[a]
                    : std::vector<std::uint8_t>(s.payload, 0);
            ASSERT_EQ(oram.read(a), expect)
                << "addr " << a << " op " << i;
        }
    }
    EXPECT_EQ(oram.stash().overflowEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PathOramSweep,
    ::testing::Values(OramSweep{2, 4, 8, false, true},
                      OramSweep{4, 2, 8, false, true},
                      OramSweep{4, 8, 8, false, true},
                      OramSweep{6, 4, 0, false, true},
                      OramSweep{6, 4, 64, true, true},
                      OramSweep{8, 4, 8, false, false},
                      OramSweep{10, 3, 16, true, false},
                      OramSweep{12, 4, 8, false, true}),
    [](const ::testing::TestParamInfo<OramSweep> &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

// --- treetop cache sizing ----------------------------------------------------

TEST(TreetopCache, LevelsForBudget)
{
    mem::TreeGeometry geo(24);
    // 1 MB / 256 B buckets = 4096 frames -> levels 0..11 (4095).
    TreetopCache cache(geo, 256, 1 << 20);
    EXPECT_EQ(cache.numCachedLevels(), 12u);
    EXPECT_TRUE(cache.covers(0));
    EXPECT_TRUE(cache.covers(11));
    EXPECT_FALSE(cache.covers(12));
    EXPECT_EQ(cache.sizeBytes(), 4095u * 256u);
}

TEST(TreetopCache, ZeroBudget)
{
    mem::TreeGeometry geo(8);
    TreetopCache cache(geo, 256, 0);
    EXPECT_EQ(cache.numCachedLevels(), 0u);
    EXPECT_FALSE(cache.covers(0));
}

TEST(TreetopCache, BudgetBeyondTree)
{
    mem::TreeGeometry geo(3);
    TreetopCache cache(geo, 256, 1 << 20);
    EXPECT_EQ(cache.numCachedLevels(), geo.numLevels());
}

TEST(Stash, EvictionSelectsCandidatesInAddressOrder)
{
    // Eviction must not depend on unordered_map iteration order:
    // with more eligible blocks than slots, the lowest addresses win,
    // regardless of insertion order.
    mem::TreeGeometry geo(6);
    Stash stash(geo, 200);
    // All blocks mapped to leaf 0 are eligible for level 0 (root) of
    // any path. Insert in a scrambled order.
    for (BlockAddr addr : {41u, 7u, 23u, 3u, 55u, 12u}) {
        mem::Block b;
        b.addr = addr;
        b.leaf = 0;
        stash.insert(std::move(b));
    }
    auto evicted = stash.evictForBucket(/*path_label=*/0,
                                        /*level=*/0,
                                        /*max_blocks=*/4);
    ASSERT_EQ(evicted.size(), 4u);
    EXPECT_EQ(evicted[0].addr, 3u);
    EXPECT_EQ(evicted[1].addr, 7u);
    EXPECT_EQ(evicted[2].addr, 12u);
    EXPECT_EQ(evicted[3].addr, 23u);
    // The two highest addresses stay behind.
    EXPECT_TRUE(stash.contains(41));
    EXPECT_TRUE(stash.contains(55));
}

TEST(Stash, EvictionIsInsertionOrderIndependent)
{
    mem::TreeGeometry geo(6);
    std::vector<BlockAddr> addrs = {9, 2, 31, 17, 5, 44, 28, 1};
    auto evict = [&](const std::vector<BlockAddr> &order) {
        Stash stash(geo, 200);
        for (BlockAddr a : order) {
            mem::Block b;
            b.addr = a;
            b.leaf = 0;
            stash.insert(std::move(b));
        }
        std::vector<BlockAddr> out;
        for (const auto &b : stash.evictForBucket(0, 0, 5))
            out.push_back(b.addr);
        return out;
    };
    auto forward = evict(addrs);
    std::reverse(addrs.begin(), addrs.end());
    auto backward = evict(addrs);
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward,
              (std::vector<BlockAddr>{1, 2, 5, 9, 17}));
}

} // anonymous namespace
} // namespace fp::oram
