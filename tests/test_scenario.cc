/**
 * @file
 * Experiment-spec runtime tests: parse round-trips, grid expansion,
 * spec-hash stability, parse-time validation (malformed specs die
 * with a file:line diagnostic), provenance stamping into RunResult
 * JSON, byte-identical stdout across --jobs, and every committed
 * spec under experiments/ parsing cleanly.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/scenario.hh"
#include "sim/spec_parse.hh"
#include "util/cli.hh"
#include "util/logging.hh"

#ifndef FP_EXPERIMENTS_DIR
#define FP_EXPERIMENTS_DIR "experiments"
#endif

namespace fp::sim
{
namespace
{

/** CliArgs from a flag list (argv[0] implied). */
class Args
{
  public:
    explicit Args(std::vector<std::string> flags) : flags_(std::move(flags))
    {
        argv_.push_back(const_cast<char *>("test"));
        for (const auto &f : flags_)
            argv_.push_back(const_cast<char *>(f.c_str()));
    }

    CliArgs
    cli() const
    {
        return CliArgs(static_cast<int>(argv_.size()),
                       const_cast<char **>(argv_.data()));
    }

  private:
    std::vector<std::string> flags_;
    std::vector<char *> argv_;
};

constexpr char kSmallSpec[] = R"({
  "name": "unit",
  "scenario": "sweep",
  "mixes": ["Mix3"],
  "base": {"requests": 40, "leaf-level": 10, "variant": "merge",
           "queue": 8},
  "grid": {"queue": [1, 8]},
  "smoke": {"args": [], "trace": false}
})";

TEST(SpecParse, RoundTripBaseOverrides)
{
    auto spec = parseSpecText(kSmallSpec, "unit.json");
    EXPECT_EQ(spec.name, "unit");
    EXPECT_EQ(spec.scenario, "sweep");
    ASSERT_EQ(spec.defaultMixes.size(), 1u);
    EXPECT_EQ(spec.defaultMixes[0], "Mix3");
    ASSERT_EQ(spec.grid.size(), 1u);
    EXPECT_EQ(spec.grid[0].key, "queue");
    EXPECT_EQ(spec.grid[0].values.size(), 2u);
    EXPECT_FALSE(spec.smokeTrace);

    // Applying the base overrides reproduces the hand-built config.
    SimConfig cfg = SimConfig::paperDefault();
    applySpecOverrides(cfg, spec.base, spec.source, spec.params);
    SimConfig want = withMergeOnly(SimConfig::paperDefault(), 8);
    want.requestsPerCore = 40;
    want.controller.oram.leafLevel = 10;
    EXPECT_EQ(cfg.requestsPerCore, want.requestsPerCore);
    EXPECT_EQ(cfg.controller.oram.leafLevel,
              want.controller.oram.leafLevel);
    EXPECT_EQ(cfg.controller.labelQueueSize,
              want.controller.labelQueueSize);
    EXPECT_EQ(cfg.controller.policy, want.controller.policy);
    EXPECT_FALSE(cfg.insecure);
}

TEST(SpecParse, PointAndParamAccessors)
{
    auto spec = parseSpecText(R"({
      "name": "p",
      "points": [
        {"name": "a", "set": {"variant": "traditional"}},
        {"name": "b", "mix": "Mix1",
         "set": {"variant": "mac", "cache-bytes": 131072}}
      ],
      "params": {"queues": [1, 2], "alpha": 0.5, "tag": "x",
                 "names": ["u", "v"]}
    })");
    ASSERT_EQ(spec.points.size(), 2u);
    EXPECT_EQ(spec.points[1].mix, "Mix1");
    EXPECT_EQ(spec.paramUintList("queues"),
              (std::vector<std::uint64_t>{1, 2}));
    EXPECT_DOUBLE_EQ(spec.paramNum("alpha", 0.0), 0.5);
    EXPECT_EQ(spec.paramStr("tag", ""), "x");
    EXPECT_EQ(spec.paramStrList("names"),
              (std::vector<std::string>{"u", "v"}));
    EXPECT_EQ(spec.paramUint("absent", 7), 7u);
}

TEST(SpecParse, GridExpansionCounts)
{
    auto spec = parseSpecText(R"({
      "name": "grid",
      "points": [
        {"name": "a", "set": {"variant": "merge"}},
        {"name": "b", "set": {"variant": "traditional"}}
      ],
      "grid": {"queue": [1, 8, 64], "requests": [40, 80]}
    })");
    SimConfig base = SimConfig::paperDefault();
    base.controller.oram.leafLevel = 10;
    auto points =
        expandSpecPoints(spec, base, {"Mix1", "Mix3"});
    // 2 points x (3 queue x 2 requests) x 2 mixes.
    EXPECT_EQ(points.size(), 2u * 6u * 2u);

    // A pure-grid spec still expands (anonymous base point).
    auto nopoints = parseSpecText(
        R"({"name": "g", "grid": {"requests": [40, 80, 120]}})");
    EXPECT_EQ(expandSpecPoints(nopoints, base, {"Mix3"}).size(), 3u);
}

TEST(SpecParse, HashStableAndPathIndependent)
{
    const std::string text = kSmallSpec;
    EXPECT_EQ(specHash(text), specHash(text));
    auto a = parseSpecText(text, "a.json");
    auto b = parseSpecText(text, "b/c.json");
    EXPECT_EQ(a.source.hash, b.source.hash);
    EXPECT_EQ(a.source.hash, specHash(text));
    EXPECT_NE(specHash(text), specHash(text + " "));
    // FNV-1a 64 of the empty string is the offset basis.
    EXPECT_EQ(specHash(""), 14695981039346656037ULL);
}

TEST(SpecParseDeath, MalformedSpecsDieWithLocation)
{
    // Not JSON at all.
    EXPECT_DEATH(parseSpecText("{nope", "bad.json"), "bad.json");
    // Missing the required name.
    EXPECT_DEATH(parseSpecText(R"({"scenario": "sweep"})"),
                 "missing the required \"name\"");
    // Unknown top-level key.
    EXPECT_DEATH(parseSpecText(R"({"name": "x", "gird": {}})"),
                 "gird");
    // Unknown override key, reported with its line.
    EXPECT_DEATH(parseSpecText("{\"name\": \"x\",\n"
                               " \"base\": {\"reqests\": 10}}",
                               "typo.json"),
                 "typo.json:2.*reqests");
    // Out-of-range grid value (validated at parse time).
    EXPECT_DEATH(parseSpecText(
                     R"({"name": "x", "grid": {"leaf-level": [3]}})"),
                 "leaf-level");
    // Conflicting overrides: a scheduler knob on the insecure
    // baseline.
    EXPECT_DEATH(parseSpecText(R"({"name": "x", "points": [
                     {"name": "p",
                      "set": {"insecure": true, "queue": 8}}]})"),
                 "insecure");
    // cache-bytes without a cache to size.
    EXPECT_DEATH(parseSpecText(R"({"name": "x", "base":
                     {"variant": "merge", "cache-bytes": 4096}})"),
                 "cache-bytes");
    // batch-size without the batched policy.
    EXPECT_DEATH(parseSpecText(R"({"name": "x", "base":
                     {"variant": "merge", "batch-size": 4}})"),
                 "batch");
    // Unknown mix name.
    EXPECT_DEATH(parseSpecText(
                     R"({"name": "x", "mixes": ["Mix99"]})"),
                 "Mix99");
}

TEST(Scenario, ProvenanceStampedIntoJson)
{
    auto spec = parseSpecText(kSmallSpec, "unit.json");
    RunResult r;
    EXPECT_EQ(toJson(r).find("spec_name"), std::string::npos);
    r.specName = spec.name;
    r.specHash = spec.source.hash;
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"spec_name\":\"unit\""),
              std::string::npos);
    EXPECT_NE(json.find("\"spec_hash\""), std::string::npos);
}

TEST(Scenario, SweepStdoutByteIdenticalAcrossJobs)
{
    auto spec = parseSpecText(kSmallSpec, "unit.json");
    auto run = [&](const char *jobs) {
        Args args({std::string("--jobs=") + jobs});
        auto cli = args.cli();
        testing::internal::CaptureStdout();
        EXPECT_EQ(runSpec(spec, cli), 0);
        return testing::internal::GetCapturedStdout();
    };
    const std::string seq = run("1");
    const std::string par = run("4");
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, par);
}

TEST(Scenario, ContextHonorsCliOverridesAndQuick)
{
    auto spec = parseSpecText(kSmallSpec, "unit.json");
    {
        Args args({"--requests=77", "--leaf-level=12"});
        auto cli = args.cli();
        ScenarioContext ctx(spec, cli);
        EXPECT_EQ(ctx.base.requestsPerCore, 77u);
        EXPECT_EQ(ctx.base.controller.oram.leafLevel, 12u);
    }
    {
        Args args({"--quick"});
        auto cli = args.cli();
        ScenarioContext ctx(spec, cli);
        EXPECT_EQ(ctx.base.requestsPerCore, 150u);
        EXPECT_EQ(ctx.base.controller.oram.leafLevel, 14u);
    }
    {
        Args args({"--mixes=Mix1,Mix2"});
        auto cli = args.cli();
        ScenarioContext ctx(spec, cli);
        EXPECT_EQ(ctx.mixes,
                  (std::vector<std::string>{"Mix1", "Mix2"}));
    }
}

TEST(Scenario, CommittedSpecsParseAndCoverScenarios)
{
    const std::string dir = FP_EXPERIMENTS_DIR;
    const char *names[] = {
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18", "fig19", "table2", "overlap",
        "ablation", "replacing", "faults", "shards", "smoke",
        "sweep-example"};
    for (const char *name : names) {
        const std::string path = dir + "/" + name + ".json";
        std::ifstream probe(path);
        ASSERT_TRUE(probe.good()) << "missing committed spec " << path;
        auto spec = parseSpecFile(path);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.description.empty()) << path;
    }
    // The gate spec pins its output name and gated metrics.
    auto smoke = parseSpecFile(dir + "/smoke.json");
    EXPECT_EQ(smoke.defaultOut, "BENCH_smoke.json");
    EXPECT_EQ(smoke.gateMetrics.size(), 6u);
    EXPECT_EQ(smoke.points.size(), 5u);
}

} // namespace
} // namespace fp::sim
