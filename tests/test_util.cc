/**
 * @file
 * Unit tests for the util substrate: bit ops, RNG, statistics, the
 * event queue, table rendering and CLI parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/bitops.hh"
#include "util/cli.hh"
#include "util/event_queue.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "util/stat_tests.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace fp
{
namespace
{

// --- bitops -------------------------------------------------------------

TEST(Bitops, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 63));
    EXPECT_FALSE(isPow2((1ULL << 63) + 1));
}

TEST(Bitops, BitWidth)
{
    EXPECT_EQ(bitWidth(0), 0u);
    EXPECT_EQ(bitWidth(1), 1u);
    EXPECT_EQ(bitWidth(2), 2u);
    EXPECT_EQ(bitWidth(255), 8u);
    EXPECT_EQ(bitWidth(256), 9u);
    EXPECT_EQ(bitWidth(~0ULL), 64u);
}

TEST(Bitops, Log2)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(7), 2u);
    EXPECT_EQ(log2Floor(8), 3u);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(7), 3u);
    EXPECT_EQ(log2Ceil(8), 3u);
    EXPECT_EQ(log2Ceil(9), 4u);
}

TEST(Bitops, ExtractBits)
{
    EXPECT_EQ(extractBits(0xABCD, 4, 8), 0xBCULL);
    EXPECT_EQ(extractBits(0xFF, 0, 4), 0xFULL);
    EXPECT_EQ(extractBits(0xFF, 8, 4), 0ULL);
    EXPECT_EQ(extractBits(~0ULL, 0, 64), ~0ULL);
}

TEST(Bitops, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(0, 8), 0ULL);
    EXPECT_EQ(roundUpPow2(1, 8), 8ULL);
    EXPECT_EQ(roundUpPow2(8, 8), 8ULL);
    EXPECT_EQ(roundUpPow2(9, 8), 16ULL);
}

// --- types --------------------------------------------------------------

TEST(Types, TimeConversions)
{
    EXPECT_EQ(periodFromMHz(2000.0), 500u); // 2 GHz -> 500 ps
    EXPECT_EQ(periodFromMHz(800.0), 1250u); // DDR3-1600 clock
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
}

// --- rng ----------------------------------------------------------------

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntRoughlyUniform)
{
    Rng rng(11);
    constexpr int buckets = 16;
    constexpr int n = 160000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(buckets)];
    // Chi-square with 15 dof; 99.9 percentile ~ 37.7.
    double chi2 = 0.0;
    double expect = static_cast<double>(n) / buckets;
    for (int c : counts)
        chi2 += (c - expect) * (c - expect) / expect;
    EXPECT_LT(chi2, 37.7);
}

TEST(Rng, UniformRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformDoubleInUnit)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.uniformDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(10.0));
    double mean = sum / n;
    EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(Rng, GeometricMinimumOne)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(1.0), 1u);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng a(21);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == child();
    EXPECT_LT(same, 2);
}

TEST(Zipf, UniformWhenAlphaZero)
{
    Rng rng(23);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 700);
}

TEST(Zipf, SkewPrefersLowRanks)
{
    Rng rng(29);
    ZipfSampler z(1000, 1.0);
    int head = 0, tail = 0;
    for (int i = 0; i < 100000; ++i) {
        auto s = z.sample(rng);
        if (s < 10)
            ++head;
        if (s >= 990)
            ++tail;
    }
    EXPECT_GT(head, 10 * tail);
}

// --- stats --------------------------------------------------------------

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(4, 10.0);
    h.sample(5.0);   // bucket 0
    h.sample(15.0);  // bucket 1
    h.sample(39.9);  // bucket 3
    h.sample(100.0); // overflow
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_NEAR(h.mean(), (5.0 + 15.0 + 39.9 + 100.0) / 4.0, 1e-9);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h(100, 1.0);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(Stats, HistogramUnderflow)
{
    Histogram h(4, 10.0);
    h.sample(-1.0);
    h.sample(-100.0);
    h.sample(5.0);
    // Negative samples are counted separately, not folded into
    // bucket 0, so bucket 0 reflects only genuine [0, width) samples.
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -100.0);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Stats, HistogramPercentileZeroIsMinimum)
{
    Histogram h(10, 10.0);
    h.sample(7.0);
    h.sample(42.0);
    h.sample(93.0);
    // percentile(0.0) must be the exact minimum, not the first
    // occupied bucket's edge (which would be 0.0 here).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 93.0);
}

TEST(Stats, HistogramPercentileWithUnderflow)
{
    Histogram h(10, 1.0);
    h.sample(-5.0);
    h.sample(-3.0);
    h.sample(2.5);
    h.sample(8.5);
    // Half the mass is negative: low fractions resolve to the exact
    // minimum, fractions above 0.5 walk the positive buckets.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), -5.0);
    EXPECT_GE(h.percentile(0.9), 2.0);
}

TEST(Stats, HistogramTailPercentileInterpolates)
{
    Histogram h(10, 10.0);
    // 1000 evenly spread samples over [0, 100): exact quantiles are
    // known, and p99.9 must resolve inside the last bucket instead of
    // collapsing onto its edge.
    for (int i = 0; i < 1000; ++i)
        h.sample(i * 0.1);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 0.5);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 0.5);
    EXPECT_NEAR(h.percentile(0.999), 99.9, 0.5);
    EXPECT_GT(h.percentile(0.999), h.percentile(0.99));
    EXPECT_LE(h.percentile(0.999), h.max());
}

TEST(Stats, HistogramMergeMatchesConcatenation)
{
    Histogram a(16, 5.0), b(16, 5.0), both(16, 5.0);
    Rng rng(99);
    for (int i = 0; i < 400; ++i) {
        double v = rng.uniformDouble() * 100.0 - 10.0; // underflow too
        (i % 2 ? a : b).sample(v);
        both.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.underflow(), both.underflow());
    EXPECT_EQ(a.overflow(), both.overflow());
    EXPECT_EQ(a.buckets(), both.buckets());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    EXPECT_DOUBLE_EQ(a.min(), both.min());
    EXPECT_DOUBLE_EQ(a.max(), both.max());
    for (double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(a.percentile(q), both.percentile(q)) << q;
}

TEST(Stats, AverageMerge)
{
    Average a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    Average empty;
    a.merge(empty); // merging nothing changes nothing
    EXPECT_EQ(a.count(), 3u);
    empty.merge(a); // merging into empty adopts the other side
    EXPECT_DOUBLE_EQ(empty.min(), 1.0);
    EXPECT_DOUBLE_EQ(empty.max(), 5.0);
    EXPECT_EQ(empty.count(), 3u);
}

TEST(Stats, GaugeSamplesAtRenderTime)
{
    int depth = 3;
    StatGroup g("gauged");
    g.regGauge("depth", [&depth] { return double(depth); }, "a gauge");
    std::ostringstream os1;
    g.print(os1);
    EXPECT_NE(os1.str().find("3"), std::string::npos);
    depth = 7;
    std::ostringstream os2;
    g.print(os2);
    EXPECT_NE(os2.str().find("7"), std::string::npos);
}

TEST(Stats, RegistryTracksLiveGroups)
{
    StatRegistry reg;
    StatRegistry::Scope scope(reg);
    EXPECT_EQ(reg.size(), 0u);
    {
        StatGroup g1("reg_a"), g2("reg_b");
        EXPECT_EQ(reg.size(), 2u);
        bool saw_a = false, saw_b = false;
        reg.forEach([&](const StatGroup &g) {
            saw_a = saw_a || g.name() == "reg_a";
            saw_b = saw_b || g.name() == "reg_b";
        });
        EXPECT_TRUE(saw_a);
        EXPECT_TRUE(saw_b);
    }
    EXPECT_EQ(reg.size(), 0u);
}

TEST(Stats, GroupsOutsideAnyScopeAreUnregistered)
{
    EXPECT_EQ(StatRegistry::current(), nullptr);
    StatGroup g("scopeless");
    StatRegistry reg;
    StatRegistry::Scope scope(reg);
    EXPECT_EQ(reg.size(), 0u);
}

TEST(Stats, ScopesNestAndRestore)
{
    StatRegistry outer_reg;
    StatRegistry::Scope outer(outer_reg);
    StatGroup g_outer("nest_outer");
    {
        StatRegistry inner_reg;
        StatRegistry::Scope inner(inner_reg);
        StatGroup g_inner("nest_inner");
        EXPECT_EQ(inner_reg.size(), 1u);
        EXPECT_EQ(outer_reg.size(), 1u);
    }
    EXPECT_EQ(StatRegistry::current(), &outer_reg);
    StatGroup g_again("nest_again");
    EXPECT_EQ(outer_reg.size(), 2u);
}

TEST(Stats, WriteJsonFieldsRoundTrips)
{
    Counter c;
    c.inc(41);
    Histogram h(4, 10.0);
    h.sample(-2.0);
    h.sample(15.0);
    StatGroup g("grp");
    g.regCounter("count", c, "a counter");
    g.regHistogram("hist", h, "a histogram");
    JsonWriter w;
    w.beginObject();
    g.writeJsonFields(w);
    w.endObject();

    JsonValue v = JsonValue::parse(w.str());
    EXPECT_EQ(v.at("grp.count").asUint64(), 41u);
    const JsonValue &hist = v.at("grp.hist");
    EXPECT_EQ(hist.at("underflow").asUint64(), 1u);
    EXPECT_EQ(hist.at("count").asUint64(), 2u);
    EXPECT_EQ(hist.at("buckets").at(1).asUint64(), 1u);
}

TEST(Stats, StatGroupPrints)
{
    Counter c;
    c.inc(5);
    Average a;
    a.sample(1.0);
    StatGroup g("grp");
    g.regCounter("count", c, "a counter");
    g.regAverage("avg", a, "an average");
    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("grp.count"), std::string::npos);
    EXPECT_NE(os.str().find("5"), std::string::npos);
    EXPECT_NE(os.str().find("a counter"), std::string::npos);
}

// --- json parser ---------------------------------------------------------

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").asNumber(), -250.0);
    EXPECT_EQ(JsonValue::parse("\"a b\"").asString(), "a b");
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue v = JsonValue::parse(
        R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_EQ(v.at("a").at(1).asUint64(), 2u);
    EXPECT_TRUE(v.at("a").at(2).at("b").asBool());
    EXPECT_TRUE(v.at("c").at("d").isNull());
    EXPECT_EQ(v.at("e").asString(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ParsesEscapesAndUnicode)
{
    JsonValue v = JsonValue::parse(R"("tab\tquote\"uA")");
    EXPECT_EQ(v.asString(), "tab\tquote\"uA");
}

TEST(Json, ObjectKeysKeepSourceOrder)
{
    JsonValue v = JsonValue::parse(R"({"z":1,"a":2,"m":3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, WriterOutputParsesBack)
{
    JsonWriter w;
    w.beginObject()
        .field("n", std::uint64_t{42})
        .field("f", 2.125)
        .field("s", "he\"llo")
        .field("b", true);
    w.key("arr").beginArray().value(1).value(2).endArray();
    w.endObject();

    JsonValue v = JsonValue::parse(w.str());
    EXPECT_EQ(v.at("n").asUint64(), 42u);
    EXPECT_DOUBLE_EQ(v.at("f").asNumber(), 2.125);
    EXPECT_EQ(v.at("s").asString(), "he\"llo");
    EXPECT_TRUE(v.at("b").asBool());
    EXPECT_EQ(v.at("arr").size(), 2u);
}

// --- event queue ----------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(10, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] {
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, Step)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunWhile)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(i, [&] { ++fired; });
    eq.runWhile([&] { return fired < 3; });
    EXPECT_EQ(fired, 3);
}

// --- timer ----------------------------------------------------------------

TEST(Timer, FiresOnceAtDeadline)
{
    EventQueue eq;
    Timer t(eq);
    int fired = 0;
    t.armIn(100, [&] { ++fired; });
    EXPECT_TRUE(t.armed());
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(t.armed());
    eq.run(); // no residual events re-fire it
    EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelBeforeFireSuppresses)
{
    EventQueue eq;
    Timer t(eq);
    int fired = 0;
    t.armIn(100, [&] { ++fired; });
    eq.run(50);
    t.cancel();
    EXPECT_FALSE(t.armed());
    eq.run();
    EXPECT_EQ(fired, 0);
    // The stale entry still drained from the queue (no leak).
    EXPECT_TRUE(eq.empty());
}

TEST(Timer, ReArmReplacesPendingCallback)
{
    EventQueue eq;
    Timer t(eq);
    int first = 0, second = 0;
    t.arm(100, [&] { ++first; });
    t.arm(200, [&] { ++second; });
    eq.run();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(Timer, ReArmSameTickRunsOnlyNewCallback)
{
    EventQueue eq;
    Timer t(eq);
    int first = 0, second = 0;
    t.arm(100, [&] { ++first; });
    // Same deadline, new callback: the old entry must no-op even
    // though both events sit at tick 100 (generation check, not
    // queue position, decides).
    t.arm(100, [&] { ++second; });
    eq.run();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
}

TEST(Timer, FireVsCancelSameTickIsSchedulingOrder)
{
    // Same-tick FIFO: an event scheduled BEFORE the timer was armed
    // runs first at that tick, so its cancel() wins...
    {
        EventQueue eq;
        Timer t(eq);
        int fired = 0;
        eq.schedule(100, [&] { t.cancel(); });
        t.arm(100, [&] { ++fired; });
        eq.run();
        EXPECT_EQ(fired, 0);
    }
    // ...and one scheduled AFTER loses: the timer fires first. The
    // deadline machinery relies on this being deterministic.
    {
        EventQueue eq;
        Timer t(eq);
        int fired = 0;
        t.arm(100, [&] { ++fired; });
        eq.schedule(100, [&] { t.cancel(); });
        eq.run();
        EXPECT_EQ(fired, 1);
    }
}

TEST(Timer, CallbackMayReArm)
{
    // Backoff chains re-arm the timer from inside its own callback
    // (deadline -> backoff -> deadline ...).
    EventQueue eq;
    Timer t(eq);
    std::vector<Tick> fires;
    std::function<void()> chain = [&] {
        fires.push_back(eq.now());
        if (fires.size() < 3)
            t.armIn(10, chain);
    };
    t.armIn(10, chain);
    eq.run();
    EXPECT_EQ(fires, (std::vector<Tick>{10, 20, 30}));
    EXPECT_FALSE(t.armed());
}

TEST(Timer, MoveKeepsPendingFire)
{
    EventQueue eq;
    int fired = 0;
    Timer a(eq);
    a.armIn(5, [&] { ++fired; });
    Timer b = std::move(a); // e.g. rehash of a container of Pendings
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(b.armed());
}

TEST(Timer, DestructionCancels)
{
    EventQueue eq;
    int fired = 0;
    {
        Timer t(eq);
        t.armIn(5, [&] { ++fired; });
    }
    eq.run();
    EXPECT_EQ(fired, 0);
}

// --- table ----------------------------------------------------------------

TEST(Table, AlignsColumns)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long_name", "2.50"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("long_name"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, Fmt)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(std::uint64_t{42}), "42");
}

// --- csv ------------------------------------------------------------------

TEST(Table, CsvEscaping)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"comma,inside", "quote\"inside"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\n"
                        "plain,1\n"
                        "\"comma,inside\",\"quote\"\"inside\"\n");
}

// --- statistical helpers ----------------------------------------------------

TEST(StatTests, ChiSquareUniformOnPerfectCounts)
{
    std::vector<std::uint64_t> counts(16, 100);
    EXPECT_DOUBLE_EQ(chiSquareUniform(counts), 0.0);
}

TEST(StatTests, ChiSquareDetectsSkew)
{
    std::vector<std::uint64_t> counts(16, 100);
    counts[0] = 400;
    EXPECT_GT(chiSquareUniform(counts), chiSquareCritical999(15));
}

TEST(StatTests, ChiSquareAcceptsRngOutput)
{
    Rng rng(71);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 50000; ++i)
        samples.push_back(rng.uniformInt(1 << 20));
    EXPECT_LT(chiSquareTopBits(samples, 20, 4),
              chiSquareCritical999(15));
}

TEST(StatTests, CriticalValuesMonotone)
{
    double prev = 0.0;
    for (unsigned dof : {1u, 3u, 7u, 15u, 40u, 100u, 300u, 1000u}) {
        double v = chiSquareCritical999(dof);
        EXPECT_GT(v, prev);
        prev = v;
    }
    EXPECT_NEAR(chiSquareCritical999(15), 37.70, 0.01);
}

TEST(StatTests, SerialCorrelationNearZeroForRng)
{
    Rng rng(73);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.uniformDouble());
    EXPECT_LT(std::abs(serialCorrelation(xs)), 0.03);
}

TEST(StatTests, SerialCorrelationDetectsTrend)
{
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(static_cast<double>(i % 100));
    EXPECT_GT(serialCorrelation(xs), 0.9);
}

// --- cli ------------------------------------------------------------------

TEST(Cli, ParsesForms)
{
    // A bare boolean flag must be last or followed by another flag:
    // `--flag word` is by design parsed as flag=word.
    const char *argv[] = {"prog", "--a=1", "--b", "2", "pos1",
                          "--flag"};
    CliArgs args(6, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("a", 0), 1);
    EXPECT_EQ(args.getInt("b", 0), 2);
    EXPECT_TRUE(args.getBool("flag"));
    EXPECT_FALSE(args.getBool("missing"));
    EXPECT_EQ(args.getString("missing", "d"), "d");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, Doubles)
{
    const char *argv[] = {"prog", "--x=2.5"};
    CliArgs args(2, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(args.getDouble("x", 0.0), 2.5);
}

} // anonymous namespace
} // namespace fp
