/**
 * @file
 * Observability subsystem tests: tracer output format and levels,
 * trace/stats determinism across identical runs, agreement between
 * the tracer's revealed track and OramController::revealTrace(), the
 * zero-perturbation guarantee (tracing cannot change results), and
 * the interval-stats JSON-lines shape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/overlap.hh"
#include "obs/interval_stats.hh"
#include "obs/request_profiler.hh"
#include "obs/tracer.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "util/event_queue.hh"
#include "util/json.hh"
#include "workload/spec_profiles.hh"

namespace fp
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Temp file in the test's working directory, removed on scope exit. */
struct TempFile
{
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

sim::SimConfig
obsConfig(std::uint64_t requests = 200)
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.cores = 2;
    cfg.requestsPerCore = requests;
    cfg.controller.oram.leafLevel = 12;
    cfg.seed = 7;
    return cfg;
}

std::vector<workload::WorkloadProfile>
profiles(unsigned cores)
{
    std::vector<workload::WorkloadProfile> out;
    for (unsigned i = 0; i < cores; ++i)
        out.push_back(workload::specProfile(i % 2 ? "mcf" : "lbm"));
    return out;
}

// --- tracer unit behaviour ----------------------------------------------

TEST(Tracer, OffLevelProducesValidEmptyTrace)
{
    TempFile f("obs_off.json");
    EventQueue eq;
    {
        obs::Tracer t(f.path, obs::TraceLevel::off, eq.nowPtr());
        EXPECT_FALSE(t.on(obs::TraceLevel::access));
        EXPECT_FALSE(t.on(obs::TraceLevel::full));
        t.instant(obs::Track::controller, "dropped");
        t.finish();
        EXPECT_EQ(t.eventsEmitted(), 0u);
    }
    JsonValue v = JsonValue::parse(readFile(f.path));
    EXPECT_EQ(v.at("traceEvents").size(), 0u);
}

TEST(Tracer, LevelsNest)
{
    TempFile f("obs_lvl.json");
    EventQueue eq;
    obs::Tracer t(f.path, obs::TraceLevel::access, eq.nowPtr());
    EXPECT_TRUE(t.on(obs::TraceLevel::off));
    EXPECT_TRUE(t.on(obs::TraceLevel::access));
    EXPECT_FALSE(t.on(obs::TraceLevel::full));
}

TEST(Tracer, EmitsWellFormedEvents)
{
    TempFile f("obs_events.json");
    EventQueue eq;
    obs::Tracer t(f.path, obs::TraceLevel::full, eq.nowPtr());
    t.nameTrack(obs::Track::controller, "controller");
    // 1 tick = 1 ps; the trace's ts unit is microseconds.
    t.complete(obs::Track::controller, "read", 1'500'000, 2'500'000,
               {obs::TraceArg::num("label", 9),
                obs::TraceArg::flag("dummy", false)});
    t.instant(obs::Track::schedule, "select_real",
              {obs::TraceArg::str("kind", "real")});
    t.counter(obs::Track::stash, "stash_occupancy", "blocks", 12.0);
    t.finish();
    EXPECT_EQ(t.eventsEmitted(), 4u); // metadata + X + i + C

    JsonValue v = JsonValue::parse(readFile(f.path));
    const auto &evs = v.at("traceEvents");
    ASSERT_EQ(evs.size(), 4u);

    const JsonValue &meta = evs.at(0);
    EXPECT_EQ(meta.at("ph").asString(), "M");
    EXPECT_EQ(meta.at("args").at("name").asString(), "controller");

    const JsonValue &x = evs.at(1);
    EXPECT_EQ(x.at("ph").asString(), "X");
    EXPECT_EQ(x.at("name").asString(), "read");
    EXPECT_DOUBLE_EQ(x.at("ts").asNumber(), 1.5);
    EXPECT_DOUBLE_EQ(x.at("dur").asNumber(), 1.0);
    EXPECT_EQ(x.at("args").at("label").asUint64(), 9u);
    EXPECT_FALSE(x.at("args").at("dummy").asBool());

    EXPECT_EQ(evs.at(2).at("ph").asString(), "i");
    const JsonValue &c = evs.at(3);
    EXPECT_EQ(c.at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(c.at("args").at("blocks").asNumber(), 12.0);
}

// --- determinism ---------------------------------------------------------

TEST(Obs, TraceAndStatsAreDeterministic)
{
    TempFile t1("obs_det1.json"), t2("obs_det2.json");
    TempFile s1("obs_det1.jsonl"), s2("obs_det2.jsonl");

    auto run = [&](const std::string &trace, const std::string &stats) {
        sim::SimConfig cfg = sim::withMergeMac(obsConfig(), 64 << 10, 16);
        cfg.obs.traceOut = trace;
        cfg.obs.traceLevel = obs::TraceLevel::full;
        cfg.obs.statsOut = stats;
        cfg.obs.statsIntervalTicks = 5'000'000; // 5 us
        return sim::runProfiles(cfg, profiles(cfg.cores));
    };
    auto r1 = run(t1.path, s1.path);
    auto r2 = run(t2.path, s2.path);

    EXPECT_EQ(r1.executionTicks, r2.executionTicks);
    // Same seed + same config => byte-identical observability output.
    EXPECT_EQ(readFile(t1.path), readFile(t2.path));
    EXPECT_EQ(readFile(s1.path), readFile(s2.path));
    EXPECT_GT(readFile(t1.path).size(), 2u);
}

// --- zero perturbation ---------------------------------------------------

TEST(Obs, TracingDoesNotChangeResults)
{
    sim::SimConfig plain = sim::withMergeMac(obsConfig(), 64 << 10, 16);
    auto base = sim::runProfiles(plain, profiles(plain.cores));

    TempFile t("obs_perturb.json"), s("obs_perturb.jsonl");
    sim::SimConfig traced = plain;
    traced.obs.traceOut = t.path;
    traced.obs.traceLevel = obs::TraceLevel::full;
    traced.obs.statsOut = s.path;
    traced.obs.statsIntervalTicks = 2'000'000;
    auto traced_r = sim::runProfiles(traced, profiles(traced.cores));

    EXPECT_EQ(base.executionTicks, traced_r.executionTicks);
    EXPECT_EQ(base.realAccesses, traced_r.realAccesses);
    EXPECT_EQ(base.dummyAccesses, traced_r.dummyAccesses);
    EXPECT_EQ(base.dummyReplacements, traced_r.dummyReplacements);
    EXPECT_EQ(base.pendingSwaps, traced_r.pendingSwaps);
    EXPECT_EQ(base.mergedLevelsSkipped, traced_r.mergedLevelsSkipped);
    EXPECT_EQ(base.rowHits, traced_r.rowHits);
    EXPECT_EQ(base.rowMisses, traced_r.rowMisses);
    EXPECT_DOUBLE_EQ(base.avgLlcLatencyNs, traced_r.avgLlcLatencyNs);
}

// --- revealed track ------------------------------------------------------

TEST(Obs, RevealedTrackMatchesRevealTrace)
{
    TempFile f("obs_reveal.json");
    sim::SimConfig cfg = sim::withMergeMac(obsConfig(120), 64 << 10, 16);
    cfg.obs.traceOut = f.path;
    cfg.obs.traceLevel = obs::TraceLevel::access;

    sim::System sys(cfg, profiles(cfg.cores));
    ASSERT_NE(sys.controller(), nullptr);
    sys.controller()->setRevealTraceEnabled(true);
    sys.run();
    const auto &reveal = sys.controller()->revealTrace();
    ASSERT_FALSE(reveal.empty());

    JsonValue v = JsonValue::parse(readFile(f.path));
    std::vector<const JsonValue *> track;
    for (const JsonValue &e : v.at("traceEvents").items()) {
        if (e.at("ph").asString() == "X" &&
            e.at("tid").asUint64() ==
                static_cast<unsigned>(obs::Track::revealed))
            track.push_back(&e);
    }

    ASSERT_EQ(track.size(), reveal.size());
    for (std::size_t i = 0; i < reveal.size(); ++i) {
        const JsonValue &args = track[i]->at("args");
        EXPECT_EQ(args.at("label").asUint64(), reveal[i].label);
        EXPECT_EQ(args.at("read_start").asUint64(),
                  reveal[i].readStartLevel);
        EXPECT_EQ(args.at("write_stop").asUint64(),
                  reveal[i].writeStopLevel);
        EXPECT_EQ(args.at("dummy").asBool(), reveal[i].dummy);
        // ts is the bus-visible read start, in microseconds.
        EXPECT_NEAR(track[i]->at("ts").asNumber(),
                    static_cast<double>(reveal[i].readStartTick) / 1e6,
                    1e-5);
    }
}

// --- interval stats ------------------------------------------------------

TEST(Obs, IntervalStatsLinesAreWellFormed)
{
    TempFile s("obs_lines.jsonl");
    sim::SimConfig cfg = sim::withMergeMac(obsConfig(), 64 << 10, 16);
    cfg.obs.statsOut = s.path;
    cfg.obs.statsIntervalTicks = 2'000'000; // 2 us
    auto result = sim::runProfiles(cfg, profiles(cfg.cores));

    std::ifstream in(s.path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::uint64_t prev_tick = 0;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        JsonValue v = JsonValue::parse(line);
        std::uint64_t tick = v.at("tick").asUint64();
        if (lines > 0) {
            EXPECT_GT(tick, prev_tick);
        }
        prev_tick = tick;
        // The quantities the paper's claims live in must be present.
        EXPECT_NE(v.find("oram_controller.stash_depth"), nullptr);
        EXPECT_NE(v.find("oram_controller.merge_skipped_levels"),
                  nullptr);
        EXPECT_NE(v.find("oram_controller.overlap_level"), nullptr);
        EXPECT_NE(v.find("dram.ch0.row_hit_rate"), nullptr);
        EXPECT_NE(v.find("dram.ch0.queue_depth"), nullptr);
        ++lines;
    }
    EXPECT_GE(lines, 3u);
    // The final sample is the end-of-run snapshot.
    EXPECT_EQ(prev_tick, std::uint64_t{result.executionTicks});

    // Counters on the last line agree with the RunResult.
    std::ifstream again(s.path);
    std::string last, l;
    while (std::getline(again, l))
        if (!l.empty())
            last = l;
    JsonValue v = JsonValue::parse(last);
    EXPECT_EQ(v.at("oram_controller.real_accesses").asUint64(),
              result.realAccesses);
    EXPECT_EQ(v.at("oram_controller.dummy_accesses").asUint64(),
              result.dummyAccesses);
}

// --- RunResult JSON round trip -------------------------------------------

TEST(Obs, RunResultJsonRoundTrips)
{
    sim::SimConfig cfg = sim::withMergeMac(obsConfig(120), 64 << 10, 16);
    auto r = sim::runProfiles(cfg, profiles(cfg.cores));

    JsonValue v = JsonValue::parse(sim::toJson(r));
    EXPECT_EQ(v.at("execution_ticks").asUint64(),
              std::uint64_t{r.executionTicks});
    EXPECT_EQ(v.at("real_accesses").asUint64(), r.realAccesses);
    EXPECT_EQ(v.at("dummy_accesses").asUint64(), r.dummyAccesses);
    EXPECT_EQ(v.at("pending_swaps").asUint64(), r.pendingSwaps);
    EXPECT_EQ(v.at("merged_levels_skipped").asUint64(),
              r.mergedLevelsSkipped);
    EXPECT_DOUBLE_EQ(v.at("cache_hit_rate").asNumber(),
                     r.cacheHitRate());
    EXPECT_DOUBLE_EQ(v.at("total_accesses").asNumber(),
                     r.totalAccesses());
    const JsonValue &per_level = v.at("merge_skips_per_level");
    ASSERT_EQ(per_level.size(), r.mergeSkipsPerLevel.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < per_level.size(); ++i) {
        EXPECT_EQ(per_level.at(i).asUint64(), r.mergeSkipsPerLevel[i]);
        sum += r.mergeSkipsPerLevel[i];
    }
    // Each skipped level contributes once to the aggregate counter.
    EXPECT_EQ(sum, r.mergedLevelsSkipped);
    EXPECT_GT(r.mergedLevelsSkipped, 0u);
}

// --- per-request profiler ------------------------------------------------

sim::SimConfig
profiledConfig(std::uint64_t requests = 150)
{
    sim::SimConfig cfg =
        sim::withMergeMac(obsConfig(requests), 64 << 10, 16);
    cfg.obs.profileRequests = true;
    return cfg;
}

TEST(Profiler, StagePartitionSumsToEndToEnd)
{
    sim::SimConfig cfg = profiledConfig();
    sim::System sys(cfg, profiles(cfg.cores));
    ASSERT_NE(sys.profiler(), nullptr);
    sys.profiler()->setKeepRecords(true);
    sys.run();

    const auto *prof = sys.profiler();
    const auto &recs = prof->records();
    ASSERT_FALSE(recs.empty());
    EXPECT_EQ(prof->openRequests(), 0u);
    EXPECT_EQ(prof->completed(), recs.size());
    // Every LLC response the controller measured was profiled.
    EXPECT_EQ(prof->completed(),
              sys.controller()->oramLatency().count());

    for (const auto &r : recs) {
        // Milestones are monotonic...
        EXPECT_LE(r.arrival, r.issue) << "request " << r.id;
        EXPECT_LE(r.issue, r.readStart) << "request " << r.id;
        EXPECT_LE(r.readStart, r.readDone) << "request " << r.id;
        EXPECT_LE(r.readDone, r.complete) << "request " << r.id;
        // ...so the stage partition telescopes to the end-to-end
        // latency exactly, for every request (including shortcut /
        // forwarded completions whose unset milestones backfill).
        Tick sum = (r.issue - r.arrival) + (r.readStart - r.issue) +
                   (r.readDone - r.readStart) +
                   (r.complete - r.readDone);
        EXPECT_EQ(sum, r.complete - r.arrival) << "request " << r.id;
    }

    // The same identity holds in aggregate over the histograms.
    const auto &total = prof->stageHistogram("total");
    EXPECT_EQ(total.count(), recs.size());
    double stage_means = prof->stageHistogram("addr_queue").mean() +
                         prof->stageHistogram("label_queue").mean() +
                         prof->stageHistogram("path_read").mean() +
                         prof->stageHistogram("completion").mean();
    EXPECT_NEAR(stage_means, total.mean(),
                1e-6 * std::max(1.0, total.mean()));

    // Summaries expose the interpolated tail quantiles in order.
    auto summaries = prof->stageSummaries();
    ASSERT_EQ(summaries.size(),
              obs::RequestProfiler::stageNames().size());
    for (const auto &s : summaries) {
        EXPECT_LE(s.p50Ns, s.p95Ns) << s.stage;
        EXPECT_LE(s.p95Ns, s.p99Ns) << s.stage;
        EXPECT_LE(s.p99Ns, s.p999Ns) << s.stage;
        EXPECT_LE(s.p999Ns, s.maxNs) << s.stage;
    }
}

TEST(Profiler, JsonProfileBlockIsGatedAndNonPerturbing)
{
    sim::SimConfig plain =
        sim::withMergeMac(obsConfig(120), 64 << 10, 16);
    auto base = sim::runProfiles(plain, profiles(plain.cores));
    std::string base_json = sim::toJson(base);
    EXPECT_EQ(base_json.find("\"profile\""), std::string::npos);
    EXPECT_FALSE(base.profiled);

    sim::SimConfig profiled = plain;
    profiled.obs.profileRequests = true;
    auto r = sim::runProfiles(profiled, profiles(profiled.cores));
    EXPECT_TRUE(r.profiled);
    EXPECT_GT(r.profiledRequests, 0u);

    // Profiling must not perturb the simulation itself.
    EXPECT_EQ(base.executionTicks, r.executionTicks);
    EXPECT_EQ(base.realAccesses, r.realAccesses);
    EXPECT_EQ(base.dummyAccesses, r.dummyAccesses);
    EXPECT_DOUBLE_EQ(base.avgLlcLatencyNs, r.avgLlcLatencyNs);

    JsonValue v = JsonValue::parse(sim::toJson(r));
    const JsonValue *prof = v.find("profile");
    ASSERT_NE(prof, nullptr);
    EXPECT_EQ(prof->at("completed_requests").asUint64(),
              r.profiledRequests);
    const JsonValue &stages = prof->at("stages");
    ASSERT_EQ(stages.size(),
              obs::RequestProfiler::stageNames().size());
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const JsonValue &s = stages.at(i);
        EXPECT_EQ(s.at("stage").asString(),
                  obs::RequestProfiler::stageNames()[i]);
        for (const char *key :
             {"count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
              "p999_ns", "max_ns"})
            EXPECT_NE(s.find(key), nullptr) << key;
    }
    const JsonValue &eff = prof->at("effectiveness");
    EXPECT_EQ(eff.at("total_accesses").asUint64(),
              r.realAccesses + r.dummyAccesses);
    EXPECT_EQ(eff.at("buckets_saved").asUint64(),
              r.profileEffectiveness.bucketsSaved());
}

TEST(Profiler, DeterministicAcrossSweepJobs)
{
    auto points = [&] {
        std::vector<sim::SweepPoint> pts;
        sim::SimConfig cfg = profiledConfig(100);
        pts.push_back(sim::pointFromProfiles("mac", cfg,
                                             profiles(cfg.cores)));
        sim::SimConfig merge = sim::withMergeOnly(obsConfig(100), 16);
        merge.obs.profileRequests = true;
        pts.push_back(sim::pointFromProfiles("merge", merge,
                                             profiles(merge.cores)));
        sim::SimConfig trad = sim::withTraditional(obsConfig(100));
        trad.obs.profileRequests = true;
        pts.push_back(sim::pointFromProfiles("trad", trad,
                                             profiles(trad.cores)));
        return pts;
    };

    sim::SweepOptions seq;
    seq.jobs = 1;
    sim::SweepOptions par;
    par.jobs = 3;
    auto a = sim::SweepRunner(seq).run(points());
    auto b = sim::SweepRunner(par).run(points());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok && b[i].ok) << a[i].name;
        // Byte-identical JSON including the full profile block: the
        // profiler inherits the sweep determinism contract.
        EXPECT_EQ(sim::toJson(a[i].result), sim::toJson(b[i].result))
            << a[i].name;
        EXPECT_GT(a[i].result.profiledRequests, 0u) << a[i].name;
    }
}

TEST(Profiler, EffectivenessMatchesIndependentCounts)
{
    sim::SimConfig cfg = profiledConfig(200);
    sim::System sys(cfg, profiles(cfg.cores));
    ASSERT_NE(sys.controller(), nullptr);
    sys.controller()->setRevealTraceEnabled(true);
    sys.run();

    const auto &eff = sys.profiler()->effectiveness();
    const auto &reveal = sys.controller()->revealTrace();
    ASSERT_FALSE(reveal.empty());

    // Recompute every shape-derived counter from the revealed trace,
    // which is populated by independent code at the same pipeline
    // point (finishWrite).
    std::uint64_t read_skipped = 0, write_elided = 0, merged = 0;
    for (const auto &a : reveal) {
        read_skipped += a.readStartLevel;
        write_elided += a.writeStopLevel;
        merged += a.readStartLevel > 0;
    }
    EXPECT_EQ(eff.totalAccesses, reveal.size());
    EXPECT_EQ(eff.readLevelsSkipped, read_skipped);
    EXPECT_EQ(eff.writeLevelsElided, write_elided);
    EXPECT_EQ(eff.mergedAccesses, merged);

    // Counters mirrored from the controller must agree exactly.
    EXPECT_EQ(eff.writebacksReplaced,
              sys.controller()->dummyReplacements());
    EXPECT_EQ(eff.pendingSwaps, sys.controller()->pendingSwaps());
    EXPECT_EQ(eff.stashShortcuts, sys.controller()->stashShortcuts());
    // Reads can outrun finished writes, never the other way round.
    EXPECT_LE(eff.readLevelsSkipped,
              sys.controller()->mergedLevelsSkipped());

    // The naive baseline is 2L buckets per access, by construction.
    const unsigned L = sys.controller()->geometry().numLevels();
    EXPECT_EQ(eff.naivePathBuckets,
              std::uint64_t{2} * L * eff.totalAccesses);
    EXPECT_GT(eff.bucketsSaved(), 0u);
    EXPECT_EQ(eff.bytesSaved(),
              eff.bucketsSaved() * eff.bucketBytes);
    EXPECT_EQ(eff.bucketBytes, cfg.controller.bucketBytes());

    // Loose analytic yardstick (paper Fig. 10 reasoning): a merged
    // access saves about twice the expected best overlap of a
    // q-entry label queue. Realized savings include cache hits and
    // dummy competition, so only order-of-magnitude agreement is
    // claimed.
    const double est = core::expectedMergeSavedBuckets(
        sys.controller()->geometry(),
        cfg.controller.labelQueueSize);
    const double saved_per_access =
        static_cast<double>(eff.bucketsSaved()) /
        static_cast<double>(eff.totalAccesses);
    EXPECT_GT(saved_per_access, est / 4.0);
    EXPECT_LT(saved_per_access, est * 4.0);
}

TEST(Profiler, TraceAsyncSpansPairUp)
{
    TempFile f("obs_prof_trace.json");
    sim::SimConfig cfg = profiledConfig(100);
    cfg.obs.traceOut = f.path;
    cfg.obs.traceLevel = obs::TraceLevel::full;
    sim::System sys(cfg, profiles(cfg.cores));
    sys.run();
    const std::uint64_t completed = sys.profiler()->completed();
    ASSERT_GT(completed, 0u);

    JsonValue v = JsonValue::parse(readFile(f.path));
    std::size_t begins = 0, ends = 0, instants = 0;
    for (const JsonValue &e : v.at("traceEvents").items()) {
        const std::string &ph = e.at("ph").asString();
        if (ph != "b" && ph != "n" && ph != "e")
            continue;
        EXPECT_EQ(e.at("cat").asString(), "request");
        EXPECT_NE(e.find("id"), nullptr);
        if (ph == "b") {
            ++begins;
            EXPECT_EQ(e.at("name").asString(), "request");
        } else if (ph == "e") {
            ++ends;
            EXPECT_EQ(e.at("name").asString(), "request");
        } else {
            ++instants;
            const std::string &n = e.at("name").asString();
            EXPECT_TRUE(n == "issue" || n == "read_start" ||
                        n == "read_done")
                << n;
        }
    }
    // One begin and one end per completed request, none dangling.
    EXPECT_EQ(begins, completed);
    EXPECT_EQ(ends, completed);
    EXPECT_GT(instants, 0u);
}

TEST(Profiler, ProfileOutWritesReport)
{
    TempFile f("obs_prof_report.json");
    sim::SimConfig cfg =
        sim::withMergeMac(obsConfig(100), 64 << 10, 16);
    cfg.obs.profileOut = f.path; // implies profiling
    ASSERT_TRUE(cfg.obs.profilingEnabled());
    auto r = sim::runProfiles(cfg, profiles(cfg.cores));
    ASSERT_TRUE(r.profiled);

    JsonValue v = JsonValue::parse(readFile(f.path));
    EXPECT_EQ(v.at("schema").asString(), "forkpath-profile-v1");
    EXPECT_EQ(v.at("completed_requests").asUint64(),
              r.profiledRequests);
    EXPECT_EQ(v.at("open_requests").asUint64(), 0u);
    // The report carries raw buckets for offline re-bucketing.
    const JsonValue &stages = v.at("stages");
    ASSERT_GT(stages.size(), 0u);
    EXPECT_NE(stages.at(0).find("buckets"), nullptr);
    EXPECT_NE(stages.at(0).find("bucket_width"), nullptr);
}

// --- interval-stats end-of-run flush -------------------------------------

TEST(IntervalStats, FinishFlushesWithoutDuplicateTick)
{
    StatRegistry reg;
    {
        TempFile f("obs_finish_dup.jsonl");
        {
            obs::IntervalStats s(f.path, 1000, reg);
            s.sample(1000);
            // Run ends exactly on the sampled tick: finish must not
            // write a second line (ticks must strictly increase).
            s.finish(1000);
        }
        std::ifstream in(f.path);
        std::string line;
        std::size_t lines = 0;
        while (std::getline(in, line))
            lines += !line.empty();
        EXPECT_EQ(lines, 1u);
    }
    {
        TempFile f("obs_finish_tail.jsonl");
        {
            obs::IntervalStats s(f.path, 1000, reg);
            s.sample(1000);
            s.finish(1500); // partial final interval: flushed
        }
        std::ifstream in(f.path);
        std::string line;
        std::vector<std::uint64_t> ticks;
        while (std::getline(in, line))
            if (!line.empty())
                ticks.push_back(
                    JsonValue::parse(line).at("tick").asUint64());
        ASSERT_EQ(ticks.size(), 2u);
        EXPECT_EQ(ticks[0], 1000u);
        EXPECT_EQ(ticks[1], 1500u);
    }
}

} // anonymous namespace
} // namespace fp
