/**
 * @file
 * Tests of the sharded ORAM front-end (core::ShardedOram) and its
 * system wiring: the --shards=1 golden-identity guarantee, derived
 * per-shard seeding, the dispatcher's routing and window bounds, a
 * randomized read-after-write functional run spanning shard
 * boundaries, cross-shard stat/profiler aggregation, JSON gating of
 * the shard block, and byte-identical sweep output at any --jobs.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/sharded_oram.hh"
#include "mem/net_backend.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "workload/mixes.hh"

namespace fp
{
namespace
{

/**
 * The same pre-seam golden RunResult pinned by test_backend.cc: a
 * --shards=1 run must produce this byte for byte, proving the sharded
 * front-end leaves the single-controller path completely untouched.
 */
const char *kGoldenMergeQ64Mix3 =
    R"({"hit_tick_limit":false,"execution_ticks":325271250,)"
    R"("avg_llc_latency_ns":31222.810833333333,)"
    R"("avg_read_path_len":9.0490196078431371,)"
    R"("avg_dram_buckets_read":9.0490196078431371,)"
    R"("avg_dram_service_ns":511.52414075286418,)"
    R"("real_accesses":595,"dummy_accesses":16,"total_accesses":611,)"
    R"("dummy_replacements":6,"pending_swaps":3,"stash_shortcuts":1,)"
    R"("llc_requests":600,"merged_levels_skipped":3642,)"
    R"("row_hits":10066,"row_misses":995,)"
    R"("row_hit_rate":0.91004429979206225,)"
    R"("dram_energy_nj":303697.88076923077,)"
    R"("controller_energy_nj":633.78736175537108,"stash_peak":85,)"
    R"("stash_overflows":0,"cache_hits":0,"cache_misses":0,)"
    R"("cache_hit_rate":0,"merge_skips_per_level":)"
    R"([611,582,531,481,423,357,267,170,104,63,28,14,7,2,2]})";

sim::SimConfig
goldenConfig()
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 150;
    cfg.controller.oram.leafLevel = 14;
    return sim::withMergeOnly(cfg, 64);
}

/** A small sharded full-system config that finishes in well under a
 *  second: Mix3 on the net store, Fork Path merging. */
sim::SimConfig
shardedConfig(unsigned shards)
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = 60;
    cfg.controller.oram.leafLevel = 10;
    cfg = sim::withMergeOnly(cfg, 16);
    cfg.backendKind = sim::BackendKind::net;
    cfg.shards = shards;
    return cfg;
}

TEST(ShardedGolden, ShardsOneIsByteIdenticalToGolden)
{
    sim::SimConfig cfg = goldenConfig();
    cfg.shards = 1; // explicit, to pin the default too
    sim::RunResult r = sim::runMix(cfg, "Mix3");
    EXPECT_EQ(sim::toJson(r), kGoldenMergeQ64Mix3);
    EXPECT_EQ(r.shards, 1u);
}

// ---------------------------------------------------------------------------
// Seed derivation and routing.

TEST(ShardedOramUnit, ShardSeedsPairwiseDistinctAndDeterministic)
{
    for (std::uint64_t base : {std::uint64_t{0}, std::uint64_t{1},
                               std::uint64_t{0xdeadbeefULL}}) {
        std::set<std::uint64_t> seen;
        for (unsigned s = 0; s < 64; ++s) {
            std::uint64_t d = core::ShardedOram::shardSeed(base, s);
            // Derived seeds never collide with each other or with the
            // base seed (a shard must not replay the unsharded run's
            // RNG streams).
            EXPECT_TRUE(seen.insert(d).second)
                << "base " << base << " shard " << s;
            EXPECT_NE(d, base);
            // Pure function of (base, shard): independent of call
            // order, host threads, or any global state.
            EXPECT_EQ(d, core::ShardedOram::shardSeed(base, s));
        }
    }
}

TEST(ShardedOramUnit, ShardOfIsBalancedDeterministicPartition)
{
    const unsigned shards = 4;
    std::vector<std::uint64_t> count(shards, 0);
    for (BlockAddr a = 0; a < 4096; ++a) {
        unsigned s = core::ShardedOram::shardOf(a, shards);
        ASSERT_LT(s, shards);
        EXPECT_EQ(s, core::ShardedOram::shardOf(a, shards));
        ++count[s];
    }
    // splitmix64 spreads a contiguous range near-uniformly; each
    // shard should hold roughly 1024 of 4096 addresses.
    for (unsigned s = 0; s < shards; ++s)
        EXPECT_GT(count[s], 700u) << "shard " << s << " starved";
}

// ---------------------------------------------------------------------------
// Dispatcher harness over per-shard network stores.

class ShardedHarness
{
  public:
    explicit ShardedHarness(unsigned shards, unsigned window = 16,
                            unsigned leaf_level = 8)
    {
        core::ControllerParams params =
            core::ControllerParams::forkPath();
        params.oram.leafLevel = leaf_level;
        params.oram.payloadBytes = 16;
        params.oram.seed = 77;
        params.labelQueueSize = 8;

        mem::NetBackendParams net;
        net.oneWayLatencyUs = 2.0; // keep the simulated run short
        net.linkGbps = 40.0;
        net.window = 8;

        std::vector<mem::MemoryBackend *> tops;
        for (unsigned s = 0; s < shards; ++s) {
            stores_.push_back(
                std::make_unique<mem::NetBackend>(net, eq_));
            tops.push_back(stores_.back().get());
        }
        core::ShardedOramParams sop;
        sop.shards = shards;
        sop.shardWindow = window;
        sharded_ = std::make_unique<core::ShardedOram>(
            sop, params, eq_, tops);
    }

    core::ShardedOram &sharded() { return *sharded_; }
    EventQueue &eq() { return eq_; }

    /** Blocking write of one 16-byte block (SyncOram style). */
    void write(BlockAddr addr, std::vector<std::uint8_t> data)
    {
        bool done = false;
        std::uint64_t id = sharded_->request(
            oram::Op::write, addr, std::move(data),
            [&](Tick, const auto &) { done = true; });
        ASSERT_NE(id, 0u);
        eq_.runWhile([&done] { return !done; });
        ASSERT_TRUE(done);
    }

    /** Blocking read of one block. */
    std::vector<std::uint8_t> read(BlockAddr addr)
    {
        std::vector<std::uint8_t> out;
        bool done = false;
        std::uint64_t id = sharded_->request(
            oram::Op::read, addr, {}, [&](Tick, const auto &data) {
                out = data;
                done = true;
            });
        EXPECT_NE(id, 0u);
        eq_.runWhile([&done] { return !done; });
        EXPECT_TRUE(done);
        return out;
    }

  private:
    EventQueue eq_;
    std::vector<std::unique_ptr<mem::NetBackend>> stores_;
    std::unique_ptr<core::ShardedOram> sharded_;
};

TEST(ShardedDispatcher, RequestIdsAreGloballyUniqueAcrossShards)
{
    const unsigned shards = 3;
    ShardedHarness h(shards, /*window=*/16);
    std::set<std::uint64_t> ids;
    unsigned completions = 0;
    for (BlockAddr a = 0; a < 30; ++a) {
        std::uint64_t id = h.sharded().request(
            oram::Op::read, a, {},
            [&](Tick, const auto &) { ++completions; });
        ASSERT_NE(id, 0u);
        // Interleaved id streams: shard s issues s+1, s+1+S, ... so
        // no two shards can ever mint the same id.
        EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
        h.eq().runWhile(
            [&] { return h.sharded().inFlight() > 0; });
    }
    EXPECT_EQ(completions, 30u);
}

TEST(ShardedDispatcher, WindowBoundsInflightAndCountsRejects)
{
    const unsigned shards = 2;
    ShardedHarness h(shards, /*window=*/1);

    // Two addresses homed on the same shard.
    BlockAddr a = 0;
    unsigned home = core::ShardedOram::shardOf(a, shards);
    BlockAddr b = 1;
    while (core::ShardedOram::shardOf(b, shards) != home)
        ++b;

    unsigned done = 0;
    auto cb = [&](Tick, const auto &) { ++done; };
    ASSERT_NE(h.sharded().request(oram::Op::read, a, {}, cb), 0u);
    EXPECT_EQ(h.sharded().inFlight(), 1u);

    // The home shard's window (1) is full: rejected, counted, and no
    // slot leaked.
    EXPECT_EQ(h.sharded().request(oram::Op::read, b, {}, cb), 0u);
    EXPECT_EQ(h.sharded().windowRejects(), 1u);
    EXPECT_EQ(h.sharded().inFlight(), 1u);

    h.eq().runWhile([&] { return h.sharded().inFlight() > 0; });
    EXPECT_EQ(done, 1u);

    // With the slot free again the same request goes through.
    EXPECT_NE(h.sharded().request(oram::Op::read, b, {}, cb), 0u);
    h.eq().runWhile([&] { return h.sharded().inFlight() > 0; });
    EXPECT_EQ(done, 2u);
    EXPECT_EQ(h.sharded().windowRejects(), 1u);
}

TEST(ShardedFunctional, RandomizedReadAfterWriteAcrossShards)
{
    const unsigned shards = 4;
    ShardedHarness h(shards);

    // 128 block addresses hash across all four shards, so the
    // interleaved stream continually crosses shard boundaries.
    Rng rng(20260808);
    std::map<BlockAddr, std::vector<std::uint8_t>> shadow;
    for (int i = 0; i < 300; ++i) {
        BlockAddr addr = rng.uniformInt(128);
        if (shadow.empty() || rng.chance(0.5)) {
            std::vector<std::uint8_t> v(16);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng.uniformInt(256));
            h.write(addr, v);
            shadow[addr] = std::move(v);
        } else if (shadow.count(addr)) {
            EXPECT_EQ(h.read(addr), shadow[addr]);
        } else {
            EXPECT_EQ(h.read(addr),
                      std::vector<std::uint8_t>(16, 0));
        }
    }
    // Final sweep: every written block reads back from its home
    // shard, whichever that is.
    for (const auto &[addr, v] : shadow)
        EXPECT_EQ(h.read(addr), v);

    // The traffic genuinely spanned every shard.
    for (unsigned s = 0; s < shards; ++s)
        EXPECT_GT(h.sharded().dispatched(s), 0u)
            << "shard " << s << " saw no requests";
}

// ---------------------------------------------------------------------------
// Full-system aggregation and serialisation.

TEST(ShardedSystem, AggregationEqualsPerShardSums)
{
    sim::SimConfig cfg = shardedConfig(3);
    cfg.obs.profileRequests = true;
    sim::System sys(cfg, workload::mixProfiles("Mix3"));
    sim::RunResult r = sys.run();

    core::ShardedOram *sh = sys.sharded();
    ASSERT_NE(sh, nullptr);
    ASSERT_EQ(r.shards, 3u);
    ASSERT_EQ(r.shardDispatched.size(), 3u);

    std::uint64_t real = 0, dummy = 0, dispatched = 0, skipped = 0;
    std::uint64_t completed = 0, eff_total = 0;
    std::size_t peak = 0;
    std::vector<std::uint64_t> skips;
    for (unsigned s = 0; s < 3; ++s) {
        const core::OramController &c = sh->shard(s);
        real += c.realAccesses();
        dummy += c.dummyAccessesRun();
        skipped += c.mergedLevelsSkipped();
        dispatched += sh->dispatched(s);
        EXPECT_EQ(r.shardDispatched[s], sh->dispatched(s));
        EXPECT_EQ(r.shardRealAccesses[s], c.realAccesses());
        EXPECT_EQ(r.shardDummyAccesses[s], c.dummyAccessesRun());
        peak = std::max(peak, sh->shard(s).stash().peakSize());
        const auto &per_level = c.mergeSkipsPerLevel();
        if (skips.size() < per_level.size())
            skips.resize(per_level.size(), 0);
        for (std::size_t l = 0; l < per_level.size(); ++l)
            skips[l] += per_level[l];

        obs::RequestProfiler *prof = sys.shardProfiler(s);
        ASSERT_NE(prof, nullptr);
        completed += prof->completed();
        eff_total += prof->effectiveness().totalAccesses;
    }

    // The RunResult is exactly the sum (or max) of the per-shard
    // snapshots — nothing double-counted, nothing dropped.
    EXPECT_EQ(r.realAccesses, real);
    EXPECT_EQ(r.dummyAccesses, dummy);
    EXPECT_EQ(r.mergedLevelsSkipped, skipped);
    EXPECT_EQ(r.mergeSkipsPerLevel, skips);
    EXPECT_EQ(r.stashPeak, peak);
    // Every LLC request was dispatched to exactly one shard.
    EXPECT_EQ(dispatched, r.llcRequests);
    // Profiler rollup: merged histogram count equals the per-shard
    // completion sum, as do the effectiveness counters.
    EXPECT_TRUE(r.profiled);
    EXPECT_EQ(r.profiledRequests, completed);
    EXPECT_EQ(r.profileEffectiveness.totalAccesses, eff_total);
    EXPECT_EQ(r.profileEffectiveness.totalAccesses, real + dummy);
}

TEST(ShardedSystem, ShardJsonBlockGatedOnShardCount)
{
    sim::RunResult sharded = sim::runMix(shardedConfig(4), "Mix3");
    JsonValue doc = JsonValue::parse(sim::toJson(sharded));
    const JsonValue *block = doc.find("shard");
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->at("shards").asUint64(), 4u);
    EXPECT_EQ(block->at("shard_dispatched").size(), 4u);
    EXPECT_EQ(block->at("shard_real_accesses").size(), 4u);
    EXPECT_EQ(block->at("shard_dummy_accesses").size(), 4u);
    EXPECT_EQ(block->at("shard_avg_llc_latency_ns").size(), 4u);

    sim::RunResult single = sim::runMix(shardedConfig(1), "Mix3");
    JsonValue sdoc = JsonValue::parse(sim::toJson(single));
    EXPECT_EQ(sdoc.find("shard"), nullptr);
}

TEST(ShardedResilience, PerShardRetryStatsSumToAggregate)
{
    // Sharding (PR-7) composed with the fault/retry stack (PR-5):
    // four shards on the network store, each behind its own injector
    // and retry layer, with enough loss that retries genuinely fire.
    sim::SimConfig cfg = shardedConfig(4);
    cfg.faults.lossRate = 0.05;
    cfg.faults.seed = 99;
    cfg.retry.maxRetries = 8; // timeoutUs = 0: backend-derived deadline
    sim::System sys(cfg, workload::mixProfiles("Mix3"));
    sim::RunResult r = sys.run();

    // The run completed: every LLC request was dispatched and no
    // request ran out of retry budget.
    EXPECT_FALSE(r.hitTickLimit);
    EXPECT_EQ(r.llcRequests, 4u * 60u);
    EXPECT_EQ(r.retryExhausted, 0u);
    ASSERT_TRUE(r.faultsEnabled);
    ASSERT_TRUE(r.retryEnabled);

    // The resilience stack lives per shard, not at the system root.
    EXPECT_EQ(sys.faultInjector(), nullptr);
    EXPECT_EQ(sys.resilientBackend(), nullptr);

    std::uint64_t retries = 0, timeouts = 0, losses = 0;
    for (unsigned s = 0; s < 4; ++s) {
        mem::ResilientBackend *res = sys.shardResilient(s);
        ASSERT_NE(res, nullptr) << "shard " << s;
        retries += res->retries();
        timeouts += res->timeouts();
        mem::FaultInjector *inj = sys.shardInjector(s);
        ASSERT_NE(inj, nullptr) << "shard " << s;
        losses += inj->lossInjected();
    }
    // Aggregates are exactly the per-shard sums, and the injected
    // losses actually exercised the retry path.
    EXPECT_EQ(r.retryAttempts, retries);
    EXPECT_EQ(r.retryTimeouts, timeouts);
    EXPECT_EQ(r.faultLossInjected, losses);
    EXPECT_GT(losses, 0u);
    EXPECT_GT(retries, 0u);
}

TEST(ShardedSystem, SweepByteIdenticalAcrossJobs)
{
    auto points = [] {
        std::vector<sim::SweepPoint> ps;
        ps.push_back(sim::pointFromMix("net_s2", shardedConfig(2),
                                       "Mix3"));
        ps.push_back(sim::pointFromMix("net_s4", shardedConfig(4),
                                       "Mix3"));
        sim::SimConfig dram_cfg = shardedConfig(2);
        dram_cfg.backendKind = sim::BackendKind::dram;
        ps.push_back(
            sim::pointFromMix("dram_s2", dram_cfg, "Mix3"));
        return ps;
    };

    sim::SweepOptions seq;
    seq.jobs = 1;
    auto sequential = sim::SweepRunner(seq).run(points());
    sim::SweepOptions par;
    par.jobs = 4;
    auto parallel = sim::SweepRunner(par).run(points());

    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        ASSERT_TRUE(sequential[i].ok) << sequential[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        // Byte-identical JSON: shard seeding and dispatch are pure
        // functions of the config, not of worker scheduling.
        EXPECT_EQ(sim::toJson(sequential[i].result),
                  sim::toJson(parallel[i].result))
            << sequential[i].name;
    }
}

} // anonymous namespace
} // namespace fp
