/**
 * @file
 * Small-scale regression locks on the figure *shapes* (who wins,
 * what is monotone, where the knee sits). These run the same
 * harness as the bench binaries but at test-sized workloads, so a
 * regression that would silently bend a paper figure fails CI
 * instead.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/spec_profiles.hh"

namespace fp::sim
{
namespace
{

SimConfig
figConfig(std::uint64_t requests = 350)
{
    SimConfig cfg = SimConfig::paperDefault();
    cfg.requestsPerCore = requests;
    cfg.controller.oram.leafLevel = 14;
    cfg.seed = 99;
    return cfg;
}

std::vector<workload::WorkloadProfile>
heavyMix()
{
    return {workload::specProfile("mcf"),
            workload::specProfile("lbm"),
            workload::specProfile("bwaves"),
            workload::specProfile("libquantum")};
}

TEST(FigureShapes, Fig10PathLengthFallsWithQueue)
{
    auto cfg = figConfig();
    auto profiles = heavyMix();
    double prev = 1e9;
    for (unsigned q : {1u, 8u, 32u}) {
        auto r = runProfiles(withMergeOnly(cfg, q), profiles);
        EXPECT_LT(r.avgReadPathLen, prev) << "q=" << q;
        prev = r.avgReadPathLen;
    }
}

TEST(FigureShapes, Fig11RequestOverheadSmallAndGrowing)
{
    auto cfg = figConfig();
    auto profiles = heavyMix();
    auto trad = runProfiles(withTraditional(cfg), profiles);
    auto q8 = runProfiles(withMergeOnly(cfg, 8), profiles);
    auto q64 = runProfiles(withMergeOnly(cfg, 64), profiles);
    double base = static_cast<double>(trad.realAccesses +
                                      trad.dummyAccesses);
    double r8 = q8.totalAccesses() / base;
    double r64 = q64.totalAccesses() / base;
    EXPECT_GE(r8, 0.99);
    EXPECT_LT(r8, 1.2);
    EXPECT_LT(r64, 1.6);
    EXPECT_GE(r64, r8 - 0.02);
}

TEST(FigureShapes, Fig13CacheOrdering)
{
    auto cfg = figConfig();
    auto profiles = heavyMix();
    auto merge = runProfiles(withMergeOnly(cfg, 32), profiles);
    auto mac_small =
        runProfiles(withMergeMac(cfg, 64 << 10, 32), profiles);
    auto mac_big =
        runProfiles(withMergeMac(cfg, 512 << 10, 32), profiles);
    // Caching helps, and more capacity helps more.
    EXPECT_LT(mac_small.avgLlcLatencyNs, merge.avgLlcLatencyNs);
    EXPECT_LT(mac_big.avgLlcLatencyNs, mac_small.avgLlcLatencyNs);
}

TEST(FigureShapes, Fig14SlowdownOrdering)
{
    auto cfg = figConfig();
    auto profiles = heavyMix();
    auto insecure = runProfiles(withInsecure(cfg), profiles);
    auto trad = runProfiles(withTraditional(cfg), profiles);
    auto fork =
        runProfiles(withMergeMac(cfg, 512 << 10, 32), profiles);
    EXPECT_GT(trad.executionTicks, insecure.executionTicks);
    EXPECT_GT(fork.executionTicks, insecure.executionTicks);
    EXPECT_LT(fork.executionTicks, trad.executionTicks);
}

TEST(FigureShapes, Fig15EnergyOrdering)
{
    auto cfg = figConfig();
    auto profiles = heavyMix();
    auto trad = runProfiles(withTraditional(cfg), profiles);
    auto merge = runProfiles(withMergeOnly(cfg, 32), profiles);
    auto mac =
        runProfiles(withMergeMac(cfg, 512 << 10, 32), profiles);
    EXPECT_LT(merge.totalEnergyNj(), trad.totalEnergyNj());
    EXPECT_LT(mac.totalEnergyNj(), merge.totalEnergyNj());
}

TEST(FigureShapes, Fig17bAdvantageDilutesWithDepth)
{
    auto profiles = heavyMix();
    double shallow, deep;
    {
        auto cfg = figConfig(250);
        cfg.controller.oram.leafLevel = 12;
        auto t = runProfiles(withTraditional(cfg), profiles);
        auto f = runProfiles(withMergeOnly(cfg, 32), profiles);
        shallow = f.avgLlcLatencyNs / t.avgLlcLatencyNs;
    }
    {
        auto cfg = figConfig(250);
        cfg.controller.oram.leafLevel = 20;
        auto t = runProfiles(withTraditional(cfg), profiles);
        auto f = runProfiles(withMergeOnly(cfg, 32), profiles);
        deep = f.avgLlcLatencyNs / t.avgLlcLatencyNs;
    }
    // The fixed absolute path-length saving matters less in deeper
    // trees: the normalized advantage shrinks (ratio rises).
    EXPECT_GT(deep, shallow - 0.02);
}

TEST(FigureShapes, ReplacingWindowExists)
{
    // A request arriving shortly after another's read phase must be
    // able to replace the committed dummy (bench_replacing's knee).
    auto cfg = figConfig(250);
    auto with = runProfiles(withMergeOnly(cfg, 16), heavyMix());
    EXPECT_GT(with.dummyReplacements + with.realAccesses, 0u);
}

} // anonymous namespace
} // namespace fp::sim
