/**
 * @file
 * Tests of the sim-layer components not covered by the full-system
 * suite: the SyncOram facade, the controller energy model, and the
 * configuration variant helpers.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/sim_config.hh"
#include "sim/sync_oram.hh"
#include "util/random.hh"

namespace fp::sim
{
namespace
{

core::ControllerParams
syncParams()
{
    auto p = core::ControllerParams::forkPath();
    p.oram.leafLevel = 10;
    p.oram.payloadBytes = 16;
    p.oram.seed = 5;
    p.labelQueueSize = 8;
    p.cacheBudgetBytes = 32 << 10;
    return p;
}

TEST(SyncOram, ReadYourWrites)
{
    SyncOram oram(syncParams());
    std::vector<std::uint8_t> v(16, 0xAB);
    oram.write(9, v);
    EXPECT_EQ(oram.read(9), v);
    EXPECT_EQ(oram.read(10), std::vector<std::uint8_t>(16, 0));
}

TEST(SyncOram, EncryptedMode)
{
    auto p = syncParams();
    p.oram.encrypt = true;
    SyncOram oram(p);
    std::vector<std::uint8_t> v(16, 0x3C);
    oram.write(1, v);
    EXPECT_EQ(oram.read(1), v);
}

TEST(SyncOram, TimeAdvances)
{
    SyncOram oram(syncParams());
    Tick t0 = oram.now();
    oram.write(1, std::vector<std::uint8_t>(16, 1));
    EXPECT_GT(oram.now(), t0);
}

TEST(SyncOram, BlockSizeMatchesConfig)
{
    SyncOram oram(syncParams());
    EXPECT_EQ(oram.blockSize(), 16u);
}

TEST(SyncOramDeathTest, WrongSizeWriteFatal)
{
    SyncOram oram(syncParams());
    EXPECT_DEATH(oram.write(1, std::vector<std::uint8_t>(3, 0)),
                 "write of 3 bytes");
}

TEST(SyncOram, ManyBlocksStressWithMac)
{
    SyncOram oram(syncParams());
    Rng rng(17);
    std::vector<std::uint8_t> expect(64);
    for (std::uint64_t a = 0; a < 64; ++a) {
        std::vector<std::uint8_t> v(16,
                                    static_cast<std::uint8_t>(a));
        oram.write(a, v);
        expect[a] = static_cast<std::uint8_t>(a);
    }
    for (int i = 0; i < 200; ++i) {
        std::uint64_t a = rng.uniformInt(64);
        EXPECT_EQ(oram.read(a)[0], expect[a]);
    }
}

// --- bulk load -----------------------------------------------------------

TEST(SyncOramBulkLoad, ReadsBackAllBlocks)
{
    SyncOram oram(syncParams());
    std::vector<std::pair<BlockAddr, std::vector<std::uint8_t>>>
        blocks;
    for (std::uint64_t a = 0; a < 200; ++a) {
        blocks.emplace_back(
            a, std::vector<std::uint8_t>(
                   16, static_cast<std::uint8_t>(a * 3)));
    }
    oram.bulkLoad(blocks);
    Rng rng(23);
    for (int i = 0; i < 300; ++i) {
        std::uint64_t a = rng.uniformInt(200);
        EXPECT_EQ(oram.read(a)[0],
                  static_cast<std::uint8_t>(a * 3))
            << "addr " << a;
    }
}

TEST(SyncOramBulkLoad, FastPathDominates)
{
    SyncOram oram(syncParams());
    std::vector<std::pair<BlockAddr, std::vector<std::uint8_t>>>
        blocks;
    for (std::uint64_t a = 0; a < 300; ++a)
        blocks.emplace_back(a, std::vector<std::uint8_t>(16, 1));
    std::size_t slow = oram.bulkLoad(blocks);
    // L=10 with MAC band up to ~some level still leaves plenty of
    // deep slots; at most a handful of blocks should need the slow
    // path, and planting must not consume timed accesses.
    EXPECT_LT(slow, 20u);
    EXPECT_EQ(oram.controller().realAccesses(), slow);
}

TEST(SyncOramBulkLoad, CoexistsWithIntegrity)
{
    auto p = syncParams();
    p.enableIntegrity = true;
    SyncOram oram(p);
    std::vector<std::pair<BlockAddr, std::vector<std::uint8_t>>>
        blocks;
    for (std::uint64_t a = 0; a < 100; ++a)
        blocks.emplace_back(
            a, std::vector<std::uint8_t>(
                   16, static_cast<std::uint8_t>(a)));
    oram.bulkLoad(blocks);
    // Post-load accesses must verify cleanly against the root the
    // bulk load maintained.
    Rng rng(29);
    for (int i = 0; i < 150; ++i)
        oram.read(rng.uniformInt(100));
    EXPECT_EQ(oram.controller().merkle()->failures(), 0u);
}

TEST(SyncOramBulkLoadDeathTest, AfterAccessFatal)
{
    SyncOram oram(syncParams());
    oram.write(1, std::vector<std::uint8_t>(16, 1));
    EXPECT_DEATH(
        oram.bulkLoad({{2, std::vector<std::uint8_t>(16, 2)}}),
        "before the first access");
}

// --- energy model -----------------------------------------------------------

TEST(ControllerEnergy, ScalesWithWork)
{
    auto p = syncParams();
    SyncOram small(p), big(p);
    small.write(1, std::vector<std::uint8_t>(16, 1));
    for (std::uint64_t a = 0; a < 64; ++a)
        big.write(a, std::vector<std::uint8_t>(16, 1));
    double e_small =
        controllerEnergyNj(small.controller(), small.now());
    double e_big = controllerEnergyNj(big.controller(), big.now());
    EXPECT_GT(e_big, e_small);
}

TEST(ControllerEnergy, CacheAddsLeakage)
{
    auto with_cache = syncParams();
    auto without = syncParams();
    without.cachePolicy = core::CachePolicy::none;
    SyncOram a(with_cache), b(without);
    a.write(1, std::vector<std::uint8_t>(16, 1));
    b.write(1, std::vector<std::uint8_t>(16, 1));
    // Equal simulated time horizon for a fair leakage comparison.
    Tick horizon = std::max(a.now(), b.now());
    EXPECT_GT(controllerEnergyNj(a.controller(), horizon),
              controllerEnergyNj(b.controller(), horizon));
}

// --- config variants ----------------------------------------------------------

TEST(SimConfigVariants, TraditionalResetsFeatures)
{
    auto cfg = SimConfig::paperDefault();
    cfg.controller.oram.leafLevel = 14;
    auto t = withTraditional(cfg);
    EXPECT_EQ(t.controller.policy, core::PolicyKind::traditional);
    EXPECT_EQ(t.controller.labelQueueSize, 1u);
    EXPECT_EQ(t.controller.cachePolicy, core::CachePolicy::none);
    // ORAM geometry is preserved.
    EXPECT_EQ(t.controller.oram.leafLevel, 14u);
}

TEST(SimConfigVariants, MergeVariants)
{
    auto cfg = SimConfig::paperDefault();
    auto m = withMergeOnly(cfg, 32);
    EXPECT_EQ(m.controller.policy, core::PolicyKind::forkpath);
    EXPECT_EQ(m.controller.labelQueueSize, 32u);
    EXPECT_EQ(m.controller.cachePolicy, core::CachePolicy::none);

    auto mac = withMergeMac(cfg, 256 << 10, 32);
    EXPECT_EQ(mac.controller.cachePolicy, core::CachePolicy::mac);
    EXPECT_EQ(mac.controller.cacheBudgetBytes, 256u << 10);

    auto tt = withMergeTreetop(cfg, 512 << 10, 16);
    EXPECT_EQ(tt.controller.cachePolicy, core::CachePolicy::treetop);

    auto ins = withInsecure(cfg);
    EXPECT_TRUE(ins.insecure);
}

TEST(SimConfigVariants, PaperDefaultMatchesTable1)
{
    auto cfg = SimConfig::paperDefault();
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_EQ(cfg.cpuPeriodTicks, 500u); // 2 GHz
    EXPECT_EQ(cfg.controller.oram.leafLevel, 24u);
    EXPECT_EQ(cfg.controller.oram.z, 4u);
    EXPECT_EQ(cfg.dram.org.channels, 2u);
    // DDR3-1600: 12.8 GB/s per channel.
    EXPECT_NEAR(cfg.dram.org.peakBandwidth(cfg.dram.timing) / 1e9 /
                    cfg.dram.org.channels,
                12.8, 0.1);
}

} // anonymous namespace
} // namespace fp::sim
