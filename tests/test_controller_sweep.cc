/**
 * @file
 * Parameterized property sweep of the ORAM controller across tree
 * depths, bucket sizes, feature combinations and DRAM organizations:
 * every configuration must satisfy the same contracts — functional
 * read-your-writes, the fork-shape chaining invariant on the
 * revealed sequence, bounded stash, and clean drain.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "util/random.hh"

namespace fp::core
{
namespace
{

struct SweepConfig
{
    unsigned leafLevel;
    unsigned z;
    bool merging;
    CachePolicy cache;
    unsigned queueSize;
    unsigned recursionDepth;
    unsigned channels;

    friend std::ostream &
    operator<<(std::ostream &os, const SweepConfig &c)
    {
        os << "L" << c.leafLevel << "_Z" << c.z << "_"
           << (c.merging ? "merge" : "trad") << "_q" << c.queueSize
           << "_cache" << static_cast<int>(c.cache) << "_rec"
           << c.recursionDepth << "_ch" << c.channels;
        return os;
    }
};

class ControllerSweep : public ::testing::TestWithParam<SweepConfig>
{
};

TEST_P(ControllerSweep, ContractHolds)
{
    const SweepConfig &sc = GetParam();

    ControllerParams p;
    p.oram.leafLevel = sc.leafLevel;
    p.oram.z = sc.z;
    p.oram.payloadBytes = 8;
    p.oram.seed = 1000 + sc.leafLevel * 13 + sc.z;
    p.policy = sc.merging ? core::PolicyKind::forkpath : core::PolicyKind::traditional;
    p.enableDummyReplacing = sc.merging;
    p.labelQueueSize = sc.queueSize;
    p.cachePolicy = sc.cache;
    p.cacheBudgetBytes = 16 << 10;
    p.macM1 = sc.cache == CachePolicy::mac ? 2 : -1;
    p.recursionDepth = sc.recursionDepth;
    p.plbEntries = sc.recursionDepth > 0 ? 64 : 0;
    p.blockPhysBytes = 64;

    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(sc.channels),
                          eq);
    OramController ctrl(p, eq, dram);
    ctrl.setRevealTraceEnabled(true);

    // Random functional workload against a reference map.
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(sc.leafLevel * 7 + sc.z * 3 + sc.queueSize);
    const std::uint64_t addr_space =
        std::min<std::uint64_t>(48, 1ULL << sc.leafLevel);
    for (int i = 0; i < 250; ++i) {
        BlockAddr a = rng.uniformInt(addr_space);
        if (rng.chance(0.5)) {
            std::vector<std::uint8_t> v(8);
            for (auto &b : v)
                b = static_cast<std::uint8_t>(rng());
            bool done = false;
            ctrl.request(oram::Op::write, a, v,
                         [&](Tick, const auto &) { done = true; });
            eq.run();
            ASSERT_TRUE(done);
            ref[a] = v;
        } else {
            std::vector<std::uint8_t> out;
            bool done = false;
            ctrl.request(oram::Op::read, a, {},
                         [&](Tick, const auto &d) {
                             out = d;
                             done = true;
                         });
            eq.run();
            ASSERT_TRUE(done);
            auto expect = ref.count(a)
                              ? ref[a]
                              : std::vector<std::uint8_t>(8, 0);
            ASSERT_EQ(out, expect) << "addr " << a << " at op " << i;
        }
    }

    // Clean drain.
    EXPECT_FALSE(ctrl.busy());
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(ctrl.stash().overflowEvents(), 0u);

    // Fork-shape chaining on the revealed sequence.
    const auto &trace = ctrl.revealTrace();
    const auto &geo = ctrl.geometry();
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        if (sc.merging) {
            EXPECT_EQ(trace[i].writeStopLevel,
                      geo.overlap(trace[i].label,
                                  trace[i + 1].label))
                << i;
            EXPECT_EQ(trace[i + 1].readStartLevel,
                      trace[i].writeStopLevel)
                << i;
        } else {
            EXPECT_EQ(trace[i].writeStopLevel, 0u);
            EXPECT_EQ(trace[i].readStartLevel, 0u);
        }
    }

    // Dummies only ever appear under merging.
    if (!sc.merging) {
        EXPECT_EQ(ctrl.dummyAccessesRun(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ControllerSweep,
    ::testing::Values(
        // Tree depth sweep, plain merging.
        SweepConfig{2, 4, true, CachePolicy::none, 4, 0, 2},
        SweepConfig{4, 4, true, CachePolicy::none, 8, 0, 2},
        SweepConfig{8, 4, true, CachePolicy::none, 8, 0, 2},
        SweepConfig{12, 4, true, CachePolicy::none, 16, 0, 2},
        // Bucket size sweep.
        SweepConfig{6, 2, true, CachePolicy::none, 8, 0, 2},
        SweepConfig{6, 6, true, CachePolicy::none, 8, 0, 2},
        SweepConfig{6, 8, true, CachePolicy::none, 8, 0, 2},
        // Baseline (no merging) across depths and Z.
        SweepConfig{5, 4, false, CachePolicy::none, 1, 0, 2},
        SweepConfig{9, 2, false, CachePolicy::none, 1, 0, 2},
        // Cache policies.
        SweepConfig{7, 4, true, CachePolicy::mac, 8, 0, 2},
        SweepConfig{7, 4, true, CachePolicy::treetop, 8, 0, 2},
        SweepConfig{7, 4, false, CachePolicy::treetop, 1, 0, 2},
        // Recursion chains, with and without caches.
        SweepConfig{6, 4, true, CachePolicy::none, 8, 2, 2},
        SweepConfig{6, 4, true, CachePolicy::mac, 8, 3, 2},
        SweepConfig{6, 4, false, CachePolicy::none, 1, 2, 2},
        // DRAM organization variations.
        SweepConfig{6, 4, true, CachePolicy::none, 8, 0, 1},
        SweepConfig{6, 4, true, CachePolicy::none, 8, 0, 4},
        // Queue extremes.
        SweepConfig{6, 4, true, CachePolicy::none, 1, 0, 2},
        SweepConfig{6, 4, true, CachePolicy::none, 64, 0, 2}),
    [](const ::testing::TestParamInfo<SweepConfig> &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });

} // anonymous namespace
} // namespace fp::core
