/**
 * @file
 * Tests of the hierarchical (recursive) position map: the unified
 * address-space layout arithmetic and end-to-end data correctness
 * through multiple recursion levels.
 */

#include <gtest/gtest.h>

#include <map>

#include "oram/recursion.hh"
#include "util/random.hh"

namespace fp::oram
{
namespace
{

TEST(RecursionLayout, FlatWhenSmall)
{
    RecursionLayout layout(100, 8, 1024);
    EXPECT_EQ(layout.numPosmapLevels(), 0u);
    EXPECT_EQ(layout.totalBlocks(), 100u);
    EXPECT_EQ(layout.onChipEntries(), 100u);
}

TEST(RecursionLayout, TwoLevels)
{
    // 4096 data blocks, fanout 8: level1 = 512, level2 = 64 <= 64.
    RecursionLayout layout(4096, 8, 64);
    EXPECT_EQ(layout.numPosmapLevels(), 2u);
    EXPECT_EQ(layout.levelCount(0), 4096u);
    EXPECT_EQ(layout.levelCount(1), 512u);
    EXPECT_EQ(layout.levelCount(2), 64u);
    EXPECT_EQ(layout.levelStart(0), 0u);
    EXPECT_EQ(layout.levelStart(1), 4096u);
    EXPECT_EQ(layout.levelStart(2), 4608u);
    EXPECT_EQ(layout.totalBlocks(), 4096u + 512u + 64u);
}

TEST(RecursionLayout, BlockForAndSlot)
{
    RecursionLayout layout(4096, 8, 64);
    // Data address 100: level-1 block 12 (100/8), slot 4 (100%8).
    EXPECT_EQ(layout.blockFor(1, 100), 4096u + 12u);
    EXPECT_EQ(layout.slotWithin(1, 100), 4u);
    // Level-2 block for 100: 100/64 = 1; slot = 12 % 8 = 4.
    EXPECT_EQ(layout.blockFor(2, 100), 4608u + 1u);
    EXPECT_EQ(layout.slotWithin(2, 100), 4u);
}

TEST(RecursionLayout, NonPowerOfTwoCounts)
{
    RecursionLayout layout(1000, 8, 20);
    EXPECT_EQ(layout.levelCount(1), 125u);
    EXPECT_EQ(layout.levelCount(2), 16u);
    EXPECT_EQ(layout.numPosmapLevels(), 2u);
    // Every data address maps to an in-range block at every level.
    for (BlockAddr a : {0ULL, 999ULL, 512ULL}) {
        for (unsigned lvl = 1; lvl <= 2; ++lvl) {
            BlockAddr b = layout.blockFor(lvl, a);
            EXPECT_GE(b, layout.levelStart(lvl));
            EXPECT_LT(b, layout.levelStart(lvl) +
                             layout.levelCount(lvl));
        }
    }
}

RecursiveOramParams
smallRecursive(std::uint64_t n = 512, std::uint64_t on_chip = 16)
{
    RecursiveOramParams p;
    p.numDataBlocks = n;
    p.fanout = 8;
    p.onChipLimit = on_chip;
    p.payloadBytes = 64;
    p.seed = 42;
    return p;
}

std::vector<std::uint8_t>
valueFor(std::uint64_t x)
{
    std::vector<std::uint8_t> v(64);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<std::uint8_t>(x * 31 + i);
    return v;
}

TEST(RecursivePathOram, ChainLength)
{
    RecursivePathOram oram(smallRecursive());
    // 512 -> 64 -> 8 <= 16: two posmap levels? 512/8=64, 64 > 16,
    // 64/8=8 <= 16 -> 2 levels -> chain 3.
    EXPECT_EQ(oram.layout().numPosmapLevels(), 2u);
    EXPECT_EQ(oram.chainLength(), 3u);
}

TEST(RecursivePathOram, ReadYourWrite)
{
    RecursivePathOram oram(smallRecursive());
    oram.write(17, valueFor(17));
    EXPECT_EQ(oram.read(17), valueFor(17));
}

TEST(RecursivePathOram, FreshReadsZero)
{
    RecursivePathOram oram(smallRecursive());
    EXPECT_EQ(oram.read(3), std::vector<std::uint8_t>(64, 0));
}

TEST(RecursivePathOram, RandomWorkload)
{
    RecursivePathOram oram(smallRecursive());
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(5);
    for (int i = 0; i < 1500; ++i) {
        BlockAddr a = rng.uniformInt(512);
        if (rng.chance(0.5)) {
            auto v = valueFor(rng());
            oram.write(a, v);
            ref[a] = v;
        } else {
            auto expect = ref.count(a)
                              ? ref[a]
                              : std::vector<std::uint8_t>(64, 0);
            EXPECT_EQ(oram.read(a), expect) << "addr " << a;
        }
    }
}

TEST(RecursivePathOram, DeepRecursion)
{
    // Force 3+ levels with a tiny on-chip limit.
    RecursiveOramParams p = smallRecursive(4096, 2);
    RecursivePathOram oram(p);
    EXPECT_GE(oram.layout().numPosmapLevels(), 3u);
    std::map<BlockAddr, std::vector<std::uint8_t>> ref;
    Rng rng(6);
    for (int i = 0; i < 400; ++i) {
        BlockAddr a = rng.uniformInt(4096);
        auto v = valueFor(rng());
        oram.write(a, v);
        ref[a] = v;
    }
    for (const auto &[a, v] : ref)
        EXPECT_EQ(oram.read(a), v) << "addr " << a;
}

TEST(RecursivePathOram, StashBounded)
{
    RecursivePathOram oram(smallRecursive());
    Rng rng(8);
    for (int i = 0; i < 1000; ++i)
        oram.write(rng.uniformInt(512), valueFor(i));
    EXPECT_EQ(oram.engine().stash().overflowEvents(), 0u);
}

} // anonymous namespace
} // namespace fp::oram
