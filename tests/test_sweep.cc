/**
 * @file
 * SweepRunner tests: parallel execution must be a pure reordering of
 * sequential execution (identical ordered results), failing points
 * must be isolated into error records, and concurrent Systems must
 * not share statistics state (run under TSan in CI).
 */

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "sim/sweep.hh"
#include "sim/system.hh"
#include "util/logging.hh"
#include "workload/spec_profiles.hh"

namespace fp::sim
{
namespace
{

SimConfig
smallConfig(std::uint64_t seed)
{
    SimConfig cfg = SimConfig::paperDefault();
    cfg.cores = 2;
    cfg.requestsPerCore = 60;
    cfg.controller.oram.leafLevel = 10;
    cfg.seed = seed;
    return cfg;
}

std::vector<workload::WorkloadProfile>
twoCoreProfiles()
{
    return {workload::specProfile("mcf"),
            workload::specProfile("lbm")};
}

std::vector<SweepPoint>
twelvePoints()
{
    std::vector<SweepPoint> points;
    for (unsigned i = 0; i < 12; ++i) {
        auto cfg = i % 2 ? withMergeOnly(smallConfig(100 + i), 8)
                         : withTraditional(smallConfig(100 + i));
        points.push_back(pointFromProfiles(
            "p" + std::to_string(i), cfg, twoCoreProfiles()));
    }
    return points;
}

/** Fields that pin down a run for cross-job comparison. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.executionTicks, b.executionTicks);
    EXPECT_EQ(a.realAccesses, b.realAccesses);
    EXPECT_EQ(a.dummyAccesses, b.dummyAccesses);
    EXPECT_EQ(a.rowHits, b.rowHits);
    EXPECT_EQ(a.rowMisses, b.rowMisses);
    EXPECT_EQ(a.llcRequests, b.llcRequests);
    EXPECT_DOUBLE_EQ(a.avgLlcLatencyNs, b.avgLlcLatencyNs);
    EXPECT_DOUBLE_EQ(a.avgReadPathLen, b.avgReadPathLen);
    EXPECT_DOUBLE_EQ(a.dramEnergyNj, b.dramEnergyNj);
}

TEST(Sweep, ParallelMatchesSequential)
{
    SweepOptions seq;
    seq.jobs = 1;
    auto sequential = SweepRunner(seq).run(twelvePoints());

    SweepOptions par;
    par.jobs = 4;
    auto parallel = SweepRunner(par).run(twelvePoints());

    ASSERT_EQ(sequential.size(), 12u);
    ASSERT_EQ(parallel.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(sequential[i].name, parallel[i].name);
        ASSERT_TRUE(sequential[i].ok) << sequential[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        expectSameResult(sequential[i].result, parallel[i].result);
    }
}

TEST(Sweep, ResultsStayInSubmissionOrder)
{
    auto points = twelvePoints();
    std::vector<std::string> expected;
    for (const auto &p : points)
        expected.push_back(p.name);

    SweepOptions opt;
    opt.jobs = 3;
    auto outcomes = SweepRunner(opt).run(std::move(points));
    ASSERT_EQ(outcomes.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(outcomes[i].name, expected[i]);
}

TEST(Sweep, FailingPointYieldsErrorRecordNotSweepDeath)
{
    auto points = twelvePoints();
    // Poison one point: a profile-count/core-count mismatch trips an
    // fp_assert inside System's constructor.
    points[5].profiles.pop_back();

    for (unsigned jobs : {1u, 4u}) {
        SweepOptions opt;
        opt.jobs = jobs;
        auto outcomes = SweepRunner(opt).run(points);
        ASSERT_EQ(outcomes.size(), 12u);
        EXPECT_FALSE(outcomes[5].ok);
        EXPECT_NE(outcomes[5].error.find("profiles"),
                  std::string::npos)
            << outcomes[5].error;
        for (std::size_t i = 0; i < 12; ++i) {
            if (i == 5)
                continue;
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
        }
    }
}

TEST(Sweep, OnPointDoneSeesEveryPoint)
{
    SweepOptions opt;
    opt.jobs = 4;
    std::size_t calls = 0;
    std::size_t last_done = 0;
    opt.onPointDone = [&](const SweepOutcome &, std::size_t done,
                          std::size_t total) {
        // Serialized by the runner's lock, so plain variables are
        // safe here.
        ++calls;
        EXPECT_EQ(done, last_done + 1);
        EXPECT_EQ(total, 12u);
        last_done = done;
    };
    auto outcomes = SweepRunner(opt).run(twelvePoints());
    EXPECT_EQ(calls, 12u);
    EXPECT_EQ(outcomes.size(), 12u);
}

TEST(Sweep, TickLimitTruncatesInsteadOfAborting)
{
    auto points = twelvePoints();
    points.resize(2);
    points[0].limit = 1'000'000; // far too few ticks to finish
    SweepOptions opt;
    opt.jobs = 1;
    auto outcomes = SweepRunner(opt).run(std::move(points));
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(outcomes[0].result.hitTickLimit);
    EXPECT_GT(outcomes[0].result.executionTicks, 0u);
    ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
    EXPECT_FALSE(outcomes[1].result.hitTickLimit);
}

TEST(Sweep, ConcurrentSystemsKeepDisjointStatRegistries)
{
    // Two Systems built and run on separate threads at once: each
    // must see only its own StatGroups. TSan (the CI thread-sanitizer
    // job) additionally checks for data races here.
    auto run_one = [](std::uint64_t seed, std::size_t *groups,
                      RunResult *result) {
        SimConfig cfg = withTraditional(smallConfig(seed));
        System system(cfg, {workload::specProfile("mcf"),
                            workload::specProfile("lbm")});
        *groups = system.statRegistry().size();
        *result = system.run();
    };

    std::size_t groups_a = 0, groups_b = 0;
    RunResult res_a, res_b;
    std::thread ta(run_one, 1, &groups_a, &res_a);
    std::thread tb(run_one, 2, &groups_b, &res_b);
    ta.join();
    tb.join();

    EXPECT_GT(groups_a, 0u);
    EXPECT_EQ(groups_a, groups_b);
    EXPECT_GT(res_a.executionTicks, 0u);
    EXPECT_GT(res_b.executionTicks, 0u);

    // And the same runs single-threaded give identical numbers: the
    // concurrent Systems did not perturb each other.
    std::size_t groups_c = 0;
    RunResult res_c;
    run_one(1, &groups_c, &res_c);
    EXPECT_EQ(groups_c, groups_a);
    EXPECT_EQ(res_c.executionTicks, res_a.executionTicks);
    EXPECT_EQ(res_c.realAccesses, res_a.realAccesses);
}

TEST(Sweep, RecoverableFailureGuardRestoresMode)
{
    EXPECT_FALSE(recoverableFailuresEnabled());
    {
        ScopedRecoverableFailures guard;
        EXPECT_TRUE(recoverableFailuresEnabled());
        EXPECT_THROW(fp_panic("intentional test panic"), SimFailure);
        {
            ScopedRecoverableFailures nested;
            EXPECT_TRUE(recoverableFailuresEnabled());
        }
        EXPECT_TRUE(recoverableFailuresEnabled());
    }
    EXPECT_FALSE(recoverableFailuresEnabled());
}

TEST(Sweep, HardwareJobsIsPositive)
{
    EXPECT_GE(SweepRunner::hardwareJobs(), 1u);
}

} // anonymous namespace
} // namespace fp::sim
