/**
 * @file
 * Tests of the workload substrate: profile tables, Table 2 mixes,
 * address-stream behaviour and the core model's issue discipline.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/event_queue.hh"
#include "workload/core_model.hh"
#include "workload/mixes.hh"
#include "workload/parsec_profiles.hh"
#include "workload/spec_profiles.hh"

namespace fp::workload
{
namespace
{

TEST(SpecProfiles, Table2BenchmarksExist)
{
    for (const char *name :
         {"povray", "sjeng", "GemsFDTD", "h264ref", "bzip2", "tonto",
          "omnetpp", "astar", "gcc", "bwaves", "mcf", "gromacs",
          "libquantum", "lbm", "wrf", "namd", "calculix"}) {
        EXPECT_NO_FATAL_FAILURE(specProfile(name)) << name;
        EXPECT_EQ(specProfile(name).name, name);
    }
}

TEST(SpecProfiles, GroupsPartitionTheTable)
{
    auto lg = lowOverheadGroup();
    auto hg = highOverheadGroup();
    EXPECT_EQ(lg.size() + hg.size(), specNames().size());
    for (const auto &n : lg)
        EXPECT_FALSE(specProfile(n).highOverheadGroup);
    for (const auto &n : hg)
        EXPECT_TRUE(specProfile(n).highOverheadGroup);
}

TEST(SpecProfiles, HgIsMoreIntenseThanLgOnAverage)
{
    // The paper's grouping is by ORAM overhead, which tracks but is
    // not identical to miss intensity (namd sits in HG with moderate
    // intensity); require clear separation of the group means.
    double lg_sum = 0, hg_sum = 0;
    for (const auto &n : lowOverheadGroup())
        lg_sum += specProfile(n).missIntervalCycles;
    for (const auto &n : highOverheadGroup())
        hg_sum += specProfile(n).missIntervalCycles;
    double lg_mean = lg_sum / lowOverheadGroup().size();
    double hg_mean = hg_sum / highOverheadGroup().size();
    EXPECT_GT(lg_mean, 1.8 * hg_mean);
}

TEST(Mixes, Table2Composition)
{
    EXPECT_EQ(mixNames().size(), 10u);
    EXPECT_EQ(mixMembers("Mix1"),
              (std::vector<std::string>{"povray", "sjeng", "GemsFDTD",
                                        "h264ref"}));
    EXPECT_EQ(mixMembers("Mix7"),
              (std::vector<std::string>{"bwaves", "bwaves", "bwaves",
                                        "bwaves"}));
    EXPECT_EQ(mixMembers("Mix10"),
              (std::vector<std::string>{"bzip2", "povray",
                                        "libquantum", "libquantum"}));
    for (const auto &mix : mixNames())
        EXPECT_EQ(mixMembers(mix).size(), 4u) << mix;
}

TEST(Mixes, LowHighGroupMembership)
{
    // Mix1/Mix2 all-LG; Mix3/Mix4 all-HG (paper text).
    for (const auto &n : mixMembers("Mix1"))
        EXPECT_FALSE(specProfile(n).highOverheadGroup) << n;
    for (const auto &n : mixMembers("Mix2"))
        EXPECT_FALSE(specProfile(n).highOverheadGroup) << n;
    for (const auto &n : mixMembers("Mix3"))
        EXPECT_TRUE(specProfile(n).highOverheadGroup) << n;
    for (const auto &n : mixMembers("Mix4"))
        EXPECT_TRUE(specProfile(n).highOverheadGroup) << n;
}

TEST(Mixes, GeneratedMixesDeterministic)
{
    auto a = makeMixForCores(8, 5);
    auto b = makeMixForCores(8, 5);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].name, b[i].name);
}

TEST(Parsec, ProfilesExist)
{
    EXPECT_EQ(parsecNames().size(), 10u);
    EXPECT_NO_FATAL_FAILURE(parsecProfile("canneal"));
    auto threads = parsecThreads("x264", 4);
    EXPECT_EQ(threads.size(), 4u);
    EXPECT_EQ(threads[0].name, "x264");
}

TEST(AddressStream, StaysInWorkingSet)
{
    WorkloadProfile p = specProfile("mcf");
    AddressStream s(p, 1000, Rng(5));
    for (int i = 0; i < 20000; ++i) {
        auto req = s.next();
        EXPECT_GE(req.addr, 1000u);
        EXPECT_LT(req.addr, 1000u + p.workingSetBlocks);
    }
}

TEST(AddressStream, WriteFractionApproximatelyHonored)
{
    WorkloadProfile p = specProfile("lbm"); // 0.45 writes
    AddressStream s(p, 0, Rng(7));
    int writes = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += s.next().isWrite;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFraction,
                0.02);
}

TEST(AddressStream, SequentialRunsExist)
{
    WorkloadProfile p = specProfile("libquantum"); // seq-heavy
    AddressStream s(p, 0, Rng(9));
    int seq_pairs = 0;
    BlockAddr prev = s.next().addr;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        BlockAddr cur = s.next().addr;
        seq_pairs += (cur == prev + 1);
        prev = cur;
    }
    EXPECT_GT(seq_pairs, n / 3);
}

TEST(AddressStream, Deterministic)
{
    WorkloadProfile p = specProfile("gcc");
    AddressStream a(p, 0, Rng(11)), b(p, 0, Rng(11));
    for (int i = 0; i < 1000; ++i) {
        auto ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST(Phases, DutyCycledIntervals)
{
    WorkloadProfile p = specProfile("omnetpp"); // phased LG member
    ASSERT_GT(p.phasePeriodMisses, 0u);
    double low = p.missIntervalAt(0);  // cycle starts low-intensity
    double high = p.missIntervalAt(p.phasePeriodMisses - 1);
    EXPECT_GT(low, high * 2.0);
    EXPECT_DOUBLE_EQ(high, p.missIntervalCycles);
    // Periodic in the miss index.
    EXPECT_DOUBLE_EQ(p.missIntervalAt(0),
                     p.missIntervalAt(p.phasePeriodMisses));
}

TEST(Phases, SteadyProfilesUnchanged)
{
    WorkloadProfile p = specProfile("mcf");
    EXPECT_EQ(p.phasePeriodMisses, 0u);
    EXPECT_DOUBLE_EQ(p.missIntervalAt(12345), p.missIntervalCycles);
}

// --- core model: a sink with programmable latency ------------------------

class FakeSink : public MemorySink
{
  public:
    FakeSink(EventQueue &eq, Tick latency) : eq_(eq), latency_(latency)
    {
    }

    bool canAccept() const override { return true; }

    bool
    access(const MemRequest &, ResponseFn on_response) override
    {
        ++inFlight_;
        maxInFlight_ = std::max(maxInFlight_, inFlight_);
        ++total_;
        eq_.scheduleIn(latency_, [this, cb = std::move(on_response)] {
            --inFlight_;
            cb(eq_.now());
        });
        return true;
    }

    unsigned maxInFlight_ = 0;
    unsigned inFlight_ = 0;
    std::uint64_t total_ = 0;

  private:
    EventQueue &eq_;
    Tick latency_;
};

TEST(CoreModel, IssuesExactBudget)
{
    EventQueue eq;
    FakeSink sink(eq, 1000);
    CoreParams cp;
    cp.totalRequests = 500;
    cp.maxOutstanding = 4;
    CoreModel core(cp, specProfile("mcf"), 0, 1, eq, sink);
    core.start();
    eq.run();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.issued(), 500u);
    EXPECT_EQ(sink.total_, 500u);
    EXPECT_GT(core.finishTick(), 0u);
}

TEST(CoreModel, RespectsMlpLimit)
{
    EventQueue eq;
    FakeSink sink(eq, 1'000'000); // slow memory forces queueing
    CoreParams cp;
    cp.totalRequests = 200;
    cp.maxOutstanding = 3;
    CoreModel core(cp, specProfile("mcf"), 0, 2, eq, sink);
    core.start();
    eq.run();
    EXPECT_TRUE(core.done());
    EXPECT_LE(sink.maxInFlight_, 3u);
    EXPECT_EQ(sink.maxInFlight_, 3u); // memory-bound: cap reached
}

TEST(CoreModel, InOrderHasOneOutstanding)
{
    EventQueue eq;
    FakeSink sink(eq, 100'000);
    CoreParams cp;
    cp.totalRequests = 100;
    cp.maxOutstanding = 1;
    CoreModel core(cp, specProfile("lbm"), 0, 3, eq, sink);
    core.start();
    eq.run();
    EXPECT_EQ(sink.maxInFlight_, 1u);
}

TEST(CoreModel, ComputeGapsSlowLightWorkloads)
{
    // A low-intensity profile should take longer wall-clock than a
    // high-intensity one against the same instant memory.
    auto run_one = [](const WorkloadProfile &p) {
        EventQueue eq;
        FakeSink sink(eq, 10);
        CoreParams cp;
        cp.totalRequests = 300;
        CoreModel core(cp, p, 0, 4, eq, sink);
        core.start();
        eq.run();
        return core.finishTick();
    };
    EXPECT_GT(run_one(specProfile("povray")),
              5 * run_one(specProfile("mcf")));
}

TEST(CoreModel, MissLatencyRecorded)
{
    EventQueue eq;
    FakeSink sink(eq, 2000);
    CoreParams cp;
    cp.totalRequests = 50;
    CoreModel core(cp, specProfile("gcc"), 0, 5, eq, sink);
    core.start();
    eq.run();
    EXPECT_EQ(core.missLatency().count(), 50u);
    EXPECT_NEAR(core.missLatency().mean(), 2.0, 0.1); // 2000 ticks = 2ns
}

} // anonymous namespace
} // namespace fp::workload
