/**
 * @file
 * Tests of the operating-mode options added around the core design:
 * periodic (nonstop-stream) operation, the closed-page DRAM policy,
 * line-interleaved address mapping, and JSON result export.
 */

#include <gtest/gtest.h>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "sim/metrics.hh"
#include "util/debug.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace fp
{
namespace
{

// --- periodic (nonstop-stream) mode -----------------------------------------

core::ControllerParams
periodicParams(Tick interval)
{
    core::ControllerParams p;
    p.oram.leafLevel = 6;
    p.oram.payloadBytes = 8;
    p.oram.seed = 77;
    p.labelQueueSize = 8;
    p.periodicIntervalTicks = interval;
    return p;
}

TEST(PeriodicMode, StreamsWithoutRequests)
{
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(periodicParams(1'000'000), eq, dram);
    // One request to prime the stream, then let it free-run.
    ctrl.request(oram::Op::write, 1, std::vector<std::uint8_t>(8, 1),
                 [](Tick, const auto &) {});
    eq.run(50'000'000); // 50 us
    // ~50 slots of 1 us: the dummy stream must keep firing.
    EXPECT_GT(ctrl.totalAccesses(), 30u);
    EXPECT_GT(ctrl.dummyAccessesRun(), 20u);
}

TEST(PeriodicMode, AccessesLandOnTheGrid)
{
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    auto p = periodicParams(2'000'000);
    EventQueue *eqp = &eq;
    core::OramController ctrl(p, eq, dram);
    ctrl.setRevealTraceEnabled(true);
    ctrl.request(oram::Op::read, 1, {}, [](Tick, const auto &) {});
    eq.run(30'000'000);
    // Rate: at most one access per 2 us window (plus the primer).
    double windows = 30.0 / 2.0;
    EXPECT_LE(ctrl.totalAccesses(),
              static_cast<std::uint64_t>(windows) + 2);
    (void)eqp;
}

TEST(PeriodicMode, TimingChannelSealed)
{
    // The bus-visible access start times must land on the fixed
    // grid regardless of when real requests arrive: consecutive
    // starts are separated by at least the interval and show no
    // request-correlated jitter.
    const Tick interval = 1'500'000;
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(periodicParams(interval), eq, dram);
    ctrl.setRevealTraceEnabled(true);

    Rng rng(3);
    // Bursty, data-dependent request arrivals.
    for (int burst = 0; burst < 5; ++burst) {
        eq.schedule(burst * 7'777'777 + 123'456, [&ctrl, &rng] {
            for (int k = 0; k < 3; ++k) {
                ctrl.request(oram::Op::read, rng.uniformInt(128),
                             {}, [](Tick, const auto &) {});
            }
        });
    }
    eq.run(60'000'000);

    const auto &trace = ctrl.revealTrace();
    ASSERT_GT(trace.size(), 10u);
    for (std::size_t i = 1; i < trace.size(); ++i) {
        Tick gap = trace[i].readStartTick -
                   trace[i - 1].readStartTick;
        EXPECT_GE(gap, interval) << "at access " << i;
        // Back-to-back grid slots when the system keeps up.
        EXPECT_LE(gap % interval, interval / 4)
            << "off-grid start at access " << i;
    }
}

TEST(PeriodicMode, RequestsStillComplete)
{
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(periodicParams(1'500'000), eq, dram);
    std::vector<std::uint8_t> out;
    bool done = false;
    ctrl.request(oram::Op::write, 3, std::vector<std::uint8_t>(8, 9),
                 [](Tick, const auto &) {});
    ctrl.request(oram::Op::read, 3, {}, [&](Tick, const auto &d) {
        out = d;
        done = true;
    });
    eq.runWhile([&] { return !done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(out, std::vector<std::uint8_t>(8, 9));
}

TEST(PeriodicMode, NonMergingBaselineStreamsToo)
{
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    auto p = periodicParams(1'000'000);
    p.policy = core::PolicyKind::traditional;
    p.enableDummyReplacing = false;
    p.labelQueueSize = 1;
    core::OramController ctrl(p, eq, dram);
    ctrl.request(oram::Op::read, 1, {}, [](Tick, const auto &) {});
    eq.run(40'000'000);
    EXPECT_GT(ctrl.dummyAccessesRun(), 15u);
}

TEST(PeriodicMode, DemandModeStillDrains)
{
    EventQueue eq;
    dram::DramSystem dram(dram::DramParams::ddr3_1600(2), eq);
    core::OramController ctrl(periodicParams(0), eq, dram);
    ctrl.request(oram::Op::read, 1, {}, [](Tick, const auto &) {});
    eq.run();
    EXPECT_TRUE(eq.empty());
}

// --- closed-page policy ---------------------------------------------------

Tick
timedAccess(dram::DramSystem &dram, EventQueue &eq, Addr addr)
{
    Tick done = 0;
    Tick start = eq.now();
    dram::DramRequest req;
    req.addr = addr;
    req.bursts = 4;
    req.onComplete = [&](Tick t) { done = t; };
    dram.access(std::move(req));
    eq.run();
    return done - start;
}

TEST(ClosedPage, NoRowHits)
{
    EventQueue eq;
    auto params = dram::DramParams::ddr3_1600(1);
    params.pagePolicy = dram::PagePolicy::closed;
    dram::DramSystem dram(params, eq);
    timedAccess(dram, eq, 0);
    timedAccess(dram, eq, 64); // same row under open policy
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(ClosedPage, SameRowSlowerThanOpenPolicy)
{
    EventQueue eq_open, eq_closed;
    auto open_params = dram::DramParams::ddr3_1600(1);
    auto closed_params = open_params;
    closed_params.pagePolicy = dram::PagePolicy::closed;
    dram::DramSystem open_dram(open_params, eq_open);
    dram::DramSystem closed_dram(closed_params, eq_closed);

    timedAccess(open_dram, eq_open, 0);
    Tick open_second = timedAccess(open_dram, eq_open, 64);
    timedAccess(closed_dram, eq_closed, 0);
    Tick closed_second = timedAccess(closed_dram, eq_closed, 64);
    EXPECT_GT(closed_second, open_second);
}

TEST(ClosedPage, ConflictNoSlowerThanOpenPolicy)
{
    // Closed page's win: a row conflict needs no demand precharge.
    EventQueue eq;
    auto params = dram::DramParams::ddr3_1600(1);
    params.pagePolicy = dram::PagePolicy::closed;
    dram::DramSystem dram(params, eq);
    timedAccess(dram, eq, 0);
    // Let the auto-precharge complete, then hit another row of the
    // same bank: only ACT+CAS remain (no demand precharge).
    eq.schedule(eq.now() + 200'000, [] {});
    eq.run();
    Tick t = timedAccess(dram, eq, 8192 * 8);
    auto &p = params.timing;
    EXPECT_EQ(t, p.cycles(p.tRCD + p.cl + 4 * p.tBURST));
}

// --- line-interleaved mapping ------------------------------------------------

TEST(LineInterleave, RotatesChannelsPerBurst)
{
    dram::DramOrganization org;
    org.channels = 2;
    org.mapPolicy = dram::AddressMapPolicy::lineInterleaved;
    dram::AddressMapping map(org);
    EXPECT_EQ(map.decode(0).channel, 0u);
    EXPECT_EQ(map.decode(64).channel, 1u);
    EXPECT_EQ(map.decode(128).channel, 0u);
}

TEST(LineInterleave, FieldsInRange)
{
    dram::DramOrganization org;
    org.mapPolicy = dram::AddressMapPolicy::lineInterleaved;
    dram::AddressMapping map(org);
    for (Addr a = 0; a < (1ULL << 24); a += 4093) {
        auto loc = map.decode(a);
        EXPECT_LT(loc.channel, org.channels);
        EXPECT_LT(loc.bank, org.banksTotal());
        EXPECT_LT(loc.column, org.rowBytes);
    }
}

TEST(LineInterleave, DistinctAddressesDistinctLocations)
{
    dram::DramOrganization org;
    org.mapPolicy = dram::AddressMapPolicy::lineInterleaved;
    dram::AddressMapping map(org);
    auto key = [&](Addr a) {
        auto loc = map.decode(a);
        return std::tuple(loc.channel, loc.bank, loc.row,
                          loc.column);
    };
    std::set<std::tuple<unsigned, unsigned, std::uint64_t,
                        std::uint64_t>>
        seen;
    for (Addr a = 0; a < 1 << 16; a += 64)
        EXPECT_TRUE(seen.insert(key(a)).second) << a;
}

// --- debug tracing -----------------------------------------------------------

TEST(DebugTrace, CategoriesParse)
{
    setDebugCategories("oram,dram");
    EXPECT_TRUE(debugEnabled(DebugCat::oram));
    EXPECT_TRUE(debugEnabled(DebugCat::dram));
    EXPECT_FALSE(debugEnabled(DebugCat::sched));
    setDebugCategories("all");
    EXPECT_TRUE(debugEnabled(DebugCat::cache));
    setDebugCategories("");
    EXPECT_FALSE(debugEnabled(DebugCat::oram));
}

// --- JSON -----------------------------------------------------------------

TEST(Json, ScalarsAndNesting)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "fork\"path\n")
        .field("count", std::uint64_t{42})
        .field("ratio", 0.25)
        .field("ok", true)
        .key("inner")
        .beginObject()
        .field("x", std::int64_t{-1})
        .endObject()
        .key("list")
        .beginArray()
        .value(std::uint64_t{1})
        .value(std::uint64_t{2})
        .endArray()
        .key("nothing")
        .nullValue()
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"fork\\\"path\\n\",\"count\":42,"
              "\"ratio\":0.25,\"ok\":true,\"inner\":{\"x\":-1},"
              "\"list\":[1,2],\"nothing\":null}");
}

TEST(Json, EscapesControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape(std::string("\x01")), "\\u0001");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
}

TEST(Json, RunResultSerialises)
{
    sim::RunResult r;
    r.avgLlcLatencyNs = 123.5;
    r.realAccesses = 10;
    std::string j = sim::toJson(r);
    EXPECT_NE(j.find("\"avg_llc_latency_ns\":123.5"),
              std::string::npos);
    EXPECT_NE(j.find("\"real_accesses\":10"), std::string::npos);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

} // anonymous namespace
} // namespace fp
