/**
 * @file
 * Trace player: run one of the paper's Table 2 workload mixes (or a
 * PARSEC workload) through the full system — cores, ORAM controller,
 * DDR3 — under a chosen controller configuration, and print the run
 * metrics. This is the command-line face of the experiment harness
 * the figure benches are built on.
 *
 *   ./trace_player --mix=Mix3 --mode=fork --requests=2000
 *   ./trace_player --parsec=canneal --mode=traditional
 *   ./trace_player --mix=Mix4 --mode=mac --cache-kb=1024 --queue=64
 *   ./trace_player --trace=misses.txt --gap-cycles=500
 *
 * Trace files hold one request per line (`r <addr>` / `w <addr>`,
 * `#` comments); see src/workload/trace_io.hh.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "workload/trace_io.hh"

int
main(int argc, char **argv)
{
    fp::CliArgs args(argc, argv);
    const std::string mix = args.getString("mix", "Mix3");
    const std::string parsec = args.getString("parsec", "");
    const std::string mode = args.getString("mode", "fork");
    const auto requests =
        static_cast<std::uint64_t>(args.getInt("requests", 2000));
    const auto queue =
        static_cast<unsigned>(args.getInt("queue", 64));
    const auto cache_kb =
        static_cast<std::uint64_t>(args.getInt("cache-kb", 1024));
    const auto leaf =
        static_cast<unsigned>(args.getInt("leaf-level", 18));

    fp::sim::SimConfig cfg = fp::sim::SimConfig::paperDefault();
    cfg.requestsPerCore = requests;
    cfg.controller.oram.leafLevel = leaf;

    if (mode == "traditional") {
        cfg = fp::sim::withTraditional(cfg);
    } else if (mode == "fork") {
        cfg = fp::sim::withMergeOnly(cfg, queue);
    } else if (mode == "mac") {
        cfg = fp::sim::withMergeMac(cfg, cache_kb << 10, queue);
    } else if (mode == "treetop") {
        cfg = fp::sim::withMergeTreetop(cfg, cache_kb << 10, queue);
    } else if (mode == "insecure") {
        if (args.has("trace"))
            fp_fatal("--trace requires an ORAM mode");
        cfg = fp::sim::withInsecure(cfg);
    } else {
        fp_fatal("unknown --mode=%s (traditional|fork|mac|treetop|"
                 "insecure)",
                 mode.c_str());
    }

    const std::string trace_path = args.getString("trace", "");
    fp::sim::RunResult r;
    if (!trace_path.empty()) {
        // Replay a recorded miss trace through one core-equivalent
        // issue engine with a fixed compute gap.
        auto trace = fp::workload::loadTrace(trace_path);
        const auto gap = static_cast<fp::Tick>(
            args.getInt("gap-cycles", 500) * 500);
        const auto mlp =
            static_cast<unsigned>(args.getInt("mlp", 16));
        std::printf("trace_player: %s (%zu requests), mode=%s, "
                    "queue=%u, L=%u\n\n",
                    trace_path.c_str(), trace.size(), mode.c_str(),
                    queue, leaf);

        fp::EventQueue eq;
        fp::dram::DramSystem dram(cfg.dram, eq);
        fp::core::OramController ctrl(cfg.controller, eq, dram);
        std::size_t issued = 0, done = 0;
        unsigned outstanding = 0;
        fp::Average latency;
        std::function<void()> pump = [&] {
            while (issued < trace.size() && outstanding < mlp &&
                   ctrl.canAccept()) {
                const auto &req = trace[issued];
                fp::Tick t0 = eq.now();
                auto id = ctrl.request(
                    req.isWrite ? fp::oram::Op::write
                                : fp::oram::Op::read,
                    req.addr, {},
                    [&, t0](fp::Tick t, const auto &) {
                        ++done;
                        --outstanding;
                        latency.sample(fp::ticksToNs(t - t0));
                        eq.scheduleIn(0, pump);
                    });
                if (id == 0)
                    break;
                ++issued;
                ++outstanding;
                eq.scheduleIn(gap, pump);
                break; // pace one issue per gap
            }
        };
        pump();
        eq.run();
        fp_assert(done == trace.size(), "trace did not drain");

        r.llcRequests = trace.size();
        r.executionTicks = eq.now();
        r.avgLlcLatencyNs = latency.mean();
        r.avgReadPathLen = ctrl.avgReadPathLength();
        r.avgDramBucketsRead = ctrl.avgDramBucketsRead();
        r.realAccesses = ctrl.realAccesses();
        r.dummyAccesses = ctrl.dummyAccessesRun();
        r.dummyReplacements = ctrl.dummyReplacements();
        r.stashPeak = ctrl.stash().peakSize();
        r.stashOverflows = ctrl.stash().overflowEvents();
        r.rowHits = dram.rowHits();
        r.rowMisses = dram.rowMisses();
        r.dramEnergyNj = dram.energy(eq.now()).total();
        r.controllerEnergyNj =
            fp::sim::controllerEnergyNj(ctrl, eq.now());
        if (args.getBool("stats")) {
            ctrl.stats().print(std::cout);
            for (unsigned c = 0; c < dram.numChannels(); ++c)
                dram.channel(c).stats().print(std::cout);
            std::printf("\n");
        }
    } else {
        std::printf("trace_player: %s, mode=%s, queue=%u, L=%u, "
                    "%llu requests/core\n\n",
                    parsec.empty() ? mix.c_str() : parsec.c_str(),
                    mode.c_str(), queue, leaf,
                    static_cast<unsigned long long>(requests));
        r = parsec.empty() ? fp::sim::runMix(cfg, mix)
                           : fp::sim::runParsec(cfg, parsec);
    }

    if (args.getBool("json")) {
        std::printf("%s\n", fp::sim::toJson(r).c_str());
        return 0;
    }

    std::printf("execution time:       %.3f ms\n",
                fp::ticksToNs(r.executionTicks) / 1e6);
    std::printf("LLC requests:         %llu\n",
                static_cast<unsigned long long>(r.llcRequests));
    std::printf("avg ORAM latency:     %.1f ns\n",
                r.avgLlcLatencyNs);
    if (!cfg.insecure) {
        std::printf("avg fetched path:     %.2f buckets\n",
                    r.avgReadPathLen);
        std::printf("avg DRAM buckets:     %.2f per access\n",
                    r.avgDramBucketsRead);
        std::printf("ORAM accesses:        %llu real + %llu dummy\n",
                    static_cast<unsigned long long>(r.realAccesses),
                    static_cast<unsigned long long>(r.dummyAccesses));
        std::printf("dummy replacements:   %llu\n",
                    static_cast<unsigned long long>(
                        r.dummyReplacements));
        std::printf("stash peak:           %zu blocks "
                    "(overflows: %llu)\n",
                    r.stashPeak,
                    static_cast<unsigned long long>(
                        r.stashOverflows));
        std::printf("cache hits/misses:    %llu / %llu\n",
                    static_cast<unsigned long long>(r.cacheHits),
                    static_cast<unsigned long long>(r.cacheMisses));
    }
    std::printf("DRAM row hit rate:    %.1f %%\n",
                100.0 * r.rowHitRate());
    std::printf("energy:               %.3f mJ DRAM + %.3f mJ "
                "controller\n",
                r.dramEnergyNj / 1e6, r.controllerEnergyNj / 1e6);
    return 0;
}
