/**
 * @file
 * ORAM design-space explorer: sweep one Fork Path parameter (label
 * queue size, tree depth, cache budget or DRAM channels) and print
 * the resulting path length, latency and energy side by side — a
 * what-if tool for tuning the controller before committing to a
 * hardware configuration.
 *
 *   ./oram_explorer --sweep=queue
 *   ./oram_explorer --sweep=depth --requests=1500
 *   ./oram_explorer --sweep=cache
 *   ./oram_explorer --sweep=channels
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/mixes.hh"

namespace
{

fp::sim::SimConfig
baseConfig(std::uint64_t requests)
{
    auto cfg = fp::sim::SimConfig::paperDefault();
    cfg.requestsPerCore = requests;
    cfg.controller.oram.leafLevel = 16;
    return cfg;
}

void
addRow(fp::TextTable &table, const std::string &point,
       const fp::sim::RunResult &r)
{
    table.addRow({point, fp::TextTable::fmt(r.avgReadPathLen, 2),
                  fp::TextTable::fmt(r.avgLlcLatencyNs, 1),
                  fp::TextTable::fmt(
                      r.totalAccesses() /
                          static_cast<double>(r.realAccesses),
                      3),
                  fp::TextTable::fmt(r.totalEnergyNj() / 1e6, 3)});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    fp::CliArgs args(argc, argv);
    const std::string sweep = args.getString("sweep", "queue");
    const auto requests =
        static_cast<std::uint64_t>(args.getInt("requests", 1200));
    const std::string mix = args.getString("mix", "Mix3");

    fp::TextTable table("sweep: " + sweep + " (" + mix + ")");
    table.setHeader({sweep, "path_len", "latency_ns",
                     "accesses/real", "energy_mJ"});

    if (sweep == "queue") {
        for (unsigned q : {1u, 4u, 16u, 64u, 128u}) {
            auto r = fp::sim::runMix(
                fp::sim::withMergeOnly(baseConfig(requests), q), mix);
            addRow(table, std::to_string(q), r);
        }
    } else if (sweep == "depth") {
        for (unsigned L : {12u, 14u, 16u, 18u, 20u}) {
            auto cfg =
                fp::sim::withMergeOnly(baseConfig(requests), 64);
            cfg.controller.oram.leafLevel = L;
            addRow(table, "L=" + std::to_string(L),
                   fp::sim::runMix(cfg, mix));
        }
    } else if (sweep == "cache") {
        for (std::uint64_t kb : {64u, 128u, 256u, 512u, 1024u}) {
            auto r = fp::sim::runMix(
                fp::sim::withMergeMac(baseConfig(requests), kb << 10,
                                      64),
                mix);
            addRow(table, std::to_string(kb) + "KB", r);
        }
    } else if (sweep == "channels") {
        for (unsigned ch : {1u, 2u, 4u}) {
            auto cfg =
                fp::sim::withMergeOnly(baseConfig(requests), 64);
            cfg.dram = fp::dram::DramParams::ddr3_1600(ch);
            addRow(table, std::to_string(ch),
                   fp::sim::runMix(cfg, mix));
        }
    } else {
        fp_fatal("unknown --sweep=%s (queue|depth|cache|channels)",
                 sweep.c_str());
    }

    table.print(std::cout);
    return 0;
}
