/**
 * @file
 * A small oblivious key-value store built on the Fork Path ORAM —
 * the kind of component the paper's introduction motivates (cloud
 * services whose *access pattern* to storage must not leak which
 * keys are hot).
 *
 * Design: string keys hash to a block address (open addressing over
 * a fixed table region); each block stores a tagged key hash plus
 * the value. Both lookups and misses traverse ORAM paths, so an
 * observer of the memory bus cannot tell hits from misses, nor one
 * key from another.
 *
 *   ./secure_kv_store
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "sim/sync_oram.hh"

namespace
{

constexpr std::size_t kBlockBytes = 64;
constexpr std::size_t kValueBytes = kBlockBytes - 9; // tag + hash
constexpr std::uint64_t kTableBlocks = 1 << 12;
constexpr unsigned kMaxProbes = 8;

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

class ObliviousKvStore
{
  public:
    ObliviousKvStore()
        : oram_(makeParams())
    {
    }

    bool
    put(const std::string &key, const std::string &value)
    {
        if (value.size() > kValueBytes)
            return false;
        std::uint64_t h = fnv1a(key);
        for (unsigned probe = 0; probe < kMaxProbes; ++probe) {
            fp::BlockAddr slot = slotFor(h, probe);
            auto blk = oram_.read(slot);
            if (blk[0] == 0 || matches(blk, h)) {
                encode(blk, h, value);
                oram_.write(slot, std::move(blk));
                return true;
            }
        }
        return false; // table region full along this probe chain
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        std::uint64_t h = fnv1a(key);
        for (unsigned probe = 0; probe < kMaxProbes; ++probe) {
            auto blk = oram_.read(slotFor(h, probe));
            if (blk[0] == 0)
                return std::nullopt;
            if (matches(blk, h))
                return decode(blk);
        }
        return std::nullopt;
    }

    void printStats() { oram_.printStats(); }

  private:
    static fp::core::ControllerParams
    makeParams()
    {
        auto p = fp::core::ControllerParams::forkPath();
        p.oram.leafLevel = 14;
        p.oram.payloadBytes = kBlockBytes;
        p.oram.encrypt = true;
        p.oram.seed = 99;
        p.labelQueueSize = 16;
        p.cachePolicy = fp::core::CachePolicy::mac;
        p.cacheBudgetBytes = 64 << 10;
        return p;
    }

    static fp::BlockAddr
    slotFor(std::uint64_t hash, unsigned probe)
    {
        return (hash + probe * 0x9e3779b9ULL) % kTableBlocks;
    }

    static bool
    matches(const std::vector<std::uint8_t> &blk, std::uint64_t h)
    {
        std::uint64_t stored = 0;
        for (int i = 0; i < 8; ++i)
            stored |= static_cast<std::uint64_t>(blk[1 + i])
                      << (8 * i);
        return blk[0] != 0 && stored == h;
    }

    static void
    encode(std::vector<std::uint8_t> &blk, std::uint64_t h,
           const std::string &value)
    {
        blk.assign(kBlockBytes, 0);
        blk[0] = static_cast<std::uint8_t>(value.size() + 1);
        for (int i = 0; i < 8; ++i)
            blk[1 + i] = static_cast<std::uint8_t>(h >> (8 * i));
        std::memcpy(blk.data() + 9, value.data(), value.size());
    }

    static std::string
    decode(const std::vector<std::uint8_t> &blk)
    {
        std::size_t len = blk[0] - 1;
        return std::string(
            reinterpret_cast<const char *>(blk.data()) + 9, len);
    }

    fp::sim::SyncOram oram_;
};

} // anonymous namespace

int
main()
{
    ObliviousKvStore store;
    std::printf("Oblivious key-value store demo\n\n");

    const std::vector<std::pair<std::string, std::string>> entries =
        {{"alice", "engineer"},
         {"bob", "analyst"},
         {"carol", "director"},
         {"dave", "intern"},
         {"erin", "researcher"},
         {"frank", "operator"}};

    for (const auto &[k, v] : entries) {
        bool ok = store.put(k, v);
        std::printf("put %-6s -> %-12s %s\n", k.c_str(), v.c_str(),
                    ok ? "ok" : "FAILED");
    }
    std::printf("\n");

    int failures = 0;
    for (const auto &[k, v] : entries) {
        auto got = store.get(k);
        bool ok = got && *got == v;
        failures += !ok;
        std::printf("get %-6s -> %-12s %s\n", k.c_str(),
                    got ? got->c_str() : "(miss)",
                    ok ? "ok" : "WRONG");
    }
    auto missing = store.get("mallory");
    std::printf("get %-6s -> %-12s %s\n\n", "mallory",
                missing ? missing->c_str() : "(miss)",
                missing ? "WRONG" : "ok");
    failures += missing.has_value();

    // Overwrite and re-read.
    store.put("alice", "principal");
    auto updated = store.get("alice");
    bool ok = updated && *updated == "principal";
    failures += !ok;
    std::printf("update alice -> %-12s %s\n\n",
                updated ? updated->c_str() : "(miss)",
                ok ? "ok" : "WRONG");

    store.printStats();
    return failures == 0 ? 0 : 1;
}
