/**
 * @file
 * Adversary's-eye demo: what does the memory bus actually reveal?
 *
 * Three experiments, printed as evidence an auditor could check:
 *
 *  1. **Pattern hiding.** Two very different programs run on
 *     identical Fork Path ORAMs — one hammers a single secret
 *     counter, the other scans a large array. The revealed leaf-label
 *     sequences are collected and compared statistically: both are
 *     uniform, and neither side of any reasonable statistic separates
 *     them.
 *  2. **Data independence.** The same program runs twice with
 *     different secret data; the revealed access shapes are
 *     byte-for-byte identical.
 *  3. **Active attack.** With Merkle integrity enabled, a bit flipped
 *     in external memory is caught on the next fetch (shown in a
 *     child process, since detection is fatal by design).
 *
 *   ./adversary_view
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/oram_controller.hh"
#include "dram/dram_system.hh"
#include "util/random.hh"

namespace
{

fp::core::ControllerParams
demoParams(bool integrity = false)
{
    fp::core::ControllerParams p =
        fp::core::ControllerParams::forkPath();
    p.oram.leafLevel = 12;
    p.oram.payloadBytes = 16;
    p.oram.encrypt = true;
    p.oram.seed = 20260706;
    p.oram.stashShortcut = false; // every access walks the tree
    p.labelQueueSize = 8;
    p.cachePolicy = fp::core::CachePolicy::none;
    p.enableIntegrity = integrity;
    return p;
}

struct Rig
{
    fp::EventQueue eq;
    fp::dram::DramSystem dram;
    fp::core::OramController ctrl;

    explicit Rig(const fp::core::ControllerParams &p)
        : dram(fp::dram::DramParams::ddr3_1600(2), eq),
          ctrl(p, eq, dram)
    {
        ctrl.setRevealTraceEnabled(true);
    }

    void
    access(bool write, fp::BlockAddr addr, std::uint8_t fill)
    {
        ctrl.request(write ? fp::oram::Op::write : fp::oram::Op::read,
                     addr, std::vector<std::uint8_t>(16, fill),
                     [](fp::Tick, const auto &) {});
        eq.run();
    }
};

double
chiSquare16(const std::vector<fp::core::RevealedAccess> &trace,
            unsigned leaf_level)
{
    std::vector<double> counts(16, 0.0);
    for (const auto &r : trace)
        counts[r.label >> (leaf_level - 4)] += 1.0;
    double expect = static_cast<double>(trace.size()) / 16.0;
    double chi2 = 0.0;
    for (double c : counts)
        chi2 += (c - expect) * (c - expect) / expect;
    return chi2;
}

void
experimentPatternHiding()
{
    std::printf("--- 1. pattern hiding "
                "------------------------------------\n");
    Rig hammer(demoParams());
    Rig scanner(demoParams());

    // Program A: increment one secret counter, over and over.
    for (int i = 0; i < 400; ++i)
        hammer.access(true, 7, static_cast<std::uint8_t>(i));
    // Program B: stride through 4096 blocks.
    for (int i = 0; i < 400; ++i)
        scanner.access(i % 4 == 0, (i * 37) % 4096, 0);

    double chi_a =
        chiSquare16(hammer.ctrl.revealTrace(), 12);
    double chi_b =
        chiSquare16(scanner.ctrl.revealTrace(), 12);
    // 15 dof: 99.9th percentile = 37.70.
    std::printf("  counter-hammer: %4zu revealed labels, chi2 = "
                "%6.2f  (uniform if < 37.70)\n",
                hammer.ctrl.revealTrace().size(), chi_a);
    std::printf("  array-scanner:  %4zu revealed labels, chi2 = "
                "%6.2f  (uniform if < 37.70)\n",
                scanner.ctrl.revealTrace().size(), chi_b);
    std::printf("  verdict: %s\n\n",
                (chi_a < 37.7 && chi_b < 37.7)
                    ? "both buses look like uniform noise"
                    : "LEAK DETECTED (file a bug!)");
}

void
experimentDataIndependence()
{
    std::printf("--- 2. data independence "
                "---------------------------------\n");
    auto run = [](std::uint8_t secret) {
        Rig rig(demoParams());
        fp::Rng rng(1234); // same addresses both runs
        for (int i = 0; i < 200; ++i)
            rig.access(i % 2 == 0, rng.uniformInt(256), secret);
        return rig.ctrl.revealTrace();
    };
    auto t1 = run(0x00);
    auto t2 = run(0xFF);
    bool identical = t1.size() == t2.size();
    for (std::size_t i = 0; identical && i < t1.size(); ++i) {
        identical = t1[i].label == t2[i].label &&
                    t1[i].readStartLevel == t2[i].readStartLevel &&
                    t1[i].writeStopLevel == t2[i].writeStopLevel;
    }
    std::printf("  run(secret=0x00) and run(secret=0xFF): %zu "
                "revealed accesses each\n",
                t1.size());
    std::printf("  verdict: traces are %s\n\n",
                identical ? "byte-for-byte identical"
                          : "DIFFERENT (file a bug!)");
}

void
experimentActiveAttack()
{
    std::printf("--- 3. active attack vs Merkle integrity "
                "-----------------\n");
    pid_t pid = fork();
    if (pid == 0) {
        // Child: tamper with memory, then keep using the ORAM.
        std::fclose(stderr); // silence the intentional panic text
        Rig rig(demoParams(/*integrity=*/true));
        fp::Rng rng(5);
        for (int i = 0; i < 80; ++i)
            rig.access(true, rng.uniformInt(64), 1);
        auto &store = rig.ctrl.store();
        for (fp::BucketIndex idx = 0;
             idx < rig.ctrl.geometry().numBuckets(); ++idx) {
            fp::mem::Bucket b = store.readBucket(idx);
            if (b.empty())
                continue;
            fp::mem::Bucket nb(4);
            for (const auto &blk : b.blocks()) {
                fp::mem::Block c = blk;
                c.payload[0] ^= 0x80; // the adversary's bit flip
                nb.add(std::move(c));
            }
            store.writeBucket(idx, nb);
        }
        for (int i = 0; i < 200; ++i)
            rig.access(false, rng.uniformInt(64), 0);
        _exit(0); // tamper was NOT detected
    }
    int status = 0;
    waitpid(pid, &status, 0);
    bool detected = !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    std::printf("  adversary flipped one bit per resident block in "
                "external memory\n");
    std::printf("  verdict: tampering %s\n\n",
                detected ? "detected, execution halted"
                         : "NOT detected (file a bug!)");
}

} // anonymous namespace

int
main()
{
    std::printf("Fork Path ORAM: the adversary's view of the memory "
                "bus\n\n");
    experimentPatternHiding();
    experimentDataIndependence();
    experimentActiveAttack();
    return 0;
}
