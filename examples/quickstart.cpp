/**
 * @file
 * Quickstart: stand up a Fork Path ORAM with encrypted 64-byte
 * blocks, write and read a few blocks through the blocking API, and
 * print what happened underneath (paths fetched, dummies issued,
 * DRAM behaviour).
 *
 *   ./quickstart [--blocks=64] [--traditional]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/sync_oram.hh"
#include "util/cli.hh"

int
main(int argc, char **argv)
{
    fp::CliArgs args(argc, argv);
    const auto blocks =
        static_cast<std::uint64_t>(args.getInt("blocks", 64));
    const bool traditional = args.getBool("traditional");

    // Configure: a 1 GB-class tree (L = 16 keeps the demo snappy),
    // Z = 4, 64 B encrypted payloads, Fork Path features on.
    fp::core::ControllerParams params =
        traditional ? fp::core::ControllerParams::traditional()
                    : fp::core::ControllerParams::forkPath();
    params.oram.leafLevel = 16;
    params.oram.payloadBytes = 64;
    params.oram.encrypt = true;
    params.oram.seed = 2026;
    params.labelQueueSize = traditional ? 1 : 16;

    fp::sim::SyncOram oram(params);
    std::printf("Fork Path ORAM quickstart (%s mode)\n",
                traditional ? "traditional Path ORAM" : "Fork Path");
    std::printf("tree: %u levels, %llu buckets, block %zu B\n\n",
                oram.controller().geometry().numLevels(),
                static_cast<unsigned long long>(
                    oram.controller().geometry().numBuckets()),
                oram.blockSize());

    // Write a recognisable pattern into `blocks` blocks.
    for (std::uint64_t i = 0; i < blocks; ++i) {
        std::vector<std::uint8_t> data(oram.blockSize());
        for (std::size_t b = 0; b < data.size(); ++b)
            data[b] = static_cast<std::uint8_t>(i + b);
        oram.write(i, std::move(data));
    }

    // Read everything back and verify.
    std::uint64_t bad = 0;
    for (std::uint64_t i = 0; i < blocks; ++i) {
        auto data = oram.read(i);
        for (std::size_t b = 0; b < data.size(); ++b) {
            if (data[b] != static_cast<std::uint8_t>(i + b)) {
                ++bad;
                break;
            }
        }
    }
    std::printf("verified %llu blocks, %llu mismatches\n\n",
                static_cast<unsigned long long>(blocks),
                static_cast<unsigned long long>(bad));

    oram.printStats();
    return bad == 0 ? 0 : 1;
}
