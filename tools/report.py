#!/usr/bin/env python3
"""Render an ASCII dashboard from profiler / bench JSON (stdlib only).

Accepts any of the three profile-bearing documents the simulator
produces and auto-detects which one it was given:

  - a full profile report written by --profile-out
    (schema "forkpath-profile-v1"),
  - a RunResult JSON containing a "profile" block
    (a run with --profile-requests),
  - a smoke-bench document written by bench_smoke --out
    (schema "forkpath-bench-smoke-v1"; renders every point).

    tools/report.py BENCH_smoke.json
    tools/report.py run.profile.json --out dashboard.txt

The dashboard shows the per-stage latency table (count, mean, p50,
p95, p99, p99.9, max) and the fork-path effectiveness table with the
derived savings against a naive Path ORAM doing 2*L bucket transfers
per access. --out additionally writes the text to a file (CI
artifact); stdout always gets a copy.
"""

import argparse
import json
import sys


def fail(msg):
    sys.exit(f"report: FAIL: {msg}")


def table(title, header, rows):
    """Left-aligned first column, right-aligned numbers."""
    widths = [len(h) for h in header]
    srows = [[str(c) for c in row] for row in rows]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [f"== {title} =="]
    out.append("  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                         for i, (h, w) in enumerate(zip(header,
                                                        widths))))
    out.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in srows:
        out.append("  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                             for i, (c, w) in enumerate(zip(row,
                                                            widths))))
    out.append("")
    return "\n".join(out)


def fmt(v, digits=1):
    if isinstance(v, float):
        return f"{v:.{digits}f}"
    return str(v)


def render_stages(stages):
    rows = [[s["stage"], s["count"], fmt(s["mean_ns"]),
             fmt(s["p50_ns"]), fmt(s["p95_ns"]), fmt(s["p99_ns"]),
             fmt(s["p999_ns"]), fmt(s["max_ns"])]
            for s in stages]
    return table("per-stage latency (ns)",
                 ["stage", "count", "mean", "p50", "p95", "p99",
                  "p99.9", "max"], rows)


def render_effectiveness(eff):
    naive = eff["naive_path_buckets"]
    rows = [
        ["total accesses", eff["total_accesses"], ""],
        ["merged accesses", eff["merged_accesses"],
         pct(eff["merged_accesses"], eff["total_accesses"])],
        ["read levels skipped", eff["read_levels_skipped"], ""],
        ["write levels elided", eff["write_levels_elided"], ""],
        ["writebacks replaced", eff["writebacks_replaced"], ""],
        ["pending swaps", eff["pending_swaps"], ""],
        ["on-chip bucket reads", eff["onchip_bucket_reads"], ""],
        ["MAC data hits", eff["mac_data_hits"], ""],
        ["cache victim writes", eff["cache_victim_writes"], ""],
        ["stash shortcuts", eff["stash_shortcuts"], ""],
        ["naive path buckets", naive, "baseline"],
        ["backend buckets", eff["backend_buckets"],
         pct(eff["backend_buckets"], naive)],
        ["buckets saved", eff["buckets_saved"],
         pct(eff["buckets_saved"], naive)],
        ["bytes saved", eff["bytes_saved"],
         f"@ {eff['bucket_bytes']} B/bucket"],
    ]
    return table("fork-path effectiveness vs naive Path ORAM",
                 ["counter", "value", "share"], rows)


def pct(num, den):
    return f"{100.0 * num / den:.1f}%" if den else "n/a"


def render_profile(title, completed, stages, eff, open_requests=None):
    out = [f"### {title}"]
    out.append(f"completed requests: {completed}" +
               ("" if open_requests is None
                else f" (open at end: {open_requests})"))
    out.append("")
    out.append(render_stages(stages))
    out.append(render_effectiveness(eff))
    return "\n".join(out)


def render_run_result(name, result):
    prof = result.get("profile")
    if prof is None:
        fail(f"point '{name}' has no \"profile\" block (was the run "
             f"made with --profile-requests?)")
    head = (f"exec_ticks={result['execution_ticks']}  "
            f"llc_ns={fmt(result['avg_llc_latency_ns'])}  "
            f"path_len={fmt(result['avg_read_path_len'], 2)}  "
            f"real={result['real_accesses']}  "
            f"dummy={result['dummy_accesses']}")
    # Spec-driven runs stamp their provenance (fp_bench / wrappers).
    if "spec_name" in result:
        head += (f"\nspec={result['spec_name']}"
                 f"  spec_hash={result.get('spec_hash', '?')}")
    body = render_profile(name, prof["completed_requests"],
                          prof["stages"], prof["effectiveness"])
    return body.replace(f"### {name}\n", f"### {name}\n{head}\n", 1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", help="profile / RunResult / bench JSON")
    ap.add_argument("--out", help="also write the dashboard here")
    args = ap.parse_args()

    try:
        with open(args.input) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read '{args.input}': {e}")

    schema = doc.get("schema")
    if schema == "forkpath-profile-v1":
        text = render_profile(args.input, doc["completed_requests"],
                              doc["stages"], doc["effectiveness"],
                              doc.get("open_requests"))
    elif schema == "forkpath-bench-smoke-v1":
        text = "\n".join(render_run_result(p["name"], p["result"])
                         for p in doc["points"])
    elif "profile" in doc:
        text = render_run_result(args.input, doc)
    else:
        fail(f"'{args.input}': not a profile report, a profiled "
             f"RunResult, or a bench-smoke document")

    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"report: wrote {args.out}")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)  # e.g. `report.py ... | head`
