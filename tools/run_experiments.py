#!/usr/bin/env python3
"""Run every committed experiment spec in smoke mode (stdlib only).

The CI `experiment-specs` job runs this script. For each
experiments/*.json it launches the fp_bench driver with the spec's
own `smoke.args` (each spec declares how to shrink itself to CI
scale), validates the emitted Chrome trace with validate_trace.py
when the spec sets `smoke.trace`, and finally checks coverage: every
spec file ran, and every registered scenario (fp_bench
--list-scenarios) is exercised by at least one committed spec.

    tools/run_experiments.py                       # all specs
    tools/run_experiments.py --only fig10,smoke    # subset
    tools/run_experiments.py --bench build/bench/fp_bench

Exit status 0 when every spec ran clean; 1 with a per-spec report
otherwise.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)


def fail(msg):
    sys.exit(f"run_experiments: FAIL: {msg}")


def spec_files(exp_dir):
    if not os.path.isdir(exp_dir):
        fail(f"experiments directory '{exp_dir}' not found")
    return sorted(
        os.path.join(exp_dir, f)
        for f in os.listdir(exp_dir)
        if f.endswith(".json"))


def run_spec(bench, path, workdir, keep_going):
    with open(path) as f:
        spec = json.load(f)
    name = spec.get("name", os.path.basename(path))
    smoke = spec.get("smoke", {})
    args = list(smoke.get("args", []))
    want_trace = bool(smoke.get("trace", True))

    trace_path = None
    if want_trace:
        # All sweep points share one --trace-out file; concurrent
        # writers would interleave and corrupt it, so trace-validated
        # runs are pinned to a single job.
        args = [a for a in args if not a.startswith("--jobs")]
        args.append("--jobs=1")
    cmd = [bench, path] + args
    if want_trace:
        trace_path = os.path.join(workdir, f"{name}.trace.json")
        cmd.append(f"--trace-out={trace_path}")

    print(f"run_experiments: {name}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd, cwd=workdir, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(f"run_experiments: {name}: exit {proc.returncode}")
        return False
    if not proc.stdout.strip():
        print(f"run_experiments: {name}: produced no stdout")
        return False

    if trace_path is not None:
        if not os.path.exists(trace_path):
            print(f"run_experiments: {name}: no trace written "
                  f"(smoke.trace is true but --trace-out produced "
                  f"nothing)")
            return False
        check = subprocess.run(
            [sys.executable, os.path.join(HERE, "validate_trace.py"),
             "--trace", trace_path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        if check.returncode != 0:
            print(check.stdout)
            print(f"run_experiments: {name}: trace validation failed")
            return False
    return True


def coverage(bench, paths):
    """Every registered scenario must be exercised by some spec."""
    out = subprocess.run([bench, "--list-scenarios"],
                         stdout=subprocess.PIPE, text=True)
    if out.returncode != 0:
        fail("fp_bench --list-scenarios failed")
    scenarios = set(out.stdout.split())
    covered = set()
    for path in paths:
        with open(path) as f:
            spec = json.load(f)
        covered.add(spec.get("scenario", spec.get("name")))
    missing = sorted(scenarios - covered)
    if missing:
        fail(f"scenarios with no committed spec: {', '.join(missing)}"
             f" (add experiments/<name>.json or drop the scenario)")
    print(f"run_experiments: coverage OK "
          f"({len(scenarios)} scenarios, {len(paths)} specs)")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench",
                    default=os.path.join(ROOT, "build", "bench",
                                         "fp_bench"),
                    help="fp_bench binary (default: build/bench/)")
    ap.add_argument("--experiments",
                    default=os.path.join(ROOT, "experiments"),
                    help="spec directory (default: experiments/)")
    ap.add_argument("--only",
                    help="comma-separated spec names to run")
    ap.add_argument("--keep-going", action="store_true",
                    help="run every spec even after a failure")
    args = ap.parse_args()

    if not os.path.exists(args.bench):
        fail(f"bench binary '{args.bench}' not found (build first)")

    paths = spec_files(args.experiments)
    if args.only:
        wanted = set(args.only.split(","))
        paths = [p for p in paths
                 if os.path.splitext(os.path.basename(p))[0]
                 in wanted]
        if not paths:
            fail(f"--only matched no specs in {args.experiments}")

    failures = []
    with tempfile.TemporaryDirectory(prefix="fp_experiments.") as wd:
        for path in paths:
            if not run_spec(args.bench, path, wd, args.keep_going):
                failures.append(os.path.basename(path))
                if not args.keep_going:
                    break

    if failures:
        fail(f"{len(failures)} spec(s) failed: {', '.join(failures)}")
    if not args.only:
        coverage(args.bench, paths)
    print(f"run_experiments: OK ({len(paths)} specs)")


if __name__ == "__main__":
    main()
