#!/usr/bin/env python3
"""Validate observability output files (stdlib only; CI-friendly).

Checks a Chrome-trace JSON file produced with --trace-out and/or an
interval-stats JSON-lines file produced with --stats-out:

    tools/validate_trace.py --trace run.trace.json
    tools/validate_trace.py --stats run.stats.jsonl
    tools/validate_trace.py --trace t.json --stats s.jsonl

Trace checks (the subset of the trace-event format Perfetto and
chrome://tracing rely on):
  - top level is {"traceEvents": [...]}
  - every event has name/ph/ts/pid/tid with the right types
  - ph is one of M (metadata), X (complete), i (instant), C (counter),
    b/n/e (nestable async begin/instant/end)
  - thread_name metadata names a known track, allowing the "s<N>."
    shard prefix sharded runs (--shards=N) put on per-shard tracks
  - X events carry a non-negative dur; i events carry a scope
  - C events carry a one-entry numeric args object
  - b/n/e events carry a string "cat" and a numeric "id"; within each
    (cat, id) pair there is exactly one begin and one end, the end
    does not precede the begin, every instant lies inside the span,
    and no span is left open (every profiled request completed)
  - timestamps are non-negative and finite

Stats checks:
  - every line parses as one JSON object
  - every line has an integer "tick"; ticks strictly increase
  - all lines share the same key set (a consistent time series)
  - counter-like fields never decrease (spot-checked on *.row_hits
    and *.real_accesses keys)

Resilience-layer events (mem::FaultInjector / mem::ResilientBackend
instants on the "resilience" track) are recognised by name; pass
--require-events to assert that specific names actually occur, e.g.
after a fault-injection smoke run:

    tools/validate_trace.py --trace run.trace.json \
        --require-events fault_loss,retry,retry_timeout

Access-pipeline stage events are recognised the same way: the
"admission" track carries the controller's policy announcement
("policy") and the batched policy's admission-gate instants
("batch_hold" when issuable entries are held below a full batch,
"batch_flush" when a batch drains into the scheduler), e.g. after a
--policy=batched run:

    tools/validate_trace.py --trace run.trace.json \
        --require-events policy,batch_hold,batch_flush

Exit status 0 when everything passes; 1 with a message otherwise.
"""

import argparse
import json
import math
import re
import sys


#: Instant events the fault-injection / retry layer emits on the
#: "resilience" track (mem/fault_injector.cc, mem/resilient_backend.cc).
#: Kept here so --require-events can reject typos early.
RESILIENCE_EVENTS = {
    "fault_loss",
    "fault_error",
    "fault_spike",
    "fault_outage_drop",
    "retry",
    "retry_timeout",
    "retry_dedup_drop",
    "retry_exhausted",
}

#: Async lifecycle events the per-request profiler emits on the
#: "requests" track (obs/request_profiler.cc): a "request" span
#: (b/e) with issue / read_start / read_done instants inside it.
PROFILER_EVENTS = {
    "request",
    "issue",
    "read_start",
    "read_done",
}

#: Instant events the staged access pipeline emits on the "admission"
#: track (core/oram_controller.cc, core/admission_stage.cc): the
#: controller's one-shot policy announcement plus the batched policy's
#: admission-gate decisions.
STAGE_EVENTS = {
    "policy",
    "batch_hold",
    "batch_flush",
}

#: Track (thread_name) base names the simulator emits. Sharded runs
#: (--shards=N) prefix every per-shard track with "s<shard>." —
#: "s1.controller", "s3.dram.ch0" — via obs::Tracer views; the prefix
#: is stripped before matching against this set. "dram.ch<N>" covers
#: any channel count.
KNOWN_TRACKS = {
    "controller",
    "scheduler",
    "caches",
    "revealed",
    "stash",
    "queues",
    "requests",
    "resilience",
    "admission",
}

#: Matches a shard-qualified or bare track name; group "base" is the
#: name with any "s<N>." shard prefix removed.
TRACK_NAME_RE = re.compile(r"^(s\d+\.)?(?P<base>.+)$")
DRAM_TRACK_RE = re.compile(r"^dram\.ch\d+$")


def check_track_name(where, name):
    base = TRACK_NAME_RE.match(name).group("base")
    if base not in KNOWN_TRACKS and not DRAM_TRACK_RE.match(base):
        fail(f"{where}: unknown track name '{name}' (base '{base}' "
             f"not in {sorted(KNOWN_TRACKS)} and not dram.ch<N>)")


def fail(msg):
    sys.exit(f"validate_trace: FAIL: {msg}")


def validate_trace(path, require_events=()):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be an array")

    known_ph = {"M", "X", "i", "C", "b", "n", "e"}
    spans = {}  # (cat, id) -> {"b": ts|None, "e": ts|None, "n": [ts]}
    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key, typ in (("name", str), ("ph", str)):
            if not isinstance(ev.get(key), typ):
                fail(f"{where}: missing or mistyped '{key}'")
        ph = ev["ph"]
        if ph not in known_ph:
            fail(f"{where}: unknown phase '{ph}'")
        for key in ("ts", "pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(f"{where}: missing or mistyped '{key}'")
            if not math.isfinite(v) or v < 0:
                fail(f"{where}: '{key}' = {v} out of range")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: X event needs non-negative dur")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(f"{where}: instant event needs scope s in t/p/g")
        if ph == "C":
            args = ev.get("args")
            if (not isinstance(args, dict) or len(args) != 1 or
                    not all(isinstance(v, (int, float))
                            for v in args.values())):
                fail(f"{where}: counter needs one numeric arg")
        if ph == "M" and ev["name"] == "thread_name":
            if not isinstance(ev.get("args", {}).get("name"), str):
                fail(f"{where}: thread_name without args.name")
            check_track_name(where, ev["args"]["name"])
        if ph in ("b", "n", "e"):
            if not isinstance(ev.get("cat"), str):
                fail(f"{where}: async event needs a string 'cat'")
            flow_id = ev.get("id")
            if (not isinstance(flow_id, (int, float)) or
                    isinstance(flow_id, bool)):
                fail(f"{where}: async event needs a numeric 'id'")
            span = spans.setdefault((ev["cat"], flow_id),
                                    {"b": None, "e": None, "n": []})
            if ph == "b":
                if span["b"] is not None:
                    fail(f"{where}: duplicate begin for "
                         f"{ev['cat']}:{flow_id}")
                span["b"] = ev["ts"]
            elif ph == "e":
                if span["e"] is not None:
                    fail(f"{where}: duplicate end for "
                         f"{ev['cat']}:{flow_id}")
                span["e"] = ev["ts"]
            else:
                span["n"].append((ev["ts"], i))

    for (cat, flow_id), span in spans.items():
        what = f"{path}: async span {cat}:{flow_id}"
        if span["b"] is None:
            fail(f"{what}: end/instant without a begin")
        if span["e"] is None:
            fail(f"{what}: begin without an end "
                 f"(request never completed)")
        if span["e"] < span["b"]:
            fail(f"{what}: end ts {span['e']} precedes begin "
                 f"ts {span['b']}")
        for ts, i in span["n"]:
            if not span["b"] <= ts <= span["e"]:
                fail(f"{path}: event {i}: instant ts {ts} outside "
                     f"span {cat}:{flow_id} "
                     f"[{span['b']}, {span['e']}]")

    names = {ev["name"] for ev in events}
    missing = [name for name in require_events if name not in names]
    if missing:
        fail(f"{path}: required events never occurred: "
             f"{', '.join(missing)}")

    counts = {}
    for ev in events:
        counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    print(f"validate_trace: {path}: OK "
          f"({len(events)} events: " +
          ", ".join(f"{k}={v}" for k, v in sorted(counts.items())) +
          ")")


def validate_stats(path):
    keysets = None
    prev_tick = None
    monotonic = {}
    lines = 0
    with open(path) as f:
        for ln, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}: line {ln}"
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{where}: not valid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{where}: not an object")
            tick = obj.get("tick")
            if not isinstance(tick, int) or tick < 0:
                fail(f"{where}: missing or mistyped 'tick'")
            if prev_tick is not None and tick <= prev_tick:
                fail(f"{where}: tick {tick} not after {prev_tick}")
            prev_tick = tick

            keys = frozenset(obj)
            if keysets is None:
                keysets = keys
            elif keys != keysets:
                extra = keys ^ keysets
                fail(f"{where}: key set differs from line 1 "
                     f"(symmetric difference: {sorted(extra)[:5]})")

            for key, value in obj.items():
                if not (key.endswith(".row_hits") or
                        key.endswith(".real_accesses")):
                    continue
                if value < monotonic.get(key, 0):
                    fail(f"{where}: cumulative counter {key} "
                         f"decreased ({monotonic[key]} -> {value})")
                monotonic[key] = value
            lines += 1
    if lines == 0:
        fail(f"{path}: no samples")
    print(f"validate_trace: {path}: OK ({lines} samples, "
          f"{len(keysets)} fields, final tick {prev_tick})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome-trace JSON file")
    ap.add_argument("--stats", help="interval-stats JSON-lines file")
    ap.add_argument("--require-events",
                    help="comma-separated event names that must occur "
                         "in the trace (resilience-track names are "
                         "checked against the known set)")
    args = ap.parse_args()
    if not args.trace and not args.stats:
        ap.error("nothing to do: pass --trace and/or --stats")
    require = []
    if args.require_events:
        require = [n for n in args.require_events.split(",") if n]
        if not args.trace:
            ap.error("--require-events needs --trace")
        for name in require:
            looks_resilient = name.startswith(("fault_", "retry"))
            if looks_resilient and name not in RESILIENCE_EVENTS:
                ap.error(f"unknown resilience event '{name}' "
                         f"(known: {', '.join(sorted(RESILIENCE_EVENTS))})")
            looks_profiler = (name == "request" or
                              name.startswith(("read_", "issue")))
            if looks_profiler and name not in PROFILER_EVENTS:
                ap.error(f"unknown profiler event '{name}' "
                         f"(known: {', '.join(sorted(PROFILER_EVENTS))})")
            looks_stage = (name == "policy" or
                           name.startswith("batch_"))
            if looks_stage and name not in STAGE_EVENTS:
                ap.error(f"unknown stage event '{name}' "
                         f"(known: {', '.join(sorted(STAGE_EVENTS))})")
    if args.trace:
        validate_trace(args.trace, require)
    if args.stats:
        validate_stats(args.stats)


if __name__ == "__main__":
    main()
