#!/usr/bin/env python3
"""Plot the figure benches' --csv output.

Each bench prints one or more CSV tables when run with --csv; pipe a
bench into a file and point this script at it to get matplotlib
figures mirroring the paper's:

    ./build/bench/bench_fig12 --csv > fig12.csv
    tools/plot_results.py fig12.csv -o fig12.png

The script is deliberately generic: the first column is treated as
the category axis, every following numeric column becomes a series.
Files containing several blank-line-separated tables produce one
subplot per table.
"""

import argparse
import csv
import io
import sys


def split_tables(text):
    """Split concatenated CSV tables on blank lines."""
    blocks, current = [], []
    for line in text.splitlines():
        if line.strip() == "":
            if current:
                blocks.append("\n".join(current))
                current = []
        else:
            current.append(line)
    if current:
        blocks.append("\n".join(current))
    return blocks


def parse_table(block):
    rows = list(csv.reader(io.StringIO(block)))
    if len(rows) < 2:
        return None
    header, body = rows[0], rows[1:]
    numeric_cols = []
    for ci in range(1, len(header)):
        try:
            for row in body:
                float(row[ci])
            numeric_cols.append(ci)
        except (ValueError, IndexError):
            continue
    if not numeric_cols:
        return None
    return {
        "x": [row[0] for row in body],
        "series": {
            header[ci]: [float(row[ci]) for row in body]
            for ci in numeric_cols
        },
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_file", help="bench --csv output")
    ap.add_argument("-o", "--output", default=None,
                    help="output image (default: <input>.png)")
    ap.add_argument("--kind", choices=["bar", "line"],
                    default="bar")
    ap.add_argument("--title", default=None)
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    with open(args.csv_file) as f:
        text = f.read()

    tables = [t for t in map(parse_table, split_tables(text)) if t]
    if not tables:
        sys.exit("no parsable CSV tables found")

    fig, axes = plt.subplots(len(tables), 1,
                             figsize=(9, 4 * len(tables)),
                             squeeze=False)
    for ax, table in zip(axes.flat, tables):
        x = range(len(table["x"]))
        n = len(table["series"])
        width = 0.8 / max(n, 1)
        for i, (name, ys) in enumerate(table["series"].items()):
            if args.kind == "bar":
                ax.bar([xi + i * width for xi in x], ys,
                       width=width, label=name)
            else:
                ax.plot(list(x), ys, marker="o", label=name)
        ax.set_xticks([xi + 0.4 - width / 2 for xi in x]
                      if args.kind == "bar" else list(x))
        ax.set_xticklabels(table["x"], rotation=30, ha="right")
        ax.legend(fontsize=8)
        ax.grid(axis="y", alpha=0.3)
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()

    out = args.output or args.csv_file.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
