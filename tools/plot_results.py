#!/usr/bin/env python3
"""Plot the figure benches' --csv output, or interval-stats series.

Each bench prints one or more CSV tables when run with --csv; pipe a
bench into a file and point this script at it to get matplotlib
figures mirroring the paper's:

    ./build/bench/bench_fig12 --csv > fig12.csv
    tools/plot_results.py fig12.csv -o fig12.png

The script is deliberately generic: the first column is treated as
the category axis, every following numeric column becomes a series.
Files containing several blank-line-separated tables produce one
subplot per table.

With --stats the input is instead the JSON-lines file written by the
--stats-out flag (see docs/OBSERVABILITY.md) and the output is a
time-series view of the run — stash occupancy, label-queue depth and
per-channel DRAM queue depth over simulated time:

    ./build/bench/bench_fig10 --quick --stats-out run.jsonl
    tools/plot_results.py --stats run.jsonl -o run.png

Use --fields to plot a custom comma-separated set of stat keys.
"""

import argparse
import csv
import io
import json
import sys

# Default --stats panels: (title, y label, key predicate).
STATS_PANELS = [
    ("Stash occupancy", "blocks",
     lambda k: k == "oram_controller.stash_depth"),
    ("Queue depth", "entries",
     lambda k: k in ("oram_controller.label_queue_total",
                     "oram_controller.label_queue_real",
                     "oram_controller.addr_queue_depth")),
    ("DRAM channel queue depth", "transactions",
     lambda k: k.startswith("dram.ch") and k.endswith(".queue_depth")),
]


def split_tables(text):
    """Split concatenated CSV tables on blank lines."""
    blocks, current = [], []
    for line in text.splitlines():
        if line.strip() == "":
            if current:
                blocks.append("\n".join(current))
                current = []
        else:
            current.append(line)
    if current:
        blocks.append("\n".join(current))
    return blocks


def parse_table(block):
    rows = list(csv.reader(io.StringIO(block)))
    if len(rows) < 2:
        return None
    header, body = rows[0], rows[1:]
    numeric_cols = []
    for ci in range(1, len(header)):
        try:
            for row in body:
                float(row[ci])
            numeric_cols.append(ci)
        except (ValueError, IndexError):
            continue
    if not numeric_cols:
        return None
    return {
        "x": [row[0] for row in body],
        "series": {
            header[ci]: [float(row[ci]) for row in body]
            for ci in numeric_cols
        },
    }


def load_stats(path):
    """Read a --stats-out JSON-lines file into {key: [values]}."""
    ticks, series = [], {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            ticks.append(obj["tick"])
            for key, value in obj.items():
                if key == "tick" or not isinstance(value, (int, float)):
                    continue
                series.setdefault(key, []).append(value)
    if not ticks:
        sys.exit(f"{path}: no samples")
    # Drop series that missed a sample so every line spans the x axis.
    series = {k: v for k, v in series.items() if len(v) == len(ticks)}
    return ticks, series


def plot_stats(args, plt):
    ticks, series = load_stats(args.csv_file)
    us = [t / 1e6 for t in ticks]  # 1 tick = 1 ps

    if args.fields:
        wanted = [f.strip() for f in args.fields.split(",")]
        missing = [f for f in wanted if f not in series]
        if missing:
            sys.exit(f"unknown stat keys: {missing}; "
                     f"available: {sorted(series)}")
        panels = [(", ".join(wanted), "", lambda k: k in wanted)]
    else:
        panels = STATS_PANELS

    panels = [(t, yl, p) for t, yl, p in panels
              if any(p(k) for k in series)]
    if not panels:
        sys.exit("no matching series in stats file")

    fig, axes = plt.subplots(len(panels), 1,
                             figsize=(9, 3 * len(panels)),
                             sharex=True, squeeze=False)
    for ax, (title, ylabel, pred) in zip(axes.flat, panels):
        for key in sorted(k for k in series if pred(k)):
            ax.plot(us, series[key], label=key, linewidth=1)
        ax.set_title(title, fontsize=10)
        ax.set_ylabel(ylabel)
        ax.legend(fontsize=8)
        ax.grid(alpha=0.3)
    axes.flat[-1].set_xlabel("simulated time (us)")
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()

    out = args.output or args.csv_file.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv_file",
                    help="bench --csv output, or with --stats an "
                         "interval-stats JSON-lines file")
    ap.add_argument("-o", "--output", default=None,
                    help="output image (default: <input>.png)")
    ap.add_argument("--kind", choices=["bar", "line"],
                    default="bar")
    ap.add_argument("--title", default=None)
    ap.add_argument("--stats", action="store_true",
                    help="treat input as --stats-out JSON lines and "
                         "plot time series")
    ap.add_argument("--fields", default=None,
                    help="with --stats: comma-separated stat keys to "
                         "plot instead of the default panels")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    if args.stats:
        plot_stats(args, plt)
        return

    with open(args.csv_file) as f:
        text = f.read()

    tables = [t for t in map(parse_table, split_tables(text)) if t]
    if not tables:
        sys.exit("no parsable CSV tables found")

    fig, axes = plt.subplots(len(tables), 1,
                             figsize=(9, 4 * len(tables)),
                             squeeze=False)
    for ax, table in zip(axes.flat, tables):
        x = range(len(table["x"]))
        n = len(table["series"])
        width = 0.8 / max(n, 1)
        for i, (name, ys) in enumerate(table["series"].items()):
            if args.kind == "bar":
                ax.bar([xi + i * width for xi in x], ys,
                       width=width, label=name)
            else:
                ax.plot(list(x), ys, marker="o", label=name)
        ax.set_xticks([xi + 0.4 - width / 2 for xi in x]
                      if args.kind == "bar" else list(x))
        ax.set_xticklabels(table["x"], rotation=30, ha="right")
        ax.legend(fontsize=8)
        ax.grid(axis="y", alpha=0.3)
    if args.title:
        fig.suptitle(args.title)
    fig.tight_layout()

    out = args.output or args.csv_file.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
