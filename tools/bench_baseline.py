#!/usr/bin/env python3
"""Bench-baseline regression gate (stdlib only; CI-friendly).

Runs the pinned smoke benchmark (bench/bench_smoke.cc), which writes
BENCH_smoke.json, and compares every point's headline metrics against
the committed baseline file. The simulator is deterministic, so on an
unchanged tree every metric matches the baseline exactly; the
threshold only tolerates small *intentional* drift (e.g. a timing-
model tweak) without demanding a baseline update for noise-free
refactors.

    tools/bench_baseline.py                      # run + compare
    tools/bench_baseline.py --threshold 2        # tighter gate
    tools/bench_baseline.py --update             # reseed the baseline
    tools/bench_baseline.py --skip-run --out X   # compare existing X

Exit status 0 when every metric is within the threshold; 1 with a
per-metric report otherwise (rerun with --update and commit the new
baseline when the drift is intentional).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

#: Metrics gated per point: deterministic, scale-free enough to
#: compare run-over-run, and together covering timing (ticks,
#: latency), fork-path effectiveness (path length, buckets) and
#: request accounting (an access-count change means the pipeline
#: itself changed, not just its speed). The comparison reads ONLY
#: these keys, so provenance fields added by spec-driven runs
#: (spec_name / spec_hash) and any future RunResult additions never
#: trip the gate or force a baseline reseed.
GATED_METRICS = (
    "execution_ticks",
    "avg_llc_latency_ns",
    "avg_read_path_len",
    "avg_dram_buckets_read",
    "real_accesses",
    "dummy_accesses",
)


def fail(msg):
    sys.exit(f"bench_baseline: FAIL: {msg}")


def load(path, what):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(f"{what} file '{path}' not found")
    except json.JSONDecodeError as e:
        fail(f"{what} file '{path}' is not valid JSON: {e}")
    if doc.get("schema") != "forkpath-bench-smoke-v1":
        fail(f"{what} file '{path}' has schema "
             f"{doc.get('schema')!r}, expected forkpath-bench-smoke-v1")
    return {p["name"]: p["result"] for p in doc["points"]}


def run_bench(bench, out, jobs):
    cmd = [bench, "--csv", f"--out={out}", f"--jobs={jobs}"]
    print("bench_baseline: running:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        fail(f"bench exited with status {proc.returncode}")


def compare(current, baseline, threshold_pct):
    if set(current) != set(baseline):
        fail(f"point sets differ: current {sorted(current)} vs "
             f"baseline {sorted(baseline)} "
             f"(rerun with --update if intentional)")
    failures = []
    for name in sorted(current):
        for metric in GATED_METRICS:
            if metric not in baseline[name]:
                fail(f"baseline point '{name}' lacks '{metric}' "
                     f"(rerun with --update)")
            want = baseline[name][metric]
            got = current[name].get(metric)
            if got is None:
                fail(f"current point '{name}' lacks '{metric}'")
            scale = max(abs(want), 1e-12)
            drift_pct = 100.0 * abs(got - want) / scale
            status = "ok"
            if drift_pct > threshold_pct:
                status = "DRIFT"
                failures.append(
                    f"{name}.{metric}: baseline {want:g}, "
                    f"got {got:g} ({drift_pct:+.2f}% > "
                    f"{threshold_pct:g}%)")
            print(f"bench_baseline: {name:>16s} {metric:<22s} "
                  f"base={want:<14g} got={got:<14g} "
                  f"drift={drift_pct:6.2f}%  {status}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="build/bench/bench_smoke",
                    help="bench_smoke binary (default %(default)s)")
    ap.add_argument("--baseline",
                    default="tools/baselines/BENCH_smoke.baseline.json",
                    help="committed baseline (default %(default)s)")
    ap.add_argument("--out", default="BENCH_smoke.json",
                    help="where the bench writes its JSON "
                         "(default %(default)s)")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="max per-metric drift in percent "
                         "(default %(default)s)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="bench --jobs (0 = hardware concurrency)")
    ap.add_argument("--update", action="store_true",
                    help="reseed the baseline from this run and exit")
    ap.add_argument("--skip-run", action="store_true",
                    help="compare an existing --out file instead of "
                         "running the bench")
    args = ap.parse_args()

    if not args.skip_run:
        run_bench(args.bench, args.out, args.jobs)
    current = load(args.out, "bench output")

    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".",
                    exist_ok=True)
        shutil.copyfile(args.out, args.baseline)
        print(f"bench_baseline: baseline updated from {args.out} "
              f"-> {args.baseline} ({len(current)} points); "
              f"commit the new file")
        return

    baseline = load(args.baseline, "baseline")
    failures = compare(current, baseline, args.threshold)
    if failures:
        print()
        for f in failures:
            print(f"bench_baseline: REGRESSION: {f}")
        sys.exit(f"bench_baseline: FAIL: {len(failures)} metric(s) "
                 f"drifted beyond {args.threshold:g}% — investigate, "
                 f"or rerun with --update and commit the baseline if "
                 f"the change is intentional")
    print(f"bench_baseline: OK ({len(current)} points x "
          f"{len(GATED_METRICS)} metrics within "
          f"{args.threshold:g}%)")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)  # e.g. `bench_baseline.py | head`
