/**
 * @file
 * Microbenchmarks of the building blocks: tree geometry, stash
 * eviction selection, label-queue scheduling, MAC insert/extract,
 * SPECK encryption, the functional Path ORAM access and the DRAM and
 * network backend models. These quantify simulator throughput
 * (host-side cost), not simulated time.
 *
 * Self-contained timing harness (no external benchmark library):
 * each micro is a SweepRunner task that sets up its component, then
 * grows the iteration count until the timed batch exceeds --min-ms
 * of wall clock and reports ns/op. Table structure and row order are
 * stable; the timing columns are host-dependent by nature. --jobs>1
 * times micros concurrently — faster, but expect more noise than the
 * default sequential run.
 */

#include <chrono>
#include <vector>

#include "core/label_queue.hh"
#include "core/merging_cache.hh"
#include "core/plb.hh"
#include "crypto/counter_mode.hh"
#include "dram/dram_system.hh"
#include "fig_common.hh"
#include "mem/net_backend.hh"
#include "mem/tree_geometry.hh"
#include "oram/integrity.hh"
#include "oram/path_oram.hh"
#include "oram/stash.hh"
#include "sim/metrics.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

/** Keep a computed value alive past the optimizer. */
template <typename T>
inline void
keep(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

struct MicroResult
{
    double nsPerOp = 0.0;
    std::uint64_t iters = 0;
};

/**
 * Time run_n(n) with n growing until one batch takes at least
 * @p min_ms of wall clock; ns/op comes from that final batch alone,
 * so earlier (cold) batches only serve as warm-up.
 */
MicroResult
measure(double min_ms, const std::function<void(std::uint64_t)> &run_n)
{
    run_n(1); // warm-up: first-touch allocations, code paths
    const double min_ns = min_ms * 1e6;
    std::uint64_t n = 1;
    for (;;) {
        auto t0 = std::chrono::steady_clock::now();
        run_n(n);
        std::chrono::duration<double, std::nano> dt =
            std::chrono::steady_clock::now() - t0;
        if (dt.count() >= min_ns || n >= (std::uint64_t{1} << 40))
            return {dt.count() / static_cast<double>(n), n};
        // Aim 40% past the threshold to converge in ~one retry.
        double grow = min_ns / std::max(dt.count(), 1.0) * 1.4;
        n = std::max(n + 1, static_cast<std::uint64_t>(
                                static_cast<double>(n) * grow));
    }
}

struct Micro
{
    std::string name;
    std::function<MicroResult(double min_ms)> run;
};

std::vector<Micro>
buildMicros()
{
    std::vector<Micro> micros;

    micros.push_back({"geometry_overlap", [](double min_ms) {
        mem::TreeGeometry geo(24);
        Rng rng(1);
        LeafLabel a = rng.uniformInt(geo.numLeaves());
        LeafLabel b = rng.uniformInt(geo.numLeaves());
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                keep(geo.overlap(a, b));
                a = (a + 0x9e37) & (geo.numLeaves() - 1);
                b = (b + 0x79b9) & (geo.numLeaves() - 1);
            }
        });
    }});

    for (std::uint64_t occupancy : {50u, 200u, 1000u}) {
        micros.push_back({"stash_evict/" + std::to_string(occupancy),
                          [occupancy](double min_ms) {
            mem::TreeGeometry geo(24);
            oram::Stash stash(geo, 4096);
            Rng rng(2);
            for (std::uint64_t i = 0; i < occupancy; ++i) {
                stash.insert(
                    mem::Block(i, rng.uniformInt(geo.numLeaves())));
            }
            LeafLabel path = rng.uniformInt(geo.numLeaves());
            return measure(min_ms, [&](std::uint64_t n) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    auto evicted = stash.evictForBucket(path, 2, 4);
                    for (auto &blk : evicted)
                        stash.insert(std::move(blk)); // restore
                    keep(evicted);
                }
            });
        }});
    }

    for (std::size_t q : {8u, 64u, 128u}) {
        micros.push_back({"label_queue_select/" + std::to_string(q),
                          [q](double min_ms) {
            mem::TreeGeometry geo(24);
            core::LabelQueue queue(
                geo, q, 4, core::DummySelectPolicy::compete, 3);
            Rng rng(4);
            return measure(min_ms, [&](std::uint64_t n) {
                for (std::uint64_t i = 0; i < n; ++i) {
                    queue.ensureFull();
                    keep(queue.selectNext(
                        rng.uniformInt(geo.numLeaves())));
                }
            });
        }});
    }

    micros.push_back({"mac_insert_extract", [](double min_ms) {
        mem::TreeGeometry geo(24);
        core::MergingCacheParams params;
        params.m1 = 9;
        params.budgetBytes = 1 << 20;
        core::MergingAwareCache mac(geo, params);
        Rng rng(5);
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                unsigned level = 9 + rng.uniformInt(3);
                std::uint64_t offset =
                    rng.uniformInt(std::uint64_t{1} << level);
                BucketIndex idx =
                    ((std::uint64_t{1} << level) - 1) + offset;
                mac.insert(idx, mem::Bucket(4));
                keep(mac.extract(idx));
            }
        });
    }});

    micros.push_back({"speck_encrypt_64B", [](double min_ms) {
        crypto::CounterModeCipher cipher(7);
        std::vector<std::uint8_t> block(64, 0x5A);
        std::uint64_t nonce = 0;
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i)
                keep(cipher.encrypt(block, ++nonce));
        });
    }});

    for (unsigned leaf : {12u, 18u, 24u}) {
        micros.push_back({"path_oram_access/" + std::to_string(leaf),
                          [leaf](double min_ms) {
            oram::OramParams params;
            params.leafLevel = leaf;
            params.payloadBytes = 0;
            oram::PathOram oram(params);
            Rng rng(6);
            return measure(min_ms, [&](std::uint64_t n) {
                for (std::uint64_t i = 0; i < n; ++i)
                    oram.read(rng.uniformInt(4096));
            });
        }});
    }

    micros.push_back({"dram_transaction", [](double min_ms) {
        EventQueue eq;
        dram::DramSystem dram(sim::SimConfig::defaultDram(), eq);
        Rng rng(7);
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                dram::DramRequest req;
                req.addr = rng.uniformInt(1ULL << 30) & ~63ULL;
                req.isWrite = rng.chance(0.5);
                req.bursts = 4;
                bool done = false;
                req.onComplete = [&done](Tick) { done = true; };
                dram.access(std::move(req));
                eq.run();
                keep(done);
            }
        });
    }});

    micros.push_back({"net_transaction", [](double min_ms) {
        EventQueue eq;
        mem::NetBackend net(mem::NetBackendParams{}, eq);
        Rng rng(7);
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                mem::BackendRequest req;
                req.addr = rng.uniformInt(1ULL << 30) & ~63ULL;
                req.isWrite = rng.chance(0.5);
                req.bytes = 256;
                bool done = false;
                req.onComplete = [&done](Tick) { done = true; };
                net.access(std::move(req));
                eq.run();
                keep(done);
            }
        });
    }});

    micros.push_back({"merkle_update_slice", [](double min_ms) {
        mem::TreeGeometry geo(24);
        oram::MerkleTree tree(geo, 9);
        Rng rng(8);
        std::vector<mem::Bucket> slice(geo.numLevels() - 7,
                                       mem::Bucket(4));
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                tree.updateSlice(rng.uniformInt(geo.numLeaves()), 7,
                                 slice);
            }
        });
    }});

    micros.push_back({"plb_lookup", [](double min_ms) {
        core::PosmapLookasideBuffer plb(3, 8, 4096);
        Rng rng(9);
        for (std::uint64_t a = 0; a < 4096; ++a) {
            plb.fill(a, 0);
            plb.fill(a, 1);
        }
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                keep(plb.lookupChainStart(rng.uniformInt(8192)));
            }
        });
    }});

    micros.push_back({"event_queue_churn_1k", [](double min_ms) {
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i) {
                EventQueue eq;
                int fired = 0;
                for (int e = 0; e < 1000; ++e) {
                    eq.schedule(static_cast<Tick>((e * 37) % 997),
                                [&fired] { ++fired; });
                }
                eq.run();
                keep(fired);
            }
        });
    }});

    micros.push_back({"json_run_result", [](double min_ms) {
        sim::RunResult r;
        r.avgLlcLatencyNs = 1234.5;
        r.realAccesses = 99999;
        return measure(min_ms, [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i)
                keep(sim::toJson(r));
        });
    }});

    return micros;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const double min_ms = args.getDouble("min-ms", 20.0);
    BenchOptions opt = parseOptions(args);

    banner("Component microbenchmarks (host-side cost)",
           "n/a — these measure simulator throughput, not a paper "
           "figure");

    auto micros = buildMicros();
    std::vector<MicroResult> results(micros.size());
    std::vector<sim::SweepTask> tasks;
    tasks.reserve(micros.size());
    for (std::size_t i = 0; i < micros.size(); ++i) {
        tasks.push_back({micros[i].name, [&, i] {
            results[i] = micros[i].run(min_ms);
        }});
    }

    sim::SweepRunner runner(opt.sweep);
    for (const auto &out : runner.runTasks(std::move(tasks))) {
        if (!out.ok)
            fp_fatal("micro '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
    }

    TextTable table("component cost per operation");
    table.setHeader({"component", "ns_per_op", "mops_per_s",
                     "timed_iters"});
    for (std::size_t i = 0; i < micros.size(); ++i) {
        const MicroResult &r = results[i];
        table.addRow({micros[i].name, TextTable::fmt(r.nsPerOp, 1),
                      TextTable::fmt(1e3 / r.nsPerOp, 2),
                      TextTable::fmt(r.iters)});
    }
    emit(table);
    return 0;
}
