/**
 * @file
 * google-benchmark microbenchmarks of the building blocks: tree
 * geometry, stash eviction selection, label-queue scheduling, MAC
 * insert/extract, SPECK encryption, the functional Path ORAM access
 * and the DRAM channel model. These quantify simulator throughput
 * (host-side cost), not simulated time.
 */

#include <benchmark/benchmark.h>

#include "core/label_queue.hh"
#include "core/merging_cache.hh"
#include "core/plb.hh"
#include "crypto/counter_mode.hh"
#include "dram/dram_system.hh"
#include "mem/tree_geometry.hh"
#include "oram/integrity.hh"
#include "oram/path_oram.hh"
#include "oram/stash.hh"
#include "sim/metrics.hh"
#include "util/random.hh"

namespace
{

void
BM_GeometryOverlap(benchmark::State &state)
{
    fp::mem::TreeGeometry geo(24);
    fp::Rng rng(1);
    fp::LeafLabel a = rng.uniformInt(geo.numLeaves());
    fp::LeafLabel b = rng.uniformInt(geo.numLeaves());
    for (auto _ : state) {
        benchmark::DoNotOptimize(geo.overlap(a, b));
        a = (a + 0x9e37) & (geo.numLeaves() - 1);
        b = (b + 0x79b9) & (geo.numLeaves() - 1);
    }
}
BENCHMARK(BM_GeometryOverlap);

void
BM_StashEvictForBucket(benchmark::State &state)
{
    fp::mem::TreeGeometry geo(24);
    fp::oram::Stash stash(geo, 4096);
    fp::Rng rng(2);
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (std::uint64_t i = 0; i < n; ++i) {
        stash.insert(fp::mem::Block(
            i, rng.uniformInt(geo.numLeaves())));
    }
    fp::LeafLabel path = rng.uniformInt(geo.numLeaves());
    for (auto _ : state) {
        auto evicted = stash.evictForBucket(path, 2, 4);
        for (auto &blk : evicted)
            stash.insert(std::move(blk)); // restore
        benchmark::DoNotOptimize(evicted);
    }
}
BENCHMARK(BM_StashEvictForBucket)->Arg(50)->Arg(200)->Arg(1000);

void
BM_LabelQueueSelect(benchmark::State &state)
{
    fp::mem::TreeGeometry geo(24);
    const auto q = static_cast<std::size_t>(state.range(0));
    fp::core::LabelQueue queue(geo, q, 4,
                               fp::core::DummySelectPolicy::compete,
                               3);
    fp::Rng rng(4);
    for (auto _ : state) {
        queue.ensureFull();
        auto sel =
            queue.selectNext(rng.uniformInt(geo.numLeaves()));
        benchmark::DoNotOptimize(sel);
    }
}
BENCHMARK(BM_LabelQueueSelect)->Arg(8)->Arg(64)->Arg(128);

void
BM_MacInsertExtract(benchmark::State &state)
{
    fp::mem::TreeGeometry geo(24);
    fp::core::MergingCacheParams params;
    params.m1 = 9;
    params.budgetBytes = 1 << 20;
    fp::core::MergingAwareCache mac(geo, params);
    fp::Rng rng(5);
    for (auto _ : state) {
        unsigned level = 9 + rng.uniformInt(3);
        std::uint64_t offset =
            rng.uniformInt(std::uint64_t{1} << level);
        fp::BucketIndex idx =
            ((std::uint64_t{1} << level) - 1) + offset;
        mac.insert(idx, fp::mem::Bucket(4));
        benchmark::DoNotOptimize(mac.extract(idx));
    }
}
BENCHMARK(BM_MacInsertExtract);

void
BM_SpeckEncrypt64B(benchmark::State &state)
{
    fp::crypto::CounterModeCipher cipher(7);
    std::vector<std::uint8_t> block(64, 0x5A);
    std::uint64_t nonce = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cipher.encrypt(block, ++nonce));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_SpeckEncrypt64B);

void
BM_PathOramAccess(benchmark::State &state)
{
    fp::oram::OramParams params;
    params.leafLevel = static_cast<unsigned>(state.range(0));
    params.payloadBytes = 0;
    fp::oram::PathOram oram(params);
    fp::Rng rng(6);
    for (auto _ : state)
        oram.read(rng.uniformInt(4096));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PathOramAccess)->Arg(12)->Arg(18)->Arg(24);

void
BM_DramTransaction(benchmark::State &state)
{
    fp::EventQueue eq;
    fp::dram::DramSystem dram(fp::dram::DramParams::ddr3_1600(2),
                              eq);
    fp::Rng rng(7);
    for (auto _ : state) {
        fp::dram::DramRequest req;
        req.addr = rng.uniformInt(1ULL << 30) & ~63ULL;
        req.isWrite = rng.chance(0.5);
        req.bursts = 4;
        bool done = false;
        req.onComplete = [&done](fp::Tick) { done = true; };
        dram.access(std::move(req));
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramTransaction);

void
BM_MerkleUpdateSlice(benchmark::State &state)
{
    fp::mem::TreeGeometry geo(24);
    fp::oram::MerkleTree tree(geo, 9);
    fp::Rng rng(8);
    std::vector<fp::mem::Bucket> slice(geo.numLevels() - 7,
                                       fp::mem::Bucket(4));
    for (auto _ : state) {
        tree.updateSlice(rng.uniformInt(geo.numLeaves()), 7, slice);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MerkleUpdateSlice);

void
BM_PlbLookup(benchmark::State &state)
{
    fp::core::PosmapLookasideBuffer plb(3, 8, 4096);
    fp::Rng rng(9);
    for (std::uint64_t a = 0; a < 4096; ++a) {
        plb.fill(a, 0);
        plb.fill(a, 1);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            plb.lookupChainStart(rng.uniformInt(8192)));
    }
}
BENCHMARK(BM_PlbLookup);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        fp::EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<fp::Tick>((i * 37) % 997),
                        [&fired] { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void
BM_JsonRunResult(benchmark::State &state)
{
    fp::sim::RunResult r;
    r.avgLlcLatencyNs = 1234.5;
    r.realAccesses = 99999;
    for (auto _ : state)
        benchmark::DoNotOptimize(fp::sim::toJson(r));
}
BENCHMARK(BM_JsonRunResult);

} // anonymous namespace

BENCHMARK_MAIN();
