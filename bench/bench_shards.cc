/**
 * @file
 * Shard-scaling sweep: throughput versus shard count for the sharded
 * ORAM front-end (core::ShardedOram), on both memory backends.
 *
 * A single controller serializes every access behind one backend
 * pipe; sharding gives each partition its own tree and its own pipe,
 * so aggregate throughput should rise with the shard count until the
 * cores (not the memory) are the bottleneck. The effect is starkest
 * on the network backend, where a round trip costs tens of
 * microseconds and the per-shard pipes are genuinely independent;
 * per-shard DRAM channels help less at smoke scale because DDR3 is
 * already fast relative to the request rate.
 *
 * Points: backend in {dram, net} x shards in {1, 2, 4, 8}, Mix3,
 * Fork Path merging at queue depth 64. Throughput is LLC requests per
 * millisecond of simulated time (execution_ticks are picoseconds).
 *
 * Flags: --quick, --jobs=N, --csv, plus the common backend flags
 * (--net-latency-us etc. shape the net points).
 */

#include <iostream>

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

/** LLC requests per millisecond of simulated time. */
double
throughputPerMs(const sim::RunResult &r)
{
    if (r.executionTicks == 0)
        return 0.0;
    // 1 tick = 1 ps; 1e9 ticks = 1 ms.
    return static_cast<double>(r.llcRequests) /
           (static_cast<double>(r.executionTicks) / 1e9);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Shard scaling (throughput vs shard count)",
           "n/a — sharded front-end analysis, not a paper figure");

    const std::string mix = "Mix3";
    const unsigned shard_counts[] = {1, 2, 4, 8};
    const struct
    {
        const char *name;
        sim::BackendKind kind;
    } backends[] = {{"dram", sim::BackendKind::dram},
                    {"net", sim::BackendKind::net}};

    std::vector<sim::SweepPoint> points;
    std::vector<std::string> names;
    for (const auto &be : backends) {
        for (unsigned shards : shard_counts) {
            sim::SimConfig cfg =
                sim::withMergeOnly(baseConfig(opt), 64);
            cfg.backendKind = be.kind;
            cfg.shards = shards;
            std::string name = std::string(be.name) + "_s" +
                               std::to_string(shards);
            names.push_back(name);
            points.push_back(
                sim::pointFromMix(std::move(name), cfg, mix));
        }
    }

    auto results = runSweep(opt, std::move(points));

    TextTable table("throughput vs shards (" + mix +
                    ", merge q64, requests=" +
                    std::to_string(opt.requests) + ", leaf=" +
                    std::to_string(opt.leafLevel) + ")");
    table.setHeader({"point", "shards", "exec_ticks", "llc_ns",
                     "req_per_ms", "speedup_vs_s1"});
    std::size_t i = 0;
    for (const auto &be : backends) {
        (void)be;
        double base_tput = 0.0;
        for (unsigned shards : shard_counts) {
            const auto &r = results[i];
            const double tput = throughputPerMs(r);
            if (shards == 1)
                base_tput = tput;
            table.addRow(
                {names[i], TextTable::fmt(std::uint64_t{shards}),
                 TextTable::fmt(std::uint64_t{r.executionTicks}),
                 TextTable::fmt(r.avgLlcLatencyNs, 1),
                 TextTable::fmt(tput, 2),
                 TextTable::fmt(
                     base_tput > 0.0 ? tput / base_tput : 0.0, 2)});
            ++i;
        }
    }
    emit(table);
    return 0;
}
