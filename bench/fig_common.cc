#include "fig_common.hh"

#include <iostream>
#include <sstream>

#include "core/access_policy.hh"
#include "util/logging.hh"

namespace fp::bench
{

namespace
{
bool csvMode = false;
} // anonymous namespace

BenchOptions
parseOptions(const CliArgs &args)
{
    BenchOptions opt;
    opt.requests = static_cast<std::uint64_t>(
        args.getInt("requests", 1200));
    opt.leafLevel =
        static_cast<unsigned>(args.getInt("leaf-level", 24));
    if (args.getBool("quick")) {
        opt.requests = 150;
        opt.leafLevel = 14;
    }
    opt.csv = args.getBool("csv");
    csvMode = opt.csv;
    opt.sweep = sim::sweepOptionsFromArgs(args);

    sim::SimConfig probe;
    sim::applyObsFlags(probe, args);
    sim::applyBackendFlags(probe, args);
    opt.obs = probe.obs;
    opt.backendKind = probe.backendKind;
    opt.net = probe.net;
    opt.faults = probe.faults;
    opt.retry = probe.retry;
    opt.shards = probe.shards;
    opt.shardWindow = probe.shardWindow;

    opt.policy = args.getString("policy", "");
    if (!opt.policy.empty())
        core::parsePolicyKind(opt.policy); // fatal on unknown names
    const std::int64_t batch = args.getInt("batch-size", 0);
    if (args.has("batch-size") && batch < 1)
        fp_fatal("--batch-size must be at least 1 (got %lld)",
                 static_cast<long long>(batch));
    opt.batchSize = static_cast<unsigned>(batch);

    std::string mixes = args.getString("mixes", "");
    if (mixes.empty()) {
        opt.mixes = workload::mixNames();
    } else {
        std::stringstream ss(mixes);
        std::string item;
        while (std::getline(ss, item, ','))
            opt.mixes.push_back(item);
    }
    return opt;
}

sim::SimConfig
baseConfig(const BenchOptions &opt)
{
    sim::SimConfig cfg = sim::SimConfig::paperDefault();
    cfg.requestsPerCore = opt.requests;
    cfg.controller.oram.leafLevel = opt.leafLevel;
    cfg.obs = opt.obs;
    cfg.backendKind = opt.backendKind;
    cfg.net = opt.net;
    cfg.faults = opt.faults;
    cfg.retry = opt.retry;
    cfg.shards = opt.shards;
    cfg.shardWindow = opt.shardWindow;
    return applyPolicy(opt, std::move(cfg));
}

sim::SimConfig
applyPolicy(const BenchOptions &opt, sim::SimConfig cfg)
{
    if (!opt.policy.empty())
        cfg = sim::withPolicyName(std::move(cfg), opt.policy);
    if (opt.batchSize > 0)
        cfg.controller.batchSize = opt.batchSize;
    return cfg;
}

std::vector<sim::RunResult>
runSweep(const BenchOptions &opt, std::vector<sim::SweepPoint> points)
{
    // --policy/--batch-size override every point's per-series choice
    // (the series transforms rebuild the controller config after
    // baseConfig, so the flag must be re-applied here).
    if (!opt.policy.empty() || opt.batchSize > 0) {
        for (sim::SweepPoint &p : points) {
            if (p.cfg.insecure)
                continue; // the insecure baseline has no scheduler
            p.cfg = applyPolicy(opt, std::move(p.cfg));
        }
    }
    sim::SweepRunner runner(opt.sweep);
    auto outcomes = runner.run(std::move(points));
    std::vector<sim::RunResult> results;
    results.reserve(outcomes.size());
    for (const auto &out : outcomes) {
        if (!out.ok)
            fp_fatal("sweep point '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
        results.push_back(out.result);
    }
    return results;
}

void
emit(const TextTable &table)
{
    if (csvMode)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

void
banner(const std::string &figure, const std::string &paper_says)
{
    if (csvMode)
        return; // keep CSV output machine-clean
    std::cout << "==================================================="
                 "=====\n"
              << figure << "\n"
              << "paper reports: " << paper_says << "\n"
              << "==================================================="
                 "=====\n\n";
}

} // namespace fp::bench
