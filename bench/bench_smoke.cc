/**
 * @file
 * The CI smoke benchmark: five pinned configuration points small
 * enough to finish in seconds, run with per-request profiling on, and
 * dumped as machine-readable JSON for the bench-baseline regression
 * gate (tools/bench_baseline.py compares the output against
 * tools/baselines/BENCH_smoke.baseline.json).
 *
 * The points are deliberately frozen — traditional Path ORAM, Fork
 * Path merging at two queue depths, merging + MAC, and a sharded
 * merging point (4 shards on the network store), all on Mix3 at
 * requests=150 / leaf-level=14 — so the baseline file stays
 * meaningful across commits. Runs are deterministic at any --jobs
 * (SweepRunner contract), so the JSON is byte-stable on one machine
 * and value-stable everywhere.
 *
 * Flags: --out=PATH (default BENCH_smoke.json), --jobs=N, plus the
 * common observability/backend flags (profiling is forced on).
 */

#include <fstream>
#include <iostream>

#include "fig_common.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

/** Per-stage p50 of one profiled stage, for the progress table. */
double
stageP50(const sim::RunResult &r, const std::string &stage)
{
    for (const auto &s : r.profileStages) {
        if (s.stage == stage)
            return s.p50Ns;
    }
    return 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    // Smoke scale, pinned: the baseline file encodes these numbers.
    opt.requests = static_cast<std::uint64_t>(
        args.getInt("requests", 150));
    opt.leafLevel =
        static_cast<unsigned>(args.getInt("leaf-level", 14));
    const std::string out_path =
        args.getString("out", "BENCH_smoke.json");

    banner("CI smoke sweep (bench-baseline gate)",
           "n/a — regression gate, not a paper figure");

    sim::SimConfig base = baseConfig(opt);
    // Profiling always on: the baseline tracks effectiveness counters
    // and stage percentiles alongside the headline metrics.
    base.obs.profileRequests = true;

    // With --policy=NAME the registry preset is forced onto every
    // point AFTER its series transform (so e.g. --policy=batched runs
    // the whole smoke matrix batched); without the flag pol() is the
    // identity and the baseline-gated output stays byte-identical.
    auto pol = [&](sim::SimConfig cfg) {
        return applyPolicy(opt, std::move(cfg));
    };

    const std::string mix = "Mix3";
    std::vector<sim::SweepPoint> points;
    points.push_back(sim::pointFromMix(
        "traditional", pol(sim::withTraditional(base)), mix));
    points.push_back(sim::pointFromMix(
        "merge_q16", pol(sim::withMergeOnly(base, 16)), mix));
    points.push_back(sim::pointFromMix(
        "merge_q64", pol(sim::withMergeOnly(base, 64)), mix));
    points.push_back(sim::pointFromMix(
        "merge_mac_q64",
        pol(sim::withMergeMac(base, 128 * 1024, 64)), mix));
    {
        // Sharded front-end on the network store: four independent
        // shards, each with its own pipe (the config where sharding
        // actually moves throughput, and the one CI should gate).
        sim::SimConfig sharded = pol(sim::withMergeOnly(base, 64));
        sharded.backendKind = sim::BackendKind::net;
        sharded.shards = 4;
        points.push_back(
            sim::pointFromMix("shards4_net_q64", sharded, mix));
    }

    std::vector<std::string> names;
    for (const auto &p : points)
        names.push_back(p.name);

    auto results = runSweep(opt, std::move(points));

    TextTable table("smoke points (" + mix + ", requests=" +
                    std::to_string(opt.requests) + ", leaf=" +
                    std::to_string(opt.leafLevel) + ")");
    table.setHeader({"point", "exec_ticks", "llc_ns", "path_len",
                     "buckets_saved", "total_p50_ns"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        table.addRow(
            {names[i], TextTable::fmt(std::uint64_t{r.executionTicks}),
             TextTable::fmt(r.avgLlcLatencyNs, 1),
             TextTable::fmt(r.avgReadPathLen, 2),
             TextTable::fmt(r.profileEffectiveness.bucketsSaved()),
             TextTable::fmt(stageP50(r, "total"), 1)});
    }
    emit(table);

    // JsonWriter has no raw-embed, so the document is spliced by hand
    // from toJson() fragments (each already a complete JSON object).
    std::string doc = "{\"schema\":\"forkpath-bench-smoke-v1\","
                      "\"points\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            doc += ',';
        doc += "{\"name\":\"" + JsonWriter::escape(names[i]) +
               "\",\"result\":" + sim::toJson(results[i]) + "}";
    }
    doc += "]}";

    std::ofstream out(out_path);
    if (!out)
        fp_fatal("cannot open --out file '%s'", out_path.c_str());
    out << doc << '\n';
    if (!opt.csv)
        std::cout << "wrote " << out_path << "\n";
    return 0;
}
