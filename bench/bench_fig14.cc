/**
 * @file
 * Figure 14: slowdown of full-system execution time relative to the
 * insecure processor (no ORAM), per mix, for: traditional Path ORAM,
 * merge-only, merge + MAC 128K/256K/1M, merge + 1MB treetop.
 *
 * Paper: with 1 MB MAC, execution time falls 58 % vs traditional
 * ORAM and 29 % vs 1 MB treetop.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 14: full-system slowdown vs insecure processor",
           "merge+1M MAC cuts execution time ~58% vs traditional "
           "ORAM, ~29% vs 1MB treetop");

    auto cfg = baseConfig(opt);

    struct Config
    {
        std::string name;
        sim::SimConfig cfg;
    };
    const std::vector<Config> configs = {
        {"traditional", sim::withTraditional(cfg)},
        {"merge_only", sim::withMergeOnly(cfg, 64)},
        {"mac_128K", sim::withMergeMac(cfg, 128 << 10, 64)},
        {"mac_256K", sim::withMergeMac(cfg, 256 << 10, 64)},
        {"mac_1M", sim::withMergeMac(cfg, 1 << 20, 64)},
        {"treetop_1M", sim::withMergeTreetop(cfg, 1 << 20, 64)},
    };

    TextTable table("Fig 14 (execution time / insecure)");
    std::vector<std::string> header = {"mix"};
    for (const auto &c : configs)
        header.push_back(c.name);
    table.setHeader(header);

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(sim::pointFromMix(
            mix + "/insecure", sim::withInsecure(cfg), mix));
        for (const auto &c : configs) {
            points.push_back(
                sim::pointFromMix(mix + "/" + c.name, c.cfg, mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 1 + configs.size();

    std::vector<std::vector<double>> slowdowns(configs.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        const auto &insecure = results[m * stride];
        auto base = static_cast<double>(insecure.executionTicks);
        std::vector<std::string> row = {opt.mixes[m]};
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            double s = static_cast<double>(r.executionTicks) / base;
            slowdowns[i].push_back(s);
            row.push_back(TextTable::fmt(s, 2));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean"};
    std::vector<double> geo(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        geo[i] = sim::geomean(slowdowns[i]);
        avg.push_back(TextTable::fmt(geo[i], 2));
    }
    table.addRow(avg);
    emit(table);

    TextTable summary("headline reductions in execution time");
    summary.setHeader({"comparison", "reduction"});
    summary.addRow(
        {"mac_1M vs traditional",
         TextTable::fmt(100.0 * (1.0 - geo[4] / geo[0]), 1) + " %"});
    summary.addRow(
        {"mac_1M vs treetop_1M",
         TextTable::fmt(100.0 * (1.0 - geo[4] / geo[5]), 1) + " %"});
    emit(summary);
    return 0;
}
