/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, beyond
 * the paper's own figures:
 *
 *  1. technique stack: traditional -> +merging -> +scheduling ->
 *     -replacing -> +MAC;
 *  2. dummy selection policy: compete (paper, intensity-oblivious)
 *     vs realFirst (leaky but wasteless);
 *  3. aging threshold sensitivity;
 *  4. DRAM layout: subtree vs linear.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

void
runRow(TextTable &table, const std::string &name,
       const sim::SimConfig &cfg, const std::string &mix,
       double trad_latency)
{
    auto r = sim::runMix(cfg, mix);
    table.addRow(
        {name, TextTable::fmt(r.avgLlcLatencyNs, 0),
         TextTable::fmt(r.avgLlcLatencyNs / trad_latency, 3),
         TextTable::fmt(r.avgReadPathLen, 2),
         TextTable::fmt(static_cast<double>(r.dummyAccesses) /
                            static_cast<double>(r.realAccesses),
                        3),
         TextTable::fmt(r.totalEnergyNj() / 1e6, 1)});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    const std::string mix = args.getString("mix", "Mix3");

    banner("Ablation: Fork Path technique stack and design knobs",
           "(beyond the paper's figures; see DESIGN.md section 4)");

    auto base = baseConfig(opt);
    auto trad = sim::runMix(sim::withTraditional(base), mix);

    TextTable stack("technique stack (" + mix + ")");
    stack.setHeader({"config", "latency_ns", "norm", "path_len",
                     "dummy/real", "energy_mJ"});
    stack.addRow({"traditional",
                  TextTable::fmt(trad.avgLlcLatencyNs, 0), "1.000",
                  TextTable::fmt(trad.avgReadPathLen, 2), "0.000",
                  TextTable::fmt(trad.totalEnergyNj() / 1e6, 1)});
    runRow(stack, "+merging (q=1)", sim::withMergeOnly(base, 1), mix,
           trad.avgLlcLatencyNs);
    runRow(stack, "+scheduling (q=64)", sim::withMergeOnly(base, 64),
           mix, trad.avgLlcLatencyNs);
    {
        auto no_replace = sim::withMergeOnly(base, 64);
        no_replace.controller.enableDummyReplacing = false;
        runRow(stack, "q=64, no replacing", no_replace, mix,
               trad.avgLlcLatencyNs);
    }
    runRow(stack, "+MAC 1MB", sim::withMergeMac(base, 1 << 20, 64),
           mix, trad.avgLlcLatencyNs);
    emit(stack);

    TextTable policy("dummy selection policy (q=64, " + mix + ")");
    policy.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    {
        auto compete = sim::withMergeOnly(base, 64);
        compete.controller.dummyPolicy =
            core::DummySelectPolicy::compete;
        runRow(policy, "compete (paper)", compete, mix,
               trad.avgLlcLatencyNs);
        auto real_first = sim::withMergeOnly(base, 64);
        real_first.controller.dummyPolicy =
            core::DummySelectPolicy::realFirst;
        runRow(policy, "realFirst (leaky)", real_first, mix,
               trad.avgLlcLatencyNs);
    }
    emit(policy);

    TextTable aging("aging threshold (q=64, " + mix + ")");
    aging.setHeader({"config", "latency_ns", "norm", "path_len",
                     "dummy/real", "energy_mJ"});
    for (unsigned t : {1u, 4u, 16u, 1u << 20}) {
        auto cfg = sim::withMergeOnly(base, 64);
        cfg.controller.agingThreshold = t;
        runRow(aging,
               t >= (1u << 20) ? "T=inf" : "T=" + std::to_string(t),
               cfg, mix, trad.avgLlcLatencyNs);
    }
    emit(aging);

    TextTable layout("DRAM layout (q=64, " + mix + ")");
    layout.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    {
        auto subtree = sim::withMergeOnly(base, 64);
        runRow(layout, "subtree rows", subtree, mix,
               trad.avgLlcLatencyNs);
        auto linear = sim::withMergeOnly(base, 64);
        linear.controller.layout = dram::LayoutPolicy::linear;
        runRow(layout, "linear (heap order)", linear, mix,
               trad.avgLlcLatencyNs);
    }
    emit(layout);

    TextTable recursion("hierarchical position map (q=64, " + mix +
                        ")");
    recursion.setHeader({"config", "latency_ns", "norm", "path_len",
                         "dummy/real", "energy_mJ"});
    {
        auto flat = sim::withMergeOnly(base, 64);
        runRow(recursion, "flat on-chip posmap", flat, mix,
               trad.avgLlcLatencyNs);
        auto rec = sim::withMergeOnly(base, 64);
        rec.controller.recursionDepth = 2;
        runRow(recursion, "2-level recursion", rec, mix,
               trad.avgLlcLatencyNs);
        auto plb = rec;
        plb.controller.plbEntries = 4096;
        runRow(recursion, "2-level + 4K-entry PLB", plb, mix,
               trad.avgLlcLatencyNs);
    }
    emit(recursion);

    TextTable paging("DRAM page policy (q=64, " + mix + ")");
    paging.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    {
        runRow(paging, "open page (FR-FCFS)",
               sim::withMergeOnly(base, 64), mix,
               trad.avgLlcLatencyNs);
        auto closed = sim::withMergeOnly(base, 64);
        closed.dram.pagePolicy = dram::PagePolicy::closed;
        runRow(paging, "closed page (auto-PRE)", closed, mix,
               trad.avgLlcLatencyNs);
    }
    emit(paging);

    TextTable timing("timing-channel protection (q=64, " + mix +
                     ")");
    timing.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    {
        runRow(timing, "demand-driven (paper eval)",
               sim::withMergeOnly(base, 64), mix,
               trad.avgLlcLatencyNs);
        auto periodic = sim::withMergeOnly(base, 64);
        // One access slot per ~1.3 us: roughly the merged service
        // rate, so the stream adds little queueing when busy but
        // never stops when idle (Section 2.2's sealed channel).
        periodic.controller.periodicIntervalTicks = 1'300'000;
        runRow(timing, "periodic 1.3us slots", periodic, mix,
               trad.avgLlcLatencyNs);
    }
    emit(timing);

    TextTable integrity("Merkle integrity (q=64, " + mix + ")");
    integrity.setHeader({"config", "latency_ns", "norm", "path_len",
                         "dummy/real", "energy_mJ"});
    {
        auto off = sim::withMergeOnly(base, 64);
        runRow(integrity, "integrity off", off, mix,
               trad.avgLlcLatencyNs);
        auto on = sim::withMergeOnly(base, 64);
        on.controller.enableIntegrity = true;
        runRow(integrity, "integrity on (hash-only cost)", on, mix,
               trad.avgLlcLatencyNs);
    }
    emit(integrity);
    return 0;
}
