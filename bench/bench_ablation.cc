/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, beyond
 * the paper's own figures:
 *
 *  1. technique stack: traditional -> +merging -> +scheduling ->
 *     -replacing -> +MAC;
 *  2. dummy selection policy: compete (paper, intensity-oblivious)
 *     vs realFirst (leaky but wasteless);
 *  3. aging threshold sensitivity;
 *  4. DRAM layout: subtree vs linear.
 */

#include "core/access_policy.hh"
#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

void
addRow(TextTable &table, const std::string &name,
       const sim::RunResult &r, double trad_latency)
{
    table.addRow(
        {name, TextTable::fmt(r.avgLlcLatencyNs, 0),
         TextTable::fmt(r.avgLlcLatencyNs / trad_latency, 3),
         TextTable::fmt(r.avgReadPathLen, 2),
         TextTable::fmt(static_cast<double>(r.dummyAccesses) /
                            static_cast<double>(r.realAccesses),
                        3),
         TextTable::fmt(r.totalEnergyNj() / 1e6, 1)});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    const std::string mix = args.getString("mix", "Mix3");

    banner("Ablation: Fork Path technique stack and design knobs",
           "(beyond the paper's figures; see DESIGN.md section 4)");

    auto base = baseConfig(opt);

    // Phase 1: declare every configuration (in emission order) as a
    // named sweep point; phase 2 runs them all (in parallel under
    // --jobs) and the tables consume the ordered results.
    std::vector<sim::SweepPoint> points;
    std::vector<std::string> names;
    auto add = [&](const std::string &name, sim::SimConfig cfg) {
        names.push_back(name);
        points.push_back(
            sim::pointFromMix(name, std::move(cfg), mix));
    };

    add("traditional", sim::withTraditional(base));
    add("+merging (q=1)", sim::withMergeOnly(base, 1));
    add("+scheduling (q=64)", sim::withMergeOnly(base, 64));
    {
        auto no_replace = sim::withMergeOnly(base, 64);
        no_replace.controller.enableDummyReplacing = false;
        add("q=64, no replacing", no_replace);
    }
    add("+MAC 1MB", sim::withMergeMac(base, 1 << 20, 64));

    {
        auto compete = sim::withMergeOnly(base, 64);
        compete.controller.dummyPolicy =
            core::DummySelectPolicy::compete;
        add("compete (paper)", compete);
        auto real_first = sim::withMergeOnly(base, 64);
        real_first.controller.dummyPolicy =
            core::DummySelectPolicy::realFirst;
        add("realFirst (leaky)", real_first);
    }

    for (unsigned t : {1u, 4u, 16u, 1u << 20}) {
        auto cfg = sim::withMergeOnly(base, 64);
        cfg.controller.agingThreshold = t;
        add(t >= (1u << 20) ? "T=inf" : "T=" + std::to_string(t),
            cfg);
    }

    add("subtree rows", sim::withMergeOnly(base, 64));
    {
        auto linear = sim::withMergeOnly(base, 64);
        linear.controller.layout = dram::LayoutPolicy::linear;
        add("linear (heap order)", linear);
    }

    add("flat on-chip posmap", sim::withMergeOnly(base, 64));
    {
        auto rec = sim::withMergeOnly(base, 64);
        rec.controller.recursionDepth = 2;
        add("2-level recursion", rec);
        auto plb = rec;
        plb.controller.plbEntries = 4096;
        add("2-level + 4K-entry PLB", plb);
    }

    add("open page (FR-FCFS)", sim::withMergeOnly(base, 64));
    {
        auto closed = sim::withMergeOnly(base, 64);
        closed.dram.pagePolicy = dram::PagePolicy::closed;
        add("closed page (auto-PRE)", closed);
    }

    add("demand-driven (paper eval)", sim::withMergeOnly(base, 64));
    {
        auto periodic = sim::withMergeOnly(base, 64);
        // One access slot per ~1.3 us: roughly the merged service
        // rate, so the stream adds little queueing when busy but
        // never stops when idle (Section 2.2's sealed channel).
        periodic.controller.periodicIntervalTicks = 1'300'000;
        add("periodic 1.3us slots", periodic);
    }

    add("integrity off", sim::withMergeOnly(base, 64));
    {
        auto on = sim::withMergeOnly(base, 64);
        on.controller.enableIntegrity = true;
        add("integrity on (hash-only cost)", on);
    }

    // Every registered scheduling policy under its canonical preset,
    // selected by name through the same registry path as --policy.
    const auto policy_names = core::accessPolicyNames();
    for (const auto &name : policy_names)
        add("policy: " + name, sim::withPolicyName(base, name));

    auto results = runSweep(opt, std::move(points));
    const auto &trad = results[0];
    std::size_t next = 1;
    auto row = [&](TextTable &table) {
        addRow(table, names[next], results[next],
               trad.avgLlcLatencyNs);
        ++next;
    };

    TextTable stack("technique stack (" + mix + ")");
    stack.setHeader({"config", "latency_ns", "norm", "path_len",
                     "dummy/real", "energy_mJ"});
    stack.addRow({"traditional",
                  TextTable::fmt(trad.avgLlcLatencyNs, 0), "1.000",
                  TextTable::fmt(trad.avgReadPathLen, 2), "0.000",
                  TextTable::fmt(trad.totalEnergyNj() / 1e6, 1)});
    for (int i = 0; i < 4; ++i)
        row(stack);
    emit(stack);

    TextTable policy("dummy selection policy (q=64, " + mix + ")");
    policy.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    for (int i = 0; i < 2; ++i)
        row(policy);
    emit(policy);

    TextTable aging("aging threshold (q=64, " + mix + ")");
    aging.setHeader({"config", "latency_ns", "norm", "path_len",
                     "dummy/real", "energy_mJ"});
    for (int i = 0; i < 4; ++i)
        row(aging);
    emit(aging);

    TextTable layout("DRAM layout (q=64, " + mix + ")");
    layout.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    for (int i = 0; i < 2; ++i)
        row(layout);
    emit(layout);

    TextTable recursion("hierarchical position map (q=64, " + mix +
                        ")");
    recursion.setHeader({"config", "latency_ns", "norm", "path_len",
                         "dummy/real", "energy_mJ"});
    for (int i = 0; i < 3; ++i)
        row(recursion);
    emit(recursion);

    TextTable paging("DRAM page policy (q=64, " + mix + ")");
    paging.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    for (int i = 0; i < 2; ++i)
        row(paging);
    emit(paging);

    TextTable timing("timing-channel protection (q=64, " + mix +
                     ")");
    timing.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    for (int i = 0; i < 2; ++i)
        row(timing);
    emit(timing);

    TextTable integrity("Merkle integrity (q=64, " + mix + ")");
    integrity.setHeader({"config", "latency_ns", "norm", "path_len",
                         "dummy/real", "energy_mJ"});
    for (int i = 0; i < 2; ++i)
        row(integrity);
    emit(integrity);

    TextTable polreg("scheduling policy registry (" + mix + ")");
    polreg.setHeader({"config", "latency_ns", "norm", "path_len",
                      "dummy/real", "energy_mJ"});
    for (std::size_t i = 0; i < policy_names.size(); ++i)
        row(polreg);
    emit(polreg);
    return 0;
}
