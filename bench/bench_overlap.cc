/**
 * @file
 * Analytic companion to Figure 10: expected best-of-queue path
 * overlap, closed form vs Monte-Carlo, across queue sizes and tree
 * depths. Validates the log2(queue) trend in the fetched path length
 * independently of the timing model.
 *
 * Each tree depth is one SweepRunner task (--jobs); a task owns its
 * Rng(1234 + leaf) stream, so results — and the stdout emitted in
 * depth order afterwards — are byte-identical at any job count.
 */

#include "core/overlap.hh"
#include "fig_common.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto trials =
        static_cast<unsigned>(args.getInt("trials", 40000));
    BenchOptions opt = parseOptions(args);

    banner("Overlap analysis (supports Figure 10)",
           "expected fetched path ~= L+1 - E[best-of-Q overlap], "
           "E grows ~1 level per queue doubling");

    const std::vector<unsigned> leaves{16u, 24u};
    std::vector<TextTable> tables;
    std::vector<sim::SweepTask> tasks;
    tables.reserve(leaves.size());
    for (unsigned leaf : leaves) {
        mem::TreeGeometry geo(leaf);
        tables.emplace_back("L = " + std::to_string(leaf) +
                            " (path length " +
                            std::to_string(geo.numLevels()) + ")");
        TextTable &table = tables.back();
        tasks.push_back({"L=" + std::to_string(leaf),
                         [&table, leaf, trials] {
            mem::TreeGeometry geo(leaf);
            Rng rng(1234 + leaf);
            table.setHeader({"queue", "E[overlap] analytic",
                             "E[overlap] monte-carlo",
                             "expected fetched path"});
            for (unsigned q : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
                double analytic = core::expectedBestOverlap(geo, q);
                double sum = 0.0;
                for (unsigned t = 0; t < trials; ++t) {
                    LeafLabel cur = rng.uniformInt(geo.numLeaves());
                    unsigned best = 0;
                    for (unsigned i = 0; i < q; ++i) {
                        best = std::max(
                            best,
                            geo.overlap(
                                cur,
                                rng.uniformInt(geo.numLeaves())));
                    }
                    sum += best;
                }
                table.addRow({std::to_string(q),
                              TextTable::fmt(analytic, 3),
                              TextTable::fmt(sum / trials, 3),
                              TextTable::fmt(
                                  geo.numLevels() - analytic, 2)});
            }
        }});
    }

    sim::SweepRunner runner(opt.sweep);
    for (const auto &out : runner.runTasks(std::move(tasks))) {
        if (!out.ok)
            fp_fatal("overlap task '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
    }
    for (const auto &table : tables)
        emit(table);
    return 0;
}
