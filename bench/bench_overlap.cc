/**
 * @file
 * Analytic companion to Figure 10: expected best-of-queue path
 * overlap, closed form vs Monte-Carlo, across queue sizes and tree
 * depths. Validates the log2(queue) trend in the fetched path length
 * independently of the timing model.
 */

#include "core/overlap.hh"
#include "fig_common.hh"
#include "util/random.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto trials =
        static_cast<unsigned>(args.getInt("trials", 40000));

    banner("Overlap analysis (supports Figure 10)",
           "expected fetched path ~= L+1 - E[best-of-Q overlap], "
           "E grows ~1 level per queue doubling");

    for (unsigned leaf : {16u, 24u}) {
        mem::TreeGeometry geo(leaf);
        Rng rng(1234 + leaf);

        TextTable table("L = " + std::to_string(leaf) +
                        " (path length " +
                        std::to_string(geo.numLevels()) + ")");
        table.setHeader({"queue", "E[overlap] analytic",
                         "E[overlap] monte-carlo",
                         "expected fetched path"});
        for (unsigned q : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            double analytic = core::expectedBestOverlap(geo, q);
            double sum = 0.0;
            for (unsigned t = 0; t < trials; ++t) {
                LeafLabel cur = rng.uniformInt(geo.numLeaves());
                unsigned best = 0;
                for (unsigned i = 0; i < q; ++i) {
                    best = std::max(
                        best,
                        geo.overlap(cur,
                                    rng.uniformInt(geo.numLeaves())));
                }
                sum += best;
            }
            table.addRow({std::to_string(q),
                          TextTable::fmt(analytic, 3),
                          TextTable::fmt(sum / trials, 3),
                          TextTable::fmt(geo.numLevels() - analytic,
                                         2)});
        }
        emit(table);
    }
    return 0;
}
