/**
 * @file
 * The declarative experiment driver: run any committed spec under
 * experiments/ (by name) or an arbitrary spec file (by path).
 *
 *   fp_bench experiments/fig10.json --quick --jobs=8
 *   fp_bench fig10 --quick
 *   fp_bench --list-experiments
 */

#include "scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return fp::bench::benchMain(argc, argv);
}
