/**
 * @file
 * Figure 10: average ORAM tree path length and average DRAM latency
 * per ORAM request, for merging+scheduling vs. traditional Path
 * ORAM, as the label queue size sweeps 1..128.
 *
 * Paper: the baseline length is always 25 (L = 24); with Fork Path
 * the fetched length falls roughly linearly in log2(queue size), and
 * DRAM latency falls even faster because row-buffer miss rates drop
 * with shorter paths.
 */

#include "core/overlap.hh"
#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix3"}; // intensity-heavy, representative

    banner("Figure 10: path length and DRAM latency vs label queue "
           "size",
           "baseline 25 buckets; merging shrinks path ~linearly in "
           "log2(queue); DRAM latency drops faster than path length");

    auto cfg = baseConfig(opt);
    mem::TreeGeometry geo(opt.leafLevel);
    const std::vector<unsigned> queues = {1, 2, 4, 8,
                                          16, 32, 64, 128};

    std::vector<sim::SweepPoint> points;
    points.push_back(sim::pointFromMix(
        "traditional", sim::withTraditional(cfg), opt.mixes[0]));
    for (unsigned q : queues) {
        points.push_back(sim::pointFromMix(
            "merge q=" + std::to_string(q),
            sim::withMergeOnly(cfg, q), opt.mixes[0]));
    }
    auto results = runSweep(opt, std::move(points));
    const auto &trad = results[0];

    TextTable table("Fig 10 (" + opt.mixes[0] + ", L=" +
                    std::to_string(opt.leafLevel) + ")");
    table.setHeader({"config", "path_len", "analytic",
                     "dram_latency_norm", "row_hit_rate"});
    table.addRow({"traditional",
                  TextTable::fmt(trad.avgReadPathLen, 2),
                  TextTable::fmt(double(geo.numLevels()), 2),
                  TextTable::fmt(1.0, 3),
                  TextTable::fmt(trad.rowHitRate(), 3)});

    for (std::size_t i = 0; i < queues.size(); ++i) {
        const auto &r = results[1 + i];
        // Analytic fetched length: L+1 - E[best-of-q overlap] + 1
        // (the read starts at the retained level).
        double analytic = geo.numLevels() -
                          core::expectedBestOverlap(geo, queues[i]);
        table.addRow(
            {"merge q=" + std::to_string(queues[i]),
             TextTable::fmt(r.avgReadPathLen, 2),
             TextTable::fmt(analytic, 2),
             TextTable::fmt(r.avgDramServiceNs /
                                trad.avgDramServiceNs,
                            3),
             TextTable::fmt(r.rowHitRate(), 3)});
    }
    emit(table);
    return 0;
}
