/**
 * @file
 * Figure 10: average ORAM tree path length and average DRAM latency
 * per ORAM request, for merging+scheduling vs. traditional Path
 * ORAM, as the label queue size sweeps 1..128.
 *
 * Paper: the baseline length is always 25 (L = 24); with Fork Path
 * the fetched length falls roughly linearly in log2(queue size), and
 * DRAM latency falls even faster because row-buffer miss rates drop
 * with shorter paths.
 */

#include "core/overlap.hh"
#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix3"}; // intensity-heavy, representative

    banner("Figure 10: path length and DRAM latency vs label queue "
           "size",
           "baseline 25 buckets; merging shrinks path ~linearly in "
           "log2(queue); DRAM latency drops faster than path length");

    auto cfg = baseConfig(opt);
    mem::TreeGeometry geo(opt.leafLevel);

    auto trad = sim::runMix(sim::withTraditional(cfg), opt.mixes[0]);

    TextTable table("Fig 10 (" + opt.mixes[0] + ", L=" +
                    std::to_string(opt.leafLevel) + ")");
    table.setHeader({"config", "path_len", "analytic",
                     "dram_latency_norm", "row_hit_rate"});
    table.addRow({"traditional",
                  TextTable::fmt(trad.avgReadPathLen, 2),
                  TextTable::fmt(double(geo.numLevels()), 2),
                  TextTable::fmt(1.0, 3),
                  TextTable::fmt(trad.rowHitRate(), 3)});

    for (unsigned q : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        auto r = sim::runMix(sim::withMergeOnly(cfg, q),
                             opt.mixes[0]);
        // Analytic fetched length: L+1 - E[best-of-q overlap] + 1
        // (the read starts at the retained level).
        double analytic = geo.numLevels() -
                          core::expectedBestOverlap(geo, q);
        table.addRow(
            {"merge q=" + std::to_string(q),
             TextTable::fmt(r.avgReadPathLen, 2),
             TextTable::fmt(analytic, 2),
             TextTable::fmt(r.avgDramServiceNs /
                                trad.avgDramServiceNs,
                            3),
             TextTable::fmt(r.rowHitRate(), 3)});
    }
    emit(table);
    return 0;
}
