/**
 * @file
 * Figure 16: in-order vs out-of-order cores. Normalized ORAM latency
 * (each against its own traditional baseline) for merge-only and
 * merge + MAC variants, geomean over the mixes.
 *
 * Paper: in-order latency is significantly higher because the low
 * memory intensity forces extra dummy requests at queue 64; a
 * smaller queue would suit in-order cores better (also shown here).
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

std::vector<double>
seriesFor(const BenchOptions &opt, sim::SimConfig cfg,
          unsigned outstanding)
{
    cfg.maxOutstanding = outstanding;

    std::vector<sim::SimConfig> variants = {
        sim::withMergeOnly(cfg, 64),
        sim::withMergeMac(cfg, 128 << 10, 64),
        sim::withMergeMac(cfg, 1 << 20, 64),
        sim::withMergeTreetop(cfg, 1 << 20, 64),
    };
    for (auto &v : variants)
        v.maxOutstanding = outstanding;
    auto trad_cfg = sim::withTraditional(cfg);
    trad_cfg.maxOutstanding = outstanding;

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(
            sim::pointFromMix(mix + "/traditional", trad_cfg, mix));
        for (std::size_t i = 0; i < variants.size(); ++i) {
            points.push_back(sim::pointFromMix(
                mix + "/variant" + std::to_string(i), variants[i],
                mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 1 + variants.size();

    std::vector<std::vector<double>> ratios(variants.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        const auto &trad = results[m * stride];
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            ratios[i].push_back(r.avgLlcLatencyNs /
                                trad.avgLlcLatencyNs);
        }
    }
    std::vector<double> out;
    for (const auto &series : ratios)
        out.push_back(sim::geomean(series));
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix1", "Mix3", "Mix4", "Mix9"};

    banner("Figure 16: in-order vs out-of-order",
           "in-order ORAM latency is significantly higher (more "
           "dummy requests); smaller queues suit in-order");

    auto cfg = baseConfig(opt);

    TextTable table("Fig 16 (latency / own traditional, geomean)");
    table.setHeader({"core", "merge_only", "mac_128K", "mac_1M",
                     "treetop_1M"});
    auto emitRow = [&](const std::string &name,
                       const std::vector<double> &v) {
        std::vector<std::string> row = {name};
        for (double x : v)
            row.push_back(TextTable::fmt(x, 3));
        table.addRow(row);
    };
    emitRow("out-of-order", seriesFor(opt, cfg, 16));
    emitRow("in-order", seriesFor(opt, cfg, 1));
    emit(table);

    // The paper's remark: a smaller queue helps in-order cores.
    TextTable q("in-order merge-only latency vs queue size");
    q.setHeader({"queue", "latency/traditional"});
    auto in_cfg = cfg;
    in_cfg.maxOutstanding = 1;
    const std::vector<unsigned> queue_sizes = {4, 16, 64};

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(sim::pointFromMix(
            mix + "/in-order traditional",
            sim::withTraditional(in_cfg), mix));
    }
    for (unsigned qs : queue_sizes) {
        for (const auto &mix : opt.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/in-order q=" + std::to_string(qs),
                sim::withMergeOnly(in_cfg, qs), mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t nmixes = opt.mixes.size();

    for (std::size_t qi = 0; qi < queue_sizes.size(); ++qi) {
        std::vector<double> ratios;
        for (std::size_t i = 0; i < nmixes; ++i) {
            const auto &r = results[nmixes * (1 + qi) + i];
            ratios.push_back(r.avgLlcLatencyNs /
                             results[i].avgLlcLatencyNs);
        }
        q.addRow({std::to_string(queue_sizes[qi]),
                  TextTable::fmt(sim::geomean(ratios), 3)});
    }
    emit(q);
    return 0;
}
