/**
 * @file
 * Figure 16: in-order vs out-of-order cores. Normalized ORAM latency
 * (each against its own traditional baseline) for merge-only and
 * merge + MAC variants, geomean over the mixes.
 *
 * Paper: in-order latency is significantly higher because the low
 * memory intensity forces extra dummy requests at queue 64; a
 * smaller queue would suit in-order cores better (also shown here).
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

std::vector<double>
seriesFor(const BenchOptions &opt, sim::SimConfig cfg,
          unsigned outstanding)
{
    cfg.maxOutstanding = outstanding;

    struct Variant
    {
        std::string name;
        sim::SimConfig cfg;
    };
    const std::vector<sim::SimConfig> variants = {
        sim::withMergeOnly(cfg, 64),
        sim::withMergeMac(cfg, 128 << 10, 64),
        sim::withMergeMac(cfg, 1 << 20, 64),
        sim::withMergeTreetop(cfg, 1 << 20, 64),
    };

    std::vector<std::vector<double>> ratios(variants.size());
    for (const auto &mix : opt.mixes) {
        auto trad_cfg = sim::withTraditional(cfg);
        trad_cfg.maxOutstanding = outstanding;
        auto trad = sim::runMix(trad_cfg, mix);
        for (std::size_t i = 0; i < variants.size(); ++i) {
            auto v = variants[i];
            v.maxOutstanding = outstanding;
            auto r = sim::runMix(v, mix);
            ratios[i].push_back(r.avgLlcLatencyNs /
                                trad.avgLlcLatencyNs);
        }
    }
    std::vector<double> out;
    for (const auto &series : ratios)
        out.push_back(sim::geomean(series));
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix1", "Mix3", "Mix4", "Mix9"};

    banner("Figure 16: in-order vs out-of-order",
           "in-order ORAM latency is significantly higher (more "
           "dummy requests); smaller queues suit in-order");

    auto cfg = baseConfig(opt);

    TextTable table("Fig 16 (latency / own traditional, geomean)");
    table.setHeader({"core", "merge_only", "mac_128K", "mac_1M",
                     "treetop_1M"});
    auto emitRow = [&](const std::string &name,
                       const std::vector<double> &v) {
        std::vector<std::string> row = {name};
        for (double x : v)
            row.push_back(TextTable::fmt(x, 3));
        table.addRow(row);
    };
    emitRow("out-of-order", seriesFor(opt, cfg, 16));
    emitRow("in-order", seriesFor(opt, cfg, 1));
    emit(table);

    // The paper's remark: a smaller queue helps in-order cores.
    TextTable q("in-order merge-only latency vs queue size");
    q.setHeader({"queue", "latency/traditional"});
    auto in_cfg = cfg;
    in_cfg.maxOutstanding = 1;
    std::vector<double> trad_lat;
    for (const auto &mix : opt.mixes) {
        auto t = sim::withTraditional(in_cfg);
        trad_lat.push_back(sim::runMix(t, mix).avgLlcLatencyNs);
    }
    for (unsigned qs : {4u, 16u, 64u}) {
        std::vector<double> ratios;
        for (std::size_t i = 0; i < opt.mixes.size(); ++i) {
            auto r = sim::runMix(sim::withMergeOnly(in_cfg, qs),
                                 opt.mixes[i]);
            ratios.push_back(r.avgLlcLatencyNs / trad_lat[i]);
        }
        q.addRow({std::to_string(qs),
                  TextTable::fmt(sim::geomean(ratios), 3)});
    }
    emit(q);
    return 0;
}
