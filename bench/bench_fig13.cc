/**
 * @file
 * Figure 13: ORAM latency of the caching designs, normalized to
 * traditional Path ORAM: merge-only, merge + MAC at 128 KB / 256 KB /
 * 1 MB, and merge + 1 MB treetop cache (all at label queue 64).
 *
 * Paper: caching reduces latency further; MAC reaches
 * treetop-comparable latency at ~1/4 of the cache size.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 13: ORAM latency with caching designs",
           "MAC at ~1/4 capacity matches 1MB treetop; 1MB MAC is "
           "best overall");

    auto cfg = baseConfig(opt);

    struct Config
    {
        std::string name;
        sim::SimConfig cfg;
    };
    const std::vector<Config> configs = {
        {"merge_only", sim::withMergeOnly(cfg, 64)},
        {"mac_128K", sim::withMergeMac(cfg, 128 << 10, 64)},
        {"mac_256K", sim::withMergeMac(cfg, 256 << 10, 64)},
        {"mac_1M", sim::withMergeMac(cfg, 1 << 20, 64)},
        {"treetop_1M", sim::withMergeTreetop(cfg, 1 << 20, 64)},
    };

    TextTable table("Fig 13 (ORAM latency / traditional)");
    std::vector<std::string> header = {"mix"};
    for (const auto &c : configs)
        header.push_back(c.name);
    table.setHeader(header);

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(sim::pointFromMix(
            mix + "/traditional", sim::withTraditional(cfg), mix));
        for (const auto &c : configs) {
            points.push_back(
                sim::pointFromMix(mix + "/" + c.name, c.cfg, mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 1 + configs.size();

    std::vector<std::vector<double>> ratios(configs.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        const auto &trad = results[m * stride];
        std::vector<std::string> row = {opt.mixes[m]};
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            double ratio = r.avgLlcLatencyNs / trad.avgLlcLatencyNs;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean"};
    for (const auto &series : ratios)
        avg.push_back(TextTable::fmt(sim::geomean(series), 3));
    table.addRow(avg);
    emit(table);
    return 0;
}
