/**
 * @file
 * Legacy wrapper: runs experiments/fig13.json through the spec runtime.
 * Flags and stdout are unchanged from the pre-spec binary.
 */

#include "scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return fp::bench::specMain("fig13", argc, argv);
}
