/**
 * @file
 * Figure 18: speedup of ORAM latency (traditional / Fork Path) at
 * 1, 2 and 4 DRAM channels, per mix.
 *
 * Paper: Fork Path is more effective with fewer channels — the
 * absolute ORAM latency is higher there, so more real requests pile
 * up in the label queue and scheduling has more to work with.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix1", "Mix3", "Mix4", "Mix7", "Mix9"};

    banner("Figure 18: ORAM latency speedup vs DRAM channels",
           "speedup is largest at 1 channel and shrinks as channels "
           "are added");

    auto base = baseConfig(opt);
    const std::vector<unsigned> channels = {1, 2, 4};

    TextTable table("Fig 18 (traditional latency / fork latency)");
    std::vector<std::string> header = {"mix"};
    for (unsigned ch : channels)
        header.push_back(std::to_string(ch) + "-channel");
    table.setHeader(header);

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        for (unsigned ch : channels) {
            auto cfg = base;
            cfg.dram = dram::DramParams::ddr3_1600(ch);
            std::string tag =
                mix + "/" + std::to_string(ch) + "ch";
            points.push_back(sim::pointFromMix(
                tag + "/traditional", sim::withTraditional(cfg),
                mix));
            points.push_back(sim::pointFromMix(
                tag + "/fork", sim::withMergeMac(cfg, 1 << 20, 64),
                mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 2 * channels.size();

    std::vector<std::vector<double>> speedups(channels.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        std::vector<std::string> row = {opt.mixes[m]};
        for (std::size_t i = 0; i < channels.size(); ++i) {
            const auto &trad = results[m * stride + 2 * i];
            const auto &fork = results[m * stride + 2 * i + 1];
            double speedup =
                trad.avgLlcLatencyNs / fork.avgLlcLatencyNs;
            speedups[i].push_back(speedup);
            row.push_back(TextTable::fmt(speedup, 2));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean"};
    for (const auto &series : speedups)
        avg.push_back(TextTable::fmt(sim::geomean(series), 2));
    table.addRow(avg);
    emit(table);
    return 0;
}
