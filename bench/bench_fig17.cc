/**
 * @file
 * Figure 17: sensitivity to (a) thread count 1/2/4/8 and (b) ORAM
 * capacity 1/4/16/32 GB, reporting Fork Path ORAM latency normalized
 * to traditional (geomean over generated mixes).
 *
 * Paper: (a) more threads -> more memory intensity -> bigger Fork
 * Path advantage; (b) bigger trees dilute the fixed path-length
 * reduction, so the advantage degrades moderately.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

double
normalizedLatency(const sim::SimConfig &fork_cfg,
                  const sim::SimConfig &trad_cfg,
                  const std::vector<workload::WorkloadProfile> &mix)
{
    auto fork = sim::runProfiles(fork_cfg, mix);
    auto trad = sim::runProfiles(trad_cfg, mix);
    return fork.avgLlcLatencyNs / trad.avgLlcLatencyNs;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    const unsigned mixes_per_point =
        static_cast<unsigned>(args.getInt("samples", 3));

    banner("Figure 17: thread count and ORAM size sensitivity",
           "(a) advantage grows with threads; (b) degrades "
           "moderately with ORAM size");

    auto base = baseConfig(opt);

    TextTable a("Fig 17(a): latency/traditional vs threads "
                "(merge+1M MAC)");
    a.setHeader({"threads", "latency_norm"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        std::vector<double> ratios;
        for (unsigned s = 0; s < mixes_per_point; ++s) {
            auto mix = workload::makeMixForCores(cores, 40 + s);
            auto cfg = base;
            cfg.cores = cores;
            ratios.push_back(normalizedLatency(
                sim::withMergeMac(cfg, 1 << 20, 64),
                sim::withTraditional(cfg), mix));
        }
        a.addRow({std::to_string(cores),
                  TextTable::fmt(sim::geomean(ratios), 3)});
    }
    emit(a);

    TextTable b("Fig 17(b): latency/traditional vs ORAM size "
                "(4 threads, merge+1M MAC)");
    b.setHeader({"oram_size", "leaf_level", "latency_norm"});
    const std::vector<std::pair<std::string, unsigned>> sizes = {
        {"1GB", 22}, {"4GB", 24}, {"16GB", 26}, {"32GB", 27}};
    for (const auto &[name, leaf] : sizes) {
        std::vector<double> ratios;
        for (unsigned s = 0; s < mixes_per_point; ++s) {
            auto mix = workload::makeMixForCores(4, 80 + s);
            auto cfg = base;
            cfg.cores = 4;
            cfg.controller.oram.leafLevel = leaf;
            ratios.push_back(normalizedLatency(
                sim::withMergeMac(cfg, 1 << 20, 64),
                sim::withTraditional(cfg), mix));
        }
        b.addRow({name, std::to_string(leaf),
                  TextTable::fmt(sim::geomean(ratios), 3)});
    }
    emit(b);
    return 0;
}
