/**
 * @file
 * Figure 17: sensitivity to (a) thread count 1/2/4/8 and (b) ORAM
 * capacity 1/4/16/32 GB, reporting Fork Path ORAM latency normalized
 * to traditional (geomean over generated mixes).
 *
 * Paper: (a) more threads -> more memory intensity -> bigger Fork
 * Path advantage; (b) bigger trees dilute the fixed path-length
 * reduction, so the advantage degrades moderately.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

namespace
{

/** Append a fork/traditional point pair for one generated mix. */
void
addPair(std::vector<sim::SweepPoint> &points, const std::string &name,
        const sim::SimConfig &cfg,
        const std::vector<workload::WorkloadProfile> &mix)
{
    points.push_back(sim::pointFromProfiles(
        name + "/fork", sim::withMergeMac(cfg, 1 << 20, 64), mix));
    points.push_back(sim::pointFromProfiles(
        name + "/traditional", sim::withTraditional(cfg), mix));
}

/** Geomean of fork/traditional latency over consecutive pairs. */
double
pairGeomean(const std::vector<sim::RunResult> &results,
            std::size_t first_pair, std::size_t npairs)
{
    std::vector<double> ratios;
    for (std::size_t s = 0; s < npairs; ++s) {
        const auto &fork = results[2 * (first_pair + s)];
        const auto &trad = results[2 * (first_pair + s) + 1];
        ratios.push_back(fork.avgLlcLatencyNs /
                         trad.avgLlcLatencyNs);
    }
    return sim::geomean(ratios);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    const unsigned mixes_per_point =
        static_cast<unsigned>(args.getInt("samples", 3));

    banner("Figure 17: thread count and ORAM size sensitivity",
           "(a) advantage grows with threads; (b) degrades "
           "moderately with ORAM size");

    auto base = baseConfig(opt);
    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    const std::vector<std::pair<std::string, unsigned>> sizes = {
        {"1GB", 22}, {"4GB", 24}, {"16GB", 26}, {"32GB", 27}};

    // Both sub-figures in one sweep: (a)'s pairs first, then (b)'s.
    std::vector<sim::SweepPoint> points;
    for (unsigned cores : thread_counts) {
        for (unsigned s = 0; s < mixes_per_point; ++s) {
            auto mix = workload::makeMixForCores(cores, 40 + s);
            auto cfg = base;
            cfg.cores = cores;
            addPair(points,
                    "threads=" + std::to_string(cores) + "/s" +
                        std::to_string(s),
                    cfg, mix);
        }
    }
    for (const auto &[name, leaf] : sizes) {
        for (unsigned s = 0; s < mixes_per_point; ++s) {
            auto mix = workload::makeMixForCores(4, 80 + s);
            auto cfg = base;
            cfg.cores = 4;
            cfg.controller.oram.leafLevel = leaf;
            addPair(points, name + "/s" + std::to_string(s), cfg,
                    mix);
        }
    }
    auto results = runSweep(opt, std::move(points));

    TextTable a("Fig 17(a): latency/traditional vs threads "
                "(merge+1M MAC)");
    a.setHeader({"threads", "latency_norm"});
    for (std::size_t c = 0; c < thread_counts.size(); ++c) {
        a.addRow({std::to_string(thread_counts[c]),
                  TextTable::fmt(pairGeomean(results,
                                             c * mixes_per_point,
                                             mixes_per_point),
                                 3)});
    }
    emit(a);

    TextTable b("Fig 17(b): latency/traditional vs ORAM size "
                "(4 threads, merge+1M MAC)");
    b.setHeader({"oram_size", "leaf_level", "latency_norm"});
    const std::size_t b_first =
        thread_counts.size() * mixes_per_point;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        b.addRow({sizes[i].first, std::to_string(sizes[i].second),
                  TextTable::fmt(
                      pairGeomean(results,
                                  b_first + i * mixes_per_point,
                                  mixes_per_point),
                      3)});
    }
    emit(b);
    return 0;
}
