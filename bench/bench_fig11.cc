/**
 * @file
 * Figure 11: total number of ORAM requests (real + dummy) normalized
 * to traditional Path ORAM, per Table 2 mix, for label queue sizes
 * {1, 8, 64, 128}.
 *
 * Paper: increases with queue size; moderate for most mixes thanks
 * to dummy request replacing; > 1.25x for Mix2 (low intensity);
 * about +5 % on average even at queue 128.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 11: normalized total ORAM request count",
           "average ~1.05x at queue 64-128; worst mixes (low "
           "intensity, e.g. Mix2) exceed 1.25x");

    auto cfg = baseConfig(opt);
    const std::vector<unsigned> queues = {1, 8, 64, 128};

    TextTable table("Fig 11 (total requests / traditional)");
    std::vector<std::string> header = {"mix"};
    for (unsigned q : queues)
        header.push_back("q=" + std::to_string(q));
    table.setHeader(header);

    // One point per (mix, config): the traditional baseline then the
    // queue-size variants, grouped by mix.
    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(sim::pointFromMix(
            mix + "/traditional", sim::withTraditional(cfg), mix));
        for (unsigned q : queues) {
            points.push_back(sim::pointFromMix(
                mix + "/q=" + std::to_string(q),
                sim::withMergeOnly(cfg, q), mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 1 + queues.size();

    std::vector<std::vector<double>> ratios(queues.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        const auto &trad = results[m * stride];
        double base = static_cast<double>(trad.realAccesses +
                                          trad.dummyAccesses);
        std::vector<std::string> row = {opt.mixes[m]};
        for (std::size_t i = 0; i < queues.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            double ratio = r.totalAccesses() / base;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean"};
    for (const auto &series : ratios)
        avg.push_back(TextTable::fmt(sim::geomean(series), 3));
    table.addRow(avg);
    emit(table);
    return 0;
}
