/**
 * @file
 * Figure 11: total number of ORAM requests (real + dummy) normalized
 * to traditional Path ORAM, per Table 2 mix, for label queue sizes
 * {1, 8, 64, 128}.
 *
 * Paper: increases with queue size; moderate for most mixes thanks
 * to dummy request replacing; > 1.25x for Mix2 (low intensity);
 * about +5 % on average even at queue 128.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 11: normalized total ORAM request count",
           "average ~1.05x at queue 64-128; worst mixes (low "
           "intensity, e.g. Mix2) exceed 1.25x");

    auto cfg = baseConfig(opt);
    const std::vector<unsigned> queues = {1, 8, 64, 128};

    TextTable table("Fig 11 (total requests / traditional)");
    std::vector<std::string> header = {"mix"};
    for (unsigned q : queues)
        header.push_back("q=" + std::to_string(q));
    table.setHeader(header);

    std::vector<std::vector<double>> ratios(queues.size());
    for (const auto &mix : opt.mixes) {
        auto trad = sim::runMix(sim::withTraditional(cfg), mix);
        double base = static_cast<double>(trad.realAccesses +
                                          trad.dummyAccesses);
        std::vector<std::string> row = {mix};
        for (std::size_t i = 0; i < queues.size(); ++i) {
            auto r =
                sim::runMix(sim::withMergeOnly(cfg, queues[i]), mix);
            double ratio = r.totalAccesses() / base;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean"};
    for (const auto &series : ratios)
        avg.push_back(TextTable::fmt(sim::geomean(series), 3));
    table.addRow(avg);
    emit(table);
    return 0;
}
