/**
 * @file
 * Shared scaffolding for the per-figure benchmark harnesses.
 *
 * Every bench accepts:
 *   --requests=N    LLC misses per core (default 1200)
 *   --leaf-level=L  ORAM tree depth (default 24, the paper's 4 GB)
 *   --mixes=a,b     comma-separated subset of Table 2 mixes
 *   --jobs=N        parallel simulation points (default: hardware
 *                   concurrency; 1 reproduces sequential output)
 *   --quick         shrink to a smoke-test sized run
 *   --csv           emit tables as CSV (for external plotting)
 *
 * plus the observability flags of sim::applyObsFlags (--trace-out,
 * --trace-level, --stats-out, --stats-interval) and the memory-
 * backend flags of sim::applyBackendFlags (--backend=dram|net,
 * --net-latency-us, --net-gbps, --net-window, and the fault/retry
 * flags --fault-loss-rate, --fault-error-rate, --fault-spike-us,
 * --fault-spike-rate, --fault-outage, --fault-seed,
 * --retry-timeout-us, --retry-max, --retry-backoff, and the sharding
 * flags --shards, --shard-window), applied to every
 * run the bench performs. The default --backend=dram reproduces the
 * paper's DDR3 numbers byte for byte; --backend=net reruns the same
 * experiment against the network/cloud store model.
 *
 * Output convention: each bench prints the paper's series as ASCII
 * tables, normalized the same way the figure is, and ends with a
 * "paper reports" note for EXPERIMENTS.md cross-checking.
 */

#ifndef FP_BENCH_FIG_COMMON_HH
#define FP_BENCH_FIG_COMMON_HH

#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/mixes.hh"

namespace fp::bench
{

struct BenchOptions
{
    std::uint64_t requests = 1200;
    unsigned leafLevel = 24;
    std::vector<std::string> mixes;
    bool csv = false;
    sim::ObsConfig obs;
    sim::BackendKind backendKind = sim::BackendKind::dram;
    mem::NetBackendParams net;
    mem::FaultParams faults;
    mem::RetryParams retry;
    unsigned shards = 1;
    unsigned shardWindow = 16;
    /** --policy=NAME: access-policy registry name forced onto every
     *  point (empty = each bench keeps its own per-series choice). */
    std::string policy;
    /** --batch-size=N for the batched policy (0 = keep default). */
    unsigned batchSize = 0;
    sim::SweepOptions sweep;
};

/** Parse the common flags. */
BenchOptions parseOptions(const CliArgs &args);

/** The paper's Table 1 config with the bench's scaling applied. */
sim::SimConfig baseConfig(const BenchOptions &opt);

/**
 * Force opt.policy / opt.batchSize onto a finished point config; the
 * identity when neither flag was given, so default invocations stay
 * byte-identical to historical output. Apply AFTER the bench's own
 * series transforms (sim::withTraditional and friends would override
 * the policy otherwise).
 */
sim::SimConfig applyPolicy(const BenchOptions &opt,
                           sim::SimConfig cfg);

/**
 * Run every point through a SweepRunner configured by --jobs, with a
 * per-point progress line on stderr (unless --csv). When --policy /
 * --batch-size were given, the override is applied to every point
 * here (insecure baselines excepted), so it wins over the bench's
 * per-series transforms. Any failed point is fatal (the figure would
 * be missing a series); returns the RunResults in point order.
 */
std::vector<sim::RunResult> runSweep(const BenchOptions &opt,
                                     std::vector<sim::SweepPoint>
                                         points);

/** Print a table followed by a blank line. */
void emit(const TextTable &table);

/** Print the figure header + the paper's reported takeaway. */
void banner(const std::string &figure, const std::string &paper_says);

} // namespace fp::bench

#endif // FP_BENCH_FIG_COMMON_HH
