/**
 * @file
 * Figure 12: ORAM latency (completion time of an LLC request inside
 * the ORAM controller, queueing included) normalized to traditional
 * Path ORAM, per mix, for label queue sizes {1, 8, 64, 128}.
 *
 * Paper: latency falls as the queue grows, then worsens from 64 to
 * 128 as extra dummy requests offset the shorter paths; 64 is chosen
 * as the default.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 12: normalized ORAM latency vs label queue size",
           "improves with queue size up to 64, degrades at 128; "
           "queue 64 is the sweet spot");

    auto cfg = baseConfig(opt);
    const std::vector<unsigned> queues = {1, 8, 64, 128};

    TextTable table("Fig 12 (ORAM latency / traditional)");
    std::vector<std::string> header = {"mix", "traditional(ns)"};
    for (unsigned q : queues)
        header.push_back("q=" + std::to_string(q));
    table.setHeader(header);

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : opt.mixes) {
        points.push_back(sim::pointFromMix(
            mix + "/traditional", sim::withTraditional(cfg), mix));
        for (unsigned q : queues) {
            points.push_back(sim::pointFromMix(
                mix + "/q=" + std::to_string(q),
                sim::withMergeOnly(cfg, q), mix));
        }
    }
    auto results = runSweep(opt, std::move(points));
    const std::size_t stride = 1 + queues.size();

    std::vector<std::vector<double>> ratios(queues.size());
    for (std::size_t m = 0; m < opt.mixes.size(); ++m) {
        const auto &trad = results[m * stride];
        std::vector<std::string> row = {
            opt.mixes[m], TextTable::fmt(trad.avgLlcLatencyNs, 0)};
        for (std::size_t i = 0; i < queues.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            double ratio = r.avgLlcLatencyNs / trad.avgLlcLatencyNs;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean", "-"};
    for (const auto &series : ratios)
        avg.push_back(TextTable::fmt(sim::geomean(series), 3));
    table.addRow(avg);
    emit(table);
    return 0;
}
