/**
 * @file
 * Figure 12: ORAM latency (completion time of an LLC request inside
 * the ORAM controller, queueing included) normalized to traditional
 * Path ORAM, per mix, for label queue sizes {1, 8, 64, 128}.
 *
 * Paper: latency falls as the queue grows, then worsens from 64 to
 * 128 as extra dummy requests offset the shorter paths; 64 is chosen
 * as the default.
 */

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);

    banner("Figure 12: normalized ORAM latency vs label queue size",
           "improves with queue size up to 64, degrades at 128; "
           "queue 64 is the sweet spot");

    auto cfg = baseConfig(opt);
    const std::vector<unsigned> queues = {1, 8, 64, 128};

    TextTable table("Fig 12 (ORAM latency / traditional)");
    std::vector<std::string> header = {"mix", "traditional(ns)"};
    for (unsigned q : queues)
        header.push_back("q=" + std::to_string(q));
    table.setHeader(header);

    std::vector<std::vector<double>> ratios(queues.size());
    for (const auto &mix : opt.mixes) {
        auto trad = sim::runMix(sim::withTraditional(cfg), mix);
        std::vector<std::string> row = {
            mix, TextTable::fmt(trad.avgLlcLatencyNs, 0)};
        for (std::size_t i = 0; i < queues.size(); ++i) {
            auto r =
                sim::runMix(sim::withMergeOnly(cfg, queues[i]), mix);
            double ratio = r.avgLlcLatencyNs / trad.avgLlcLatencyNs;
            ratios[i].push_back(ratio);
            row.push_back(TextTable::fmt(ratio, 3));
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"geomean", "-"};
    for (const auto &series : ratios)
        avg.push_back(TextTable::fmt(sim::geomean(series), 3));
    table.addRow(avg);
    emit(table);
    return 0;
}
