/**
 * @file
 * Legacy wrapper: runs experiments/faults.json through the spec runtime.
 * Flags and stdout are unchanged from the pre-spec binary.
 */

#include "scenarios/scenarios.hh"

int
main(int argc, char **argv)
{
    return fp::bench::specMain("faults", argc, argv);
}
