/**
 * @file
 * Resilience sweep: Fork Path throughput and latency vs. injected
 * request-loss rate, on both the DRAM and the network store, with
 * the retry layer recovering every lost request.
 *
 * Not a paper figure — this probes the robustness stack added on top
 * of the reproduction: each point runs the merge configuration with
 * mem::FaultInjector set to the row's loss rate and
 * mem::ResilientBackend recovering, and reports the injected-fault /
 * retry counters next to the usual timing numbers. The fingerprint
 * column compares the controller's issued request stream against the
 * fault-free run of the same backend (obliviousness under retry: the
 * stream the controller emits should not depend on what the store
 * drops — see docs/ROBUSTNESS.md for when exact equality can be
 * expected).
 *
 * Failed points (e.g. a deliberately exhausted retry budget under
 * --retry-max=0) are reported as rows, not fatal: degrading into a
 * result record is the behaviour under test.
 *
 * Flags: the common set (fig_common.hh), including every --fault-* /
 * --retry-* flag; --fault-loss-rate adds that rate to the sweep's
 * row set.
 */

#include <algorithm>

#include "fig_common.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    BenchOptions opt = parseOptions(args);
    if (!args.has("mixes"))
        opt.mixes = {"Mix3"}; // intensity-heavy, representative

    banner("Resilience: throughput/latency vs request-loss rate",
           "not in the paper; fault-injection study of the "
           "retry/timeout/backoff layer (zero lost user requests "
           "expected at every point)");

    std::vector<double> lossRates = {0.0, 0.001, 0.01, 0.05};
    if (opt.faults.lossRate > 0.0 &&
        std::find(lossRates.begin(), lossRates.end(),
                  opt.faults.lossRate) == lossRates.end()) {
        lossRates.push_back(opt.faults.lossRate);
        std::sort(lossRates.begin(), lossRates.end());
    }
    const std::vector<sim::BackendKind> kinds = {
        sim::BackendKind::dram, sim::BackendKind::net};

    auto cfg = sim::withMergeOnly(baseConfig(opt), 64);
    std::vector<sim::SweepPoint> points;
    for (sim::BackendKind kind : kinds) {
        const char *kind_name =
            kind == sim::BackendKind::dram ? "dram" : "net";
        for (double loss : lossRates) {
            auto c = cfg;
            c.backendKind = kind;
            c.faults = opt.faults;
            c.faults.lossRate = loss;
            c.retry = opt.retry;
            points.push_back(sim::pointFromMix(
                std::string(kind_name) + " loss=" +
                    TextTable::fmt(loss, 3),
                c, opt.mixes[0]));
        }
    }

    // Run through the SweepRunner directly (not runSweep): a failed
    // point must become a row, because graceful degradation is the
    // behaviour under test.
    sim::SweepRunner runner(opt.sweep);
    auto outcomes = runner.run(std::move(points));

    TextTable table("Resilience sweep (" + opt.mixes[0] + ", L=" +
                    std::to_string(opt.leafLevel) + ")");
    table.setHeader({"backend", "loss_rate", "exec_ms",
                     "latency_ns", "lost", "retries", "timeouts",
                     "dedup", "exhausted", "fingerprint", "status"});

    std::size_t idx = 0;
    for (sim::BackendKind kind : kinds) {
        const char *kind_name =
            kind == sim::BackendKind::dram ? "dram" : "net";
        // Row 0 of each backend block is the fault-free reference for
        // the fingerprint comparison.
        const sim::SweepOutcome &base = outcomes[idx];
        for (double loss : lossRates) {
            const sim::SweepOutcome &out = outcomes[idx++];
            if (!out.ok) {
                table.addRow({kind_name, TextTable::fmt(loss, 3),
                              "-", "-", "-", "-", "-", "-", "-", "-",
                              "error: " + out.error});
                continue;
            }
            const sim::RunResult &r = out.result;
            const char *fp_match =
                !base.ok ? "n/a"
                : r.reqStreamFingerprint ==
                        base.result.reqStreamFingerprint
                    ? "match"
                    : "differs";
            table.addRow(
                {kind_name, TextTable::fmt(loss, 3),
                 TextTable::fmt(ticksToNs(r.executionTicks) / 1e6, 2),
                 TextTable::fmt(r.avgLlcLatencyNs, 1),
                 std::to_string(r.faultLossInjected),
                 std::to_string(r.retryAttempts),
                 std::to_string(r.retryTimeouts),
                 std::to_string(r.retryDedupDropped),
                 std::to_string(r.retryExhausted), fp_match,
                 r.failed ? "failed" : "ok"});
        }
    }
    emit(table);
    return 0;
}
