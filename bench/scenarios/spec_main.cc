/**
 * @file
 * Shared entry points for the experiment-spec runtime: the fp_bench
 * driver (spec file or name on the command line) and the thin legacy
 * wrappers (historical binary name pinned to its spec). Both share
 * the --list-policies / --list-backends / --list-scenarios discovery
 * flags; fp_bench adds --list-experiments over the committed specs.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/access_policy.hh"
#include "scenarios/scenarios.hh"
#include "util/cli.hh"
#include "util/logging.hh"

#ifndef FP_EXPERIMENTS_DIR
#define FP_EXPERIMENTS_DIR "experiments"
#endif

namespace fp::bench
{

namespace
{

std::string
experimentsDir()
{
    if (const char *env = std::getenv("FP_EXPERIMENTS_DIR"))
        return env;
    return FP_EXPERIMENTS_DIR;
}

/**
 * Handle the discovery flags shared by fp_bench and the wrappers.
 * Returns true when a flag was handled (the caller exits 0): the
 * flags print one name per line so shell pipelines can consume them.
 */
bool
handleListFlags(const CliArgs &args)
{
    if (args.getBool("list-policies")) {
        for (const auto &name : core::accessPolicyNames())
            std::cout << name << "\n";
        return true;
    }
    if (args.getBool("list-backends")) {
        for (const auto &name : sim::backendKindNames())
            std::cout << name << "\n";
        return true;
    }
    if (args.getBool("list-scenarios")) {
        for (const auto &name : sim::scenarioNames())
            std::cout << name << "\n";
        return true;
    }
    return false;
}

} // namespace

std::string
resolveSpecPath(const std::string &name)
{
    const std::string path =
        experimentsDir() + "/" + name + ".json";
    if (!std::filesystem::exists(path))
        fp_fatal("no experiment spec '%s' (looked for %s; set "
                 "FP_EXPERIMENTS_DIR to relocate the spec "
                 "directory)",
                 name.c_str(), path.c_str());
    return path;
}

int
specMain(const std::string &spec_name, int argc, char **argv)
{
    registerBuiltinScenarios();
    CliArgs args(argc, argv);
    if (handleListFlags(args))
        return 0;
    auto spec = sim::parseSpecFile(resolveSpecPath(spec_name));
    return sim::runSpec(spec, args);
}

int
benchMain(int argc, char **argv)
{
    registerBuiltinScenarios();
    CliArgs args(argc, argv);
    if (handleListFlags(args))
        return 0;

    if (args.getBool("list-experiments")) {
        const std::string dir = experimentsDir();
        std::vector<std::string> names;
        if (std::filesystem::is_directory(dir)) {
            for (const auto &e :
                 std::filesystem::directory_iterator(dir)) {
                if (e.path().extension() == ".json")
                    names.push_back(e.path().stem().string());
            }
        }
        std::sort(names.begin(), names.end());
        for (const auto &name : names) {
            auto spec =
                sim::parseSpecFile(dir + "/" + name + ".json");
            std::cout << name;
            if (!spec.description.empty())
                std::cout << " - " << spec.description;
            std::cout << "\n";
        }
        return 0;
    }

    if (args.positional().empty()) {
        fp_fatal("usage: %s <spec.json | spec-name> [flags] "
                 "(or --list-experiments / --list-scenarios / "
                 "--list-policies / --list-backends)",
                 args.program().c_str());
    }
    const std::string &target = args.positional().front();
    const bool is_path =
        target.find('/') != std::string::npos ||
        (target.size() > 5 &&
         target.compare(target.size() - 5, 5, ".json") == 0);
    const std::string path =
        is_path ? target : resolveSpecPath(target);
    auto spec = sim::parseSpecFile(path);
    return sim::runSpec(spec, args);
}

void
registerBuiltinScenarios()
{
    static const bool once = [] {
        registerFig10Scenario();
        registerFig11Scenario();
        registerFig12Scenario();
        registerFig13Scenario();
        registerFig14Scenario();
        registerFig15Scenario();
        registerFig16Scenario();
        registerFig17Scenario();
        registerFig18Scenario();
        registerFig19Scenario();
        registerTable2Scenario();
        registerOverlapScenario();
        registerAblationScenario();
        registerReplacingScenario();
        registerFaultsScenario();
        registerShardsScenario();
        registerSmokeScenario();
        return true;
    }();
    (void)once;
}

} // namespace fp::bench
