/**
 * @file
 * Figure 17 renderer: sensitivity to (a) thread count and (b) ORAM
 * capacity, reporting Fork Path ORAM latency normalized to
 * traditional (geomean over generated mixes). The thread counts, size
 * ladder and sample count live in experiments/fig17.json.
 */

#include "scenarios/scenarios.hh"
#include "workload/mixes.hh"

namespace fp::bench
{

namespace
{

/** Append a fork/traditional point pair for one generated mix. */
void
addPair(std::vector<sim::SweepPoint> &points, const std::string &name,
        const sim::SimConfig &cfg,
        const std::vector<workload::WorkloadProfile> &mix)
{
    points.push_back(sim::pointFromProfiles(
        name + "/fork", sim::withMergeMac(cfg, 1 << 20, 64), mix));
    points.push_back(sim::pointFromProfiles(
        name + "/traditional", sim::withTraditional(cfg), mix));
}

/** Geomean of fork/traditional latency over consecutive pairs. */
double
pairGeomean(const std::vector<sim::RunResult> &results,
            std::size_t first_pair, std::size_t npairs)
{
    std::vector<double> ratios;
    for (std::size_t s = 0; s < npairs; ++s) {
        const auto &fork = results[2 * (first_pair + s)];
        const auto &trad = results[2 * (first_pair + s) + 1];
        ratios.push_back(fork.avgLlcLatencyNs /
                         trad.avgLlcLatencyNs);
    }
    return sim::geomean(ratios);
}

} // namespace

void
registerFig17Scenario()
{
    sim::registerScenario("fig17", [](sim::ScenarioContext &ctx) {
        const unsigned mixes_per_point =
            static_cast<unsigned>(ctx.args.getInt(
                "samples",
                static_cast<long long>(
                    ctx.spec.paramUint("samples", 3))));

        ctx.banner(
            "Figure 17: thread count and ORAM size sensitivity",
            "(a) advantage grows with threads; (b) degrades "
            "moderately with ORAM size");

        const auto &base = ctx.base;
        const std::vector<unsigned> thread_counts =
            asUnsigned(ctx.spec.paramUintList("threads"));
        const auto size_names = ctx.spec.paramStrList("size-names");
        const auto size_leaves =
            asUnsigned(ctx.spec.paramUintList("size-leaves"));
        if (size_names.size() != size_leaves.size())
            sim::specFail(ctx.spec.source, ctx.spec.params,
                          "params.size-names and params.size-leaves "
                          "must be the same length");

        // Both sub-figures in one sweep: (a)'s pairs first, then
        // (b)'s.
        std::vector<sim::SweepPoint> points;
        for (unsigned cores : thread_counts) {
            for (unsigned s = 0; s < mixes_per_point; ++s) {
                auto mix = workload::makeMixForCores(cores, 40 + s);
                auto cfg = base;
                cfg.cores = cores;
                addPair(points,
                        "threads=" + std::to_string(cores) + "/s" +
                            std::to_string(s),
                        cfg, mix);
            }
        }
        for (std::size_t i = 0; i < size_names.size(); ++i) {
            for (unsigned s = 0; s < mixes_per_point; ++s) {
                auto mix = workload::makeMixForCores(4, 80 + s);
                auto cfg = base;
                cfg.cores = 4;
                cfg.controller.oram.leafLevel = size_leaves[i];
                addPair(points,
                        size_names[i] + "/s" + std::to_string(s),
                        cfg, mix);
            }
        }
        auto results = ctx.run(std::move(points));

        TextTable a("Fig 17(a): latency/traditional vs threads "
                    "(merge+1M MAC)");
        a.setHeader({"threads", "latency_norm"});
        for (std::size_t c = 0; c < thread_counts.size(); ++c) {
            a.addRow({std::to_string(thread_counts[c]),
                      TextTable::fmt(pairGeomean(results,
                                                 c * mixes_per_point,
                                                 mixes_per_point),
                                     3)});
        }
        ctx.emit(a);

        TextTable b("Fig 17(b): latency/traditional vs ORAM size "
                    "(4 threads, merge+1M MAC)");
        b.setHeader({"oram_size", "leaf_level", "latency_norm"});
        const std::size_t b_first =
            thread_counts.size() * mixes_per_point;
        for (std::size_t i = 0; i < size_names.size(); ++i) {
            b.addRow({size_names[i], std::to_string(size_leaves[i]),
                      TextTable::fmt(
                          pairGeomean(results,
                                      b_first + i * mixes_per_point,
                                      mixes_per_point),
                          3)});
        }
        ctx.emit(b);
    });
}

} // namespace fp::bench
