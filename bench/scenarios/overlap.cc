/**
 * @file
 * Overlap renderer: analytic companion to Figure 10 — expected
 * best-of-queue path overlap, closed form vs Monte-Carlo, across the
 * spec's queue sizes and tree depths (experiments/overlap.json).
 *
 * Each tree depth is one SweepRunner task (--jobs); a task owns its
 * Rng(1234 + leaf) stream, so results — and the stdout emitted in
 * depth order afterwards — are byte-identical at any job count.
 */

#include <algorithm>

#include "core/overlap.hh"
#include "mem/tree_geometry.hh"
#include "scenarios/scenarios.hh"
#include "util/random.hh"

namespace fp::bench
{

void
registerOverlapScenario()
{
    sim::registerScenario("overlap", [](sim::ScenarioContext &ctx) {
        const auto trials = static_cast<unsigned>(ctx.args.getInt(
            "trials",
            static_cast<long long>(
                ctx.spec.paramUint("trials", 40000))));

        ctx.banner("Overlap analysis (supports Figure 10)",
                   "expected fetched path ~= L+1 - E[best-of-Q "
                   "overlap], E grows ~1 level per queue doubling");

        const std::vector<unsigned> leaves =
            asUnsigned(ctx.spec.paramUintList("leaves"));
        const std::vector<unsigned> queues =
            asUnsigned(ctx.spec.paramUintList("queues"));

        std::vector<TextTable> tables;
        std::vector<sim::SweepTask> tasks;
        tables.reserve(leaves.size());
        for (unsigned leaf : leaves) {
            mem::TreeGeometry geo(leaf);
            tables.emplace_back("L = " + std::to_string(leaf) +
                                " (path length " +
                                std::to_string(geo.numLevels()) +
                                ")");
            TextTable &table = tables.back();
            tasks.push_back({"L=" + std::to_string(leaf),
                             [&table, &queues, leaf, trials] {
                mem::TreeGeometry geo(leaf);
                Rng rng(1234 + leaf);
                table.setHeader({"queue", "E[overlap] analytic",
                                 "E[overlap] monte-carlo",
                                 "expected fetched path"});
                for (unsigned q : queues) {
                    double analytic =
                        core::expectedBestOverlap(geo, q);
                    double sum = 0.0;
                    for (unsigned t = 0; t < trials; ++t) {
                        LeafLabel cur =
                            rng.uniformInt(geo.numLeaves());
                        unsigned best = 0;
                        for (unsigned i = 0; i < q; ++i) {
                            best = std::max(
                                best,
                                geo.overlap(
                                    cur,
                                    rng.uniformInt(
                                        geo.numLeaves())));
                        }
                        sum += best;
                    }
                    table.addRow({std::to_string(q),
                                  TextTable::fmt(analytic, 3),
                                  TextTable::fmt(sum / trials, 3),
                                  TextTable::fmt(
                                      geo.numLevels() - analytic,
                                      2)});
                }
            }});
        }
        ctx.runTasks(std::move(tasks));
        for (const auto &table : tables)
            ctx.emit(table);
    });
}

} // namespace fp::bench
