/**
 * @file
 * Figure 10 renderer: average ORAM tree path length and average DRAM
 * latency per ORAM request, merging+scheduling vs. traditional Path
 * ORAM, as the label queue size sweeps the spec's `queues` list.
 * Data (mix, queue sizes, request count) lives in
 * experiments/fig10.json.
 */

#include "core/overlap.hh"
#include "mem/tree_geometry.hh"
#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig10Scenario()
{
    sim::registerScenario("fig10", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Figure 10: path length and DRAM latency vs label queue "
            "size",
            "baseline 25 buckets; merging shrinks path ~linearly in "
            "log2(queue); DRAM latency drops faster than path "
            "length");

        const auto &cfg = ctx.base;
        mem::TreeGeometry geo(ctx.leafLevel());
        const std::vector<unsigned> queues =
            asUnsigned(ctx.spec.paramUintList("queues"));

        std::vector<sim::SweepPoint> points;
        points.push_back(sim::pointFromMix(
            "traditional", sim::withTraditional(cfg), ctx.mixes[0]));
        for (unsigned q : queues) {
            points.push_back(sim::pointFromMix(
                "merge q=" + std::to_string(q),
                sim::withMergeOnly(cfg, q), ctx.mixes[0]));
        }
        auto results = ctx.run(std::move(points));
        const auto &trad = results[0];

        TextTable table("Fig 10 (" + ctx.mixes[0] + ", L=" +
                        std::to_string(ctx.leafLevel()) + ")");
        table.setHeader({"config", "path_len", "analytic",
                         "dram_latency_norm", "row_hit_rate"});
        table.addRow({"traditional",
                      TextTable::fmt(trad.avgReadPathLen, 2),
                      TextTable::fmt(double(geo.numLevels()), 2),
                      TextTable::fmt(1.0, 3),
                      TextTable::fmt(trad.rowHitRate(), 3)});

        for (std::size_t i = 0; i < queues.size(); ++i) {
            const auto &r = results[1 + i];
            // Analytic fetched length: L+1 - E[best-of-q overlap] + 1
            // (the read starts at the retained level).
            double analytic =
                geo.numLevels() -
                core::expectedBestOverlap(geo, queues[i]);
            table.addRow(
                {"merge q=" + std::to_string(queues[i]),
                 TextTable::fmt(r.avgReadPathLen, 2),
                 TextTable::fmt(analytic, 2),
                 TextTable::fmt(r.avgDramServiceNs /
                                    trad.avgDramServiceNs,
                                3),
                 TextTable::fmt(r.rowHitRate(), 3)});
        }
        ctx.emit(table);
    });
}

} // namespace fp::bench
