/**
 * @file
 * Figure 13 renderer: ORAM latency of the caching designs, normalized
 * to traditional Path ORAM. The design list (merge-only, MAC at three
 * capacities, treetop) lives as points in experiments/fig13.json.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig13Scenario()
{
    sim::registerScenario("fig13", [](sim::ScenarioContext &ctx) {
        ctx.banner("Figure 13: ORAM latency with caching designs",
                   "MAC at ~1/4 capacity matches 1MB treetop; 1MB "
                   "MAC is best overall");

        const auto &cfg = ctx.base;
        const auto &configs = ctx.spec.points;

        TextTable table("Fig 13 (ORAM latency / traditional)");
        std::vector<std::string> header = {"mix"};
        for (const auto &c : configs)
            header.push_back(c.name);
        table.setHeader(header);

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/traditional", sim::withTraditional(cfg),
                mix));
            for (const auto &c : configs) {
                points.push_back(sim::pointFromMix(
                    mix + "/" + c.name, ctx.pointConfig(c), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 1 + configs.size();

        std::vector<std::vector<double>> ratios(configs.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            const auto &trad = results[m * stride];
            std::vector<std::string> row = {ctx.mixes[m]};
            for (std::size_t i = 0; i < configs.size(); ++i) {
                const auto &r = results[m * stride + 1 + i];
                double ratio =
                    r.avgLlcLatencyNs / trad.avgLlcLatencyNs;
                ratios[i].push_back(ratio);
                row.push_back(TextTable::fmt(ratio, 3));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean"};
        for (const auto &series : ratios)
            avg.push_back(TextTable::fmt(sim::geomean(series), 3));
        table.addRow(avg);
        ctx.emit(table);
    });
}

} // namespace fp::bench
