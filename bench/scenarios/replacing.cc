/**
 * @file
 * Replacing renderer: the dummy-label-replacing window (paper Section
 * 3.3 / Figure 5). Sweeps the arrival offset of a lone real request
 * relative to the previous access and reports, per offset band, the
 * fraction of arrivals that replaced the committed dummy and the
 * request's latency. Offsets, trial count, probe queue size and ORAM
 * seed live in experiments/replacing.json.
 *
 * Each offset band is one SweepRunner task (--jobs); every trial
 * seeds its own Rng(t * 31 + offset_ns), so rows — emitted in offset
 * order afterwards — are byte-identical at any job count. Honours
 * --backend=net to probe the window against the network store model.
 */

#include <memory>

#include "core/controller_params.hh"
#include "core/oram_controller.hh"
#include "dram/dram_backend.hh"
#include "dram/dram_system.hh"
#include "mem/net_backend.hh"
#include "scenarios/scenarios.hh"
#include "util/random.hh"

namespace fp::bench
{

void
registerReplacingScenario()
{
    sim::registerScenario("replacing", [](sim::ScenarioContext &ctx) {
        const auto trials = static_cast<unsigned>(ctx.args.getInt(
            "trials",
            static_cast<long long>(
                ctx.spec.paramUint("trials", 200))));
        const auto leaf = static_cast<unsigned>(ctx.args.getInt(
            "leaf-level",
            static_cast<long long>(
                ctx.spec.paramUint("leaf-level", 16))));

        ctx.banner("Dummy label replacing window (Section 3.3)",
                   "a real request arriving before the refill passes "
                   "the crossing bucket replaces the committed dummy "
                   "(Case 3); later arrivals cannot (Cases 1-2)");

        // The registry's forkpath preset (merging + replacing),
        // shrunk to a probe-sized queue with no on-chip cache so
        // every replacement window is exercised against DRAM.
        core::ControllerParams params =
            core::ControllerParams::forkPath();
        params.oram.leafLevel = leaf;
        params.oram.payloadBytes = 0;
        params.oram.seed = ctx.spec.paramUint("oram-seed", 60221023);
        params.labelQueueSize = static_cast<unsigned>(
            ctx.spec.paramUint("label-queue", 8));
        params.cachePolicy = core::CachePolicy::none;

        const sim::BackendKind backend_kind = ctx.base.backendKind;
        const mem::NetBackendParams net = ctx.base.net;

        TextTable table("replacement probability vs arrival offset");
        table.setHeader({"offset_after_prev_done_ns", "replaced_frac",
                         "avg_latency_ns"});

        // Offset is measured from the completion of the priming
        // access's *read* phase: its write phase (the replacement
        // window) follows.
        const auto offset_list = ctx.spec.paramUintList("offsets");
        const std::vector<Tick> offsets(offset_list.begin(),
                                        offset_list.end());
        std::vector<std::vector<std::string>> rows(offsets.size());

        std::vector<sim::SweepTask> tasks;
        for (std::size_t band = 0; band < offsets.size(); ++band) {
            const Tick offset_ns = offsets[band];
            tasks.push_back(
                {"offset=" + std::to_string(offset_ns) + "ns",
                 [&rows, &params, backend_kind, net, band, offset_ns,
                  trials] {
                unsigned replaced = 0;
                double latency_sum = 0.0;
                for (unsigned t = 0; t < trials; ++t) {
                    EventQueue eq;
                    std::unique_ptr<dram::DramSystem> dram_sys;
                    std::unique_ptr<mem::MemoryBackend> backend;
                    if (backend_kind == sim::BackendKind::dram) {
                        dram_sys =
                            std::make_unique<dram::DramSystem>(
                                sim::SimConfig::defaultDram(), eq);
                        backend =
                            std::make_unique<dram::DramBackend>(
                                *dram_sys);
                    } else {
                        backend = std::make_unique<mem::NetBackend>(
                            net, eq);
                    }
                    auto p = params;
                    p.oram.seed += t * 7919;
                    core::OramController ctrl(p, eq, *backend);
                    Rng rng(t * 31 + offset_ns);

                    // Prime: one access whose refill commits a
                    // dummy.
                    bool primed = false;
                    ctrl.request(oram::Op::read,
                                 rng.uniformInt(1 << 12), {},
                                 [&](Tick, const auto &) {
                                     primed = true;
                                 });
                    eq.runWhile([&] { return !primed; });

                    // Inject the probe at the offset.
                    std::uint64_t before = ctrl.dummyReplacements();
                    bool done = false;
                    Tick t0 = 0, t1 = 0;
                    eq.scheduleIn(offset_ns * 1000, [&] {
                        t0 = eq.now();
                        ctrl.request(oram::Op::read,
                                     4096 + rng.uniformInt(1 << 12),
                                     {},
                                     [&](Tick tt, const auto &) {
                                         t1 = tt;
                                         done = true;
                                     });
                    });
                    eq.runWhile([&] { return !done; });
                    replaced += ctrl.dummyReplacements() > before;
                    latency_sum += ticksToNs(t1 - t0);
                }
                rows[band] = {
                    TextTable::fmt(std::uint64_t{offset_ns}),
                    TextTable::fmt(
                        static_cast<double>(replaced) / trials, 3),
                    TextTable::fmt(latency_sum / trials, 0)};
            }});
        }
        ctx.runTasks(std::move(tasks));
        for (const auto &row : rows)
            table.addRow(row);
        ctx.emit(table);
    });
}

} // namespace fp::bench
