/**
 * @file
 * Figure 14 renderer: slowdown of full-system execution time relative
 * to the insecure processor (no ORAM). The configuration list lives
 * as points in experiments/fig14.json; the headline summary compares
 * the spec's `headline` / `headline-baselines` pairs.
 */

#include <algorithm>

#include "scenarios/scenarios.hh"

namespace fp::bench
{

namespace
{

std::size_t
configIndex(const sim::ScenarioContext &ctx, const std::string &name)
{
    const auto &configs = ctx.spec.points;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].name == name)
            return i;
    }
    sim::specFail(ctx.spec.source, ctx.spec.params,
                  "headline comparison references unknown point \"" +
                      name + "\"");
}

} // namespace

void
registerFig14Scenario()
{
    sim::registerScenario("fig14", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Figure 14: full-system slowdown vs insecure processor",
            "merge+1M MAC cuts execution time ~58% vs traditional "
            "ORAM, ~29% vs 1MB treetop");

        const auto &cfg = ctx.base;
        const auto &configs = ctx.spec.points;

        TextTable table("Fig 14 (execution time / insecure)");
        std::vector<std::string> header = {"mix"};
        for (const auto &c : configs)
            header.push_back(c.name);
        table.setHeader(header);

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/insecure", sim::withInsecure(cfg), mix));
            for (const auto &c : configs) {
                points.push_back(sim::pointFromMix(
                    mix + "/" + c.name, ctx.pointConfig(c), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 1 + configs.size();

        std::vector<std::vector<double>> slowdowns(configs.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            const auto &insecure = results[m * stride];
            auto base =
                static_cast<double>(insecure.executionTicks);
            std::vector<std::string> row = {ctx.mixes[m]};
            for (std::size_t i = 0; i < configs.size(); ++i) {
                const auto &r = results[m * stride + 1 + i];
                double s =
                    static_cast<double>(r.executionTicks) / base;
                slowdowns[i].push_back(s);
                row.push_back(TextTable::fmt(s, 2));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean"};
        std::vector<double> geo(configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i) {
            geo[i] = sim::geomean(slowdowns[i]);
            avg.push_back(TextTable::fmt(geo[i], 2));
        }
        table.addRow(avg);
        ctx.emit(table);

        // Headline pairs: "<subject> vs <baseline>", reduction in
        // execution time, from the spec's parallel name lists.
        const auto subjects = ctx.spec.paramStrList("headline");
        const auto baselines =
            ctx.spec.paramStrList("headline-baselines");
        if (subjects.size() != baselines.size())
            sim::specFail(ctx.spec.source, ctx.spec.params,
                          "params.headline and "
                          "params.headline-baselines must be the "
                          "same length");

        TextTable summary("headline reductions in execution time");
        summary.setHeader({"comparison", "reduction"});
        for (std::size_t i = 0; i < subjects.size(); ++i) {
            const double subject = geo[configIndex(ctx, subjects[i])];
            const double baseline =
                geo[configIndex(ctx, baselines[i])];
            summary.addRow(
                {subjects[i] + " vs " + baselines[i],
                 TextTable::fmt(100.0 * (1.0 - subject / baseline),
                                1) +
                     " %"});
        }
        ctx.emit(summary);
    });
}

} // namespace fp::bench
