/**
 * @file
 * Figure 15 renderer: total energy of the ORAM memory system (DRAM +
 * controller structures) normalized to traditional Path ORAM. The
 * configuration list lives as points in experiments/fig15.json.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig15Scenario()
{
    sim::registerScenario("fig15", [](sim::ScenarioContext &ctx) {
        ctx.banner("Figure 15: normalized ORAM memory-system energy",
                   "merge+1M MAC saves ~38% vs traditional and ~15% "
                   "vs 1MB treetop");

        const auto &cfg = ctx.base;
        const auto &configs = ctx.spec.points;

        TextTable table("Fig 15 (energy / traditional)");
        std::vector<std::string> header = {"mix", "trad_mJ"};
        for (const auto &c : configs)
            header.push_back(c.name);
        table.setHeader(header);

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/traditional", sim::withTraditional(cfg),
                mix));
            for (const auto &c : configs) {
                points.push_back(sim::pointFromMix(
                    mix + "/" + c.name, ctx.pointConfig(c), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 1 + configs.size();

        std::vector<std::vector<double>> ratios(configs.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            const auto &trad = results[m * stride];
            std::vector<std::string> row = {
                ctx.mixes[m],
                TextTable::fmt(trad.totalEnergyNj() / 1e6, 2)};
            for (std::size_t i = 0; i < configs.size(); ++i) {
                const auto &r = results[m * stride + 1 + i];
                double ratio =
                    r.totalEnergyNj() / trad.totalEnergyNj();
                ratios[i].push_back(ratio);
                row.push_back(TextTable::fmt(ratio, 3));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean", "-"};
        for (const auto &series : ratios)
            avg.push_back(TextTable::fmt(sim::geomean(series), 3));
        table.addRow(avg);
        ctx.emit(table);
    });
}

} // namespace fp::bench
