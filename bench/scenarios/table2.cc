/**
 * @file
 * Table 2 renderer: the multi-programmed workload mixes and the
 * synthetic profile parameters standing in for each SPEC benchmark.
 * Fast, no simulation — documentation of the reproduction's workload
 * substitution. The two tables build as independent SweepRunner tasks
 * (--jobs) and are emitted in order afterwards, so stdout is
 * byte-identical at any job count.
 */

#include "scenarios/scenarios.hh"
#include "workload/mixes.hh"
#include "workload/spec_profiles.hh"

namespace fp::bench
{

void
registerTable2Scenario()
{
    sim::registerScenario("table2", [](sim::ScenarioContext &ctx) {
        ctx.banner("Table 2: mixed benchmarks from SPEC 2006",
                   "Mix1-2 from the low-overhead group, Mix3-4 high, "
                   "Mix5-8 duplicated programs, Mix9-10 mixed "
                   "groups");

        TextTable mixes("mix composition (paper Table 2)");
        TextTable profiles("synthetic profiles standing in for SPEC");

        std::vector<sim::SweepTask> tasks;
        tasks.push_back({"mix composition", [&mixes] {
            mixes.setHeader(
                {"mix", "core0", "core1", "core2", "core3"});
            for (const auto &mix : workload::mixNames()) {
                auto members = workload::mixMembers(mix);
                mixes.addRow({mix, members[0], members[1],
                              members[2], members[3]});
            }
        }});
        tasks.push_back({"synthetic profiles", [&profiles] {
            profiles.setHeader({"benchmark", "group",
                                "miss_interval_cyc", "working_set_MB",
                                "zipf", "seq_frac", "write_frac"});
            for (const auto &name : workload::specNames()) {
                const auto &p = workload::specProfile(name);
                profiles.addRow(
                    {name, p.highOverheadGroup ? "HG" : "LG",
                     TextTable::fmt(p.missIntervalCycles, 0),
                     TextTable::fmt(
                         static_cast<double>(p.workingSetBlocks) *
                             64.0 / (1024 * 1024),
                         1),
                     TextTable::fmt(p.zipfAlpha, 2),
                     TextTable::fmt(p.seqFraction, 2),
                     TextTable::fmt(p.writeFraction, 2)});
            }
        }});
        ctx.runTasks(std::move(tasks));

        ctx.emit(mixes);
        ctx.emit(profiles);
    });
}

} // namespace fp::bench
