/**
 * @file
 * Smoke renderer: the CI smoke benchmark — pinned configuration
 * points small enough to finish in seconds, run with per-request
 * profiling on, and dumped as machine-readable JSON for the
 * bench-baseline regression gate (tools/bench_baseline.py compares
 * the output against tools/baselines/BENCH_smoke.baseline.json).
 *
 * The points are frozen in experiments/smoke.json — traditional Path
 * ORAM, Fork Path merging at two queue depths, merging + MAC, and a
 * sharded merging point (4 shards on the network store), all on Mix3
 * at requests=150 / leaf-level=14 — so the baseline file stays
 * meaningful across commits. Runs are deterministic at any --jobs
 * (SweepRunner contract), so the JSON is byte-stable on one machine
 * and value-stable everywhere. Spec runs additionally stamp
 * spec_name / spec_hash into each result record; the gate ignores
 * those provenance fields.
 */

#include <fstream>
#include <iostream>

#include "scenarios/scenarios.hh"
#include "util/logging.hh"

namespace fp::bench
{

namespace
{

/** Per-stage p50 of one profiled stage, for the progress table. */
double
stageP50(const sim::RunResult &r, const std::string &stage)
{
    for (const auto &s : r.profileStages) {
        if (s.stage == stage)
            return s.p50Ns;
    }
    return 0.0;
}

} // namespace

void
registerSmokeScenario()
{
    sim::registerScenario("smoke", [](sim::ScenarioContext &ctx) {
        const std::string out_path = ctx.args.getString(
            "out", ctx.spec.defaultOut.empty()
                       ? "BENCH_smoke.json"
                       : ctx.spec.defaultOut);

        ctx.banner("CI smoke sweep (bench-baseline gate)",
                   "n/a — regression gate, not a paper figure");

        const std::string mix = ctx.spec.paramStr("mix", "Mix3");
        std::vector<sim::SweepPoint> points;
        std::vector<std::string> names;
        for (const auto &c : ctx.spec.points) {
            auto cfg = ctx.pointConfig(c);
            // Profiling always on: the baseline tracks effectiveness
            // counters and stage percentiles alongside the headline
            // metrics.
            cfg.obs.profileRequests = true;
            names.push_back(c.name);
            points.push_back(sim::pointFromMix(
                c.name, std::move(cfg),
                c.mix.empty() ? mix : c.mix));
        }

        auto results = ctx.run(std::move(points));

        TextTable table("smoke points (" + mix + ", requests=" +
                        std::to_string(ctx.requests()) + ", leaf=" +
                        std::to_string(ctx.leafLevel()) + ")");
        table.setHeader({"point", "exec_ticks", "llc_ns", "path_len",
                         "buckets_saved", "total_p50_ns"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            table.addRow(
                {names[i],
                 TextTable::fmt(std::uint64_t{r.executionTicks}),
                 TextTable::fmt(r.avgLlcLatencyNs, 1),
                 TextTable::fmt(r.avgReadPathLen, 2),
                 TextTable::fmt(
                     r.profileEffectiveness.bucketsSaved()),
                 TextTable::fmt(stageP50(r, "total"), 1)});
        }
        ctx.emit(table);

        // JsonWriter has no raw-embed, so the document is spliced by
        // hand from toJson() fragments (each already a complete JSON
        // object).
        std::string doc = "{\"schema\":\"forkpath-bench-smoke-v1\","
                          "\"points\":[";
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i)
                doc += ',';
            doc += "{\"name\":\"" + JsonWriter::escape(names[i]) +
                   "\",\"result\":" + sim::toJson(results[i]) + "}";
        }
        doc += "]}";

        std::ofstream out(out_path);
        if (!out)
            fp_fatal("cannot open --out file '%s'",
                     out_path.c_str());
        out << doc << '\n';
        if (!ctx.csv)
            std::cout << "wrote " << out_path << "\n";
    });
}

} // namespace fp::bench
