/**
 * @file
 * The scenario renderers behind the experiment-spec runtime: one
 * registered scenario per migrated bench binary. The spec files under
 * experiments/ own every grid, preset list and default the legacy
 * binaries used to hard-code; the renderers own only the
 * figure-specific derivation and table layout (normalisation against
 * a baseline row, geomeans, analytic companion columns).
 *
 * A scenario's stdout is byte-identical to the legacy binary it
 * replaced, at any --jobs (the SweepRunner determinism contract plus
 * ordered emission). The wrappers (bench_fig10 etc.) call
 * specMain("fig10", ...) and are otherwise empty.
 */

#ifndef FP_BENCH_SCENARIOS_SCENARIOS_HH
#define FP_BENCH_SCENARIOS_SCENARIOS_HH

#include <string>

#include "sim/scenario.hh"
#include "sim/spec_parse.hh"

namespace fp::bench
{

/** Register every built-in scenario renderer (idempotent). */
void registerBuiltinScenarios();

/**
 * Resolve a spec by name to a file under the experiments directory:
 * the FP_EXPERIMENTS_DIR environment variable when set, else the
 * compile-time source-tree location. Fatal when the file is missing.
 */
std::string resolveSpecPath(const std::string &name);

/**
 * Entry point shared by the legacy wrapper binaries: handle the
 * --list-policies / --list-backends / --list-scenarios flags, then
 * load experiments/<spec_name>.json and run it. Wrappers pass their
 * historical spec name; flags and output match the pre-spec binary.
 */
int specMain(const std::string &spec_name, int argc, char **argv);

/**
 * The `fp_bench` driver: like specMain but the spec comes from the
 * command line — a path to a .json file or a bare spec name resolved
 * via resolveSpecPath. `fp_bench --list-experiments` enumerates the
 * committed specs with their descriptions.
 */
int benchMain(int argc, char **argv);

/** Narrow a spec's integer-list parameter (queue sizes, channel
 *  counts, ...) to the unsigned the sim API takes. */
inline std::vector<unsigned>
asUnsigned(const std::vector<std::uint64_t> &values)
{
    return std::vector<unsigned>(values.begin(), values.end());
}

// Per-figure registration hooks (called by registerBuiltinScenarios).
void registerFig10Scenario();
void registerFig11Scenario();
void registerFig12Scenario();
void registerFig13Scenario();
void registerFig14Scenario();
void registerFig15Scenario();
void registerFig16Scenario();
void registerFig17Scenario();
void registerFig18Scenario();
void registerFig19Scenario();
void registerTable2Scenario();
void registerOverlapScenario();
void registerAblationScenario();
void registerReplacingScenario();
void registerFaultsScenario();
void registerShardsScenario();
void registerSmokeScenario();

} // namespace fp::bench

#endif // FP_BENCH_SCENARIOS_SCENARIOS_HH
