/**
 * @file
 * Figure 11 renderer: total ORAM requests (real + dummy) normalized
 * to traditional Path ORAM, per Table 2 mix, for the spec's `queues`
 * list. Data lives in experiments/fig11.json.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig11Scenario()
{
    sim::registerScenario("fig11", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Figure 11: normalized total ORAM request count",
            "average ~1.05x at queue 64-128; worst mixes (low "
            "intensity, e.g. Mix2) exceed 1.25x");

        const auto &cfg = ctx.base;
        const std::vector<unsigned> queues =
            asUnsigned(ctx.spec.paramUintList("queues"));

        TextTable table("Fig 11 (total requests / traditional)");
        std::vector<std::string> header = {"mix"};
        for (unsigned q : queues)
            header.push_back("q=" + std::to_string(q));
        table.setHeader(header);

        // One point per (mix, config): the traditional baseline then
        // the queue-size variants, grouped by mix.
        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/traditional", sim::withTraditional(cfg),
                mix));
            for (unsigned q : queues) {
                points.push_back(sim::pointFromMix(
                    mix + "/q=" + std::to_string(q),
                    sim::withMergeOnly(cfg, q), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 1 + queues.size();

        std::vector<std::vector<double>> ratios(queues.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            const auto &trad = results[m * stride];
            double base = static_cast<double>(trad.realAccesses +
                                              trad.dummyAccesses);
            std::vector<std::string> row = {ctx.mixes[m]};
            for (std::size_t i = 0; i < queues.size(); ++i) {
                const auto &r = results[m * stride + 1 + i];
                double ratio = r.totalAccesses() / base;
                ratios[i].push_back(ratio);
                row.push_back(TextTable::fmt(ratio, 3));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean"};
        for (const auto &series : ratios)
            avg.push_back(TextTable::fmt(sim::geomean(series), 3));
        table.addRow(avg);
        ctx.emit(table);
    });
}

} // namespace fp::bench
