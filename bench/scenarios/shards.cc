/**
 * @file
 * Shards renderer: throughput versus shard count for the sharded
 * ORAM front-end (core::ShardedOram), on both memory backends. The
 * shard-count ladder and backend list live in
 * experiments/shards.json.
 *
 * A single controller serializes every access behind one backend
 * pipe; sharding gives each partition its own tree and its own pipe,
 * so aggregate throughput should rise with the shard count until the
 * cores (not the memory) are the bottleneck.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

namespace
{

/** LLC requests per millisecond of simulated time. */
double
throughputPerMs(const sim::RunResult &r)
{
    if (r.executionTicks == 0)
        return 0.0;
    // 1 tick = 1 ps; 1e9 ticks = 1 ms.
    return static_cast<double>(r.llcRequests) /
           (static_cast<double>(r.executionTicks) / 1e9);
}

} // namespace

void
registerShardsScenario()
{
    sim::registerScenario("shards", [](sim::ScenarioContext &ctx) {
        ctx.banner("Shard scaling (throughput vs shard count)",
                   "n/a — sharded front-end analysis, not a paper "
                   "figure");

        const std::string mix = ctx.spec.paramStr("mix", "Mix3");
        const std::vector<unsigned> shard_counts =
            asUnsigned(ctx.spec.paramUintList("shard-counts"));
        const auto backend_names =
            ctx.spec.paramStrList("backends");
        const auto queue = static_cast<unsigned>(
            ctx.spec.paramUint("queue", 64));

        std::vector<sim::SweepPoint> points;
        std::vector<std::string> names;
        for (const auto &be : backend_names) {
            for (unsigned shards : shard_counts) {
                sim::SimConfig cfg =
                    sim::withMergeOnly(ctx.base, queue);
                cfg.backendKind = sim::parseBackendKind(be);
                cfg.shards = shards;
                std::string name =
                    be + "_s" + std::to_string(shards);
                names.push_back(name);
                points.push_back(
                    sim::pointFromMix(std::move(name), cfg, mix));
            }
        }

        auto results = ctx.run(std::move(points));

        TextTable table("throughput vs shards (" + mix +
                        ", merge q" + std::to_string(queue) +
                        ", requests=" +
                        std::to_string(ctx.requests()) + ", leaf=" +
                        std::to_string(ctx.leafLevel()) + ")");
        table.setHeader({"point", "shards", "exec_ticks", "llc_ns",
                         "req_per_ms", "speedup_vs_s1"});
        std::size_t i = 0;
        for (const auto &be : backend_names) {
            (void)be;
            double base_tput = 0.0;
            for (unsigned shards : shard_counts) {
                const auto &r = results[i];
                const double tput = throughputPerMs(r);
                if (shards == 1)
                    base_tput = tput;
                table.addRow(
                    {names[i],
                     TextTable::fmt(std::uint64_t{shards}),
                     TextTable::fmt(std::uint64_t{r.executionTicks}),
                     TextTable::fmt(r.avgLlcLatencyNs, 1),
                     TextTable::fmt(tput, 2),
                     TextTable::fmt(
                         base_tput > 0.0 ? tput / base_tput : 0.0,
                         2)});
                ++i;
            }
        }
        ctx.emit(table);
    });
}

} // namespace fp::bench
