/**
 * @file
 * Figure 12 renderer: ORAM latency (completion time of an LLC request
 * inside the ORAM controller, queueing included) normalized to
 * traditional Path ORAM, per mix, for the spec's `queues` list. Data
 * lives in experiments/fig12.json.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig12Scenario()
{
    sim::registerScenario("fig12", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Figure 12: normalized ORAM latency vs label queue size",
            "improves with queue size up to 64, degrades at 128; "
            "queue 64 is the sweet spot");

        const auto &cfg = ctx.base;
        const std::vector<unsigned> queues =
            asUnsigned(ctx.spec.paramUintList("queues"));

        TextTable table("Fig 12 (ORAM latency / traditional)");
        std::vector<std::string> header = {"mix", "traditional(ns)"};
        for (unsigned q : queues)
            header.push_back("q=" + std::to_string(q));
        table.setHeader(header);

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/traditional", sim::withTraditional(cfg),
                mix));
            for (unsigned q : queues) {
                points.push_back(sim::pointFromMix(
                    mix + "/q=" + std::to_string(q),
                    sim::withMergeOnly(cfg, q), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 1 + queues.size();

        std::vector<std::vector<double>> ratios(queues.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            const auto &trad = results[m * stride];
            std::vector<std::string> row = {
                ctx.mixes[m],
                TextTable::fmt(trad.avgLlcLatencyNs, 0)};
            for (std::size_t i = 0; i < queues.size(); ++i) {
                const auto &r = results[m * stride + 1 + i];
                double ratio =
                    r.avgLlcLatencyNs / trad.avgLlcLatencyNs;
                ratios[i].push_back(ratio);
                row.push_back(TextTable::fmt(ratio, 3));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean", "-"};
        for (const auto &series : ratios)
            avg.push_back(TextTable::fmt(sim::geomean(series), 3));
        table.addRow(avg);
        ctx.emit(table);
    });
}

} // namespace fp::bench
