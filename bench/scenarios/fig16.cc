/**
 * @file
 * Figure 16 renderer: in-order vs out-of-order cores, each variant
 * normalized to its own traditional baseline, geomean over the mixes.
 * The variant list, mix subset and in-order queue sweep live in
 * experiments/fig16.json.
 */

#include "scenarios/scenarios.hh"

namespace fp::bench
{

namespace
{

std::vector<double>
seriesFor(const sim::ScenarioContext &ctx, sim::SimConfig cfg,
          unsigned outstanding)
{
    cfg.maxOutstanding = outstanding;

    std::vector<sim::SimConfig> variants;
    for (const auto &point : ctx.spec.points) {
        auto v = ctx.pointConfig(point);
        v.maxOutstanding = outstanding;
        variants.push_back(std::move(v));
    }
    auto trad_cfg = sim::withTraditional(cfg);
    trad_cfg.maxOutstanding = outstanding;

    std::vector<sim::SweepPoint> points;
    for (const auto &mix : ctx.mixes) {
        points.push_back(
            sim::pointFromMix(mix + "/traditional", trad_cfg, mix));
        for (std::size_t i = 0; i < variants.size(); ++i) {
            points.push_back(sim::pointFromMix(
                mix + "/variant" + std::to_string(i), variants[i],
                mix));
        }
    }
    auto results = ctx.run(std::move(points));
    const std::size_t stride = 1 + variants.size();

    std::vector<std::vector<double>> ratios(variants.size());
    for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
        const auto &trad = results[m * stride];
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const auto &r = results[m * stride + 1 + i];
            ratios[i].push_back(r.avgLlcLatencyNs /
                                trad.avgLlcLatencyNs);
        }
    }
    std::vector<double> out;
    for (const auto &series : ratios)
        out.push_back(sim::geomean(series));
    return out;
}

} // namespace

void
registerFig16Scenario()
{
    sim::registerScenario("fig16", [](sim::ScenarioContext &ctx) {
        ctx.banner("Figure 16: in-order vs out-of-order",
                   "in-order ORAM latency is significantly higher "
                   "(more dummy requests); smaller queues suit "
                   "in-order");

        const auto &cfg = ctx.base;

        TextTable table(
            "Fig 16 (latency / own traditional, geomean)");
        std::vector<std::string> header = {"core"};
        for (const auto &point : ctx.spec.points)
            header.push_back(point.name);
        table.setHeader(header);
        auto emitRow = [&](const std::string &name,
                           const std::vector<double> &v) {
            std::vector<std::string> row = {name};
            for (double x : v)
                row.push_back(TextTable::fmt(x, 3));
            table.addRow(row);
        };
        emitRow("out-of-order", seriesFor(ctx, cfg, 16));
        emitRow("in-order", seriesFor(ctx, cfg, 1));
        ctx.emit(table);

        // The paper's remark: a smaller queue helps in-order cores.
        TextTable q("in-order merge-only latency vs queue size");
        q.setHeader({"queue", "latency/traditional"});
        auto in_cfg = cfg;
        in_cfg.maxOutstanding = 1;
        const std::vector<unsigned> queue_sizes =
            asUnsigned(ctx.spec.paramUintList("inorder-queues"));

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            points.push_back(sim::pointFromMix(
                mix + "/in-order traditional",
                sim::withTraditional(in_cfg), mix));
        }
        for (unsigned qs : queue_sizes) {
            for (const auto &mix : ctx.mixes) {
                points.push_back(sim::pointFromMix(
                    mix + "/in-order q=" + std::to_string(qs),
                    sim::withMergeOnly(in_cfg, qs), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t nmixes = ctx.mixes.size();

        for (std::size_t qi = 0; qi < queue_sizes.size(); ++qi) {
            std::vector<double> ratios;
            for (std::size_t i = 0; i < nmixes; ++i) {
                const auto &r = results[nmixes * (1 + qi) + i];
                ratios.push_back(r.avgLlcLatencyNs /
                                 results[i].avgLlcLatencyNs);
            }
            q.addRow({std::to_string(queue_sizes[qi]),
                      TextTable::fmt(sim::geomean(ratios), 3)});
        }
        ctx.emit(q);
    });
}

} // namespace fp::bench
