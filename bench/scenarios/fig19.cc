/**
 * @file
 * Figure 19 renderer: ORAM latency of 4-thread PARSEC-like
 * multi-threaded workloads, merge + 1 MB MAC normalized to
 * traditional Path ORAM. Driven by experiments/fig19.json.
 */

#include "scenarios/scenarios.hh"
#include "workload/parsec_profiles.hh"

namespace fp::bench
{

void
registerFig19Scenario()
{
    sim::registerScenario("fig19", [](sim::ScenarioContext &ctx) {
        ctx.banner("Figure 19: PARSEC-like multithreaded workloads "
                   "(4 threads)",
                   "latency reduced significantly across workloads; "
                   "win scales with memory intensity");

        auto cfg = ctx.base;
        cfg.cores = 4;

        TextTable table("Fig 19 (ORAM latency / traditional)");
        table.setHeader({"workload", "traditional(ns)",
                         "merge+1M_MAC", "dummy_frac"});

        const auto names = workload::parsecNames();
        std::vector<sim::SweepPoint> points;
        for (const auto &name : names) {
            points.push_back(sim::pointFromParsec(
                name + "/traditional", sim::withTraditional(cfg),
                name));
            points.push_back(sim::pointFromParsec(
                name + "/fork", sim::withMergeMac(cfg, 1 << 20, 64),
                name));
        }
        auto results = ctx.run(std::move(points));

        std::vector<double> ratios;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const auto &trad = results[2 * i];
            const auto &fork = results[2 * i + 1];
            double ratio =
                fork.avgLlcLatencyNs / trad.avgLlcLatencyNs;
            ratios.push_back(ratio);
            table.addRow(
                {names[i], TextTable::fmt(trad.avgLlcLatencyNs, 0),
                 TextTable::fmt(ratio, 3),
                 TextTable::fmt(
                     static_cast<double>(fork.dummyAccesses) /
                         fork.totalAccesses(),
                     3)});
        }
        table.addRow({"geomean", "-",
                      TextTable::fmt(sim::geomean(ratios), 3), "-"});
        ctx.emit(table);
    });
}

} // namespace fp::bench
