/**
 * @file
 * Figure 18 renderer: speedup of ORAM latency (traditional / Fork
 * Path) across DRAM channel counts, per mix. The channel list and mix
 * subset live in experiments/fig18.json.
 */

#include "dram/dram_params.hh"
#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFig18Scenario()
{
    sim::registerScenario("fig18", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Figure 18: ORAM latency speedup vs DRAM channels",
            "speedup is largest at 1 channel and shrinks as channels "
            "are added");

        const auto &base = ctx.base;
        const std::vector<unsigned> channels =
            asUnsigned(ctx.spec.paramUintList("channels"));

        TextTable table(
            "Fig 18 (traditional latency / fork latency)");
        std::vector<std::string> header = {"mix"};
        for (unsigned ch : channels)
            header.push_back(std::to_string(ch) + "-channel");
        table.setHeader(header);

        std::vector<sim::SweepPoint> points;
        for (const auto &mix : ctx.mixes) {
            for (unsigned ch : channels) {
                auto cfg = base;
                cfg.dram = dram::DramParams::ddr3_1600(ch);
                std::string tag =
                    mix + "/" + std::to_string(ch) + "ch";
                points.push_back(sim::pointFromMix(
                    tag + "/traditional", sim::withTraditional(cfg),
                    mix));
                points.push_back(sim::pointFromMix(
                    tag + "/fork",
                    sim::withMergeMac(cfg, 1 << 20, 64), mix));
            }
        }
        auto results = ctx.run(std::move(points));
        const std::size_t stride = 2 * channels.size();

        std::vector<std::vector<double>> speedups(channels.size());
        for (std::size_t m = 0; m < ctx.mixes.size(); ++m) {
            std::vector<std::string> row = {ctx.mixes[m]};
            for (std::size_t i = 0; i < channels.size(); ++i) {
                const auto &trad = results[m * stride + 2 * i];
                const auto &fork = results[m * stride + 2 * i + 1];
                double speedup =
                    trad.avgLlcLatencyNs / fork.avgLlcLatencyNs;
                speedups[i].push_back(speedup);
                row.push_back(TextTable::fmt(speedup, 2));
            }
            table.addRow(row);
        }

        std::vector<std::string> avg = {"geomean"};
        for (const auto &series : speedups)
            avg.push_back(TextTable::fmt(sim::geomean(series), 2));
        table.addRow(avg);
        ctx.emit(table);
    });
}

} // namespace fp::bench
