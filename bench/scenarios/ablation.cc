/**
 * @file
 * Ablation renderer: the design-choice study DESIGN.md calls out,
 * beyond the paper's own figures — technique stack, dummy selection
 * policy, aging threshold, DRAM layout, recursion, page policy,
 * timing protection, integrity, and the scheduling-policy registry.
 * Knob values (queue size, MAC bytes, aging ladder, ...) live in
 * experiments/ablation.json.
 */

#include "core/access_policy.hh"
#include "scenarios/scenarios.hh"

namespace fp::bench
{

namespace
{

void
addRow(TextTable &table, const std::string &name,
       const sim::RunResult &r, double trad_latency)
{
    table.addRow(
        {name, TextTable::fmt(r.avgLlcLatencyNs, 0),
         TextTable::fmt(r.avgLlcLatencyNs / trad_latency, 3),
         TextTable::fmt(r.avgReadPathLen, 2),
         TextTable::fmt(static_cast<double>(r.dummyAccesses) /
                            static_cast<double>(r.realAccesses),
                        3),
         TextTable::fmt(r.totalEnergyNj() / 1e6, 1)});
}

} // namespace

void
registerAblationScenario()
{
    sim::registerScenario("ablation", [](sim::ScenarioContext &ctx) {
        const std::string mix = ctx.args.getString(
            "mix", ctx.spec.paramStr("mix", "Mix3"));
        const auto queue = static_cast<unsigned>(
            ctx.spec.paramUint("queue", 64));
        const auto mac_bytes =
            ctx.spec.paramUint("mac-bytes", 1 << 20);
        const std::vector<unsigned> aging = asUnsigned(
            ctx.spec.paramUintList("aging-thresholds"));
        const auto periodic_ticks =
            ctx.spec.paramUint("periodic-interval-ticks", 1'300'000);
        const auto recursion_depth = static_cast<unsigned>(
            ctx.spec.paramUint("recursion-depth", 2));
        const auto plb_entries = static_cast<unsigned>(
            ctx.spec.paramUint("plb-entries", 4096));

        ctx.banner(
            "Ablation: Fork Path technique stack and design knobs",
            "(beyond the paper's figures; see DESIGN.md section 4)");

        const auto &base = ctx.base;

        // Phase 1: declare every configuration (in emission order)
        // as a named sweep point; phase 2 runs them all (in parallel
        // under --jobs) and the tables consume the ordered results.
        std::vector<sim::SweepPoint> points;
        std::vector<std::string> names;
        auto add = [&](const std::string &name, sim::SimConfig cfg) {
            names.push_back(name);
            points.push_back(
                sim::pointFromMix(name, std::move(cfg), mix));
        };

        add("traditional", sim::withTraditional(base));
        add("+merging (q=1)", sim::withMergeOnly(base, 1));
        add("+scheduling (q=" + std::to_string(queue) + ")",
            sim::withMergeOnly(base, queue));
        {
            auto no_replace = sim::withMergeOnly(base, queue);
            no_replace.controller.enableDummyReplacing = false;
            add("q=" + std::to_string(queue) + ", no replacing",
                no_replace);
        }
        add("+MAC 1MB", sim::withMergeMac(
                            base, static_cast<unsigned>(mac_bytes),
                            queue));

        {
            auto compete = sim::withMergeOnly(base, queue);
            compete.controller.dummyPolicy =
                core::DummySelectPolicy::compete;
            add("compete (paper)", compete);
            auto real_first = sim::withMergeOnly(base, queue);
            real_first.controller.dummyPolicy =
                core::DummySelectPolicy::realFirst;
            add("realFirst (leaky)", real_first);
        }

        for (unsigned t : aging) {
            auto cfg = sim::withMergeOnly(base, queue);
            cfg.controller.agingThreshold = t;
            add(t >= (1u << 20) ? "T=inf" : "T=" + std::to_string(t),
                cfg);
        }

        add("subtree rows", sim::withMergeOnly(base, queue));
        {
            auto linear = sim::withMergeOnly(base, queue);
            linear.controller.layout = dram::LayoutPolicy::linear;
            add("linear (heap order)", linear);
        }

        add("flat on-chip posmap", sim::withMergeOnly(base, queue));
        {
            auto rec = sim::withMergeOnly(base, queue);
            rec.controller.recursionDepth = recursion_depth;
            add("2-level recursion", rec);
            auto plb = rec;
            plb.controller.plbEntries = plb_entries;
            add("2-level + 4K-entry PLB", plb);
        }

        add("open page (FR-FCFS)", sim::withMergeOnly(base, queue));
        {
            auto closed = sim::withMergeOnly(base, queue);
            closed.dram.pagePolicy = dram::PagePolicy::closed;
            add("closed page (auto-PRE)", closed);
        }

        add("demand-driven (paper eval)",
            sim::withMergeOnly(base, queue));
        {
            auto periodic = sim::withMergeOnly(base, queue);
            // One access slot per ~1.3 us: roughly the merged
            // service rate, so the stream adds little queueing when
            // busy but never stops when idle (Section 2.2's sealed
            // channel).
            periodic.controller.periodicIntervalTicks =
                periodic_ticks;
            add("periodic 1.3us slots", periodic);
        }

        add("integrity off", sim::withMergeOnly(base, queue));
        {
            auto on = sim::withMergeOnly(base, queue);
            on.controller.enableIntegrity = true;
            add("integrity on (hash-only cost)", on);
        }

        // Every registered scheduling policy under its canonical
        // preset, selected by name through the same registry path as
        // --policy.
        const auto policy_names = core::accessPolicyNames();
        for (const auto &name : policy_names)
            add("policy: " + name, sim::withPolicyName(base, name));

        auto results = ctx.run(std::move(points));
        const auto &trad = results[0];
        std::size_t next = 1;
        auto row = [&](TextTable &table) {
            addRow(table, names[next], results[next],
                   trad.avgLlcLatencyNs);
            ++next;
        };
        const std::string q_tag =
            "(q=" + std::to_string(queue) + ", " + mix + ")";

        TextTable stack("technique stack (" + mix + ")");
        stack.setHeader({"config", "latency_ns", "norm", "path_len",
                         "dummy/real", "energy_mJ"});
        stack.addRow(
            {"traditional", TextTable::fmt(trad.avgLlcLatencyNs, 0),
             "1.000", TextTable::fmt(trad.avgReadPathLen, 2),
             "0.000", TextTable::fmt(trad.totalEnergyNj() / 1e6, 1)});
        for (int i = 0; i < 4; ++i)
            row(stack);
        ctx.emit(stack);

        TextTable policy("dummy selection policy " + q_tag);
        policy.setHeader({"config", "latency_ns", "norm", "path_len",
                          "dummy/real", "energy_mJ"});
        for (int i = 0; i < 2; ++i)
            row(policy);
        ctx.emit(policy);

        TextTable aging_t("aging threshold " + q_tag);
        aging_t.setHeader({"config", "latency_ns", "norm",
                           "path_len", "dummy/real", "energy_mJ"});
        for (std::size_t i = 0; i < aging.size(); ++i)
            row(aging_t);
        ctx.emit(aging_t);

        TextTable layout("DRAM layout " + q_tag);
        layout.setHeader({"config", "latency_ns", "norm", "path_len",
                          "dummy/real", "energy_mJ"});
        for (int i = 0; i < 2; ++i)
            row(layout);
        ctx.emit(layout);

        TextTable recursion("hierarchical position map " + q_tag);
        recursion.setHeader({"config", "latency_ns", "norm",
                             "path_len", "dummy/real", "energy_mJ"});
        for (int i = 0; i < 3; ++i)
            row(recursion);
        ctx.emit(recursion);

        TextTable paging("DRAM page policy " + q_tag);
        paging.setHeader({"config", "latency_ns", "norm", "path_len",
                          "dummy/real", "energy_mJ"});
        for (int i = 0; i < 2; ++i)
            row(paging);
        ctx.emit(paging);

        TextTable timing("timing-channel protection " + q_tag);
        timing.setHeader({"config", "latency_ns", "norm", "path_len",
                          "dummy/real", "energy_mJ"});
        for (int i = 0; i < 2; ++i)
            row(timing);
        ctx.emit(timing);

        TextTable integrity("Merkle integrity " + q_tag);
        integrity.setHeader({"config", "latency_ns", "norm",
                             "path_len", "dummy/real", "energy_mJ"});
        for (int i = 0; i < 2; ++i)
            row(integrity);
        ctx.emit(integrity);

        TextTable polreg("scheduling policy registry (" + mix + ")");
        polreg.setHeader({"config", "latency_ns", "norm", "path_len",
                          "dummy/real", "energy_mJ"});
        for (std::size_t i = 0; i < policy_names.size(); ++i)
            row(polreg);
        ctx.emit(polreg);
    });
}

} // namespace fp::bench
