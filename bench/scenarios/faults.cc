/**
 * @file
 * Faults renderer: resilience sweep — Fork Path throughput and
 * latency vs. injected request-loss rate, on both the DRAM and the
 * network store, with the retry layer recovering every lost request.
 * The loss-rate ladder and backend list live in
 * experiments/faults.json; --fault-loss-rate adds that rate to the
 * row set.
 *
 * Failed points (e.g. a deliberately exhausted retry budget under
 * --retry-max=0) are reported as rows, not fatal: degrading into a
 * result record is the behaviour under test.
 */

#include <algorithm>

#include "scenarios/scenarios.hh"

namespace fp::bench
{

void
registerFaultsScenario()
{
    sim::registerScenario("faults", [](sim::ScenarioContext &ctx) {
        ctx.banner(
            "Resilience: throughput/latency vs request-loss rate",
            "not in the paper; fault-injection study of the "
            "retry/timeout/backoff layer (zero lost user requests "
            "expected at every point)");

        std::vector<double> lossRates =
            ctx.spec.paramNumList("loss-rates");
        if (ctx.base.faults.lossRate > 0.0 &&
            std::find(lossRates.begin(), lossRates.end(),
                      ctx.base.faults.lossRate) == lossRates.end()) {
            lossRates.push_back(ctx.base.faults.lossRate);
            std::sort(lossRates.begin(), lossRates.end());
        }
        std::vector<sim::BackendKind> kinds;
        for (const auto &name :
             ctx.spec.paramStrList("backends"))
            kinds.push_back(sim::parseBackendKind(name));

        auto cfg = sim::withMergeOnly(
            ctx.base,
            static_cast<unsigned>(ctx.spec.paramUint("queue", 64)));
        std::vector<sim::SweepPoint> points;
        for (sim::BackendKind kind : kinds) {
            const char *kind_name =
                kind == sim::BackendKind::dram ? "dram" : "net";
            for (double loss : lossRates) {
                auto c = cfg;
                c.backendKind = kind;
                c.faults = ctx.base.faults;
                c.faults.lossRate = loss;
                c.retry = ctx.base.retry;
                points.push_back(sim::pointFromMix(
                    std::string(kind_name) + " loss=" +
                        TextTable::fmt(loss, 3),
                    c, ctx.mixes[0]));
            }
        }

        // Run raw (not run()): a failed point must become a row,
        // because graceful degradation is the behaviour under test.
        auto outcomes = ctx.runRaw(std::move(points));

        TextTable table(
            "Resilience sweep (" + ctx.mixes[0] + ", L=" +
            std::to_string(ctx.leafLevel()) + ")");
        table.setHeader({"backend", "loss_rate", "exec_ms",
                         "latency_ns", "lost", "retries", "timeouts",
                         "dedup", "exhausted", "fingerprint",
                         "status"});

        std::size_t idx = 0;
        for (sim::BackendKind kind : kinds) {
            const char *kind_name =
                kind == sim::BackendKind::dram ? "dram" : "net";
            // Row 0 of each backend block is the fault-free
            // reference for the fingerprint comparison.
            const sim::SweepOutcome &base = outcomes[idx];
            for (double loss : lossRates) {
                const sim::SweepOutcome &out = outcomes[idx++];
                if (!out.ok) {
                    table.addRow({kind_name, TextTable::fmt(loss, 3),
                                  "-", "-", "-", "-", "-", "-", "-",
                                  "-", "error: " + out.error});
                    continue;
                }
                const sim::RunResult &r = out.result;
                const char *fp_match =
                    !base.ok ? "n/a"
                    : r.reqStreamFingerprint ==
                            base.result.reqStreamFingerprint
                        ? "match"
                        : "differs";
                table.addRow(
                    {kind_name, TextTable::fmt(loss, 3),
                     TextTable::fmt(
                         ticksToNs(r.executionTicks) / 1e6, 2),
                     TextTable::fmt(r.avgLlcLatencyNs, 1),
                     std::to_string(r.faultLossInjected),
                     std::to_string(r.retryAttempts),
                     std::to_string(r.retryTimeouts),
                     std::to_string(r.retryDedupDropped),
                     std::to_string(r.retryExhausted), fp_match,
                     r.failed ? "failed" : "ok"});
            }
        }
        ctx.emit(table);
    });
}

} // namespace fp::bench
