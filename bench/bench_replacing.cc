/**
 * @file
 * The dummy-label-replacing window (paper Section 3.3 / Figure 5):
 * a dummy committed as the merge target of the in-flight refill can
 * be replaced by a real request that arrives before the crossing
 * bucket is issued (Case 3); afterwards it cannot (Cases 1-2).
 *
 * This bench sweeps the arrival offset of a lone real request
 * relative to the previous access and reports, per offset band, the
 * fraction of arrivals that replaced the committed dummy and the
 * request's latency — making the paper's t1-t2 window directly
 * visible.
 *
 * Each offset band is one SweepRunner task (--jobs); every trial
 * seeds its own Rng(t * 31 + offset_ns), so rows — emitted in offset
 * order afterwards — are byte-identical at any job count. Honours
 * --backend=net to probe the window against the network store model.
 */

#include <memory>

#include "dram/dram_backend.hh"
#include "dram/dram_system.hh"
#include "fig_common.hh"
#include "mem/net_backend.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace fp;
using namespace fp::bench;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    const auto trials =
        static_cast<unsigned>(args.getInt("trials", 200));
    const auto leaf =
        static_cast<unsigned>(args.getInt("leaf-level", 16));
    BenchOptions opt = parseOptions(args);

    banner("Dummy label replacing window (Section 3.3)",
           "a real request arriving before the refill passes the "
           "crossing bucket replaces the committed dummy (Case 3); "
           "later arrivals cannot (Cases 1-2)");

    // The registry's forkpath preset (merging + replacing), shrunk to
    // a probe-sized queue with no on-chip cache so every replacement
    // window is exercised against DRAM.
    core::ControllerParams params = core::ControllerParams::forkPath();
    params.oram.leafLevel = leaf;
    params.oram.payloadBytes = 0;
    params.oram.seed = 60221023;
    params.labelQueueSize = 8;
    params.cachePolicy = core::CachePolicy::none;

    TextTable table("replacement probability vs arrival offset");
    table.setHeader({"offset_after_prev_done_ns", "replaced_frac",
                     "avg_latency_ns"});

    // Offset is measured from the completion of the priming access's
    // *read* phase: its write phase (the replacement window) follows.
    const std::vector<Tick> offsets{0u,   100u,  200u,  400u,
                                    800u, 1600u, 3200u, 6400u};
    std::vector<std::vector<std::string>> rows(offsets.size());

    std::vector<sim::SweepTask> tasks;
    for (std::size_t band = 0; band < offsets.size(); ++band) {
        const Tick offset_ns = offsets[band];
        tasks.push_back({"offset=" + std::to_string(offset_ns) + "ns",
                         [&, band, offset_ns] {
            unsigned replaced = 0;
            double latency_sum = 0.0;
            for (unsigned t = 0; t < trials; ++t) {
                EventQueue eq;
                std::unique_ptr<dram::DramSystem> dram_sys;
                std::unique_ptr<mem::MemoryBackend> backend;
                if (opt.backendKind == sim::BackendKind::dram) {
                    dram_sys = std::make_unique<dram::DramSystem>(
                        sim::SimConfig::defaultDram(), eq);
                    backend = std::make_unique<dram::DramBackend>(
                        *dram_sys);
                } else {
                    backend = std::make_unique<mem::NetBackend>(
                        opt.net, eq);
                }
                auto p = params;
                p.oram.seed += t * 7919;
                core::OramController ctrl(p, eq, *backend);
                Rng rng(t * 31 + offset_ns);

                // Prime: one access whose refill commits a dummy.
                bool primed = false;
                ctrl.request(oram::Op::read, rng.uniformInt(1 << 12),
                             {},
                             [&](Tick, const auto &) {
                                 primed = true;
                             });
                eq.runWhile([&] { return !primed; });

                // Inject the probe at the offset.
                std::uint64_t before = ctrl.dummyReplacements();
                bool done = false;
                Tick t0 = 0, t1 = 0;
                eq.scheduleIn(offset_ns * 1000, [&] {
                    t0 = eq.now();
                    ctrl.request(oram::Op::read,
                                 4096 + rng.uniformInt(1 << 12), {},
                                 [&](Tick tt, const auto &) {
                                     t1 = tt;
                                     done = true;
                                 });
                });
                eq.runWhile([&] { return !done; });
                replaced += ctrl.dummyReplacements() > before;
                latency_sum += ticksToNs(t1 - t0);
            }
            rows[band] = {
                TextTable::fmt(std::uint64_t{offset_ns}),
                TextTable::fmt(
                    static_cast<double>(replaced) / trials, 3),
                TextTable::fmt(latency_sum / trials, 0)};
        }});
    }

    sim::SweepRunner runner(opt.sweep);
    for (const auto &out : runner.runTasks(std::move(tasks))) {
        if (!out.ok)
            fp_fatal("offset band '%s' failed: %s", out.name.c_str(),
                     out.error.c_str());
    }
    for (const auto &row : rows)
        table.addRow(row);
    emit(table);
    return 0;
}
