#include "util/event_queue.hh"

#include "util/logging.hh"

namespace fp
{

void
EventQueue::schedule(Tick when, EventFn fn)
{
    fp_assert(when >= now_,
              "scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule new events.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
        ++executed;
    }
    if (now_ < limit && limit != maxTick)
        now_ = limit;
    return executed;
}

std::uint64_t
EventQueue::runWhile(const std::function<bool()> &pred)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && pred()) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
        ++executed;
    }
    return executed;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.fn();
    return true;
}

} // namespace fp
