#include "util/debug.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fp
{

namespace
{

std::uint32_t enabledMask = 0;
bool envParsed = false;

std::uint32_t
parseSpec(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "oram")
            mask |= static_cast<std::uint32_t>(DebugCat::oram);
        else if (item == "sched")
            mask |= static_cast<std::uint32_t>(DebugCat::sched);
        else if (item == "dram")
            mask |= static_cast<std::uint32_t>(DebugCat::dram);
        else if (item == "stash")
            mask |= static_cast<std::uint32_t>(DebugCat::stash);
        else if (item == "cache")
            mask |= static_cast<std::uint32_t>(DebugCat::cache);
        else if (item == "all")
            mask = static_cast<std::uint32_t>(DebugCat::all);
        else if (!item.empty())
            std::fprintf(stderr,
                         "warn: unknown FP_DEBUG category '%s'\n",
                         item.c_str());
    }
    return mask;
}

void
ensureEnvParsed()
{
    if (envParsed)
        return;
    envParsed = true;
    const char *env = std::getenv("FP_DEBUG");
    enabledMask = env ? parseSpec(env) : 0;
}

const Tick *tickSource = nullptr;

const char *
catName(DebugCat cat)
{
    switch (cat) {
      case DebugCat::oram:
        return "oram";
      case DebugCat::sched:
        return "sched";
      case DebugCat::dram:
        return "dram";
      case DebugCat::stash:
        return "stash";
      case DebugCat::cache:
        return "cache";
      default:
        return "?";
    }
}

} // anonymous namespace

bool
debugEnabled(DebugCat cat)
{
    ensureEnvParsed();
    return (enabledMask & static_cast<std::uint32_t>(cat)) != 0;
}

void
setDebugCategories(const std::string &spec)
{
    envParsed = true;
    enabledMask = parseSpec(spec);
}

void
setDebugTickSource(const Tick *now)
{
    tickSource = now;
}

void
debugPrintf(DebugCat cat, const char *fmt, ...)
{
    if (tickSource) {
        std::fprintf(stderr, "%12llu: %s: ",
                     static_cast<unsigned long long>(*tickSource),
                     catName(cat));
    } else {
        std::fprintf(stderr, "%s: ", catName(cat));
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace fp
