#include "util/debug.hh"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fp
{

namespace
{

std::atomic<std::uint32_t> enabledMask{0};
std::atomic<bool> envParsed{false};

std::uint32_t
parseSpec(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "oram")
            mask |= static_cast<std::uint32_t>(DebugCat::oram);
        else if (item == "sched")
            mask |= static_cast<std::uint32_t>(DebugCat::sched);
        else if (item == "dram")
            mask |= static_cast<std::uint32_t>(DebugCat::dram);
        else if (item == "stash")
            mask |= static_cast<std::uint32_t>(DebugCat::stash);
        else if (item == "cache")
            mask |= static_cast<std::uint32_t>(DebugCat::cache);
        else if (item == "all")
            mask = static_cast<std::uint32_t>(DebugCat::all);
        else if (!item.empty())
            std::fprintf(stderr,
                         "warn: unknown FP_DEBUG category '%s'\n",
                         item.c_str());
    }
    return mask;
}

void
ensureEnvParsed()
{
    if (envParsed.load(std::memory_order_acquire))
        return;
    // First caller parses; a racing second caller may briefly read a
    // zero mask (a dropped debug line, never a data race).
    if (envParsed.exchange(true))
        return;
    const char *env = std::getenv("FP_DEBUG");
    enabledMask.store(env ? parseSpec(env) : 0,
                      std::memory_order_release);
}

thread_local const Tick *tickSource = nullptr;

const char *
catName(DebugCat cat)
{
    switch (cat) {
      case DebugCat::oram:
        return "oram";
      case DebugCat::sched:
        return "sched";
      case DebugCat::dram:
        return "dram";
      case DebugCat::stash:
        return "stash";
      case DebugCat::cache:
        return "cache";
      default:
        return "?";
    }
}

} // anonymous namespace

bool
debugEnabled(DebugCat cat)
{
    ensureEnvParsed();
    return (enabledMask.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(cat)) != 0;
}

void
setDebugCategories(const std::string &spec)
{
    envParsed.store(true, std::memory_order_release);
    enabledMask.store(parseSpec(spec), std::memory_order_release);
}

void
setDebugTickSource(const Tick *now)
{
    tickSource = now;
}

void
clearDebugTickSource(const Tick *now)
{
    if (tickSource == now)
        tickSource = nullptr;
}

void
debugPrintf(DebugCat cat, const char *fmt, ...)
{
    char line[1024];
    int off = 0;
    if (tickSource) {
        off = std::snprintf(line, sizeof(line), "%12llu: %s: ",
                            static_cast<unsigned long long>(
                                *tickSource),
                            catName(cat));
    } else {
        off = std::snprintf(line, sizeof(line), "%s: ", catName(cat));
    }
    if (off < 0)
        off = 0;
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(line + off,
                           sizeof(line) - static_cast<size_t>(off) - 1,
                           fmt, ap);
    va_end(ap);
    std::size_t len = static_cast<size_t>(off) +
                      (n > 0 ? static_cast<size_t>(n) : 0);
    len = std::min(len, sizeof(line) - 2);
    line[len] = '\n';
    std::fwrite(line, 1, len + 1, stderr);
}

} // namespace fp
