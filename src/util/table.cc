#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace fp
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            const std::string &cell = row[i];
            bool quote = cell.find_first_of(",\"\n") !=
                         std::string::npos;
            if (i > 0)
                os << ',';
            if (!quote) {
                os << cell;
                continue;
            }
            os << '"';
            for (char c : cell) {
                if (c == '"')
                    os << '"';
                os << c;
            }
            os << '"';
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w;
        total += 2 * (widths.empty() ? 0 : widths.size() - 1);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

} // namespace fp
