/**
 * @file
 * Minimal command-line flag parsing shared by examples and benchmark
 * harnesses: `--name=value`, `--name value`, and boolean `--name`.
 */

#ifndef FP_UTIL_CLI_HH
#define FP_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fp
{

class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace fp

#endif // FP_UTIL_CLI_HH
