#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fp
{

namespace
{

std::atomic<bool> verboseEnabled{true};
thread_local bool recoverableFailures = false;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // anonymous namespace

ScopedRecoverableFailures::ScopedRecoverableFailures()
    : prev_(recoverableFailures)
{
    recoverableFailures = true;
}

ScopedRecoverableFailures::~ScopedRecoverableFailures()
{
    recoverableFailures = prev_;
}

bool
recoverableFailuresEnabled()
{
    return recoverableFailures;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::string full =
        strprintf("panic: %s (%s:%d)", msg.c_str(), file, line);
    if (recoverableFailures)
        throw SimFailure(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::string full =
        strprintf("fatal: %s (%s:%d)", msg.c_str(), file, line);
    if (recoverableFailures)
        throw SimFailure(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace fp
