/**
 * @file
 * Minimal JSON support: a streaming document writer for exporting run
 * results, traces and statistics, plus a small recursive-descent
 * parser (JsonValue) used by round-trip tests and trace validation.
 * Neither sits on a simulation hot path.
 */

#ifndef FP_UTIL_JSON_HH
#define FP_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fp
{

/**
 * Streaming JSON builder with explicit begin/end nesting. Produces
 * compact output; keys are escaped; doubles render with enough
 * precision to round-trip.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /** Convenience: key + value. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** The finished document (all scopes must be closed). */
    std::string str() const;

    static std::string escape(const std::string &s);

  private:
    void preValue();

    std::string out_;
    /** Per-nesting-level "needs comma" flags; true after a value. */
    std::vector<bool> needComma_;
    bool pendingKey_ = false;
    int depth_ = 0;
};

/**
 * A parsed JSON document node. Numbers are held as doubles (every
 * quantity the simulator exports fits a double exactly); object keys
 * keep their source order so parse -> serialise round-trips stay
 * byte-comparable.
 */
class JsonValue
{
  public:
    enum class Type { null, boolean, number, string, array, object };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::null; }
    bool isObject() const { return type_ == Type::object; }
    bool isArray() const { return type_ == Type::array; }
    bool isNumber() const { return type_ == Type::number; }
    bool isString() const { return type_ == Type::string; }
    bool isBool() const { return type_ == Type::boolean; }

    /** Typed accessors; panic on type mismatch (test/tool code). */
    bool asBool() const;
    double asNumber() const;
    std::uint64_t asUint64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * Byte offset of this node's first character in the parsed
     * document (0 for values built outside the parser). Consumers
     * that validate documents semantically (e.g. experiment-spec
     * parsing) turn it into a line number via jsonLineOf for
     * human-facing error messages.
     */
    std::size_t sourceOffset() const { return srcOffset_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** Object member access; panics when absent. */
    const JsonValue &at(const std::string &key) const;
    /** Array element access; panics when out of range. */
    const JsonValue &at(std::size_t index) const;
    std::size_t size() const;

    /**
     * Parse a complete JSON document (trailing whitespace allowed,
     * trailing garbage is an error). Malformed input panics with the
     * byte offset — callers are tests and offline tools, for which
     * loud failure is the right behaviour.
     */
    static JsonValue parse(const std::string &text);

  private:
    Type type_ = Type::null;
    bool bool_ = false;
    double num_ = 0.0;
    std::size_t srcOffset_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;

    friend class JsonParser;
};

/** 1-based line number of byte @p offset within @p text (offsets past
 *  the end land on the last line; an empty text is line 1). */
std::size_t jsonLineOf(const std::string &text, std::size_t offset);

} // namespace fp

#endif // FP_UTIL_JSON_HH
