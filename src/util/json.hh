/**
 * @file
 * Minimal JSON document writer, enough to export run results and
 * statistics for external plotting. Writer-only by design: the
 * simulator never consumes JSON, so no parser is shipped.
 */

#ifndef FP_UTIL_JSON_HH
#define FP_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fp
{

/**
 * Streaming JSON builder with explicit begin/end nesting. Produces
 * compact output; keys are escaped; doubles render with enough
 * precision to round-trip.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside an object; must be followed by a value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /** Convenience: key + value. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** The finished document (all scopes must be closed). */
    std::string str() const;

    static std::string escape(const std::string &s);

  private:
    void preValue();

    std::string out_;
    /** Per-nesting-level "needs comma" flags; true after a value. */
    std::vector<bool> needComma_;
    bool pendingKey_ = false;
    int depth_ = 0;
};

} // namespace fp

#endif // FP_UTIL_JSON_HH
