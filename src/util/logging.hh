/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a core dump / debugger can inspect state.
 *  - fatal():  the user asked for something impossible (bad
 *              configuration); exits with status 1.
 *  - warn():   something is probably not what the user intended but
 *              the simulation can continue.
 *  - inform(): plain status output.
 *
 * All functions accept printf-style format strings.
 */

#ifndef FP_UTIL_LOGGING_HH
#define FP_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace fp
{

/**
 * Thrown by panic()/fatal() instead of terminating the process while
 * a ScopedRecoverableFailures guard is live on the calling thread.
 * Carries the formatted message including the source location.
 */
class SimFailure : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard: while alive, fp_assert/fp_panic/fp_fatal on this thread
 * throw SimFailure instead of abort()/exit(1). Sweep workers install
 * one per point so a failing configuration produces an error record
 * instead of killing every other in-flight run. Guards nest; the
 * previous mode is restored on destruction.
 */
class ScopedRecoverableFailures
{
  public:
    ScopedRecoverableFailures();
    ~ScopedRecoverableFailures();
    ScopedRecoverableFailures(const ScopedRecoverableFailures &) =
        delete;
    ScopedRecoverableFailures &
    operator=(const ScopedRecoverableFailures &) = delete;

  private:
    bool prev_;
};

/** True iff failures on this thread currently throw SimFailure. */
bool recoverableFailuresEnabled();

/** Print "panic: ..." with source location and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "fatal: ..." and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "warn: ..." to stderr. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "info: ..." to stderr. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output globally (benches silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fp

#define fp_panic(...) ::fp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fp_fatal(...) ::fp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fp_warn(...) ::fp::warnImpl(__VA_ARGS__)
#define fp_inform(...) ::fp::informImpl(__VA_ARGS__)

/**
 * Invariant check that stays on in release builds. Use for conditions
 * that indicate simulator bugs; the cost is negligible next to the
 * event loop.
 */
#define fp_assert(cond, ...)                                          \
    do {                                                              \
        if (!(cond)) {                                                \
            ::fp::panicImpl(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                             \
    } while (0)

#endif // FP_UTIL_LOGGING_HH
