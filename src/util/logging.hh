/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a core dump / debugger can inspect state.
 *  - fatal():  the user asked for something impossible (bad
 *              configuration); exits with status 1.
 *  - warn():   something is probably not what the user intended but
 *              the simulation can continue.
 *  - inform(): plain status output.
 *
 * All functions accept printf-style format strings.
 */

#ifndef FP_UTIL_LOGGING_HH
#define FP_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace fp
{

/** Print "panic: ..." with source location and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "fatal: ..." and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "warn: ..." to stderr. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "info: ..." to stderr. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output globally (benches silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace fp

#define fp_panic(...) ::fp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fp_fatal(...) ::fp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fp_warn(...) ::fp::warnImpl(__VA_ARGS__)
#define fp_inform(...) ::fp::informImpl(__VA_ARGS__)

/**
 * Invariant check that stays on in release builds. Use for conditions
 * that indicate simulator bugs; the cost is negligible next to the
 * event loop.
 */
#define fp_assert(cond, ...)                                          \
    do {                                                              \
        if (!(cond)) {                                                \
            ::fp::panicImpl(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                             \
    } while (0)

#endif // FP_UTIL_LOGGING_HH
