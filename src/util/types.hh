/**
 * @file
 * Fundamental scalar types and time-base constants shared by every
 * subsystem of the Fork Path ORAM simulator.
 *
 * The simulator uses a gem5-style absolute time base: one Tick equals
 * one picosecond. Components with their own clocks (CPU cores, the
 * ORAM controller, the DDR3 bus) convert to Ticks through their clock
 * period expressed in Ticks.
 */

#ifndef FP_UTIL_TYPES_HH
#define FP_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace fp
{

/** Absolute simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some component-local clock domain. */
using Cycle = std::uint64_t;

/** Program (logical) address of a memory block, in block units. */
using BlockAddr = std::uint64_t;

/** Byte address, used at the DRAM boundary. */
using Addr = std::uint64_t;

/** Leaf label of an ORAM tree path, in [0, 2^L). */
using LeafLabel = std::uint64_t;

/** Index of a bucket in heap order: root = 0, children of i are
 *  2i+1 and 2i+2. */
using BucketIndex = std::uint64_t;

/** Sentinel for "no tick" / "never". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid block address (also used by dummy blocks). */
inline constexpr BlockAddr invalidBlockAddr =
    std::numeric_limits<BlockAddr>::max();

/** Sentinel for an invalid leaf label. */
inline constexpr LeafLabel invalidLeaf =
    std::numeric_limits<LeafLabel>::max();

/** Ticks per second: 1 Tick = 1 ps. */
inline constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** Convert a frequency in MHz to a clock period in Ticks. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz);
}

/** Convert nanoseconds to Ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * 1e3);
}

/** Convert Ticks to nanoseconds (for reporting). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

} // namespace fp

#endif // FP_UTIL_TYPES_HH
