/**
 * @file
 * Deterministic, seedable pseudo-random number generation for the
 * simulator.
 *
 * We use xoshiro256** (Blackman & Vigna) rather than std::mt19937
 * because it is faster, has a tiny state, and gives us identical
 * streams across standard libraries, which keeps experiment output
 * reproducible bit-for-bit.
 *
 * Note these generators drive *simulation* randomness (leaf remapping,
 * synthetic workloads). The crypto substrate has its own keystream.
 */

#ifndef FP_UTIL_RANDOM_HH
#define FP_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace fp
{

/**
 * One step of the splitmix64 output function over state @p x (the
 * golden-gamma increment is applied first, so splitmix64(x) is the
 * value a splitmix64 stream seeded at x would emit next). The map is
 * bijective on 64-bit values, which makes it the tool of choice for
 * deriving uncorrelated child seeds: distinct inputs are guaranteed
 * distinct outputs (core::ShardedOram leans on this for per-shard
 * seed derivation).
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * xoshiro256** generator. Satisfies the essentials of
 * UniformRandomBitGenerator so it can be used with <random>
 * distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Geometric-like positive gap: returns a sample of a geometric
     * distribution with mean @p mean (>= 1), used for inter-arrival
     * gaps in workload generators.
     */
    std::uint64_t geometric(double mean);

    /** Fork a child generator with an independent-looking stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(alpha) sampler over [0, n). Uses the classic rejection-free
 * inverse-CDF over precomputed cumulative weights; memory O(n), so the
 * workload generators keep n to the working-set block count.
 */
class ZipfSampler
{
  public:
    /**
     * @param n      Universe size (> 0).
     * @param alpha  Skew; 0 degenerates to uniform.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t universe() const { return n_; }

  private:
    std::uint64_t n_;
    std::vector<double> cdf_;
};

} // namespace fp

#endif // FP_UTIL_RANDOM_HH
