/**
 * @file
 * Small bit-manipulation helpers used throughout the tree-geometry and
 * DRAM address-mapping code.
 */

#ifndef FP_UTIL_BITOPS_HH
#define FP_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"

namespace fp
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Number of bits needed to represent @p v (0 -> 0). */
constexpr unsigned
bitWidth(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v));
}

/** floor(log2(v)); requires v > 0. */
inline unsigned
log2Floor(std::uint64_t v)
{
    fp_assert(v > 0, "log2Floor(0)");
    return bitWidth(v) - 1;
}

/** ceil(log2(v)); requires v > 0. */
inline unsigned
log2Ceil(std::uint64_t v)
{
    fp_assert(v > 0, "log2Ceil(0)");
    return v == 1 ? 0 : bitWidth(v - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
extractBits(std::uint64_t v, unsigned lo, unsigned len)
{
    if (len == 0)
        return 0;
    if (len >= 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << len) - 1);
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace fp

#endif // FP_UTIL_BITOPS_HH
