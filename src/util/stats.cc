#include "util/stats.hh"

#include <algorithm>
#include <iomanip>

#include "util/logging.hh"

namespace fp
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

double
Average::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

void
Average::reset()
{
    sum_ = min_ = max_ = 0.0;
    count_ = 0;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    fp_assert(num_buckets > 0 && bucket_width > 0.0,
              "Histogram: bad shape");
}

void
Histogram::sample(double v)
{
    avg_.sample(v);
    if (v < 0.0) {
        ++buckets_.front();
        return;
    }
    auto idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

double
Histogram::percentile(double frac) const
{
    fp_assert(frac >= 0.0 && frac <= 1.0, "percentile: bad fraction");
    std::uint64_t total = avg_.count();
    if (total == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(frac *
                                             static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (static_cast<double>(i) + 1.0) * bucketWidth_;
    }
    return avg_.max();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    avg_.reset();
}

void
StatGroup::regCounter(const std::string &name, const Counter &c,
                      const std::string &desc)
{
    entries_.push_back({Entry::Kind::counter, name, desc, &c});
}

void
StatGroup::regAverage(const std::string &name, const Average &a,
                      const std::string &desc)
{
    entries_.push_back({Entry::Kind::average, name, desc, &a});
}

void
StatGroup::regHistogram(const std::string &name, const Histogram &h,
                        const std::string &desc)
{
    entries_.push_back({Entry::Kind::histogram, name, desc, &h});
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << " ";
        switch (e.kind) {
          case Entry::Kind::counter:
            os << static_cast<const Counter *>(e.ptr)->value();
            break;
          case Entry::Kind::average: {
            const auto *a = static_cast<const Average *>(e.ptr);
            os << a->mean() << " (n=" << a->count() << ")";
            break;
          }
          case Entry::Kind::histogram: {
            const auto *h = static_cast<const Histogram *>(e.ptr);
            os << "mean=" << h->mean() << " p99="
               << h->percentile(0.99) << " max=" << h->max()
               << " (n=" << h->count() << ")";
            break;
          }
        }
        os << "  # " << e.desc << "\n";
    }
}

} // namespace fp
