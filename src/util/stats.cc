#include "util/stats.hh"

#include <algorithm>
#include <iomanip>

#include "util/json.hh"
#include "util/logging.hh"

namespace fp
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

double
Average::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

void
Average::reset()
{
    sum_ = min_ = max_ = 0.0;
    count_ = 0;
}

void
Average::merge(const Average &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    sum_ += other.sum_;
    count_ += other.count_;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    fp_assert(num_buckets > 0 && bucket_width > 0.0,
              "Histogram: bad shape");
}

void
Histogram::sample(double v)
{
    avg_.sample(v);
    if (v < 0.0) {
        // Out-of-domain sample: tracked separately so bucket 0 keeps
        // meaning "in [0, width)".
        ++underflow_;
        return;
    }
    auto idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

double
Histogram::percentile(double frac) const
{
    fp_assert(frac >= 0.0 && frac <= 1.0, "percentile: bad fraction");
    std::uint64_t total = avg_.count();
    if (total == 0)
        return 0.0;
    if (frac >= 1.0)
        return avg_.max();
    auto target = static_cast<std::uint64_t>(frac *
                                             static_cast<double>(total));
    // The 0th percentile is the minimum itself, not a bucket edge;
    // likewise any fraction that resolves entirely into the underflow
    // region cannot do better than the tracked exact minimum.
    if (target <= underflow_)
        return avg_.min();
    std::uint64_t seen = underflow_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (seen + buckets_[i] >= target) {
            // Interpolate inside the containing bucket: the rank
            // advances linearly through the bucket's samples, so a
            // tail quantile (p99.9) lands between edges instead of
            // snapping to the next one. Clamped to the exact extrema
            // so sparse buckets cannot report values outside the
            // observed range.
            double within = static_cast<double>(target - seen) /
                            static_cast<double>(buckets_[i]);
            double v =
                (static_cast<double>(i) + within) * bucketWidth_;
            return std::min(std::max(v, avg_.min()), avg_.max());
        }
        seen += buckets_[i];
    }
    return avg_.max();
}

void
Histogram::merge(const Histogram &other)
{
    fp_assert(buckets_.size() == other.buckets_.size() &&
                  bucketWidth_ == other.bucketWidth_,
              "Histogram::merge: shape mismatch (%zu x %g vs %zu x "
              "%g)",
              buckets_.size(), bucketWidth_, other.buckets_.size(),
              other.bucketWidth_);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    underflow_ += other.underflow_;
    avg_.merge(other.avg_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    underflow_ = 0;
    avg_.reset();
}

namespace
{
thread_local std::string currentStatNamePrefix;
} // anonymous namespace

StatNameScope::StatNameScope(const std::string &prefix)
    : prev_(currentStatNamePrefix)
{
    currentStatNamePrefix += prefix;
}

StatNameScope::~StatNameScope()
{
    currentStatNamePrefix = prev_;
}

const std::string &
StatNameScope::current()
{
    return currentStatNamePrefix;
}

StatGroup::StatGroup(std::string name)
    : name_(StatNameScope::current() + std::move(name)),
      registry_(StatRegistry::current())
{
    // The registry is captured at construction so the group
    // unregisters from the same place even if the thread's current
    // registry changes before destruction.
    if (registry_)
        registry_->add(this);
}

StatGroup::~StatGroup()
{
    if (registry_)
        registry_->remove(this);
}

void
StatGroup::regCounter(const std::string &name, const Counter &c,
                      const std::string &desc)
{
    entries_.push_back({Entry::Kind::counter, name, desc, &c, {}});
}

void
StatGroup::regAverage(const std::string &name, const Average &a,
                      const std::string &desc)
{
    entries_.push_back({Entry::Kind::average, name, desc, &a, {}});
}

void
StatGroup::regHistogram(const std::string &name, const Histogram &h,
                        const std::string &desc)
{
    entries_.push_back({Entry::Kind::histogram, name, desc, &h, {}});
}

void
StatGroup::regGauge(const std::string &name,
                    std::function<double()> fn,
                    const std::string &desc)
{
    entries_.push_back(
        {Entry::Kind::gauge, name, desc, nullptr, std::move(fn)});
}

void
StatGroup::print(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << std::left << std::setw(40) << (name_ + "." + e.name)
           << " ";
        switch (e.kind) {
          case Entry::Kind::counter:
            os << static_cast<const Counter *>(e.ptr)->value();
            break;
          case Entry::Kind::average: {
            const auto *a = static_cast<const Average *>(e.ptr);
            os << a->mean() << " (n=" << a->count() << ")";
            break;
          }
          case Entry::Kind::histogram: {
            const auto *h = static_cast<const Histogram *>(e.ptr);
            os << "mean=" << h->mean() << " p99="
               << h->percentile(0.99) << " max=" << h->max()
               << " (n=" << h->count() << ")";
            break;
          }
          case Entry::Kind::gauge:
            os << e.fn();
            break;
        }
        os << "  # " << e.desc << "\n";
    }
}

void
StatGroup::writeJsonFields(JsonWriter &w) const
{
    for (const auto &e : entries_) {
        w.key(name_ + "." + e.name);
        switch (e.kind) {
          case Entry::Kind::counter:
            w.value(static_cast<const Counter *>(e.ptr)->value());
            break;
          case Entry::Kind::average: {
            const auto *a = static_cast<const Average *>(e.ptr);
            w.beginObject()
                .field("mean", a->mean())
                .field("min", a->min())
                .field("max", a->max())
                .field("count", a->count())
                .endObject();
            break;
          }
          case Entry::Kind::histogram: {
            const auto *h = static_cast<const Histogram *>(e.ptr);
            w.beginObject()
                .field("mean", h->mean())
                .field("max", h->max())
                .field("count", h->count())
                .field("bucket_width", h->bucketWidth())
                .field("underflow", h->underflow())
                .field("overflow", h->overflow());
            w.key("buckets").beginArray();
            for (std::uint64_t b : h->buckets())
                w.value(b);
            w.endArray().endObject();
            break;
          }
          case Entry::Kind::gauge:
            w.value(e.fn());
            break;
        }
    }
}

namespace
{
thread_local StatRegistry *currentRegistry = nullptr;
} // anonymous namespace

StatRegistry *
StatRegistry::current()
{
    return currentRegistry;
}

StatRegistry::Scope::Scope(StatRegistry &reg) : prev_(currentRegistry)
{
    currentRegistry = &reg;
}

StatRegistry::Scope::~Scope()
{
    currentRegistry = prev_;
}

void
StatRegistry::add(StatGroup *g)
{
    groups_.push_back(g);
}

void
StatRegistry::remove(StatGroup *g)
{
    groups_.erase(std::remove(groups_.begin(), groups_.end(), g),
                  groups_.end());
}

void
StatRegistry::forEach(
    const std::function<void(const StatGroup &)> &fn) const
{
    for (const StatGroup *g : groups_)
        fn(*g);
}

} // namespace fp
