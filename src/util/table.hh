/**
 * @file
 * ASCII table rendering for the benchmark harnesses. Each bench prints
 * the rows/series of its paper figure through a TextTable so the
 * output is diff-able and readable in a terminal.
 */

#ifndef FP_UTIL_TABLE_HH
#define FP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fp
{

class TextTable
{
  public:
    /** Optional caption printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a preformatted row. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision decimal places. */
    static std::string fmt(double v, int precision = 3);

    /** Format an integer. */
    static std::string fmt(std::uint64_t v);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-style quoting), header first. */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fp

#endif // FP_UTIL_TABLE_HH
