#include "util/json.hh"

#include <cstdio>

#include "util/logging.hh"

namespace fp
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    out_ += '{';
    needComma_.push_back(false);
    ++depth_;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    fp_assert(depth_ > 0, "JsonWriter: endObject at top level");
    out_ += '}';
    needComma_.pop_back();
    --depth_;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    out_ += '[';
    needComma_.push_back(false);
    ++depth_;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    fp_assert(depth_ > 0, "JsonWriter: endArray at top level");
    out_ += ']';
    needComma_.pop_back();
    --depth_;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    fp_assert(!pendingKey_, "JsonWriter: key after key");
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    fp_assert(depth_ == 0 && !pendingKey_,
              "JsonWriter: unbalanced document");
    return out_;
}

} // namespace fp
