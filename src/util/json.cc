#include "util/json.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace fp
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    out_ += '{';
    needComma_.push_back(false);
    ++depth_;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    fp_assert(depth_ > 0, "JsonWriter: endObject at top level");
    out_ += '}';
    needComma_.pop_back();
    --depth_;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    out_ += '[';
    needComma_.push_back(false);
    ++depth_;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    fp_assert(depth_ > 0, "JsonWriter: endArray at top level");
    out_ += ']';
    needComma_.pop_back();
    --depth_;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    fp_assert(!pendingKey_, "JsonWriter: key after key");
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    preValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    // Shortest representation that parses back to the same double:
    // most values fit 15 significant digits; fall back to the 17
    // digits that are always sufficient.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    fp_assert(depth_ == 0 && !pendingKey_,
              "JsonWriter: unbalanced document");
    return out_;
}

// --- parser ---------------------------------------------------------------

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        fp_assert(pos_ == text_.size(),
                  "JSON: trailing garbage at offset %zu", pos_);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        fp_assert(pos_ < text_.size(),
                  "JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fp_assert(peek() == c,
                  "JSON: expected '%c' at offset %zu, got '%c'", c,
                  pos_, text_[pos_]);
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        const std::size_t start = pos_;
        char c = peek();
        switch (c) {
          case '{': {
            JsonValue v = object();
            v.srcOffset_ = start;
            return v;
          }
          case '[': {
            JsonValue v = array();
            v.srcOffset_ = start;
            return v;
          }
          case '"': {
            JsonValue v;
            v.type_ = JsonValue::Type::string;
            v.str_ = string();
            v.srcOffset_ = start;
            return v;
          }
          case 't': {
            fp_assert(consumeLiteral("true"),
                      "JSON: bad literal at offset %zu", pos_);
            JsonValue v;
            v.type_ = JsonValue::Type::boolean;
            v.bool_ = true;
            v.srcOffset_ = start;
            return v;
          }
          case 'f': {
            fp_assert(consumeLiteral("false"),
                      "JSON: bad literal at offset %zu", pos_);
            JsonValue v;
            v.type_ = JsonValue::Type::boolean;
            v.bool_ = false;
            v.srcOffset_ = start;
            return v;
          }
          case 'n': {
            fp_assert(consumeLiteral("null"),
                      "JSON: bad literal at offset %zu", pos_);
            JsonValue v;
            v.srcOffset_ = start;
            return v;
          }
          default: {
            JsonValue v = number();
            v.srcOffset_ = start;
            return v;
          }
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.type_ = JsonValue::Type::object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.obj_.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.type_ = JsonValue::Type::array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr_.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                fp_assert(pos_ + 4 <= text_.size(),
                          "JSON: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fp_panic("JSON: bad \\u digit at offset %zu",
                                 pos_ - 1);
                }
                // The writer only emits \u for control characters;
                // decode the BMP subset as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fp_panic("JSON: bad escape '\\%c' at offset %zu", esc,
                         pos_ - 1);
            }
        }
    }

    JsonValue
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        fp_assert(pos_ > start, "JSON: bad value at offset %zu", start);
        char *end = nullptr;
        std::string token = text_.substr(start, pos_ - start);
        double d = std::strtod(token.c_str(), &end);
        fp_assert(end && *end == '\0',
                  "JSON: bad number '%s' at offset %zu", token.c_str(),
                  start);
        JsonValue v;
        v.type_ = JsonValue::Type::number;
        v.num_ = d;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).document();
}

std::size_t
jsonLineOf(const std::string &text, std::size_t offset)
{
    std::size_t line = 1;
    const std::size_t end = std::min(offset, text.size());
    for (std::size_t i = 0; i < end; ++i) {
        if (text[i] == '\n')
            ++line;
    }
    return line;
}

bool
JsonValue::asBool() const
{
    fp_assert(type_ == Type::boolean, "JsonValue: not a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    fp_assert(type_ == Type::number, "JsonValue: not a number");
    return num_;
}

std::uint64_t
JsonValue::asUint64() const
{
    double d = asNumber();
    fp_assert(d >= 0.0, "JsonValue: negative where uint expected");
    return static_cast<std::uint64_t>(d);
}

const std::string &
JsonValue::asString() const
{
    fp_assert(type_ == Type::string, "JsonValue: not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    fp_assert(type_ == Type::array, "JsonValue: not an array");
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    fp_assert(type_ == Type::object, "JsonValue: not an object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    fp_assert(v != nullptr, "JsonValue: missing key '%s'",
              key.c_str());
    return *v;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    fp_assert(type_ == Type::array && index < arr_.size(),
              "JsonValue: index %zu out of range", index);
    return arr_[index];
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::array)
        return arr_.size();
    if (type_ == Type::object)
        return obj_.size();
    return 0;
}

} // namespace fp
