/**
 * @file
 * Statistical test helpers shared by the security test suite and the
 * adversary_view example: chi-square uniformity over binned samples
 * and lag-k serial correlation. Critical values for common
 * degrees-of-freedom are provided so call sites stay readable.
 */

#ifndef FP_UTIL_STAT_TESTS_HH
#define FP_UTIL_STAT_TESTS_HH

#include <cstdint>
#include <vector>

namespace fp
{

/**
 * Chi-square statistic of observed bin counts against a uniform
 * expectation. Degrees of freedom = counts.size() - 1.
 */
double chiSquareUniform(const std::vector<std::uint64_t> &counts);

/**
 * Bin samples by their top bits and return the chi-square statistic
 * against uniformity.
 * @param samples    Values in [0, 2^value_bits).
 * @param value_bits Width of the sample domain.
 * @param bin_bits   log2(number of bins).
 */
double chiSquareTopBits(const std::vector<std::uint64_t> &samples,
                        unsigned value_bits, unsigned bin_bits = 4);

/**
 * 99.9th-percentile chi-square critical value for @p dof degrees of
 * freedom (selected table entries; interpolated between them).
 */
double chiSquareCritical999(unsigned dof);

/**
 * Lag-k sample autocorrelation of a sequence; near 0 for an
 * independent stream.
 */
double serialCorrelation(const std::vector<double> &xs,
                         unsigned lag = 1);

} // namespace fp

#endif // FP_UTIL_STAT_TESTS_HH
