/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) entries.
 * Events scheduled for the same tick execute in scheduling order, which
 * makes the simulation fully deterministic for a given seed.
 *
 * The kernel is intentionally minimal: components capture what they
 * need in the callback. Cancellation is handled by generation counters
 * inside components rather than by removing queue entries (removal
 * from a binary heap is more expensive than letting a stale event fire
 * into a no-op).
 */

#ifndef FP_UTIL_EVENT_QUEUE_HH
#define FP_UTIL_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace fp
{

/** The event callback type. */
using EventFn = std::function<void()>;

class EventQueue
{
  public:
    /**
     * Schedule @p fn to run at absolute time @p when.
     * @p when must not be in the past.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delta ticks from now. */
    void scheduleIn(Tick delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Stable pointer to the clock (for the debug-trace prefix). */
    const Tick *nowPtr() const { return &now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /**
     * Execute events until the queue drains or @p limit is reached
     * (events at exactly @p limit still run).
     * @return the number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Execute events while @p pred() holds (checked between events)
     * and the queue is non-empty.
     * @return the number of events executed.
     */
    std::uint64_t runWhile(const std::function<bool()> &pred);

    /** Execute exactly one event if available. @return true if run. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace fp

#endif // FP_UTIL_EVENT_QUEUE_HH
