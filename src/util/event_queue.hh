/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) entries.
 * Events scheduled for the same tick execute in scheduling order, which
 * makes the simulation fully deterministic for a given seed.
 *
 * The kernel is intentionally minimal: components capture what they
 * need in the callback. Cancellation is handled by generation counters
 * inside components rather than by removing queue entries (removal
 * from a binary heap is more expensive than letting a stale event fire
 * into a no-op).
 */

#ifndef FP_UTIL_EVENT_QUEUE_HH
#define FP_UTIL_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace fp
{

/** The event callback type. */
using EventFn = std::function<void()>;

class EventQueue
{
  public:
    /**
     * Schedule @p fn to run at absolute time @p when.
     * @p when must not be in the past.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delta ticks from now. */
    void scheduleIn(Tick delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Stable pointer to the clock (for the debug-trace prefix). */
    const Tick *nowPtr() const { return &now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /**
     * Execute events until the queue drains or @p limit is reached
     * (events at exactly @p limit still run).
     * @return the number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Execute events while @p pred() holds (checked between events)
     * and the queue is non-empty.
     * @return the number of events executed.
     */
    std::uint64_t runWhile(const std::function<bool()> &pred);

    /** Execute exactly one event if available. @return true if run. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * A cancellable, re-armable one-shot timer over the EventQueue,
 * implementing the generation-counter cancellation idiom the kernel
 * comment above prescribes: cancel()/re-arm() bump a generation, and
 * the already-queued event fires into a no-op when its generation is
 * stale. Queue entries are never removed.
 *
 * Semantics (pinned by tests/test_util.cc):
 *  - arm() on an armed timer replaces the pending callback (implicit
 *    cancel + re-arm), including re-arming for the same tick;
 *  - cancel() before the fire tick suppresses the callback entirely;
 *  - cancel() *at* the fire tick, from an event scheduled before the
 *    timer was armed, also suppresses it (same-tick FIFO: whichever
 *    of fire/cancel was scheduled first wins, deterministically);
 *  - the timer disarms itself just before the callback runs, so the
 *    callback may re-arm the same timer (backoff chains).
 *
 * State lives behind a shared_ptr so a Timer may be moved (e.g. held
 * in a container of pending requests) while queued closures keep a
 * safe handle; destroying the Timer cancels it.
 */
class Timer
{
  public:
    explicit Timer(EventQueue &eq)
        : st_(std::make_shared<State>(State{&eq, 0, false}))
    {
    }

    Timer(Timer &&) = default;
    Timer &operator=(Timer &&) = default;
    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

    ~Timer()
    {
        if (st_)
            cancel();
    }

    /** Arm (or re-arm) to fire @p fn at absolute tick @p when. */
    void
    arm(Tick when, EventFn fn)
    {
        auto st = st_;
        const std::uint64_t gen = ++st->gen;
        st->armed = true;
        st->eq->schedule(when, [st, gen, fn = std::move(fn)] {
            if (st->gen != gen)
                return; // cancelled or re-armed since
            st->armed = false;
            fn();
        });
    }

    /** Arm (or re-arm) to fire @p fn @p delta ticks from now. */
    void
    armIn(Tick delta, EventFn fn)
    {
        arm(st_->eq->now() + delta, std::move(fn));
    }

    /** Suppress the pending callback, if any. Idempotent. */
    void
    cancel()
    {
        ++st_->gen;
        st_->armed = false;
    }

    bool armed() const { return st_->armed; }

  private:
    struct State
    {
        EventQueue *eq;
        std::uint64_t gen;
        bool armed;
    };

    std::shared_ptr<State> st_;
};

} // namespace fp

#endif // FP_UTIL_EVENT_QUEUE_HH
