/**
 * @file
 * Lightweight statistics primitives, loosely modelled on gem5's stats
 * package: scalar counters, running averages, histograms and derived
 * gauges, grouped into named StatGroup objects that can render
 * themselves as text or JSON.
 *
 * Every component of the simulator owns a StatGroup; the experiment
 * runner collects the numbers it needs for a figure directly via the
 * typed accessors (no string lookups on the hot path). Groups
 * additionally self-register in the *current* StatRegistry — an
 * instance installed on this thread via StatRegistry::Scope — so the
 * observability layer (obs::IntervalStats) can snapshot every live
 * component without explicit wiring. There is deliberately no
 * process-global registry: each sim::System owns one, which is what
 * lets many Systems run concurrently without sharing mutable state.
 */

#ifndef FP_UTIL_STATS_HH
#define FP_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace fp
{

class JsonWriter;

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max of a stream of samples. */
class Average
{
  public:
    void sample(double v);
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    void reset();

    /** Fold @p other in, as if its samples had been taken here. */
    void merge(const Average &other);

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-width linear histogram with underflow and overflow buckets;
 * also tracks the exact mean so bucketing does not distort averages.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets  Number of linear buckets.
     * @param bucket_width Width of each bucket.
     */
    Histogram(std::size_t num_buckets = 32, double bucket_width = 1.0);

    void sample(double v);
    std::uint64_t count() const { return avg_.count(); }
    double mean() const { return avg_.mean(); }
    double min() const { return avg_.min(); }
    double max() const { return avg_.max(); }
    /**
     * Value below which the given fraction of samples fall.
     * percentile(0.0) is the exact minimum, percentile(1.0) the
     * exact maximum; interior fractions interpolate linearly within
     * the containing bucket (so tail quantiles like p99.9 resolve to
     * sub-bucket precision instead of collapsing onto bucket edges).
     */
    double percentile(double frac) const;

    /**
     * Fold @p other in, as if its samples had been taken here. Both
     * histograms must share the same shape (bucket count and width);
     * used to combine per-thread histograms after a SweepRunner
     * --jobs fan-out.
     */
    void merge(const Histogram &other);
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    /** Samples below zero (kept out of bucket 0). */
    std::uint64_t underflow() const { return underflow_; }
    double bucketWidth() const { return bucketWidth_; }
    void reset();

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t underflow_ = 0;
    Average avg_;
};

/**
 * RAII name qualifier for StatGroups constructed on this thread: while
 * a scope is active, every new StatGroup's name is prefixed with the
 * scope's string (scopes nest by concatenation). This is how replicated
 * component stacks — e.g. the per-shard controllers and backends under
 * core::ShardedOram — keep their group names ("s0.oram", "s1.oram", ...)
 * distinct in one StatRegistry without threading a name parameter
 * through every component constructor. Interval-stats snapshots require
 * globally unique "<group>.<stat>" JSON keys, which this guarantees.
 */
class StatNameScope
{
  public:
    explicit StatNameScope(const std::string &prefix);
    ~StatNameScope();
    StatNameScope(const StatNameScope &) = delete;
    StatNameScope &operator=(const StatNameScope &) = delete;

    /** Prefix applied to StatGroup names on this thread ("" if none). */
    static const std::string &current();

  private:
    std::string prev_;
};

/**
 * A named collection of statistics belonging to one component.
 * Registration is by reference: the group does not own the stats, it
 * only knows how to print them. Gauges are the exception: they are
 * stored callables sampling instantaneous state (queue depth, stash
 * occupancy) at render time.
 *
 * Every live group is listed in the registry that was current on the
 * constructing thread (if any); groups are therefore deliberately
 * non-copyable (a copy would double-register).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void regCounter(const std::string &name, const Counter &c,
                    const std::string &desc);
    void regAverage(const std::string &name, const Average &a,
                    const std::string &desc);
    void regHistogram(const std::string &name, const Histogram &h,
                      const std::string &desc);
    /** Register an instantaneous value, sampled at render time. */
    void regGauge(const std::string &name,
                  std::function<double()> fn, const std::string &desc);

    /** Render all registered stats as "group.name value # desc". */
    void print(std::ostream &os) const;

    /**
     * Emit every stat as a field of the (already open) JSON object:
     * counters and gauges as scalars, averages and histograms as
     * nested objects. Keys are "<group>.<stat>".
     */
    void writeJsonFields(JsonWriter &w) const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        enum class Kind { counter, average, histogram, gauge } kind;
        std::string name;
        std::string desc;
        const void *ptr = nullptr;
        std::function<double()> fn;
    };

    std::string name_;
    class StatRegistry *registry_ = nullptr;
    std::vector<Entry> entries_;
};

/**
 * List of live StatGroups, in construction order. Construction order
 * is deterministic for a given configuration, so snapshots built from
 * the registry are reproducible run-to-run.
 *
 * A registry is an ordinary instance (typically owned by one
 * sim::System). Groups find it through a thread-local "current
 * registry" pointer installed with StatRegistry::Scope around the
 * construction of the components whose stats it should collect; that
 * keeps registration implicit (no registry parameter threaded through
 * every component constructor) while giving concurrent Systems fully
 * disjoint registries.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    void add(StatGroup *g);
    void remove(StatGroup *g);

    /** Visit every live group in registration order. */
    void forEach(const std::function<void(const StatGroup &)> &fn) const;

    std::size_t size() const { return groups_.size(); }

    /** The registry StatGroups on this thread register into (may be
     *  null: groups constructed outside any Scope go unlisted). */
    static StatRegistry *current();

    /**
     * RAII installer: makes @p reg the current registry for this
     * thread, restoring the previous one on destruction. Scopes nest.
     */
    class Scope
    {
      public:
        explicit Scope(StatRegistry &reg);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        StatRegistry *prev_;
    };

  private:
    std::vector<StatGroup *> groups_;
};

} // namespace fp

#endif // FP_UTIL_STATS_HH
