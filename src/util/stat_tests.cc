#include "util/stat_tests.hh"

#include <cmath>

#include "util/logging.hh"

namespace fp
{

double
chiSquareUniform(const std::vector<std::uint64_t> &counts)
{
    fp_assert(counts.size() >= 2, "chi-square needs >= 2 bins");
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    fp_assert(total > 0, "chi-square of empty sample");
    double expect = static_cast<double>(total) /
                    static_cast<double>(counts.size());
    double chi2 = 0.0;
    for (auto c : counts) {
        double d = static_cast<double>(c) - expect;
        chi2 += d * d / expect;
    }
    return chi2;
}

double
chiSquareTopBits(const std::vector<std::uint64_t> &samples,
                 unsigned value_bits, unsigned bin_bits)
{
    fp_assert(bin_bits >= 1 && bin_bits <= value_bits,
              "chiSquareTopBits: bad bin width");
    std::vector<std::uint64_t> counts(std::size_t{1} << bin_bits, 0);
    for (auto s : samples)
        ++counts[s >> (value_bits - bin_bits)];
    return chiSquareUniform(counts);
}

double
chiSquareCritical999(unsigned dof)
{
    // Selected entries of the chi-square 0.999 quantile; linear
    // interpolation in between, Wilson-Hilferty beyond the table.
    static const std::pair<unsigned, double> table[] = {
        {1, 10.83},  {3, 16.27},  {7, 24.32},   {15, 37.70},
        {31, 61.10}, {63, 103.4}, {127, 181.0}, {255, 330.5},
    };
    const auto n = sizeof(table) / sizeof(table[0]);
    if (dof <= table[0].first)
        return table[0].second;
    for (std::size_t i = 1; i < n; ++i) {
        if (dof <= table[i].first) {
            auto [d0, v0] = table[i - 1];
            auto [d1, v1] = table[i];
            double t = static_cast<double>(dof - d0) /
                       static_cast<double>(d1 - d0);
            return v0 + t * (v1 - v0);
        }
    }
    // Wilson-Hilferty approximation, z_{0.999} = 3.0902.
    double k = dof;
    double z = 3.0902;
    double h = 1.0 - 2.0 / (9.0 * k) +
               z * std::sqrt(2.0 / (9.0 * k));
    return k * h * h * h;
}

double
serialCorrelation(const std::vector<double> &xs, unsigned lag)
{
    fp_assert(xs.size() > lag + 1, "serialCorrelation: too short");
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());

    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i + lag < xs.size(); ++i)
        num += (xs[i] - mean) * (xs[i + lag] - mean);
    for (double x : xs)
        den += (x - mean) * (x - mean);
    if (den == 0.0)
        return 0.0;
    return num / den;
}

} // namespace fp
