#include "util/random.hh"

#include <algorithm>
#include <cmath>

namespace fp
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed; xoshiro must not start from the all-zero state,
    // which splitmix64 guarantees for any seed.
    for (auto &s : s_) {
        s = splitmix64(seed);
        seed += 0x9e3779b97f4a7c15ULL;
    }
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    fp_assert(bound > 0, "uniformInt(0)");
    // Lemire-style bounded generation with rejection to kill modulo
    // bias; the bias matters for the chi-square uniformity tests on
    // leaf-label sequences.
    std::uint64_t threshold = (~bound + 1) % bound; // == 2^64 mod bound
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    fp_assert(lo <= hi, "uniformRange: lo > hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric on {1, 2, ...} with success prob 1/mean.
    double p = 1.0 / mean;
    double u = uniformDouble();
    // Avoid log(0).
    u = std::max(u, 1e-300);
    double v = std::log(u) / std::log(1.0 - p);
    std::uint64_t k = static_cast<std::uint64_t>(v) + 1;
    return std::max<std::uint64_t>(k, 1);
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent's stream; the two streams
    // are then driven by unrelated splitmix64 expansions.
    return Rng((*this)() ^ 0xd1342543de82ef95ULL);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n)
{
    fp_assert(n > 0, "ZipfSampler: empty universe");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniformDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return n_ - 1;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace fp
