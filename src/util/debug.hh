/**
 * @file
 * gem5-DPRINTF-style category-gated debug tracing.
 *
 * Enable categories with the FP_DEBUG environment variable (comma
 * separated, e.g. `FP_DEBUG=oram,sched ./trace_player ...`) or
 * programmatically with setDebugCategories(). Each line is prefixed
 * with the current simulated tick when an event queue is attached.
 *
 * The tick source is thread-local: concurrent Systems (one per sweep
 * worker thread) each attach their own clock without interfering.
 * Whoever attaches a clock must detach it (clearDebugTickSource)
 * before the clock dies, or a later trace line would read freed
 * memory. Each trace line is formatted into one buffer and written
 * with a single stdio call so lines from different threads never
 * interleave mid-line.
 *
 * The macro costs one predicted-false branch when the category is
 * off, so trace points can stay in hot paths permanently.
 */

#ifndef FP_UTIL_DEBUG_HH
#define FP_UTIL_DEBUG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace fp
{

/** Trace categories (bitmask). */
enum class DebugCat : std::uint32_t
{
    none = 0,
    oram = 1u << 0,  //!< controller phases, fork levels
    sched = 1u << 1, //!< label queue selection / replacement
    dram = 1u << 2,  //!< channel scheduling
    stash = 1u << 3, //!< stash pressure, eviction
    cache = 1u << 4, //!< MAC / treetop events
    all = ~0u,
};

/** True iff @p cat is enabled. */
bool debugEnabled(DebugCat cat);

/** Replace the enabled set, e.g. "oram,sched" or "all" or "". */
void setDebugCategories(const std::string &spec);

/** Attach a tick source (thread-local) so this thread's trace lines
 *  carry simulated time. */
void setDebugTickSource(const Tick *now);

/** Detach the tick source iff it is still @p now (so a System tearing
 *  down cannot clobber a source attached after it). */
void clearDebugTickSource(const Tick *now);

/** Emit one trace line (printf-style). Prefer the macro. */
void debugPrintf(DebugCat cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace fp

/**
 * Trace-point macro: evaluates its arguments only when the category
 * is live.
 */
#define fp_dtrace(cat, ...)                                           \
    do {                                                              \
        if (::fp::debugEnabled(::fp::DebugCat::cat))                  \
            ::fp::debugPrintf(::fp::DebugCat::cat, __VA_ARGS__);      \
    } while (0)

#endif // FP_UTIL_DEBUG_HH
