#include "oram/position_map.hh"

#include "util/logging.hh"

namespace fp::oram
{

PositionMap::PositionMap(const mem::TreeGeometry &geo,
                         std::uint64_t seed)
    : geo_(geo), rng_(seed)
{
}

bool
PositionMap::contains(BlockAddr addr) const
{
    return map_.count(addr) > 0;
}

LeafLabel
PositionMap::get(BlockAddr addr) const
{
    auto it = map_.find(addr);
    fp_assert(it != map_.end(), "position map: unmapped address");
    return it->second;
}

LeafLabel
PositionMap::lookupOrAssign(BlockAddr addr)
{
    auto it = map_.find(addr);
    if (it != map_.end())
        return it->second;
    LeafLabel l = randomLabel();
    map_.emplace(addr, l);
    return l;
}

LeafLabel
PositionMap::remap(BlockAddr addr)
{
    auto it = map_.find(addr);
    fp_assert(it != map_.end(), "position map: remap of unmapped addr");
    it->second = randomLabel();
    return it->second;
}

LeafLabel
PositionMap::randomLabel()
{
    return rng_.uniformInt(geo_.numLeaves());
}

} // namespace fp::oram
