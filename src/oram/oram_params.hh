/**
 * @file
 * Shared configuration for the Path ORAM engines. Defaults follow the
 * paper's Table 1: 64 B blocks, Z = 4, 4 GB data ORAM at 50 % DRAM
 * utilization (leaf level 24, path length 25), stash of ~200 blocks.
 */

#ifndef FP_ORAM_ORAM_PARAMS_HH
#define FP_ORAM_ORAM_PARAMS_HH

#include <cstdint>

#include "mem/tree_geometry.hh"
#include "util/types.hh"

namespace fp::oram
{

struct OramParams
{
    /** Leaf level L; the paper's default tree has L = 24. */
    unsigned leafLevel = 24;

    /** Block slots per bucket. */
    unsigned z = 4;

    /** Logical payload bytes carried per block (0 = timing only). */
    std::size_t payloadBytes = 0;

    /**
     * Soft stash capacity in blocks; exceeding it is recorded as an
     * overflow event (the paper sizes C >= 200 so this is negligible).
     */
    std::size_t stashCapacity = 200;

    /** Encrypt buckets in the tree store (functional runs). */
    bool encrypt = false;

    /** Seed for leaf remapping and the cipher key. */
    std::uint64_t seed = 1;

    /**
     * Return from the stash without a path access when the block is
     * already stashed (the paper's Step 1).
     */
    bool stashShortcut = true;

    mem::TreeGeometry geometry() const
    {
        return mem::TreeGeometry(leafLevel);
    }

    /** Table 1 defaults for a given data capacity in bytes. */
    static OramParams
    forCapacity(std::uint64_t data_bytes, std::uint64_t block_bytes = 64,
                double utilization = 0.5, unsigned z = 4)
    {
        OramParams p;
        p.z = z;
        p.leafLevel =
            mem::TreeGeometry::forCapacity(data_bytes, block_bytes,
                                           utilization, z)
                .leafLevel();
        return p;
    }
};

} // namespace fp::oram

#endif // FP_ORAM_ORAM_PARAMS_HH
