#include "oram/path_oram.hh"

#include "util/logging.hh"

namespace fp::oram
{

PathOram::PathOram(const OramParams &params)
    : params_(params), geo_(params.geometry()),
      posMap_(geo_, params.seed ^ 0xa11ce),
      stash_(geo_, params.stashCapacity),
      store_(geo_, params.z, params.payloadBytes, params.encrypt,
             params.seed ^ 0xc1f3),
      stats_("path_oram")
{
    stats_.regCounter("accesses", accesses_, "logical accesses");
    stats_.regCounter("stash_hits", stashHits_,
                      "accesses satisfied by the stash");
    stats_.regCounter("dummy_accesses", dummyAccesses_,
                      "dummy path accesses");
}

std::vector<std::uint8_t>
PathOram::access(Op op, BlockAddr addr,
                 const std::vector<std::uint8_t> *data)
{
    fp_assert(addr != invalidBlockAddr, "access: invalid address");
    accesses_.inc();

    // Step 1: stash lookup.
    if (params_.stashShortcut) {
        if (mem::Block *blk = stash_.find(addr)) {
            stashHits_.inc();
            std::vector<std::uint8_t> old = blk->payload;
            if (op == Op::write && data)
                blk->payload = *data;
            stash_.recordOccupancy();
            return old;
        }
    }

    // Step 2: label lookup and remap. First-touch addresses get a
    // fresh label and a zeroed block (the working set starts zeroed).
    bool first_touch = !posMap_.contains(addr);
    LeafLabel old_label = posMap_.lookupOrAssign(addr);
    LeafLabel new_label = posMap_.remap(addr);

    // Step 3: read the whole path into the stash.
    AccessTrace tr;
    tr.label = old_label;
    tr.bucketsRead = readPath(old_label);

    // Step 4: update/insert the block in the stash with new label.
    mem::Block *blk = stash_.find(addr);
    if (!blk) {
        fp_assert(first_touch,
                  "invariant violated: mapped block neither in stash "
                  "nor on its path (addr=%llu)",
                  static_cast<unsigned long long>(addr));
        stash_.insert(mem::Block(
            addr, new_label,
            std::vector<std::uint8_t>(params_.payloadBytes, 0)));
        blk = stash_.find(addr);
    } else {
        blk->leaf = new_label;
    }

    std::vector<std::uint8_t> old_payload = blk->payload;
    if (op == Op::write && data)
        blk->payload = *data;

    // Step 5: refill the path.
    tr.bucketsWritten = writePath(old_label);

    stash_.recordOccupancy();
    if (traceEnabled_)
        trace_.push_back(std::move(tr));
    return old_payload;
}

std::vector<std::uint8_t>
PathOram::accessWithLabels(Op op, BlockAddr addr, LeafLabel old_label,
                           LeafLabel new_label,
                           const std::vector<std::uint8_t> *data,
                           const std::function<void(mem::Block &)> &mutate)
{
    fp_assert(addr != invalidBlockAddr, "access: invalid address");
    fp_assert(geo_.validLeaf(old_label) && geo_.validLeaf(new_label),
              "accessWithLabels: bad labels");
    accesses_.inc();

    if (params_.stashShortcut) {
        if (mem::Block *blk = stash_.find(addr)) {
            stashHits_.inc();
            blk->leaf = new_label;
            std::vector<std::uint8_t> old = blk->payload;
            if (op == Op::write && data)
                blk->payload = *data;
            if (mutate)
                mutate(*blk);
            stash_.recordOccupancy();
            return old;
        }
    }

    AccessTrace tr;
    tr.label = old_label;
    tr.bucketsRead = readPath(old_label);

    mem::Block *blk = stash_.find(addr);
    if (!blk) {
        // First touch of this address: materialise a zeroed block.
        stash_.insert(mem::Block(
            addr, new_label,
            std::vector<std::uint8_t>(params_.payloadBytes, 0)));
        blk = stash_.find(addr);
    } else {
        blk->leaf = new_label;
    }

    std::vector<std::uint8_t> old_payload = blk->payload;
    if (op == Op::write && data)
        blk->payload = *data;
    if (mutate)
        mutate(*blk);

    tr.bucketsWritten = writePath(old_label);
    stash_.recordOccupancy();
    if (traceEnabled_)
        trace_.push_back(std::move(tr));
    return old_payload;
}

void
PathOram::dummyAccess()
{
    dummyAccesses_.inc();
    LeafLabel label = posMap_.randomLabel();
    AccessTrace tr;
    tr.label = label;
    tr.dummy = true;
    tr.bucketsRead = readPath(label);
    tr.bucketsWritten = writePath(label);
    stash_.recordOccupancy();
    if (traceEnabled_)
        trace_.push_back(std::move(tr));
}

std::vector<BucketIndex>
PathOram::readPath(LeafLabel label)
{
    std::vector<BucketIndex> indices = geo_.pathIndices(label);
    for (BucketIndex idx : indices) {
        mem::Bucket bucket = store_.readBucket(idx);
        for (mem::Block &blk : bucket.takeAll())
            stash_.insertOrIgnore(std::move(blk));
        // The memory copy is now out of date; it will be overwritten
        // by the refill below, so nothing else to do here.
    }
    return indices;
}

std::vector<BucketIndex>
PathOram::writePath(LeafLabel label)
{
    std::vector<BucketIndex> written;
    written.reserve(geo_.numLevels());
    // Deepest bucket first: blocks that can go deep should go deep,
    // or they would occupy scarce space near the root.
    for (int level = static_cast<int>(geo_.leafLevel()); level >= 0;
         --level) {
        auto lvl = static_cast<unsigned>(level);
        BucketIndex idx = geo_.bucketAt(label, lvl);
        mem::Bucket bucket(params_.z);
        for (mem::Block &blk :
             stash_.evictForBucket(label, lvl, params_.z)) {
            bucket.add(std::move(blk));
        }
        store_.writeBucket(idx, bucket);
        written.push_back(idx);
    }
    return written;
}

} // namespace fp::oram
