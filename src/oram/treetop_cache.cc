#include "oram/treetop_cache.hh"

#include "util/logging.hh"

namespace fp::oram
{

TreetopCache::TreetopCache(const mem::TreeGeometry &geo,
                           std::uint64_t bucket_bytes,
                           std::uint64_t budget_bytes)
    : cachedLevels_(levelsForBudget(geo, bucket_bytes, budget_bytes)),
      sizeBytes_(((std::uint64_t{1} << cachedLevels_) - 1) *
                 bucket_bytes)
{
}

unsigned
TreetopCache::levelsForBudget(const mem::TreeGeometry &geo,
                              std::uint64_t bucket_bytes,
                              std::uint64_t budget_bytes)
{
    fp_assert(bucket_bytes > 0, "TreetopCache: zero bucket size");
    unsigned levels = 0;
    std::uint64_t used = 0;
    while (levels < geo.numLevels()) {
        std::uint64_t level_bytes =
            (std::uint64_t{1} << levels) * bucket_bytes;
        if (used + level_bytes > budget_bytes)
            break;
        used += level_bytes;
        ++levels;
    }
    return levels;
}

} // namespace fp::oram
