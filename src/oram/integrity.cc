#include "oram/integrity.hh"

#include "util/logging.hh"

namespace fp::oram
{

namespace
{

/** One Davies-Meyer absorption step over SPECK-64. */
std::uint64_t
absorb(const crypto::Speck64 &cipher, std::uint64_t state,
       std::uint64_t word)
{
    std::uint64_t x = state ^ word;
    return cipher.encryptBlock(x) ^ x;
}

} // anonymous namespace

MerkleTree::MerkleTree(const mem::TreeGeometry &geo,
                       std::uint64_t key_seed)
    : geo_(geo), hasher_(key_seed ^ 0x4a5be11), verifies_(),
      failures_()
{
    emptyBucket_ = hashBucket(mem::Bucket(4));
    emptySubtreeByLevel_.resize(geo_.numLevels());
    for (unsigned level = geo_.numLevels(); level-- > 0;) {
        if (level == geo_.leafLevel()) {
            emptySubtreeByLevel_[level] = combine(emptyBucket_, 0, 0);
        } else {
            emptySubtreeByLevel_[level] =
                combine(emptyBucket_, emptySubtreeByLevel_[level + 1],
                        emptySubtreeByLevel_[level + 1]);
        }
    }
    root_ = emptySubtreeByLevel_[0];
}

MerkleTree::Digest
MerkleTree::hashBucket(const mem::Bucket &bucket) const
{
    Digest h = 0x6a09e667f3bcc908ULL;
    h = absorb(hasher_, h, bucket.occupancy());
    for (const auto &blk : bucket.blocks()) {
        h = absorb(hasher_, h, blk.addr);
        h = absorb(hasher_, h, blk.leaf);
        const auto &p = blk.payload;
        for (std::size_t off = 0; off < p.size(); off += 8) {
            std::uint64_t w = 0;
            for (std::size_t i = 0; i < 8 && off + i < p.size(); ++i)
                w |= static_cast<std::uint64_t>(p[off + i])
                     << (8 * i);
            h = absorb(hasher_, h, w);
        }
    }
    return h;
}

MerkleTree::Digest
MerkleTree::combine(Digest bucket_digest, Digest left,
                    Digest right) const
{
    Digest h = bucket_digest;
    h = absorb(hasher_, h, left);
    h = absorb(hasher_, h, right ^ 0x9e3779b97f4a7c15ULL);
    return h;
}

MerkleTree::Digest
MerkleTree::bucketDigest(BucketIndex idx) const
{
    auto it = nodes_.find(idx);
    return it == nodes_.end() ? emptyBucket_ : it->second.bucket;
}

MerkleTree::Digest
MerkleTree::subtreeDigest(BucketIndex idx) const
{
    auto it = nodes_.find(idx);
    if (it != nodes_.end())
        return it->second.subtree;
    return emptySubtreeByLevel_[geo_.levelOf(idx)];
}

bool
MerkleTree::verifySlice(LeafLabel label, unsigned start_level,
                        const std::vector<mem::Bucket> &buckets)
{
    verifies_.inc();
    fp_assert(buckets.size() == geo_.numLevels() - start_level,
              "verifySlice: slice size mismatch");

    // Recompute the root bottom-up: fetched levels hash the supplied
    // buckets; retained levels use their stored (previously
    // authenticated) bucket digests; off-path children use stored
    // subtree digests.
    Digest below = 0;
    for (unsigned level = geo_.numLevels(); level-- > 0;) {
        BucketIndex idx = geo_.bucketAt(label, level);
        Digest bd = level >= start_level
                        ? hashBucket(buckets[level - start_level])
                        : bucketDigest(idx);
        Digest d;
        if (level == geo_.leafLevel()) {
            d = combine(bd, 0, 0);
        } else {
            BucketIndex on_path = geo_.bucketAt(label, level + 1);
            BucketIndex left = 2 * idx + 1;
            BucketIndex right = 2 * idx + 2;
            Digest ld =
                left == on_path ? below : subtreeDigest(left);
            Digest rd =
                right == on_path ? below : subtreeDigest(right);
            d = combine(bd, ld, rd);
        }
        below = d;
    }

    if (below != root_) {
        failures_.inc();
        return false;
    }

    // Accepted: cache the fetched buckets' digests so later partial
    // verifications of retained levels can trust them.
    for (unsigned level = start_level; level < geo_.numLevels();
         ++level) {
        BucketIndex idx = geo_.bucketAt(label, level);
        auto it = nodes_
                      .try_emplace(idx,
                                   Node{emptyBucket_,
                                        emptySubtreeByLevel_[level]})
                      .first;
        it->second.bucket = hashBucket(buckets[level - start_level]);
    }
    return true;
}

void
MerkleTree::updateBucket(BucketIndex idx, const mem::Bucket &bucket)
{
    unsigned level = geo_.levelOf(idx);
    auto it = nodes_
                  .try_emplace(idx, Node{emptyBucket_,
                                         emptySubtreeByLevel_[level]})
                  .first;
    it->second.bucket = hashBucket(bucket);

    // Re-derive subtree digests along the ancestor chain.
    BucketIndex i = idx;
    for (;;) {
        Node &node =
            nodes_
                .try_emplace(i, Node{emptyBucket_,
                                     emptySubtreeByLevel_
                                         [geo_.levelOf(i)]})
                .first->second;
        if (geo_.levelOf(i) == geo_.leafLevel()) {
            node.subtree = combine(node.bucket, 0, 0);
        } else {
            node.subtree = combine(node.bucket,
                                   subtreeDigest(2 * i + 1),
                                   subtreeDigest(2 * i + 2));
        }
        if (i == 0)
            break;
        i = (i - 1) / 2;
    }
    root_ = subtreeDigest(0);
}

void
MerkleTree::updateSlice(LeafLabel label, unsigned start_level,
                        const std::vector<mem::Bucket> &buckets)
{
    fp_assert(buckets.size() == geo_.numLevels() - start_level,
              "updateSlice: slice size mismatch");

    for (unsigned level = geo_.numLevels(); level-- > 0;) {
        BucketIndex idx = geo_.bucketAt(label, level);
        Node &node = nodes_.try_emplace(idx,
                                        Node{emptyBucket_,
                                             emptySubtreeByLevel_
                                                 [level]})
                         .first->second;
        if (level >= start_level)
            node.bucket = hashBucket(buckets[level - start_level]);
        if (level == geo_.leafLevel()) {
            node.subtree = combine(node.bucket, 0, 0);
        } else {
            node.subtree = combine(node.bucket,
                                   subtreeDigest(2 * idx + 1),
                                   subtreeDigest(2 * idx + 2));
        }
    }
    root_ = subtreeDigest(0);
}

} // namespace fp::oram
