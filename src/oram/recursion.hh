/**
 * @file
 * Hierarchical (recursive) Path ORAM with a unified program address
 * space, per the paper's Section 2.3 / Figure 2.
 *
 * When the position map is too large for on-chip storage, it is
 * packed into position-map blocks that live in the same ORAM as the
 * data (unified address space, one stash). Each position-map block
 * at level i stores the leaf labels of `fanout` blocks of level i-1
 * (level 0 = data blocks); the recursion terminates when the label
 * table of the top level fits on chip.
 *
 * A logical data access therefore becomes a chain of
 * numPosmapLevels()+1 ORAM accesses: one per position-map level, top
 * down, then the data access. Each step extracts the child's current
 * label from the parent block, remaps the child, and updates the
 * parent's stashed copy. From outside the secure processor all chain
 * steps look like ordinary uniform path accesses — exactly why the
 * paper can treat hierarchical Path ORAM "the same as the basic Path
 * ORAM" for scheduling purposes.
 */

#ifndef FP_ORAM_RECURSION_HH
#define FP_ORAM_RECURSION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "oram/path_oram.hh"
#include "util/random.hh"

namespace fp::oram
{

/** Address-space layout of the recursion levels. */
class RecursionLayout
{
  public:
    /**
     * @param num_data_blocks  N, data blocks at level 0.
     * @param fanout           Labels per position-map block.
     * @param on_chip_limit    Max labels the on-chip table may hold.
     */
    RecursionLayout(std::uint64_t num_data_blocks, unsigned fanout,
                    std::uint64_t on_chip_limit);

    /** Number of position-map levels R (0 = flat, all on chip). */
    unsigned numPosmapLevels() const { return numLevels_; }

    /** Blocks at recursion level i (0 = data). */
    std::uint64_t levelCount(unsigned level) const;

    /** First unified block address of recursion level i. */
    BlockAddr levelStart(unsigned level) const;

    /** Total blocks across data + all position-map levels. */
    std::uint64_t totalBlocks() const;

    /** Unified address of the level-i block covering @p data_addr. */
    BlockAddr blockFor(unsigned level, BlockAddr data_addr) const;

    /**
     * Slot of the level-(i-1) block covering @p data_addr within its
     * level-i parent block.
     */
    unsigned slotWithin(unsigned level, BlockAddr data_addr) const;

    unsigned fanout() const { return fanout_; }
    std::uint64_t numDataBlocks() const { return numData_; }

    /** Labels held on chip (the level-R table size). */
    std::uint64_t onChipEntries() const
    {
        return levelCount(numLevels_);
    }

  private:
    std::uint64_t numData_;
    unsigned fanout_;
    unsigned numLevels_;
    std::vector<std::uint64_t> counts_; //!< counts_[i] = levelCount(i).
    std::vector<BlockAddr> starts_;     //!< starts_[i] = levelStart(i).
};

struct RecursiveOramParams
{
    std::uint64_t numDataBlocks = 1 << 16;
    unsigned fanout = 8;
    std::uint64_t onChipLimit = 1024;
    unsigned z = 4;
    /** Payload must hold fanout labels of 8 bytes each. */
    std::size_t payloadBytes = 64;
    double utilization = 0.5;
    bool encrypt = false;
    std::uint64_t seed = 1;
};

class RecursivePathOram
{
  public:
    explicit RecursivePathOram(const RecursiveOramParams &params);

    /** Logical read of data block @p addr (addr in [0, N)). */
    std::vector<std::uint8_t> read(BlockAddr addr);

    /** Logical write of data block @p addr. */
    void write(BlockAddr addr, const std::vector<std::uint8_t> &data);

    /** ORAM accesses per logical access (R + 1). */
    unsigned chainLength() const
    {
        return layout_.numPosmapLevels() + 1;
    }

    const RecursionLayout &layout() const { return layout_; }
    PathOram &engine() { return *engine_; }

  private:
    std::vector<std::uint8_t>
    access(Op op, BlockAddr addr,
           const std::vector<std::uint8_t> *data);

    /** On-chip label of a top-level block, lazily initialised. */
    LeafLabel &topLabel(std::uint64_t index);

    static void encodeLabel(std::vector<std::uint8_t> &payload,
                            unsigned slot, LeafLabel label);
    static LeafLabel decodeLabel(const std::vector<std::uint8_t> &p,
                                 unsigned slot);

    RecursiveOramParams params_;
    RecursionLayout layout_;
    std::unique_ptr<PathOram> engine_;
    Rng rng_;
    std::vector<LeafLabel> topLabels_;
};

} // namespace fp::oram

#endif // FP_ORAM_RECURSION_HH
