/**
 * @file
 * Functional (untimed) baseline Path ORAM engine implementing the
 * access flow of the paper's Section 2.3 (Steps 1-5):
 *
 *   1. search the stash; on a hit return immediately;
 *   2. look up the leaf label, remap to a fresh uniform label;
 *   3. read the whole path into the stash;
 *   4. the stashed copy (with its new label) is now the only valid
 *      copy;
 *   5. refill the path greedily from the stash, deepest bucket first.
 *
 * This class is the golden reference the Fork Path controller is
 * checked against, and the substrate for the recursive position map.
 * It can trace the exact bucket-index sequence of every access so
 * tests can reason about the access pattern an adversary would see.
 */

#ifndef FP_ORAM_PATH_ORAM_HH
#define FP_ORAM_PATH_ORAM_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/tree_store.hh"
#include "oram/oram_params.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "util/stats.hh"

namespace fp::oram
{

/** RAM-interface operation, per the paper's (addr, op, data) tuple. */
enum class Op
{
    read,
    write,
};

/** One access as visible on the (simulated) memory bus. */
struct AccessTrace
{
    LeafLabel label = invalidLeaf;
    bool dummy = false;
    std::vector<BucketIndex> bucketsRead;
    std::vector<BucketIndex> bucketsWritten;
};

class PathOram
{
  public:
    explicit PathOram(const OramParams &params);

    /**
     * Perform one logical access.
     * @param op    read or write.
     * @param addr  Program block address.
     * @param data  Payload for writes (sized to payloadBytes).
     * @return the block's payload before the write / at the read.
     */
    std::vector<std::uint8_t>
    access(Op op, BlockAddr addr,
           const std::vector<std::uint8_t> *data = nullptr);

    /** Convenience read. */
    std::vector<std::uint8_t> read(BlockAddr addr)
    {
        return access(Op::read, addr);
    }

    /** Convenience write. */
    void
    write(BlockAddr addr, const std::vector<std::uint8_t> &data)
    {
        access(Op::write, addr, &data);
    }

    /**
     * Access with externally supplied labels, bypassing the internal
     * position map. This is the entry point used by the recursive
     * position map, where a block's label is stored in its parent
     * position-map block rather than on chip. Unknown blocks are
     * created zeroed on first touch.
     *
     * @param old_label Label the block is currently mapped to.
     * @param new_label Fresh label the block is remapped to.
     * @param data      Payload to store for writes.
     * @param mutate    Optional in-stash mutation applied before the
     *                  refill (the recursion uses this to patch child
     *                  labels while the block is guaranteed stashed).
     */
    std::vector<std::uint8_t>
    accessWithLabels(Op op, BlockAddr addr, LeafLabel old_label,
                     LeafLabel new_label,
                     const std::vector<std::uint8_t> *data = nullptr,
                     const std::function<void(mem::Block &)> &mutate =
                         {});

    /** A dummy access: read and refill a uniformly random path. */
    void dummyAccess();

    // --- component access for tests and composition -------------------
    const OramParams &params() const { return params_; }
    const mem::TreeGeometry &geometry() const { return geo_; }
    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    PositionMap &positionMap() { return posMap_; }
    mem::TreeStore &store() { return store_; }

    /** Capture per-access bucket traces (off by default). */
    void setTraceEnabled(bool enabled) { traceEnabled_ = enabled; }
    const std::vector<AccessTrace> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    std::uint64_t accessCount() const { return accesses_.value(); }
    std::uint64_t stashHits() const { return stashHits_.value(); }
    fp::StatGroup &stats() { return stats_; }

  private:
    /** Read path into the stash; returns indices for tracing. */
    std::vector<BucketIndex> readPath(LeafLabel label);

    /** Greedy deepest-first refill of the whole path. */
    std::vector<BucketIndex> writePath(LeafLabel label);

    OramParams params_;
    mem::TreeGeometry geo_;
    PositionMap posMap_;
    Stash stash_;
    mem::TreeStore store_;

    bool traceEnabled_ = false;
    std::vector<AccessTrace> trace_;

    fp::Counter accesses_;
    fp::Counter stashHits_;
    fp::Counter dummyAccesses_;
    fp::StatGroup stats_;
};

} // namespace fp::oram

#endif // FP_ORAM_PATH_ORAM_HH
