/**
 * @file
 * Treetop caching (Maas et al., Phantom): the top levels of the ORAM
 * tree are pinned in on-chip memory, so path accesses never touch
 * DRAM for those levels. Statistically the top levels are by far the
 * hottest (every path crosses the root), which makes this the
 * standard caching baseline the paper compares MAC against.
 *
 * In this model the cached buckets' contents stay in the functional
 * TreeStore (the store *is* the union of DRAM and on-chip copies);
 * the cache's job is deciding which levels skip the DRAM timing/energy
 * path, plus accounting for its own on-chip size.
 */

#ifndef FP_ORAM_TREETOP_CACHE_HH
#define FP_ORAM_TREETOP_CACHE_HH

#include <cstdint>

#include "mem/tree_geometry.hh"

namespace fp::oram
{

class TreetopCache
{
  public:
    /**
     * Pin as many whole levels as fit in @p budget_bytes.
     * @param bucket_bytes Physical size of one bucket.
     */
    TreetopCache(const mem::TreeGeometry &geo,
                 std::uint64_t bucket_bytes,
                 std::uint64_t budget_bytes);

    /** Number of pinned levels (levels 0 .. numCachedLevels()-1). */
    unsigned numCachedLevels() const { return cachedLevels_; }

    /** True iff accesses to @p level are served on-chip. */
    bool covers(unsigned level) const { return level < cachedLevels_; }

    /** Actual on-chip bytes used by the pinned levels. */
    std::uint64_t sizeBytes() const { return sizeBytes_; }

    /**
     * Levels that a byte budget can pin for a given bucket size
     * (static helper used by configuration code).
     */
    static unsigned levelsForBudget(const mem::TreeGeometry &geo,
                                    std::uint64_t bucket_bytes,
                                    std::uint64_t budget_bytes);

  private:
    unsigned cachedLevels_;
    std::uint64_t sizeBytes_;
};

} // namespace fp::oram

#endif // FP_ORAM_TREETOP_CACHE_HH
