/**
 * @file
 * Merkle-tree integrity verification over the ORAM tree.
 *
 * The paper treats integrity checking as orthogonal and combinable
 * ("the integrity checking (e.g., Merkel Tree) can be combined with
 * ORAM to counteract active attacks", Section 2.2, citing Ren et al.
 * and Freecursive). This module provides that combination point,
 * co-designed with path merging:
 *
 *  - Each tree node carries a bucket digest and a subtree digest
 *    (subtree = H(bucket, left subtree, right subtree)); only the
 *    root digest must be trusted (pinned on chip).
 *  - A fork-path read fetches levels [k, L] only; verifySlice()
 *    authenticates exactly that slice: the recomputation uses the
 *    stored bucket digests for the retained levels [0, k) — whose
 *    live contents sit in the trusted stash, so their digests were
 *    authenticated when last read — plus the stored sibling subtree
 *    digests, and compares the recomputed root against the pinned
 *    root.
 *  - A fork-path refill rewrites levels [k', L]; updateSlice()
 *    re-hashes those buckets and propagates to a new pinned root.
 *
 * Digest storage conceptually lives in untrusted memory next to the
 * buckets (only the root is on-chip); this model does not charge its
 * DRAM traffic — the paper scopes integrity out of its evaluation.
 * The hash is Davies-Meyer over SPECK-64: not production crypto, but
 * a real avalanche function so tamper detection is genuinely
 * exercised by tests.
 */

#ifndef FP_ORAM_INTEGRITY_HH
#define FP_ORAM_INTEGRITY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/speck.hh"
#include "mem/bucket.hh"
#include "mem/tree_geometry.hh"
#include "util/stats.hh"

namespace fp::oram
{

class MerkleTree
{
  public:
    using Digest = std::uint64_t;

    MerkleTree(const mem::TreeGeometry &geo, std::uint64_t key_seed);

    /**
     * Authenticate the fetched slice of path @p label: @p buckets
     * hold levels [start_level, leafLevel], root-most first.
     * @return true iff the recomputed root matches the pinned root.
     */
    bool verifySlice(LeafLabel label, unsigned start_level,
                     const std::vector<mem::Bucket> &buckets);

    /**
     * Commit a refill of levels [start_level, leafLevel] of path
     * @p label (same bucket ordering) and advance the pinned root.
     */
    void updateSlice(LeafLabel label, unsigned start_level,
                     const std::vector<mem::Bucket> &buckets);

    /**
     * Point update of one bucket's digest (used when an on-chip
     * cache mutates a bucket outside a refill, e.g. a MAC data hit
     * pulling a block out); propagates to the pinned root.
     */
    void updateBucket(BucketIndex idx, const mem::Bucket &bucket);

    /** The pinned (trusted) root digest. */
    Digest root() const { return root_; }

    /** Digest of one bucket's contents (exposed for tests). */
    Digest hashBucket(const mem::Bucket &bucket) const;

    std::uint64_t verifications() const { return verifies_.value(); }
    std::uint64_t failures() const { return failures_.value(); }

  private:
    struct Node
    {
        Digest bucket;
        Digest subtree;
    };

    Digest bucketDigest(BucketIndex idx) const;
    Digest subtreeDigest(BucketIndex idx) const;
    Digest combine(Digest bucket_digest, Digest left,
                   Digest right) const;

    mem::TreeGeometry geo_;
    crypto::Speck64 hasher_;
    std::unordered_map<BucketIndex, Node> nodes_;
    std::vector<Digest> emptySubtreeByLevel_;
    Digest emptyBucket_;
    Digest root_;

    fp::Counter verifies_;
    fp::Counter failures_;
};

} // namespace fp::oram

#endif // FP_ORAM_INTEGRITY_HH
