#include "oram/recursion.hh"

#include "util/logging.hh"

namespace fp::oram
{

RecursionLayout::RecursionLayout(std::uint64_t num_data_blocks,
                                 unsigned fanout,
                                 std::uint64_t on_chip_limit)
    : numData_(num_data_blocks), fanout_(fanout)
{
    fp_assert(num_data_blocks > 0, "RecursionLayout: no data blocks");
    fp_assert(fanout >= 2, "RecursionLayout: fanout must be >= 2");
    fp_assert(on_chip_limit >= 1, "RecursionLayout: on-chip limit 0");

    counts_.push_back(numData_);
    std::uint64_t count = numData_;
    while (count > on_chip_limit) {
        count = (count + fanout_ - 1) / fanout_;
        counts_.push_back(count);
    }
    numLevels_ = static_cast<unsigned>(counts_.size() - 1);

    starts_.resize(counts_.size());
    BlockAddr start = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        starts_[i] = start;
        start += counts_[i];
    }
}

std::uint64_t
RecursionLayout::levelCount(unsigned level) const
{
    fp_assert(level < counts_.size(), "levelCount: bad level");
    return counts_[level];
}

BlockAddr
RecursionLayout::levelStart(unsigned level) const
{
    fp_assert(level < starts_.size(), "levelStart: bad level");
    return starts_[level];
}

std::uint64_t
RecursionLayout::totalBlocks() const
{
    return starts_.back() + counts_.back();
}

BlockAddr
RecursionLayout::blockFor(unsigned level, BlockAddr data_addr) const
{
    fp_assert(level < counts_.size(), "blockFor: bad level");
    fp_assert(data_addr < numData_, "blockFor: bad data address");
    std::uint64_t idx = data_addr;
    for (unsigned i = 0; i < level; ++i)
        idx /= fanout_;
    fp_assert(idx < counts_[level], "blockFor: index out of range");
    return starts_[level] + idx;
}

unsigned
RecursionLayout::slotWithin(unsigned level, BlockAddr data_addr) const
{
    fp_assert(level >= 1 && level < counts_.size(),
              "slotWithin: bad level");
    std::uint64_t child_idx = data_addr;
    for (unsigned i = 0; i + 1 < level; ++i)
        child_idx /= fanout_;
    return static_cast<unsigned>(child_idx % fanout_);
}

RecursivePathOram::RecursivePathOram(const RecursiveOramParams &params)
    : params_(params),
      layout_(params.numDataBlocks, params.fanout, params.onChipLimit),
      rng_(params.seed ^ 0x5ca1ab1e)
{
    fp_assert(params_.payloadBytes >= 8ULL * params_.fanout,
              "payload too small for %u labels", params_.fanout);

    OramParams ep;
    ep.z = params_.z;
    ep.payloadBytes = params_.payloadBytes;
    ep.encrypt = params_.encrypt;
    ep.seed = params_.seed;
    ep.stashCapacity = 200;
    ep.leafLevel =
        mem::TreeGeometry::forCapacity(layout_.totalBlocks(), 1,
                                       params_.utilization, params_.z)
            .leafLevel();
    engine_ = std::make_unique<PathOram>(ep);

    topLabels_.assign(layout_.onChipEntries(), invalidLeaf);
}

LeafLabel &
RecursivePathOram::topLabel(std::uint64_t index)
{
    fp_assert(index < topLabels_.size(), "topLabel: bad index");
    LeafLabel &label = topLabels_[index];
    if (label == invalidLeaf)
        label = rng_.uniformInt(engine_->geometry().numLeaves());
    return label;
}

void
RecursivePathOram::encodeLabel(std::vector<std::uint8_t> &payload,
                               unsigned slot, LeafLabel label)
{
    // Labels are stored as label+1 so that an all-zero (fresh) block
    // reads as "unassigned" for every slot; label 0 is valid.
    std::uint64_t v = label + 1;
    for (unsigned i = 0; i < 8; ++i)
        payload[slot * 8 + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

LeafLabel
RecursivePathOram::decodeLabel(const std::vector<std::uint8_t> &p,
                               unsigned slot)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[slot * 8 + i]) << (8 * i);
    return v == 0 ? invalidLeaf : v - 1;
}

std::vector<std::uint8_t>
RecursivePathOram::read(BlockAddr addr)
{
    return access(Op::read, addr, nullptr);
}

void
RecursivePathOram::write(BlockAddr addr,
                         const std::vector<std::uint8_t> &data)
{
    access(Op::write, addr, &data);
}

std::vector<std::uint8_t>
RecursivePathOram::access(Op op, BlockAddr addr,
                          const std::vector<std::uint8_t> *data)
{
    fp_assert(addr < layout_.numDataBlocks(),
              "recursive access: address out of range");

    const unsigned R = layout_.numPosmapLevels();
    const std::uint64_t leaves = engine_->geometry().numLeaves();

    // Label of the top-of-chain block, held on chip; remap in place.
    std::uint64_t top_index =
        layout_.blockFor(R, addr) - layout_.levelStart(R);
    LeafLabel &top = topLabel(top_index);
    LeafLabel cur_old = top;
    LeafLabel cur_new = rng_.uniformInt(leaves);
    top = cur_new;

    // Walk the chain from the top position-map level down to the
    // data block. At level i we access the posmap block, pull the
    // child's label out of the (now stashed) payload, remap the child
    // and store the new label back into the stashed copy.
    for (unsigned level = R; level >= 1; --level) {
        BlockAddr pm_addr = layout_.blockFor(level, addr);
        unsigned slot = layout_.slotWithin(level, addr);

        LeafLabel child_old = invalidLeaf;
        LeafLabel child_new = rng_.uniformInt(leaves);

        // The mutation runs while the posmap block is guaranteed to
        // be in the stash (before the refill can evict it).
        engine_->accessWithLabels(
            Op::read, pm_addr, cur_old, cur_new, nullptr,
            [&](mem::Block &pm) {
                child_old = decodeLabel(pm.payload, slot);
                encodeLabel(pm.payload, slot, child_new);
            });

        if (child_old == invalidLeaf)
            child_old = rng_.uniformInt(leaves); // first touch
        cur_old = child_old;
        cur_new = child_new;
    }

    return engine_->accessWithLabels(op, addr, cur_old, cur_new, data);
}

} // namespace fp::oram
