/**
 * @file
 * The on-chip position map: program address -> current leaf label.
 *
 * Labels are assigned uniformly at random on first touch and remapped
 * uniformly on every access (the paper's Step 2). The map is
 * hash-backed and lazy so that the paper's 64M-block configuration
 * costs host memory proportional to the touched working set only.
 */

#ifndef FP_ORAM_POSITION_MAP_HH
#define FP_ORAM_POSITION_MAP_HH

#include <cstdint>
#include <unordered_map>

#include "mem/tree_geometry.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace fp::oram
{

class PositionMap
{
  public:
    PositionMap(const mem::TreeGeometry &geo, std::uint64_t seed);

    /** True iff @p addr has been assigned a label. */
    bool contains(BlockAddr addr) const;

    /** Current label; @p addr must be mapped. */
    LeafLabel get(BlockAddr addr) const;

    /** Label for @p addr, assigning a fresh uniform one if new. */
    LeafLabel lookupOrAssign(BlockAddr addr);

    /**
     * Draw a fresh uniform label for @p addr, store and return it
     * (the remap half of Step 2). @p addr must be mapped.
     */
    LeafLabel remap(BlockAddr addr);

    /** Draw a uniform label without touching the map (dummy paths). */
    LeafLabel randomLabel();

    std::size_t size() const { return map_.size(); }

    const mem::TreeGeometry &geometry() const { return geo_; }

  private:
    mem::TreeGeometry geo_;
    Rng rng_;
    std::unordered_map<BlockAddr, LeafLabel> map_;
};

} // namespace fp::oram

#endif // FP_ORAM_POSITION_MAP_HH
