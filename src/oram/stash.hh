/**
 * @file
 * The on-chip stash: a small associative buffer of data blocks that
 * are currently off the tree (paper Figure 1(b)).
 *
 * Besides plain lookup/insert/remove it implements the refill
 * selection: given a path label and a level, pick up to Z blocks that
 * may legally reside in that bucket (greedy deepest-first eviction,
 * the "fill with as many stash blocks as possible" rule of Step 5).
 *
 * Occupancy is tracked in a histogram so experiments can verify the
 * paper's claim that path merging leaves the stash-overflow
 * probability unchanged.
 */

#ifndef FP_ORAM_STASH_HH
#define FP_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/block.hh"
#include "mem/tree_geometry.hh"
#include "obs/tracer.hh"
#include "util/stats.hh"

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::oram
{

class Stash
{
  public:
    /**
     * @param geo      Tree geometry (for residency checks).
     * @param capacity Soft capacity; exceeding it counts overflows.
     */
    Stash(const mem::TreeGeometry &geo, std::size_t capacity);

    /** Block lookup; nullptr if absent. */
    mem::Block *find(BlockAddr addr);
    const mem::Block *find(BlockAddr addr) const;

    bool contains(BlockAddr addr) const { return find(addr) != nullptr; }

    /** Insert a block; the address must not already be stashed. */
    void insert(mem::Block block);

    /**
     * Ingest a block read from the tree: if the address is already
     * stashed, the stashed copy is newer (the memory copy inside the
     * retained fork handle is stale by construction) and the incoming
     * block is dropped.
     * @return true if the block was inserted.
     */
    bool insertOrIgnore(mem::Block block);

    /** Remove and return the block at @p addr; must exist. */
    mem::Block take(BlockAddr addr);

    /**
     * Remove and return up to @p max_blocks blocks that can reside in
     * the bucket at (@p path_label, @p level), i.e. whose own leaf
     * label shares that bucket.
     */
    std::vector<mem::Block> evictForBucket(LeafLabel path_label,
                                           unsigned level,
                                           unsigned max_blocks);

    std::size_t size() const { return blocks_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool overCapacity() const { return blocks_.size() > capacity_; }

    /** Record current occupancy (call once per ORAM access). */
    void recordOccupancy();

    /** Attach the event tracer (occupancy counter track). */
    void setTracer(obs::Tracer *tracer) { trc_ = tracer; }

    /** Attach the request profiler (eviction-yield sampling). */
    void setProfiler(obs::RequestProfiler *prof) { prof_ = prof; }

    const fp::Histogram &occupancy() const { return occupancyHist_; }
    std::uint64_t overflowEvents() const { return overflows_.value(); }
    std::size_t peakSize() const { return peak_; }

    /** Iterate all blocks (tests/invariant checks). */
    const std::unordered_map<BlockAddr, mem::Block> &
    contents() const
    {
        return blocks_;
    }

  private:
    mem::TreeGeometry geo_;
    std::size_t capacity_;
    std::unordered_map<BlockAddr, mem::Block> blocks_;
    std::size_t peak_ = 0;
    obs::Tracer *trc_ = nullptr;
    obs::RequestProfiler *prof_ = nullptr;

    fp::Histogram occupancyHist_;
    fp::Counter overflows_;
};

} // namespace fp::oram

#endif // FP_ORAM_STASH_HH
