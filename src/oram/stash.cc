#include "oram/stash.hh"

#include <algorithm>

#include "obs/request_profiler.hh"
#include "util/logging.hh"

namespace fp::oram
{

Stash::Stash(const mem::TreeGeometry &geo, std::size_t capacity)
    : geo_(geo), capacity_(capacity), occupancyHist_(128, 4.0)
{
}

mem::Block *
Stash::find(BlockAddr addr)
{
    auto it = blocks_.find(addr);
    return it == blocks_.end() ? nullptr : &it->second;
}

const mem::Block *
Stash::find(BlockAddr addr) const
{
    auto it = blocks_.find(addr);
    return it == blocks_.end() ? nullptr : &it->second;
}

void
Stash::insert(mem::Block block)
{
    fp_assert(block.valid(), "stash: inserting dummy block");
    fp_assert(geo_.validLeaf(block.leaf), "stash: bad leaf label");
    fp_assert(blocks_.count(block.addr) == 0,
              "stash: duplicate insert of addr %llu",
              static_cast<unsigned long long>(block.addr));
    blocks_[block.addr] = std::move(block);
    peak_ = std::max(peak_, blocks_.size());
}

bool
Stash::insertOrIgnore(mem::Block block)
{
    if (blocks_.count(block.addr) > 0)
        return false;
    insert(std::move(block));
    return true;
}

mem::Block
Stash::take(BlockAddr addr)
{
    auto it = blocks_.find(addr);
    fp_assert(it != blocks_.end(), "stash: take of absent block");
    mem::Block out = std::move(it->second);
    blocks_.erase(it);
    return out;
}

std::vector<mem::Block>
Stash::evictForBucket(LeafLabel path_label, unsigned level,
                      unsigned max_blocks)
{
    std::vector<mem::Block> out;
    if (max_blocks == 0)
        return out;
    // Candidate selection must not depend on unordered_map iteration
    // order (which varies across standard libraries and across runs
    // under ASLR-keyed hashing): pick eligible blocks in ascending
    // address order so eviction — and everything downstream of it —
    // is a pure function of the simulation state.
    std::vector<BlockAddr> eligible;
    for (const auto &kv : blocks_) {
        if (geo_.canReside(kv.second.leaf, path_label, level))
            eligible.push_back(kv.first);
    }
    std::sort(eligible.begin(), eligible.end());
    if (eligible.size() > max_blocks)
        eligible.resize(max_blocks);
    out.reserve(eligible.size());
    for (BlockAddr addr : eligible) {
        auto it = blocks_.find(addr);
        out.push_back(std::move(it->second));
        blocks_.erase(it);
    }
    if (prof_)
        prof_->sampleEvictedPerBucket(out.size());
    return out;
}

void
Stash::recordOccupancy()
{
    occupancyHist_.sample(static_cast<double>(blocks_.size()));
    if (overCapacity())
        overflows_.inc();
    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->counter(obs::Track::stash, "stash_occupancy", "blocks",
                      static_cast<double>(blocks_.size()));
        if (overCapacity())
            trc_->instant(obs::Track::stash, "stash_overflow",
                          {obs::TraceArg::num("blocks",
                                              blocks_.size())});
    }
}

} // namespace fp::oram
