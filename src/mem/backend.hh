/**
 * @file
 * The memory-backend seam: everything above the untrusted store (the
 * ORAM controller, the full-system harness, the insecure baseline)
 * issues requests against this interface instead of a concrete
 * timing model.
 *
 * Contract:
 *
 *  - access() accepts a byte-addressed request of `bytes` payload and
 *    MUST eventually invoke `onComplete(now)` exactly once, from the
 *    shared event queue (never re-entrantly from inside access()).
 *    Completion time is data arrival for reads and durable-write
 *    acknowledgement for writes.
 *  - Requests may complete out of order; callers that need ordering
 *    sequence it themselves (the ORAM controller's phase machine
 *    already does).
 *  - idle() / queueDepth() expose the backend's occupancy so callers
 *    can pace issue without knowing the timing model.
 *  - burstBytes() is the transfer granule: a request's cost is
 *    accounted in whole bursts (`max(1, bytes / burstBytes())`).
 *  - rowBytes() is the locality granule the bucket-layout policies
 *    pack subtrees into (a DRAM row; for a network store, the
 *    request-coalescing unit of the remote object layout).
 *
 * Implementations: dram::DramBackend (the DDR3 timing model behind a
 * thin adapter) and mem::NetBackend (a latency/bandwidth/window model
 * of a remote store). Decorators stack on top of either:
 * mem::FaultInjector breaks the exactly-once contract on purpose
 * (loss, transient errors, latency spikes, outages) and
 * mem::ResilientBackend restores it for callers above via deadline
 * timers, retries with backoff, and dedup of late completions.
 */

#ifndef FP_MEM_BACKEND_HH
#define FP_MEM_BACKEND_HH

#include <cstdint>
#include <functional>

#include "util/types.hh"

namespace fp::obs
{
class Tracer;
class RequestProfiler;
} // namespace fp::obs

namespace fp::mem
{

/** A request at the backend boundary. */
struct BackendRequest
{
    Addr addr = 0;              //!< Physical byte address.
    bool isWrite = false;
    std::uint64_t bytes = 64;   //!< Payload bytes to transfer.
    std::function<void(Tick)> onComplete;
    /**
     * Failure channel: fired *instead of* onComplete when the store
     * reports a transient error for this request. Exactly one of
     * onComplete/onError fires per request. Plain timing backends
     * never fail, so they ignore this; only fault-model decorators
     * (mem::FaultInjector) invoke it, and only resilience-aware
     * callers (mem::ResilientBackend) need to set it. Leaving it
     * empty means errors are silently dropped — equivalent to loss.
     */
    std::function<void(Tick)> onError;
};

/** Backend-agnostic traffic summary (units: bursts and bytes). */
struct BackendStats
{
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    /** Mean request completion latency (ns), queueing included. */
    double avgLatencyNs = 0.0;
};

class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Issue a request; `req.onComplete` fires exactly once later. */
    virtual void access(BackendRequest req) = 0;

    /** No request admitted and not yet completed. */
    virtual bool idle() const = 0;

    /** Requests admitted and not yet completed. */
    virtual std::size_t queueDepth() const = 0;

    /** Cumulative traffic counters since construction/resetStats. */
    virtual BackendStats statsSnapshot() const = 0;

    /** Attach the event tracer (null detaches). */
    virtual void setTracer(obs::Tracer *tracer) = 0;

    /**
     * Attach the per-request profiler (null detaches). Backends that
     * participate sample their service interval — admission to
     * completion — into the profiler's backend_read/backend_write
     * histograms; the default no-op keeps test doubles and simple
     * models unaffected.
     */
    virtual void setProfiler(obs::RequestProfiler *) {}

    virtual void resetStats() = 0;

    /** Transfer granule in bytes (never 0). */
    virtual std::uint64_t burstBytes() const = 0;

    /** Locality granule in bytes for layout policies (never 0). */
    virtual std::uint64_t rowBytes() const = 0;

    /** Short identifier ("dram", "net") for results and logs. */
    virtual const char *kind() const = 0;
};

} // namespace fp::mem

#endif // FP_MEM_BACKEND_HH
