/**
 * @file
 * Functional model of the untrusted external memory holding the ORAM
 * tree.
 *
 * Two properties make the paper's 4 GB / L=24 configuration feasible
 * in a unit test or benchmark process:
 *
 *  1. Buckets are materialised lazily: a bucket that has never been
 *     written occupies no host memory (it is implicitly all-dummy).
 *     Memory use is bounded by the touched working set, not by the
 *     2^25 - 1 buckets of the full tree.
 *  2. Encryption is optional. With a cipher attached, every bucket is
 *     serialised and sealed with counter-mode SPECK on write and
 *     unsealed on read — the full functional crypto path. Timing-only
 *     simulations detach the cipher.
 *
 * The store also counts reads/writes per bucket so tests can verify
 * access-pattern claims (e.g. that path merging never touches the
 * overlapped buckets).
 */

#ifndef FP_MEM_TREE_STORE_HH
#define FP_MEM_TREE_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "crypto/counter_mode.hh"
#include "mem/bucket.hh"
#include "mem/tree_geometry.hh"
#include "util/stats.hh"

namespace fp::mem
{

class TreeStore
{
  public:
    /**
     * @param geo          Tree shape.
     * @param z            Slots per bucket.
     * @param payload_bytes Block payload size used when sealing.
     * @param encrypt      Attach the counter-mode cipher.
     * @param key_seed     Cipher key seed (ignored unless encrypting).
     */
    TreeStore(const TreeGeometry &geo, unsigned z,
              std::size_t payload_bytes, bool encrypt = false,
              std::uint64_t key_seed = 0x5eed);

    /** Read (and decrypt) the bucket at @p idx. */
    Bucket readBucket(BucketIndex idx);

    /** Encrypt and write the bucket at @p idx. */
    void writeBucket(BucketIndex idx, const Bucket &bucket);

    const TreeGeometry &geometry() const { return geo_; }
    unsigned z() const { return z_; }
    std::size_t payloadBytes() const { return payloadBytes_; }
    bool encrypted() const { return cipher_ != nullptr; }

    /** Number of buckets ever written (host-memory footprint). */
    std::size_t materializedBuckets() const;

    /** Total real blocks resident in the tree (walks the store). */
    std::uint64_t residentBlocks() const;

    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }

    /** Raw ciphertext bytes of a bucket, for tamper-visibility tests;
     *  empty when the bucket is unmaterialised or store is plain. */
    std::vector<std::uint8_t> rawCiphertext(BucketIndex idx) const;

    fp::StatGroup &stats() { return stats_; }

  private:
    std::vector<std::uint8_t> serialize(const Bucket &bucket) const;
    Bucket deserialize(const std::vector<std::uint8_t> &bytes) const;

    TreeGeometry geo_;
    unsigned z_;
    std::size_t payloadBytes_;

    /** Plaintext store (no cipher). */
    std::unordered_map<BucketIndex, Bucket> plain_;
    /** Ciphertext store (cipher attached). */
    std::unordered_map<BucketIndex, crypto::SealedBlock> sealed_;
    std::unique_ptr<crypto::CounterModeCipher> cipher_;

    fp::Counter reads_;
    fp::Counter writes_;
    fp::StatGroup stats_;
};

} // namespace fp::mem

#endif // FP_MEM_TREE_STORE_HH
