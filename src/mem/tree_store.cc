#include "mem/tree_store.hh"

#include "util/logging.hh"

namespace fp::mem
{

TreeStore::TreeStore(const TreeGeometry &geo, unsigned z,
                     std::size_t payload_bytes, bool encrypt,
                     std::uint64_t key_seed)
    : geo_(geo), z_(z), payloadBytes_(payload_bytes),
      stats_("tree_store")
{
    fp_assert(z > 0, "TreeStore: Z must be positive");
    if (encrypt)
        cipher_ = std::make_unique<crypto::CounterModeCipher>(key_seed);
    stats_.regCounter("reads", reads_, "bucket reads");
    stats_.regCounter("writes", writes_, "bucket writes");
}

Bucket
TreeStore::readBucket(BucketIndex idx)
{
    fp_assert(idx < geo_.numBuckets(), "readBucket: bad index");
    reads_.inc();
    if (cipher_) {
        auto it = sealed_.find(idx);
        if (it == sealed_.end())
            return Bucket(z_);
        return deserialize(cipher_->decrypt(it->second));
    }
    auto it = plain_.find(idx);
    if (it == plain_.end())
        return Bucket(z_);
    return it->second;
}

void
TreeStore::writeBucket(BucketIndex idx, const Bucket &bucket)
{
    fp_assert(idx < geo_.numBuckets(), "writeBucket: bad index");
    fp_assert(bucket.occupancy() <= z_, "writeBucket: overfull bucket");
    writes_.inc();
    if (cipher_) {
        sealed_[idx] = cipher_->encrypt(serialize(bucket), idx);
        return;
    }
    plain_[idx] = bucket;
}

std::size_t
TreeStore::materializedBuckets() const
{
    return cipher_ ? sealed_.size() : plain_.size();
}

std::uint64_t
TreeStore::residentBlocks() const
{
    std::uint64_t total = 0;
    if (cipher_) {
        for (const auto &[idx, sb] : sealed_) {
            Bucket b = deserialize(cipher_->decrypt(sb));
            total += b.occupancy();
        }
    } else {
        for (const auto &[idx, b] : plain_)
            total += b.occupancy();
    }
    return total;
}

std::vector<std::uint8_t>
TreeStore::rawCiphertext(BucketIndex idx) const
{
    auto it = sealed_.find(idx);
    if (it == sealed_.end())
        return {};
    return it->second.bytes;
}

std::vector<std::uint8_t>
TreeStore::serialize(const Bucket &bucket) const
{
    // Fixed layout independent of occupancy, Z slots of
    // (addr, leaf, payload); unused slots are dummies with
    // invalidBlockAddr. A fixed size is essential: ciphertext length
    // must not reveal how many real blocks the bucket holds.
    const std::size_t slot = 16 + payloadBytes_;
    std::vector<std::uint8_t> out(slot * z_, 0);
    auto put64 = [&out](std::size_t off, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out[off + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
    };
    unsigned s = 0;
    for (const auto &blk : bucket.blocks()) {
        std::size_t base = slot * s++;
        put64(base, blk.addr);
        put64(base + 8, blk.leaf);
        for (std::size_t i = 0;
             i < payloadBytes_ && i < blk.payload.size(); ++i)
            out[base + 16 + i] = blk.payload[i];
    }
    for (; s < z_; ++s)
        put64(slot * s, invalidBlockAddr);
    return out;
}

Bucket
TreeStore::deserialize(const std::vector<std::uint8_t> &bytes) const
{
    const std::size_t slot = 16 + payloadBytes_;
    fp_assert(bytes.size() == slot * z_,
              "deserialize: bad bucket image size");
    auto get64 = [&bytes](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     bytes[off + static_cast<std::size_t>(i)])
                 << (8 * i);
        return v;
    };
    Bucket bucket(z_);
    for (unsigned s = 0; s < z_; ++s) {
        std::size_t base = slot * s;
        std::uint64_t addr = get64(base);
        if (addr == invalidBlockAddr)
            continue;
        Block blk;
        blk.addr = addr;
        blk.leaf = get64(base + 8);
        blk.payload.assign(bytes.begin() +
                               static_cast<std::ptrdiff_t>(base + 16),
                           bytes.begin() +
                               static_cast<std::ptrdiff_t>(base + 16 +
                                                           payloadBytes_));
        bucket.add(std::move(blk));
    }
    return bucket;
}

} // namespace fp::mem
