/**
 * @file
 * FaultInjector: a deterministic, seeded fault model layered over any
 * mem::MemoryBackend as a stacking decorator. It models the four ways
 * a real remote store misbehaves:
 *
 *  - request loss: the request vanishes before reaching the store;
 *    its completion never fires (the layer above must time out);
 *  - transient errors: the store answers, but with a failure — the
 *    request's onError callback fires after an error turnaround
 *    instead of onComplete;
 *  - latency spikes: the store answers correctly but late — delivery
 *    of the completion is delayed by a configured spike plus seeded
 *    jitter;
 *  - outage windows: for simulated time in [outageStart, outageEnd)
 *    the store is unreachable and every newly issued request is
 *    dropped (completions already in flight still arrive).
 *
 * Determinism: every decision comes from one private xoshiro stream,
 * and exactly four draws are consumed per request (loss, error,
 * spike, jitter) whether or not each fault class is enabled — so the
 * fault decision sequence is a pure function of (seed, request
 * index), independent of which classes are switched on and of
 * simulated time. All delayed deliveries run on the shared
 * EventQueue, keeping runs a pure function of config + seed.
 *
 * The injector never invents completions and never reorders the
 * requests it forwards; it only drops, delays or fails them. Pair it
 * with mem::ResilientBackend above to recover the exactly-once
 * onComplete contract of the backend seam.
 */

#ifndef FP_MEM_FAULT_INJECTOR_HH
#define FP_MEM_FAULT_INJECTOR_HH

#include <cstdint>

#include "mem/backend.hh"
#include "util/event_queue.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace fp::mem
{

struct FaultParams
{
    /** Probability a request is lost before reaching the store. */
    double lossRate = 0.0;
    /** Probability the store answers with a transient error. */
    double errorRate = 0.0;
    /** Probability a completed request's delivery is spiked. */
    double spikeRate = 0.0;
    /** Latency spike magnitude, microseconds. */
    double spikeUs = 500.0;
    /** Extra uniform jitter on top of a spike, microseconds. */
    double spikeJitterUs = 100.0;
    /** Turnaround of a transient error answer, microseconds. */
    double errorLatencyUs = 10.0;
    /** Outage window [start, end) in simulated microseconds; the
     *  window is active when end > start. */
    double outageStartUs = 0.0;
    double outageEndUs = 0.0;
    /** Seed of the injector's private decision stream. */
    std::uint64_t seed = 0x0badc0deULL;

    bool hasOutage() const { return outageEndUs > outageStartUs; }

    /** Any fault class live: the System builds the injector (and the
     *  resilient layer above it) only when this holds, so fault-free
     *  runs carry zero extra machinery. */
    bool
    enabled() const
    {
        return lossRate > 0.0 || errorRate > 0.0 || spikeRate > 0.0 ||
               hasOutage();
    }

    Tick spikeTicks() const { return usToTicksRound(spikeUs); }
    Tick
    spikeJitterTicks() const
    {
        return usToTicksRound(spikeJitterUs);
    }
    Tick
    errorLatencyTicks() const
    {
        return usToTicksRound(errorLatencyUs);
    }
    Tick outageStartTick() const { return usToTicksRound(outageStartUs); }
    Tick outageEndTick() const { return usToTicksRound(outageEndUs); }

    /** Microseconds to ticks (1 us = 1e6 ps), round to nearest. */
    static Tick usToTicksRound(double us);
};

class FaultInjector final : public MemoryBackend
{
  public:
    FaultInjector(const FaultParams &params, EventQueue &eq,
                  MemoryBackend &inner);

    void access(BackendRequest req) override;

    /** Idle when the wrapped store is idle and no delayed delivery
     *  (spike or error answer) is still owed by this layer. Lost
     *  requests are nobody's: the resilient layer above owns their
     *  liveness through its deadline timers. */
    bool idle() const override
    {
        return pendingDeliveries_ == 0 && inner_.idle();
    }
    std::size_t queueDepth() const override
    {
        return inner_.queueDepth() + pendingDeliveries_;
    }
    BackendStats statsSnapshot() const override
    {
        return inner_.statsSnapshot();
    }
    void setTracer(obs::Tracer *tracer) override;
    /** The injector adds no service time of its own to successful
     *  deliveries beyond what it injects; the wrapped store samples
     *  its own intervals, so just forward. */
    void setProfiler(obs::RequestProfiler *prof) override
    {
        inner_.setProfiler(prof);
    }
    void resetStats() override;

    std::uint64_t burstBytes() const override
    {
        return inner_.burstBytes();
    }
    std::uint64_t rowBytes() const override
    {
        return inner_.rowBytes();
    }
    const char *kind() const override { return inner_.kind(); }

    const FaultParams &params() const { return params_; }
    bool inOutage(Tick now) const;

    // --- injected-fault accessors (RunResult / tests) ------------------
    std::uint64_t lossInjected() const { return lossInjected_.value(); }
    std::uint64_t errorInjected() const
    {
        return errorInjected_.value();
    }
    std::uint64_t spikeInjected() const
    {
        return spikeInjected_.value();
    }
    std::uint64_t outageDropped() const
    {
        return outageDropped_.value();
    }
    std::uint64_t forwarded() const { return forwarded_.value(); }

    fp::StatGroup &stats() { return stats_; }

  private:
    FaultParams params_;
    EventQueue &eq_;
    MemoryBackend &inner_;
    obs::Tracer *trc_ = nullptr;
    Rng rng_;

    /** Spike/error answers scheduled but not yet delivered. */
    std::size_t pendingDeliveries_ = 0;

    fp::Counter lossInjected_;
    fp::Counter errorInjected_;
    fp::Counter spikeInjected_;
    fp::Counter outageDropped_;
    fp::Counter forwarded_;
    fp::Average spikeDelayUs_;
    fp::StatGroup stats_;
};

} // namespace fp::mem

#endif // FP_MEM_FAULT_INJECTOR_HH
