/**
 * @file
 * The logical memory block moved between the stash, the ORAM tree and
 * the merging-aware cache. Per the paper, a block carries its program
 * address and current leaf label everywhere it goes (both are stored
 * encrypted in external memory).
 */

#ifndef FP_MEM_BLOCK_HH
#define FP_MEM_BLOCK_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace fp::mem
{

struct Block
{
    /** Program address; invalidBlockAddr marks a dummy/empty slot. */
    BlockAddr addr = invalidBlockAddr;

    /** Current leaf label this block is mapped to. */
    LeafLabel leaf = invalidLeaf;

    /**
     * Data payload. Timing-only simulations run with empty payloads;
     * functional tests and examples carry real bytes.
     */
    std::vector<std::uint8_t> payload;

    Block() = default;

    Block(BlockAddr a, LeafLabel l, std::vector<std::uint8_t> p = {})
        : addr(a), leaf(l), payload(std::move(p))
    {
    }

    /** True for a real data block (not a dummy). */
    bool valid() const { return addr != invalidBlockAddr; }
};

} // namespace fp::mem

#endif // FP_MEM_BLOCK_HH
