/**
 * @file
 * Geometry of the ORAM binary tree: level/offset arithmetic, path
 * enumeration, and the path-overlap computation that the whole Fork
 * Path scheme is built on.
 *
 * Conventions (matching the paper's Figure 1):
 *  - Levels are numbered 0 (root) .. L (leaves); there are L+1 levels.
 *  - Leaf labels are 0 .. 2^L - 1, left to right.
 *  - "path-l" is the set of L+1 buckets from leaf l up to the root.
 *  - Buckets are numbered in heap order: the bucket at (level d,
 *    offset o) has index 2^d - 1 + o.
 *
 * The key identity: the ancestor of leaf l at level d has offset
 * l >> (L - d), so two paths a and b share exactly
 *
 *     overlap(a, b) = L + 1 - bit_width(a XOR b)
 *
 * buckets (the root is always shared; identical labels share L+1).
 */

#ifndef FP_MEM_TREE_GEOMETRY_HH
#define FP_MEM_TREE_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace fp::mem
{

class TreeGeometry
{
  public:
    /** @param leaf_level L; the tree has L+1 levels. */
    explicit TreeGeometry(unsigned leaf_level);

    /**
     * Build the geometry for a data capacity, matching the paper's
     * sizing rule: @p data_bytes of useful data, a @p utilization
     * fraction of tree slots holding real blocks, @p block_bytes per
     * block and @p z slots per bucket. For the paper's 4 GB / 64 B /
     * 50 % / Z=4 this yields L = 24 (path length 25).
     */
    static TreeGeometry forCapacity(std::uint64_t data_bytes,
                                    std::uint64_t block_bytes,
                                    double utilization, unsigned z);

    unsigned leafLevel() const { return leafLevel_; }
    unsigned numLevels() const { return leafLevel_ + 1; }
    std::uint64_t numLeaves() const
    {
        return std::uint64_t{1} << leafLevel_;
    }
    std::uint64_t numBuckets() const
    {
        return (std::uint64_t{2} << leafLevel_) - 1;
    }

    /** Bucket index of the ancestor of leaf @p label at @p level. */
    BucketIndex bucketAt(LeafLabel label, unsigned level) const;

    /** Level of a bucket index. */
    unsigned levelOf(BucketIndex idx) const;

    /** Offset of a bucket within its level. */
    std::uint64_t offsetInLevel(BucketIndex idx) const;

    /** All bucket indices of path @p label, root (level 0) first. */
    std::vector<BucketIndex> pathIndices(LeafLabel label) const;

    /**
     * Number of buckets shared by path @p a and path @p b; in
     * [1, L+1]. This is the paper's "overlap degree".
     */
    unsigned overlap(LeafLabel a, LeafLabel b) const;

    /**
     * True iff a block mapped to leaf @p label may legally reside in
     * the bucket at (@p level, offset of @p path_label's ancestor),
     * i.e. the two paths share that bucket.
     */
    bool canReside(LeafLabel label, LeafLabel path_label,
                   unsigned level) const;

    /** True iff @p label is a valid leaf label. */
    bool validLeaf(LeafLabel label) const
    {
        return label < numLeaves();
    }

    bool operator==(const TreeGeometry &other) const
    {
        return leafLevel_ == other.leafLevel_;
    }

  private:
    unsigned leafLevel_;
};

} // namespace fp::mem

#endif // FP_MEM_TREE_GEOMETRY_HH
