#include "mem/resilient_backend.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/tracer.hh"
#include "util/logging.hh"

namespace fp::mem
{

Tick
RetryParams::usToTicksRound(double us)
{
    return static_cast<Tick>(std::llround(us * 1e6));
}

ResilientBackend::ResilientBackend(const RetryParams &params,
                                   EventQueue &eq, MemoryBackend &inner)
    : params_(params), eq_(eq), inner_(inner), rng_(params.seed),
      stats_("resilient_backend")
{
    fp_assert(params_.timeoutUs > 0.0,
              "ResilientBackend built with the layer disabled "
              "(timeoutUs == 0); the caller should skip construction");
    fp_assert(params_.backoffBaseUs >= 0.0 &&
                  params_.backoffCapUs >= 0.0,
              "ResilientBackend: negative backoff");
    fp_assert(params_.backoffJitter >= 0.0,
              "ResilientBackend: negative backoff jitter");

    stats_.regCounter("requests", requests_,
                      "user requests accepted at this layer");
    stats_.regCounter("retries", retries_,
                      "re-issues after a timeout or error");
    stats_.regCounter("timeouts", timeouts_,
                      "deadline expiries (presumed-lost attempts)");
    stats_.regCounter("errors", errors_,
                      "transient error answers from the store");
    stats_.regCounter("dedup_dropped", dedupDropped_,
                      "completions for already-settled requests");
    stats_.regCounter("late_wins", lateWins_,
                      "superseded attempts whose completion won");
    stats_.regCounter("exhausted", exhausted_,
                      "requests escalated after the retry budget");
    stats_.regAverage("attempts_per_req", attemptsPerReq_,
                      "issue attempts per settled request");
    stats_.regAverage("backoff_us", backoffUs_,
                      "scheduled backoff delays, jitter included");
    stats_.regGauge(
        "live", [this] { return static_cast<double>(live_.size()); },
        "requests accepted and not yet settled");
}

void
ResilientBackend::setTracer(obs::Tracer *tracer)
{
    trc_ = tracer;
    inner_.setTracer(tracer);
    if (trc_)
        trc_->nameTrack(obs::Track::resilience, "resilience");
}

void
ResilientBackend::access(BackendRequest req)
{
    requests_.inc();
    const std::uint64_t id = nextId_++;
    auto [it, inserted] = live_.emplace(id, Pending{eq_});
    fp_assert(inserted, "ResilientBackend: duplicate request id");
    Pending &p = it->second;
    p.addr = req.addr;
    p.isWrite = req.isWrite;
    p.bytes = req.bytes;
    p.onComplete = std::move(req.onComplete);
    p.onError = std::move(req.onError);
    issueAttempt(id);
}

void
ResilientBackend::issueAttempt(std::uint64_t id)
{
    auto it = live_.find(id);
    fp_assert(it != live_.end(), "ResilientBackend: issue of dead id");
    Pending &p = it->second;
    const unsigned attempt = ++p.attempts;
    if (attempt > 1) {
        retries_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "retry",
                          {obs::TraceArg::num("addr", p.addr),
                           obs::TraceArg::num("attempt", attempt)});
        }
    }

    BackendRequest fwd;
    fwd.addr = p.addr;
    fwd.isWrite = p.isWrite;
    fwd.bytes = p.bytes;
    fwd.onComplete = [this, id, attempt](Tick t) {
        onAttemptComplete(id, attempt, t);
    };
    fwd.onError = [this, id, attempt](Tick t) {
        onAttemptError(id, attempt, t);
    };

    // Deadline first, then forward: both are visible-at-later-ticks
    // only (access() is never re-entrant), but this order keeps the
    // timer armed even if the inner backend asserts on the request.
    p.timer.armIn(params_.timeoutTicks(), [this, id] { onDeadline(id); });
    inner_.access(std::move(fwd));
}

void
ResilientBackend::onAttemptComplete(std::uint64_t id, unsigned attempt,
                                    Tick t)
{
    auto it = live_.find(id);
    if (it == live_.end()) {
        // The request already settled (an earlier completion won the
        // race against this attempt). Swallow the duplicate: callers
        // must see onComplete exactly once.
        dedupDropped_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "retry_dedup_drop",
                          {obs::TraceArg::num("attempt", attempt)});
        }
        return;
    }
    Pending &p = it->second;
    if (attempt != p.attempts) {
        // A superseded attempt (we timed out and re-issued) turned
        // out merely slow, not lost — its data arrived first, so it
        // wins; the in-flight retry will land in the branch above.
        lateWins_.inc();
    }
    p.timer.cancel();
    attemptsPerReq_.sample(static_cast<double>(p.attempts));
    auto cb = std::move(p.onComplete);
    live_.erase(it); // settle before surfacing: the callback may
                     // re-enter access() with a follow-on request
    if (cb)
        cb(t);
}

void
ResilientBackend::onAttemptError(std::uint64_t id, unsigned attempt,
                                 Tick t)
{
    (void)t;
    auto it = live_.find(id);
    if (it == live_.end()) {
        dedupDropped_.inc();
        return;
    }
    Pending &p = it->second;
    if (attempt != p.attempts)
        return; // stale error for a superseded attempt; the current
                // attempt is still in flight with its own deadline
    errors_.inc();
    p.timer.cancel();
    retryOrEscalate(id);
}

void
ResilientBackend::onDeadline(std::uint64_t id)
{
    auto it = live_.find(id);
    fp_assert(it != live_.end(),
              "ResilientBackend: deadline for settled request "
              "(timer cancellation broken)");
    timeouts_.inc();
    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->instant(obs::Track::resilience, "retry_timeout",
                      {obs::TraceArg::num("addr", it->second.addr),
                       obs::TraceArg::num("attempt",
                                          it->second.attempts)});
    }
    retryOrEscalate(id);
}

void
ResilientBackend::retryOrEscalate(std::uint64_t id)
{
    auto it = live_.find(id);
    fp_assert(it != live_.end(), "ResilientBackend: escalate dead id");
    Pending &p = it->second;

    if (p.attempts >= 1 + params_.maxRetries) {
        exhausted_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "retry_exhausted",
                          {obs::TraceArg::num("addr", p.addr),
                           obs::TraceArg::num("attempt", p.attempts)});
        }
        attemptsPerReq_.sample(static_cast<double>(p.attempts));
        const Addr addr = p.addr;
        const unsigned attempts = p.attempts;
        auto on_error = std::move(p.onError);
        live_.erase(it);
        if (on_error) {
            on_error(eq_.now());
            return;
        }
        fp_panic("ResilientBackend: request for addr 0x%llx failed "
                 "after %u attempts (retry budget %u exhausted; raise "
                 "--retry-max or --retry-timeout-us, or shrink the "
                 "fault rates)",
                 static_cast<unsigned long long>(addr), attempts,
                 params_.maxRetries);
    }

    // Exponential backoff before the next issue: the same Timer that
    // just served as the attempt's deadline is re-armed as the
    // backoff delay (re-arm semantics pinned in tests/test_util.cc).
    const Tick delay = backoffTicks(p.attempts);
    backoffUs_.sample(static_cast<double>(delay) / 1e6);
    p.timer.armIn(delay, [this, id] { issueAttempt(id); });
}

Tick
ResilientBackend::backoffTicks(unsigned retry_index)
{
    // retry_index is 1-based: the delay before re-issuing after the
    // retry_index-th failed attempt. Exponent is clamped so the
    // double stays finite long before the cap applies.
    const int exp =
        static_cast<int>(std::min(retry_index, 60u)) - 1;
    const double raw = params_.backoffBaseUs * std::ldexp(1.0, exp);
    const double capped = std::min(raw, params_.backoffCapUs);
    const double jittered =
        capped * (1.0 + params_.backoffJitter * rng_.uniformDouble());
    return RetryParams::usToTicksRound(jittered);
}

void
ResilientBackend::resetStats()
{
    requests_.reset();
    retries_.reset();
    timeouts_.reset();
    errors_.reset();
    dedupDropped_.reset();
    lateWins_.reset();
    exhausted_.reset();
    attemptsPerReq_.reset();
    backoffUs_.reset();
    inner_.resetStats();
}

} // namespace fp::mem
