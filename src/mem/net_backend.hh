/**
 * @file
 * NetBackend: a network/cloud storage model behind the
 * mem::MemoryBackend seam, for evaluating the Fork Path machinery
 * when the untrusted store is remote (object storage, a storage
 * server across a datacenter link) instead of local DDR3.
 *
 * The model captures the three quantities that dominate remote-store
 * ORAM cost:
 *
 *  - propagation: every request pays a fixed round trip of
 *    2 x oneWayLatencyUs (command out, data/ack back);
 *  - serialization: request payloads share one full-duplex-agnostic
 *    link of linkGbps; a transfer occupies the link for
 *    bytes * 8 / linkGbps and transfers are serialized in issue
 *    order (burst serialization — a path read of k buckets costs
 *    k back-to-back bucket times, not one);
 *  - windowing: at most `window` requests are outstanding at the
 *    remote store; excess requests wait in an unbounded local queue.
 *
 * Completion time of a request admitted at tick t:
 *
 *     done = max(t, linkFree) + serialization(bytes) + 2 * oneWay
 *
 * which reproduces the familiar latency/bandwidth crossover: small
 * windows are latency-bound, large transfers bandwidth-bound. No
 * row-buffer or bank state exists, so (unlike DRAM) cost is
 * insensitive to the address layout — only to the number and size of
 * requests, which is exactly the axis Fork Path optimizes.
 *
 * Everything runs on the shared event queue, so a run's outcome is a
 * pure function of config + seed, same as the DRAM model.
 */

#ifndef FP_MEM_NET_BACKEND_HH
#define FP_MEM_NET_BACKEND_HH

#include <cstdint>
#include <deque>

#include "mem/backend.hh"
#include "util/event_queue.hh"
#include "util/stats.hh"

namespace fp::mem
{

struct NetBackendParams
{
    /** One-way propagation delay to the store, in microseconds. */
    double oneWayLatencyUs = 50.0;
    /** Link bandwidth in gigabits per second. */
    double linkGbps = 10.0;
    /** Outstanding-request window at the remote store. */
    unsigned window = 16;
    /** Transfer granule (bursts) reported to callers. */
    std::uint64_t burstBytes = 64;
    /** Locality granule reported to layout policies. Remote stores
     *  have no rows; this only shapes subtree packing, which is
     *  timing-neutral here, so any power of two works. */
    std::uint64_t rowBytes = 8192;

    /** One-way propagation in ticks (us -> ps), round to nearest:
     *  truncation would bias every non-representable latency low by
     *  up to a full tick. */
    Tick oneWayTicks() const;

    /** Link occupancy of a transfer: bits / (Gb/s), in ticks,
     *  round to nearest. */
    Tick serializationTicks(std::uint64_t bytes) const;

    /** Abort with a CLI-facing error (fp_fatal) if the parameters
     *  cannot produce a meaningful timing model. */
    void validate() const;
};

class NetBackend final : public MemoryBackend
{
  public:
    NetBackend(const NetBackendParams &params, EventQueue &eq);

    void access(BackendRequest req) override;
    bool idle() const override
    {
        return inFlight_ == 0 && waiting_.empty();
    }
    std::size_t queueDepth() const override
    {
        return inFlight_ + waiting_.size();
    }
    BackendStats statsSnapshot() const override;
    void setTracer(obs::Tracer *tracer) override { trc_ = tracer; }
    void setProfiler(obs::RequestProfiler *prof) override
    {
        prof_ = prof;
    }
    void resetStats() override;

    std::uint64_t burstBytes() const override
    {
        return params_.burstBytes;
    }
    std::uint64_t rowBytes() const override
    {
        return params_.rowBytes;
    }
    const char *kind() const override { return "net"; }

    const NetBackendParams &params() const { return params_; }
    /** Requests parked behind the outstanding window right now. */
    std::size_t windowStalls() const { return waiting_.size(); }

    fp::StatGroup &stats() { return stats_; }

  private:
    struct Waiting
    {
        BackendRequest req;
        Tick arrival = 0;
    };

    /** Admit waiting requests while window slots are free. */
    void pump();
    void issue(BackendRequest req, Tick arrival);

    NetBackendParams params_;
    EventQueue &eq_;
    obs::Tracer *trc_ = nullptr;
    obs::RequestProfiler *prof_ = nullptr;

    std::deque<Waiting> waiting_;
    unsigned inFlight_ = 0;
    /** Tick at which the link finishes its last accepted transfer. */
    Tick linkFreeAt_ = 0;

    fp::Counter reads_;
    fp::Counter writes_;
    fp::Counter bytesRead_;
    fp::Counter bytesWritten_;
    fp::Counter windowStallEvents_;
    fp::Average latencyNs_;
    fp::Average linkWaitNs_;
    fp::StatGroup stats_;
};

} // namespace fp::mem

#endif // FP_MEM_NET_BACKEND_HH
