#include "mem/tree_geometry.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace fp::mem
{

TreeGeometry::TreeGeometry(unsigned leaf_level)
    : leafLevel_(leaf_level)
{
    fp_assert(leaf_level < 63, "tree too deep: L=%u", leaf_level);
}

TreeGeometry
TreeGeometry::forCapacity(std::uint64_t data_bytes,
                          std::uint64_t block_bytes,
                          double utilization, unsigned z)
{
    fp_assert(block_bytes > 0 && z > 0 && utilization > 0.0 &&
                  utilization <= 1.0,
              "forCapacity: bad parameters");
    std::uint64_t data_blocks = data_bytes / block_bytes;
    fp_assert(data_blocks > 0, "forCapacity: capacity below one block");
    // Total slots needed so that data_blocks fill `utilization` of
    // them; buckets hold z slots; the tree with leaf level L has
    // 2^(L+1) - 1 buckets. Choose the smallest L that fits.
    auto slots_needed = static_cast<std::uint64_t>(
        static_cast<double>(data_blocks) / utilization);
    std::uint64_t buckets_needed = (slots_needed + z - 1) / z;
    // A tree of leaf level L holds 2^(L+1) - 1 buckets; following the
    // paper's sizing (4 GB -> L = 24) the single-bucket shortfall of
    // the "-1" is ignored, i.e. we require 2^(L+1) >= buckets.
    unsigned level = 0;
    while ((std::uint64_t{2} << level) < buckets_needed)
        ++level;
    return TreeGeometry(level);
}

BucketIndex
TreeGeometry::bucketAt(LeafLabel label, unsigned level) const
{
    fp_assert(validLeaf(label), "bucketAt: bad label %llu",
              static_cast<unsigned long long>(label));
    fp_assert(level <= leafLevel_, "bucketAt: bad level %u", level);
    std::uint64_t offset = label >> (leafLevel_ - level);
    return ((std::uint64_t{1} << level) - 1) + offset;
}

unsigned
TreeGeometry::levelOf(BucketIndex idx) const
{
    fp_assert(idx < numBuckets(), "levelOf: bad index");
    return log2Floor(idx + 1);
}

std::uint64_t
TreeGeometry::offsetInLevel(BucketIndex idx) const
{
    unsigned level = levelOf(idx);
    return idx + 1 - (std::uint64_t{1} << level);
}

std::vector<BucketIndex>
TreeGeometry::pathIndices(LeafLabel label) const
{
    std::vector<BucketIndex> out;
    out.reserve(numLevels());
    for (unsigned d = 0; d <= leafLevel_; ++d)
        out.push_back(bucketAt(label, d));
    return out;
}

unsigned
TreeGeometry::overlap(LeafLabel a, LeafLabel b) const
{
    fp_assert(validLeaf(a) && validLeaf(b), "overlap: bad labels");
    return numLevels() - bitWidth(a ^ b);
}

bool
TreeGeometry::canReside(LeafLabel label, LeafLabel path_label,
                        unsigned level) const
{
    fp_assert(level <= leafLevel_, "canReside: bad level");
    return (label >> (leafLevel_ - level)) ==
           (path_label >> (leafLevel_ - level));
}

} // namespace fp::mem
