#include "mem/net_backend.hh"

#include <cmath>
#include <utility>

#include "obs/request_profiler.hh"
#include "obs/tracer.hh"
#include "util/logging.hh"

namespace fp::mem
{

Tick
NetBackendParams::oneWayTicks() const
{
    return static_cast<Tick>(std::llround(oneWayLatencyUs * 1e6));
}

Tick
NetBackendParams::serializationTicks(std::uint64_t bytes) const
{
    return static_cast<Tick>(std::llround(
        static_cast<double>(bytes) * 8.0 * 1e3 / linkGbps));
}

void
NetBackendParams::validate() const
{
    if (!(linkGbps > 0.0) || !std::isfinite(linkGbps))
        fp_fatal("--net-gbps must be a positive number (got %g): a "
                 "zero or negative link bandwidth makes serialization "
                 "time undefined",
                 linkGbps);
    if (oneWayLatencyUs < 0.0 || !std::isfinite(oneWayLatencyUs))
        fp_fatal("--net-latency-us must be non-negative (got %g)",
                 oneWayLatencyUs);
    if (window == 0)
        fp_fatal("--net-window must be at least 1: a zero window can "
                 "never admit a request");
    if (burstBytes == 0 || rowBytes == 0)
        fp_fatal("net backend burst/row granule must be non-zero "
                 "(burst=%llu row=%llu)",
                 static_cast<unsigned long long>(burstBytes),
                 static_cast<unsigned long long>(rowBytes));
}

NetBackend::NetBackend(const NetBackendParams &params, EventQueue &eq)
    : params_(params), eq_(eq), stats_("net_backend")
{
    fp_assert(params_.linkGbps > 0.0,
              "NetBackend: link bandwidth must be positive");
    fp_assert(params_.oneWayLatencyUs >= 0.0,
              "NetBackend: one-way latency must be non-negative");
    fp_assert(params_.window >= 1,
              "NetBackend: outstanding window must be at least 1");
    fp_assert(params_.burstBytes > 0 && params_.rowBytes > 0,
              "NetBackend: zero transfer/locality granule");

    stats_.regCounter("read_requests", reads_,
                      "read requests completed");
    stats_.regCounter("write_requests", writes_,
                      "write requests completed");
    stats_.regCounter("bytes_read", bytesRead_,
                      "payload bytes fetched from the store");
    stats_.regCounter("bytes_written", bytesWritten_,
                      "payload bytes pushed to the store");
    stats_.regCounter("window_stalls", windowStallEvents_,
                      "requests that waited for a window slot");
    stats_.regAverage("latency_ns", latencyNs_,
                      "request completion latency, queueing included");
    stats_.regAverage("link_wait_ns", linkWaitNs_,
                      "serialization delay behind earlier transfers");
    stats_.regGauge(
        "queue_depth", [this] { return double(queueDepth()); },
        "requests admitted and not yet completed");
}

void
NetBackend::access(BackendRequest req)
{
    if (inFlight_ >= params_.window) {
        windowStallEvents_.inc();
        waiting_.push_back({std::move(req), eq_.now()});
        return;
    }
    issue(std::move(req), eq_.now());
}

void
NetBackend::pump()
{
    while (inFlight_ < params_.window && !waiting_.empty()) {
        Waiting w = std::move(waiting_.front());
        waiting_.pop_front();
        issue(std::move(w.req), w.arrival);
    }
}

void
NetBackend::issue(BackendRequest req, Tick arrival)
{
    ++inFlight_;
    const Tick now = eq_.now();
    const Tick start = std::max(now, linkFreeAt_);
    const Tick ser = params_.serializationTicks(req.bytes);
    linkFreeAt_ = start + ser;
    const Tick done = linkFreeAt_ + 2 * params_.oneWayTicks();

    linkWaitNs_.sample(ticksToNs(start - now));

    eq_.schedule(done, [this, arrival,
                        req = std::move(req)]() mutable {
        const Tick t = eq_.now();
        if (req.isWrite) {
            writes_.inc();
            bytesWritten_.inc(req.bytes);
        } else {
            reads_.inc();
            bytesRead_.inc(req.bytes);
        }
        latencyNs_.sample(ticksToNs(t - arrival));
        if (prof_)
            prof_->sampleBackendService(req.isWrite, arrival, t);
        if (trc_ && trc_->on(obs::TraceLevel::full)) {
            trc_->complete(obs::Track::dram0,
                           req.isWrite ? "net_write" : "net_read",
                           arrival, t,
                           {obs::TraceArg::num("addr", req.addr),
                            obs::TraceArg::num("bytes", req.bytes)});
        }
        fp_assert(inFlight_ > 0, "NetBackend completion underflow");
        --inFlight_;
        if (req.onComplete)
            req.onComplete(t);
        pump();
    });
}

BackendStats
NetBackend::statsSnapshot() const
{
    BackendStats s;
    s.readBursts = (bytesRead_.value() + params_.burstBytes - 1) /
                   params_.burstBytes;
    s.writeBursts =
        (bytesWritten_.value() + params_.burstBytes - 1) /
        params_.burstBytes;
    s.bytesRead = bytesRead_.value();
    s.bytesWritten = bytesWritten_.value();
    s.avgLatencyNs = latencyNs_.mean();
    return s;
}

void
NetBackend::resetStats()
{
    reads_.reset();
    writes_.reset();
    bytesRead_.reset();
    bytesWritten_.reset();
    windowStallEvents_.reset();
    latencyNs_.reset();
    linkWaitNs_.reset();
}

} // namespace fp::mem
