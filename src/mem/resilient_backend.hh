/**
 * @file
 * ResilientBackend: restores the exactly-once onComplete contract of
 * the memory-backend seam on top of a store that may lose, delay or
 * fail requests (mem::FaultInjector, or any future lossy model).
 *
 * Per request it:
 *  - arms a deadline fp::Timer on the shared EventQueue; a request
 *    whose completion has not arrived by the deadline is presumed
 *    lost and re-issued;
 *  - retries transient errors and timeouts with exponential backoff
 *    (base doubling per attempt, capped, plus seeded multiplicative
 *    jitter so retry storms decorrelate deterministically);
 *  - deduplicates completions racing a retry: the first completion
 *    to arrive wins — even from a superseded attempt — and every
 *    later one is counted and dropped, so the caller sees
 *    onComplete exactly once;
 *  - after 1 + maxRetries attempts escalates: the caller's onError
 *    fires if set, otherwise fp_panic — which, inside the System's
 *    recoverable-failure scope, surfaces as a SimFailure captured in
 *    the RunResult rather than a crash.
 *
 * Obliviousness under retry: the layer re-issues byte-identical
 * requests (same addr/isWrite/bytes) and never invents, reorders or
 * coalesces traffic, so the multiset of addresses the store observes
 * is the caller's sequence with some elements repeated — exactly the
 * information an adversary already has under Path ORAM's argument
 * (docs/ROBUSTNESS.md develops this).
 *
 * Determinism: backoff jitter comes from one private seeded stream
 * with one draw per scheduled retry; everything else is driven by the
 * shared EventQueue, so runs stay pure functions of config + seed.
 */

#ifndef FP_MEM_RESILIENT_BACKEND_HH
#define FP_MEM_RESILIENT_BACKEND_HH

#include <cstdint>
#include <unordered_map>

#include "mem/backend.hh"
#include "util/event_queue.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace fp::mem
{

struct RetryParams
{
    /** Per-attempt completion deadline, microseconds. Zero disables
     *  the whole layer (the System then builds no ResilientBackend);
     *  it must comfortably exceed the store's worst-case latency or
     *  slow successes will be double-issued. */
    double timeoutUs = 0.0;
    /** Re-issues after the first attempt; 0 means fail fast. */
    unsigned maxRetries = 5;
    /** Backoff before retry k (1-based): min(cap, base·2^(k-1)),
     *  scaled by (1 + jitter·u) with u uniform in [0,1). */
    double backoffBaseUs = 100.0;
    double backoffCapUs = 2000.0;
    double backoffJitter = 0.1;
    /** Seed of the private jitter stream. */
    std::uint64_t seed = 0x5e111e47ULL;

    bool enabled() const { return timeoutUs > 0.0; }

    Tick timeoutTicks() const { return usToTicksRound(timeoutUs); }

    /** Microseconds to ticks (1 us = 1e6 ps), round to nearest. */
    static Tick usToTicksRound(double us);
};

class ResilientBackend final : public MemoryBackend
{
  public:
    ResilientBackend(const RetryParams &params, EventQueue &eq,
                     MemoryBackend &inner);

    void access(BackendRequest req) override;

    bool idle() const override { return live_.empty() && inner_.idle(); }
    std::size_t queueDepth() const override { return live_.size(); }
    BackendStats statsSnapshot() const override
    {
        return inner_.statsSnapshot();
    }
    void setTracer(obs::Tracer *tracer) override;
    /** Retries re-enter the wrapped store, which samples each
     *  attempt's service interval itself; just forward. */
    void setProfiler(obs::RequestProfiler *prof) override
    {
        inner_.setProfiler(prof);
    }
    void resetStats() override;

    std::uint64_t burstBytes() const override
    {
        return inner_.burstBytes();
    }
    std::uint64_t rowBytes() const override
    {
        return inner_.rowBytes();
    }
    const char *kind() const override { return inner_.kind(); }

    const RetryParams &params() const { return params_; }

    // --- retry accessors (RunResult / tests) ---------------------------
    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t retries() const { return retries_.value(); }
    std::uint64_t timeouts() const { return timeouts_.value(); }
    std::uint64_t errors() const { return errors_.value(); }
    std::uint64_t dedupDropped() const { return dedupDropped_.value(); }
    std::uint64_t lateWins() const { return lateWins_.value(); }
    std::uint64_t exhausted() const { return exhausted_.value(); }
    /** Largest attempt count any single request needed. */
    std::uint64_t
    maxAttempts() const
    {
        return static_cast<std::uint64_t>(attemptsPerReq_.max());
    }

    fp::StatGroup &stats() { return stats_; }

  private:
    /** One user request, alive from access() until its single
     *  completion (or escalation) is delivered. */
    struct Pending
    {
        Addr addr = 0;
        bool isWrite = false;
        std::uint64_t bytes = 0;
        std::function<void(Tick)> onComplete;
        std::function<void(Tick)> onError;
        unsigned attempts = 0; //!< issues so far (1 = first try)
        Timer timer;           //!< deadline, then backoff, then deadline…

        explicit Pending(EventQueue &eq) : timer(eq) {}
    };

    void issueAttempt(std::uint64_t id);
    void onAttemptComplete(std::uint64_t id, unsigned attempt, Tick t);
    void onAttemptError(std::uint64_t id, unsigned attempt, Tick t);
    void onDeadline(std::uint64_t id);
    void retryOrEscalate(std::uint64_t id);
    Tick backoffTicks(unsigned retry_index);

    RetryParams params_;
    EventQueue &eq_;
    MemoryBackend &inner_;
    obs::Tracer *trc_ = nullptr;
    Rng rng_;

    std::unordered_map<std::uint64_t, Pending> live_;
    std::uint64_t nextId_ = 0;

    fp::Counter requests_;
    fp::Counter retries_;
    fp::Counter timeouts_;
    fp::Counter errors_;
    fp::Counter dedupDropped_;
    fp::Counter lateWins_;
    fp::Counter exhausted_;
    fp::Average attemptsPerReq_;
    fp::Average backoffUs_;
    fp::StatGroup stats_;
};

} // namespace fp::mem

#endif // FP_MEM_RESILIENT_BACKEND_HH
