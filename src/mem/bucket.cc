#include "mem/bucket.hh"

#include "util/logging.hh"

namespace fp::mem
{

void
Bucket::add(Block block)
{
    fp_assert(!full(), "bucket overflow (Z=%u)", z_);
    fp_assert(block.valid(), "adding dummy block to bucket");
    blocks_.push_back(std::move(block));
}

std::vector<Block>
Bucket::takeAll()
{
    std::vector<Block> out = std::move(blocks_);
    blocks_.clear();
    return out;
}

} // namespace fp::mem
