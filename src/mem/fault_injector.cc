#include "mem/fault_injector.hh"

#include <cmath>
#include <utility>

#include "obs/tracer.hh"
#include "util/logging.hh"

namespace fp::mem
{

Tick
FaultParams::usToTicksRound(double us)
{
    return static_cast<Tick>(std::llround(us * 1e6));
}

FaultInjector::FaultInjector(const FaultParams &params, EventQueue &eq,
                             MemoryBackend &inner)
    : params_(params), eq_(eq), inner_(inner), rng_(params.seed),
      stats_("fault_injector")
{
    fp_assert(params_.lossRate >= 0.0 && params_.lossRate <= 1.0,
              "FaultInjector: loss rate outside [0,1]");
    fp_assert(params_.errorRate >= 0.0 && params_.errorRate <= 1.0,
              "FaultInjector: error rate outside [0,1]");
    fp_assert(params_.spikeRate >= 0.0 && params_.spikeRate <= 1.0,
              "FaultInjector: spike rate outside [0,1]");
    fp_assert(params_.spikeUs >= 0.0 && params_.spikeJitterUs >= 0.0,
              "FaultInjector: negative spike magnitude/jitter");
    fp_assert(params_.errorLatencyUs >= 0.0,
              "FaultInjector: negative error turnaround");
    fp_assert(params_.outageEndUs >= params_.outageStartUs,
              "FaultInjector: outage window ends before it starts");

    stats_.regCounter("loss_injected", lossInjected_,
                      "requests dropped before reaching the store");
    stats_.regCounter("error_injected", errorInjected_,
                      "requests answered with a transient error");
    stats_.regCounter("spike_injected", spikeInjected_,
                      "completions delayed by a latency spike");
    stats_.regCounter("outage_dropped", outageDropped_,
                      "requests dropped inside the outage window");
    stats_.regCounter("forwarded", forwarded_,
                      "requests forwarded to the store untouched");
    stats_.regAverage("spike_delay_us", spikeDelayUs_,
                      "injected spike delay, jitter included");
    stats_.regGauge(
        "outage_active",
        [this] { return inOutage(eq_.now()) ? 1.0 : 0.0; },
        "store currently inside its outage window");
}

bool
FaultInjector::inOutage(Tick now) const
{
    return params_.hasOutage() && now >= params_.outageStartTick() &&
           now < params_.outageEndTick();
}

void
FaultInjector::setTracer(obs::Tracer *tracer)
{
    trc_ = tracer;
    inner_.setTracer(tracer);
    if (trc_)
        trc_->nameTrack(obs::Track::resilience, "resilience");
}

void
FaultInjector::access(BackendRequest req)
{
    const Tick now = eq_.now();
    // Exactly four draws per request, taken before any decision, so
    // the decision stream depends only on (seed, request index) —
    // never on which fault classes are enabled or on simulated time.
    const double u_loss = rng_.uniformDouble();
    const double u_error = rng_.uniformDouble();
    const double u_spike = rng_.uniformDouble();
    const double u_jitter = rng_.uniformDouble();

    if (inOutage(now)) {
        outageDropped_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "fault_outage_drop",
                          {obs::TraceArg::num("addr", req.addr)});
        }
        return; // the store is unreachable: the request vanishes
    }

    if (u_loss < params_.lossRate) {
        lossInjected_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "fault_loss",
                          {obs::TraceArg::num("addr", req.addr),
                           obs::TraceArg::flag("write", req.isWrite)});
        }
        return; // completion never fires
    }

    if (u_error < params_.errorRate) {
        errorInjected_.inc();
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::resilience, "fault_error",
                          {obs::TraceArg::num("addr", req.addr)});
        }
        // The store rejects the request after an error turnaround;
        // it never performs the access, so nothing is forwarded.
        ++pendingDeliveries_;
        eq_.scheduleIn(params_.errorLatencyTicks(),
                       [this, on_error = std::move(req.onError)] {
                           fp_assert(pendingDeliveries_ > 0,
                                     "fault delivery underflow");
                           --pendingDeliveries_;
                           if (on_error)
                               on_error(eq_.now());
                       });
        return;
    }

    if (u_spike < params_.spikeRate) {
        spikeInjected_.inc();
        const Tick jitter = static_cast<Tick>(
            static_cast<double>(params_.spikeJitterTicks()) *
            u_jitter);
        const Tick delay = params_.spikeTicks() + jitter;
        spikeDelayUs_.sample(static_cast<double>(delay) / 1e6);
        if (trc_ && trc_->on(obs::TraceLevel::access)) {
            trc_->instant(
                obs::Track::resilience, "fault_spike",
                {obs::TraceArg::num("addr", req.addr),
                 obs::TraceArg::real(
                     "delay_us", static_cast<double>(delay) / 1e6)});
        }
        // The access itself proceeds normally; only the delivery of
        // its completion is held back by the spike.
        auto cb = std::move(req.onComplete);
        req.onComplete = [this, delay, cb = std::move(cb)](Tick) {
            ++pendingDeliveries_;
            eq_.scheduleIn(delay, [this, cb] {
                fp_assert(pendingDeliveries_ > 0,
                          "fault delivery underflow");
                --pendingDeliveries_;
                if (cb)
                    cb(eq_.now());
            });
        };
        inner_.access(std::move(req));
        return;
    }

    forwarded_.inc();
    inner_.access(std::move(req));
}

void
FaultInjector::resetStats()
{
    lossInjected_.reset();
    errorInjected_.reset();
    spikeInjected_.reset();
    outageDropped_.reset();
    forwarded_.reset();
    spikeDelayUs_.reset();
    inner_.resetStats();
}

} // namespace fp::mem
