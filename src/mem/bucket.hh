/**
 * @file
 * A tree node's bucket: Z slots, each holding a real data block or a
 * dummy. In external memory every slot is occupied (dummies are
 * indistinguishable from data under probabilistic encryption); in the
 * software model we only store the real blocks and know Z.
 */

#ifndef FP_MEM_BUCKET_HH
#define FP_MEM_BUCKET_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"

namespace fp::mem
{

class Bucket
{
  public:
    Bucket() = default;
    explicit Bucket(unsigned z) : z_(z) {}

    unsigned z() const { return z_; }

    /** Number of real data blocks currently held. */
    unsigned occupancy() const
    {
        return static_cast<unsigned>(blocks_.size());
    }

    bool full() const { return occupancy() >= z_; }
    bool empty() const { return blocks_.empty(); }

    /** Add a real block; bucket must not be full. */
    void add(Block block);

    /** All real blocks (dummies are implicit). */
    const std::vector<Block> &blocks() const { return blocks_; }

    /** Move all real blocks out, leaving the bucket empty. */
    std::vector<Block> takeAll();

    /** Drop all real blocks. */
    void clear() { blocks_.clear(); }

  private:
    unsigned z_ = 4;
    std::vector<Block> blocks_;
};

} // namespace fp::mem

#endif // FP_MEM_BUCKET_HH
