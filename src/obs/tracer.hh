/**
 * @file
 * Event tracer emitting Chrome trace-event / Perfetto-compatible JSON
 * (the "JSON object format": {"traceEvents": [...]}). Load the output
 * in https://ui.perfetto.dev or chrome://tracing.
 *
 * Components carry a `Tracer *` (null when tracing is off) and guard
 * every emission with `if (trc_ && trc_->on(level))` — one
 * well-predicted branch on the hot path, nothing else. Events are
 * appended to a bounded in-memory buffer that is flushed to the
 * output file whenever it fills, so memory stays flat regardless of
 * run length.
 *
 * Tracks: the whole simulator is one trace "process"; each component
 * stream is a named "thread" (track). Timestamps are the simulated
 * clock (1 tick = 1 ps) expressed in the trace format's microseconds,
 * so a run's trace depends only on seed + config — byte-identical
 * across repeated runs, which tests/test_obs.cc enforces.
 */

#ifndef FP_OBS_TRACER_HH
#define FP_OBS_TRACER_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/types.hh"

namespace fp::obs
{

/** How much to record; each level includes the ones below. */
enum class TraceLevel : unsigned
{
    off = 0,
    /** Controller phases, scheduling decisions, counter tracks. */
    access = 1,
    /** Plus per-channel DRAM command timing. */
    full = 2,
};

/** Fixed track ids (trace "threads"). */
enum class Track : unsigned
{
    controller = 1, //!< access phase slices (read/refill/park)
    schedule = 2,   //!< label-queue decisions, dummy replacement
    cache = 3,      //!< MAC / treetop / PLB / stash-shortcut hits
    revealed = 4,   //!< adversary-visible access shapes
    stash = 5,      //!< stash occupancy counter track
    queues = 6,     //!< label/address queue occupancy counters
    resilience = 7, //!< fault injections, retries, timeouts, dedups
    requests = 8,   //!< per-request lifecycle async spans (profiler)
    admission = 9,  //!< address-queue admission (policy, batching)
    /** Per-channel DRAM command tracks: dram0 + channel id. */
    dram0 = 16,
};

/** One typed key/value for an event's args object. */
struct TraceArg
{
    enum class Kind { u64, f64, str, boolean };

    const char *key;
    Kind kind;
    std::uint64_t u = 0;
    double d = 0.0;
    const char *s = nullptr;
    bool b = false;

    static TraceArg
    num(const char *key, std::uint64_t v)
    {
        TraceArg a{key, Kind::u64};
        a.u = v;
        return a;
    }
    static TraceArg
    real(const char *key, double v)
    {
        TraceArg a{key, Kind::f64};
        a.d = v;
        return a;
    }
    static TraceArg
    str(const char *key, const char *v)
    {
        TraceArg a{key, Kind::str};
        a.s = v;
        return a;
    }
    static TraceArg
    flag(const char *key, bool v)
    {
        TraceArg a{key, Kind::boolean};
        a.b = v;
        return a;
    }
};

class Tracer
{
  public:
    /**
     * @param path         Output file (created/truncated).
     * @param level        Recording level (off still opens the file
     *                     and produces an empty, valid trace).
     * @param now          The simulation clock (EventQueue::nowPtr()).
     * @param buffer_bytes Flush threshold for the staging buffer.
     */
    Tracer(const std::string &path, TraceLevel level, const Tick *now,
           std::size_t buffer_bytes = 256 * 1024);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True iff events at @p lvl are recorded. */
    bool on(TraceLevel lvl) const { return level_ >= lvl; }

    TraceLevel level() const { return level_; }

    /** Name a track (emits a thread_name metadata event). */
    void nameTrack(Track track, const char *name);

    /** Duration slice [start, end] ("ph":"X"). */
    void complete(Track track, const char *name, Tick start, Tick end,
                  std::initializer_list<TraceArg> args = {});

    /** Zero-duration marker at the current tick ("ph":"i"). */
    void instant(Track track, const char *name,
                 std::initializer_list<TraceArg> args = {});

    /** Counter sample at the current tick ("ph":"C"). A track's
     *  series name is @p name; one value per call. */
    void counter(Track track, const char *name, const char *series,
                 double value);

    /**
     * Async (nestable) event at the current tick: ph "b" (begin),
     * "n" (instant) or "e" (end), correlated across emissions by
     * (@p cat, @p id). This is what lets one logical request be
     * followed across pipeline stages in the trace viewer even
     * though many requests are interleaved on one track.
     */
    void async(Track track, const char *name, const char *ph,
               const char *cat, std::uint64_t id,
               std::initializer_list<TraceArg> args = {});

    void
    asyncBegin(Track track, const char *name, const char *cat,
               std::uint64_t id,
               std::initializer_list<TraceArg> args = {})
    {
        async(track, name, "b", cat, id, args);
    }
    void
    asyncInstant(Track track, const char *name, const char *cat,
                 std::uint64_t id,
                 std::initializer_list<TraceArg> args = {})
    {
        async(track, name, "n", cat, id, args);
    }
    void
    asyncEnd(Track track, const char *name, const char *cat,
             std::uint64_t id,
             std::initializer_list<TraceArg> args = {})
    {
        async(track, name, "e", cat, id, args);
    }

    /** Flush buffered events and close the JSON document. Safe to
     *  call more than once; further events are dropped. On a view
     *  (makeView) this is a no-op: only the root closes the file. */
    void finish();

    std::uint64_t eventsEmitted() const
    {
        return out_ && out_ != this ? out_->events_ : events_;
    }

    /**
     * Create a view of this tracer for a replicated component stack
     * (e.g. one ORAM shard): events emitted through the view land in
     * the same trace file, but on tracks shifted by @p tid_offset, and
     * track names gain @p track_prefix ("s0." turns "controller" into
     * "s0.controller"). Views hold no file state — they must not
     * outlive the tracer they were made from — and chaining
     * makeView on a view composes offsets and prefixes.
     */
    std::unique_ptr<Tracer> makeView(unsigned tid_offset,
                                     std::string track_prefix);

  private:
    /** View constructor (see makeView). */
    Tracer(Tracer *out, unsigned tid_offset, std::string track_prefix);

    /** Track id after applying this view's offset. */
    Track shift(Track track) const
    {
        return static_cast<Track>(static_cast<unsigned>(track) +
                                  tidOffset_);
    }
    bool isView() const { return out_ != this; }

    void begin(Track track, const char *name, const char *ph);
    void beginArgs();
    void appendArg(const TraceArg &a);
    void end();
    void append(const char *s);
    void appendEscaped(const char *s);
    void appendTs(const char *key, Tick t);
    void maybeFlush();

    TraceLevel level_;
    const Tick *now_;
    std::FILE *file_ = nullptr;
    std::string buf_;
    std::size_t flushAt_ = 0;
    std::uint64_t events_ = 0;
    bool finished_ = false;
    /** The tracer owning the file/buffer; `this` on a root tracer. */
    Tracer *out_ = nullptr;
    unsigned tidOffset_ = 0;
    std::string trackPrefix_;
};

} // namespace fp::obs

#endif // FP_OBS_TRACER_HH
