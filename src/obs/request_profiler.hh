/**
 * @file
 * Per-request lifecycle profiler for the Fork Path pipeline.
 *
 * The paper's claim is that path merging, dummy replacing and
 * merging-aware caching remove redundant memory accesses; aggregate
 * throughput alone cannot show *where* each ORAM request spends its
 * time or *how many* accesses each optimization actually removed.
 * This profiler stamps every LLC request with a tick timestamp at
 * each pipeline milestone, folds the resulting spans into per-stage
 * latency histograms (p50/p95/p99/p99.9 via interpolated quantiles),
 * and keeps fork-path effectiveness counters with a derived
 * bytes-saved figure against a naive Path ORAM baseline that would
 * read and refill the full path on every access.
 *
 * Milestones (monotonic per request):
 *
 *   arrival    LLC request admitted to the address queue
 *   issue      label resolved, access entered the label-queue pool
 *   readStart  the request's own path read began (fork point chosen)
 *   readDone   last bucket of the path read arrived
 *   complete   data returned to the LLC
 *
 * The stage partition is the consecutive differences, so the spans
 * sum exactly to the end-to-end latency for every request (a property
 * tests/test_obs.cc enforces):
 *
 *   addr_queue  = issue     - arrival   (hazard / admission wait)
 *   label_queue = readStart - issue     (overlap scheduling wait)
 *   path_read   = readDone  - readStart (backend service, read phase)
 *   completion  = complete  - readDone  (stash install + response)
 *
 * Requests that complete without their own path read (stash
 * shortcuts, MAC data hits, write-forwarding, piggybacked reads,
 * superseded writes) backfill unset milestones with the completion
 * tick, so their whole latency is attributed to the earliest unset
 * stage and the partition invariant still holds. With modelled
 * recursion, readStart/readDone describe the *data* element of the
 * chain; position-map elements are label-queue time.
 *
 * Everything here is passive: components carry a null pointer when
 * profiling is off (--profile-requests), and the golden RunResult
 * identity test pins that the off-path is byte-identical. When a
 * Tracer is attached, each request additionally emits Chrome-trace
 * async events ("b"/"n"/"e", cat "request", id = LLC request id) so
 * one request is followable across stages in the trace viewer.
 */

#ifndef FP_OBS_REQUEST_PROFILER_HH
#define FP_OBS_REQUEST_PROFILER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/tracer.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace fp::obs
{

/** Milestone timestamps of one completed LLC request (ticks). */
struct RequestRecord
{
    std::uint64_t id = 0;
    Tick arrival = 0;
    Tick issue = 0;
    Tick readStart = 0;
    Tick readDone = 0;
    Tick complete = 0;
};

/** Rendered percentile summary of one stage histogram (ns). */
struct ProfileStageSummary
{
    std::string stage;
    std::uint64_t count = 0;
    double meanNs = 0.0;
    double maxNs = 0.0;
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;
    double p999Ns = 0.0;
};

/** Fork-path effectiveness accounting, fed once per ORAM access. */
struct ProfileEffectiveness
{
    std::uint64_t totalAccesses = 0;   //!< real + dummy accesses run
    std::uint64_t mergedAccesses = 0;  //!< read started above level 0
    std::uint64_t readLevelsSkipped = 0;
    std::uint64_t writeLevelsElided = 0;
    std::uint64_t writebacksReplaced = 0; //!< dummy refills given to reals
    std::uint64_t pendingSwaps = 0;
    std::uint64_t onChipBucketReads = 0;  //!< treetop/MAC bucket hits
    std::uint64_t macDataHits = 0;        //!< requests answered by MAC
    std::uint64_t cacheVictimWrites = 0;
    std::uint64_t stashShortcuts = 0;
    /** Buckets a naive Path ORAM would move (2 * L per access). */
    std::uint64_t naivePathBuckets = 0;
    /** Buckets actually moved over the backend (read + write). */
    std::uint64_t backendBuckets = 0;
    std::uint64_t bucketBytes = 0;

    std::uint64_t
    bucketsSaved() const
    {
        return naivePathBuckets > backendBuckets
                   ? naivePathBuckets - backendBuckets
                   : 0;
    }
    std::uint64_t bytesSaved() const
    {
        return bucketsSaved() * bucketBytes;
    }
};

class RequestProfiler
{
  public:
    /**
     * @param now          The simulation clock (EventQueue::nowPtr()).
     * @param bucket_bytes Physical bucket size (bytes-saved scaling).
     */
    RequestProfiler(const Tick *now, std::uint64_t bucket_bytes);

    RequestProfiler(const RequestProfiler &) = delete;
    RequestProfiler &operator=(const RequestProfiler &) = delete;

    /** Attach the event tracer (async request spans; null detaches). */
    void setTracer(Tracer *tracer);

    /** Keep every completed RequestRecord (tests; off by default). */
    void setKeepRecords(bool keep) { keepRecords_ = keep; }

    Tick now() const { return *now_; }

    // --- per-request lifecycle hooks -----------------------------------
    void onArrival(std::uint64_t id);
    void onIssue(std::uint64_t id);
    void onReadStart(std::uint64_t id);
    void onReadDone(std::uint64_t id);
    void onComplete(std::uint64_t id);

    // --- per-access aggregate feeds ------------------------------------
    /** One refill (write phase), [start, end] ticks. */
    void sampleWriteback(Tick start, Tick end);
    /** One backend request's service interval at the memory seam. */
    void sampleBackendService(bool is_write, Tick start, Tick end);
    /** Residency of one real entry in the label queue. */
    void sampleLabelResidency(Tick enqueued, Tick selected);
    /** Blocks the stash supplied for one refilled bucket. */
    void sampleEvictedPerBucket(std::size_t blocks);

    /** One finished ORAM access (real or dummy) with its revealed
     *  shape and the backend buckets it actually moved. */
    void onAccessDone(bool dummy, unsigned read_start_level,
                      unsigned write_stop_level, unsigned num_levels,
                      unsigned backend_buckets_read,
                      unsigned backend_buckets_written);

    void countWritebackReplaced();
    void countPendingSwap();
    void countStashShortcut();
    void countOnChipRead();
    void countMacDataHit();
    void countCacheVictim();

    // --- results --------------------------------------------------------
    std::uint64_t completed() const { return completed_.value(); }
    std::uint64_t openRequests() const { return open_.size(); }
    const ProfileEffectiveness &effectiveness() const { return eff_; }
    const std::vector<RequestRecord> &records() const
    {
        return records_;
    }

    /** Stage names in canonical order: the four partition stages,
     *  total, then the auxiliary service histograms. */
    static const std::vector<std::string> &stageNames();

    const fp::Histogram &stageHistogram(const std::string &stage) const;

    /** Percentile summaries for every stage, canonical order. */
    std::vector<ProfileStageSummary> stageSummaries() const;

    /**
     * Full profile document (--profile-out): stage summaries with
     * their histogram buckets plus the effectiveness block, as one
     * JSON object. tools/report.py renders it as a dashboard.
     */
    std::string reportJson() const;

    /**
     * Fold @p other in, as if its requests had been profiled here:
     * every stage histogram is merged bucket-wise, the completed
     * count and all effectiveness counters are summed. @p other must
     * be drained (no open requests) and share this profiler's bucket
     * size. This is how sim::System rolls the per-shard profilers of
     * a core::ShardedOram up into the single forkpath-profile-v1
     * report.
     */
    void merge(const RequestProfiler &other);

    fp::StatGroup &stats() { return stats_; }

  private:
    struct OpenRecord
    {
        Tick arrival = 0;
        Tick issue = 0;
        Tick readStart = 0;
        Tick readDone = 0;
        bool issued = false;
        bool readStarted = false;
        bool readFinished = false;
    };

    void sampleNs(fp::Histogram &h, Tick start, Tick end);

    const Tick *now_;
    Tracer *trc_ = nullptr;
    bool keepRecords_ = false;

    std::unordered_map<std::uint64_t, OpenRecord> open_;
    std::vector<RequestRecord> records_;

    // Stage latency histograms (ns).
    fp::Histogram addrQueueNs_;
    fp::Histogram labelQueueNs_;
    fp::Histogram pathReadNs_;
    fp::Histogram completionNs_;
    fp::Histogram totalNs_;
    fp::Histogram writebackNs_;
    fp::Histogram backendReadNs_;
    fp::Histogram backendWriteNs_;
    fp::Histogram labelResidencyNs_;
    fp::Histogram evictPerBucket_;

    ProfileEffectiveness eff_;
    fp::Counter completed_;
    fp::Counter cMerged_;
    fp::Counter cReadSkipped_;
    fp::Counter cWriteElided_;
    fp::Counter cReplaced_;
    fp::Counter cSwaps_;
    fp::Counter cOnChip_;
    fp::Counter cMacData_;
    fp::Counter cVictims_;
    fp::Counter cShortcuts_;
    fp::StatGroup stats_;
};

} // namespace fp::obs

#endif // FP_OBS_REQUEST_PROFILER_HH
