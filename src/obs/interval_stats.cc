#include "obs/interval_stats.hh"

#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace fp::obs
{

IntervalStats::IntervalStats(const std::string &path, Tick interval,
                             const StatRegistry &registry)
    : interval_(interval), registry_(registry)
{
    fp_assert(interval_ > 0, "IntervalStats: zero interval");
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fp_fatal("IntervalStats: cannot open '%s' for writing",
                 path.c_str());
}

IntervalStats::~IntervalStats()
{
    close();
}

void
IntervalStats::start(EventQueue &eq, std::function<bool()> keep_going)
{
    keepGoing_ = std::move(keep_going);
    scheduleNext(eq);
}

void
IntervalStats::scheduleNext(EventQueue &eq)
{
    eq.scheduleIn(interval_, [this, &eq] {
        if (closed_ || (keepGoing_ && !keepGoing_()))
            return;
        sample(eq.now());
        scheduleNext(eq);
    });
}

void
IntervalStats::sample(Tick now)
{
    if (closed_)
        return;
    JsonWriter w;
    w.beginObject().field("tick", Tick{now});
    registry_.forEach(
        [&w](const StatGroup &g) { g.writeJsonFields(w); });
    w.endObject();
    std::string line = w.str();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file_);
    ++samples_;
    lastSampleTick_ = now;
}

void
IntervalStats::finish(Tick now)
{
    if (closed_)
        return;
    if (samples_ == 0 || now > lastSampleTick_)
        sample(now);
    close();
}

void
IntervalStats::close()
{
    if (closed_)
        return;
    closed_ = true;
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace fp::obs
