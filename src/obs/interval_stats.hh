/**
 * @file
 * Periodic statistics sampling: every N simulated ticks, snapshot
 * every live StatGroup of one System's StatRegistry into one line of
 * JSON (JSON-lines format), producing time series of the quantities
 * the paper's claims live in — stash depth, label-queue occupancy,
 * overlap-length histogram, DRAM row-hit rate — without touching any
 * simulation state.
 *
 * One line looks like:
 *
 *   {"tick":2000000,"oram_controller.stash_depth":12,
 *    "dram.ch0.row_hits":3141, ...}
 *
 * Counters are cumulative (consumers diff adjacent lines for rates);
 * gauges are instantaneous; averages/histograms render as nested
 * objects. `tools/plot_results.py --stats` turns the file into
 * time-series plots and `tools/validate_trace.py` checks its shape.
 */

#ifndef FP_OBS_INTERVAL_STATS_HH
#define FP_OBS_INTERVAL_STATS_HH

#include <cstdio>
#include <functional>
#include <string>

#include "util/event_queue.hh"
#include "util/types.hh"

namespace fp
{
class StatRegistry;
}

namespace fp::obs
{

class IntervalStats
{
  public:
    /**
     * @param path     Output file (created/truncated).
     * @param interval Sampling period in ticks (> 0).
     * @param registry The stat registry to snapshot (the owning
     *                 System's; must outlive this object).
     */
    IntervalStats(const std::string &path, Tick interval,
                  const StatRegistry &registry);
    ~IntervalStats();

    IntervalStats(const IntervalStats &) = delete;
    IntervalStats &operator=(const IntervalStats &) = delete;

    /**
     * Install the self-rescheduling sampling event on @p eq. Sampling
     * stops (and the chain ends) once @p keep_going returns false;
     * callers typically pass "the run is still in progress".
     */
    void start(EventQueue &eq, std::function<bool()> keep_going);

    /** Write one snapshot line for simulated time @p now. */
    void sample(Tick now);

    /**
     * End-of-run flush: write a final snapshot covering the partial
     * interval since the last periodic sample — but only if @p now is
     * actually past the last sampled tick (a run ending exactly on an
     * interval boundary must not emit a duplicate, which would break
     * the strictly-increasing tick check in tools/validate_trace.py)
     * — then close the file.
     */
    void finish(Tick now);

    /** Flush and close the file; further samples are dropped. */
    void close();

    Tick interval() const { return interval_; }
    std::uint64_t samplesWritten() const { return samples_; }

  private:
    void scheduleNext(EventQueue &eq);

    Tick interval_;
    const StatRegistry &registry_;
    std::FILE *file_ = nullptr;
    std::function<bool()> keepGoing_;
    std::uint64_t samples_ = 0;
    Tick lastSampleTick_ = 0;
    bool closed_ = false;
};

} // namespace fp::obs

#endif // FP_OBS_INTERVAL_STATS_HH
