#include "obs/tracer.hh"

#include <cinttypes>

#include "util/json.hh"
#include "util/logging.hh"

namespace fp::obs
{

Tracer::Tracer(const std::string &path, TraceLevel level,
               const Tick *now, std::size_t buffer_bytes)
    : level_(level), now_(now), flushAt_(buffer_bytes)
{
    out_ = this;
    fp_assert(now_ != nullptr, "Tracer: null clock");
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fp_fatal("Tracer: cannot open '%s' for writing",
                 path.c_str());
    buf_.reserve(flushAt_ + 4096);
    append("{\"traceEvents\":[");
}

Tracer::Tracer(Tracer *out, unsigned tid_offset,
               std::string track_prefix)
    : level_(out->level_), now_(out->now_), out_(out),
      tidOffset_(tid_offset), trackPrefix_(std::move(track_prefix))
{
}

std::unique_ptr<Tracer>
Tracer::makeView(unsigned tid_offset, std::string track_prefix)
{
    // Chained views flatten onto the root so every emission is a
    // single forwarding hop.
    return std::unique_ptr<Tracer>(
        new Tracer(out_, tidOffset_ + tid_offset,
                   trackPrefix_ + std::move(track_prefix)));
}

Tracer::~Tracer()
{
    finish();
}

void
Tracer::append(const char *s)
{
    buf_ += s;
}

void
Tracer::appendEscaped(const char *s)
{
    buf_ += JsonWriter::escape(s);
}

void
Tracer::appendTs(const char *key, Tick t)
{
    // Trace timestamps are microseconds; 1 tick = 1 ps, so six
    // fractional digits preserve full tick resolution.
    char tmp[64];
    std::snprintf(tmp, sizeof(tmp), ",\"%s\":%" PRIu64 ".%06u", key,
                  t / 1'000'000,
                  static_cast<unsigned>(t % 1'000'000));
    buf_ += tmp;
}

void
Tracer::begin(Track track, const char *name, const char *ph)
{
    if (events_ > 0)
        buf_ += ',';
    ++events_;
    buf_ += "{\"name\":\"";
    appendEscaped(name);
    buf_ += "\",\"ph\":\"";
    buf_ += ph;
    buf_ += '"';
    appendTs("ts", *now_);
    char tmp[48];
    std::snprintf(tmp, sizeof(tmp), ",\"pid\":1,\"tid\":%u",
                  static_cast<unsigned>(track));
    buf_ += tmp;
}

void
Tracer::beginArgs()
{
    buf_ += ",\"args\":{";
}

void
Tracer::appendArg(const TraceArg &a)
{
    buf_ += '"';
    appendEscaped(a.key);
    buf_ += "\":";
    char tmp[48];
    switch (a.kind) {
      case TraceArg::Kind::u64:
        std::snprintf(tmp, sizeof(tmp), "%" PRIu64, a.u);
        buf_ += tmp;
        break;
      case TraceArg::Kind::f64:
        std::snprintf(tmp, sizeof(tmp), "%.12g", a.d);
        buf_ += tmp;
        break;
      case TraceArg::Kind::str:
        buf_ += '"';
        appendEscaped(a.s);
        buf_ += '"';
        break;
      case TraceArg::Kind::boolean:
        buf_ += a.b ? "true" : "false";
        break;
    }
}

void
Tracer::end()
{
    buf_ += '}';
    maybeFlush();
}

void
Tracer::maybeFlush()
{
    if (buf_.size() < flushAt_)
        return;
    std::fwrite(buf_.data(), 1, buf_.size(), file_);
    buf_.clear();
}

void
Tracer::nameTrack(Track track, const char *name)
{
    if (isView()) {
        out_->nameTrack(shift(track), (trackPrefix_ + name).c_str());
        return;
    }
    if (finished_ || level_ == TraceLevel::off)
        return;
    begin(track, "thread_name", "M");
    beginArgs();
    appendArg(TraceArg::str("name", name));
    buf_ += '}';
    end();
}

void
Tracer::complete(Track track, const char *name, Tick start, Tick end_tick,
                 std::initializer_list<TraceArg> args)
{
    if (isView()) {
        out_->complete(shift(track), name, start, end_tick, args);
        return;
    }
    if (finished_ || level_ == TraceLevel::off)
        return;
    fp_assert(end_tick >= start, "Tracer: negative slice duration");
    if (events_ > 0)
        buf_ += ',';
    ++events_;
    buf_ += "{\"name\":\"";
    appendEscaped(name);
    buf_ += "\",\"ph\":\"X\"";
    appendTs("ts", start);
    appendTs("dur", end_tick - start);
    char tmp[48];
    std::snprintf(tmp, sizeof(tmp), ",\"pid\":1,\"tid\":%u",
                  static_cast<unsigned>(track));
    buf_ += tmp;
    if (args.size() > 0) {
        beginArgs();
        bool first = true;
        for (const TraceArg &a : args) {
            if (!first)
                buf_ += ',';
            first = false;
            appendArg(a);
        }
        buf_ += '}';
    }
    end();
}

void
Tracer::instant(Track track, const char *name,
                std::initializer_list<TraceArg> args)
{
    if (isView()) {
        out_->instant(shift(track), name, args);
        return;
    }
    if (finished_ || level_ == TraceLevel::off)
        return;
    begin(track, name, "i");
    buf_ += ",\"s\":\"t\"";
    if (args.size() > 0) {
        beginArgs();
        bool first = true;
        for (const TraceArg &a : args) {
            if (!first)
                buf_ += ',';
            first = false;
            appendArg(a);
        }
        buf_ += '}';
    }
    end();
}

void
Tracer::async(Track track, const char *name, const char *ph,
              const char *cat, std::uint64_t id,
              std::initializer_list<TraceArg> args)
{
    if (isView()) {
        out_->async(shift(track), name, ph, cat, id, args);
        return;
    }
    if (finished_ || level_ == TraceLevel::off)
        return;
    begin(track, name, ph);
    buf_ += ",\"cat\":\"";
    appendEscaped(cat);
    buf_ += '"';
    char tmp[48];
    std::snprintf(tmp, sizeof(tmp), ",\"id\":%" PRIu64, id);
    buf_ += tmp;
    if (args.size() > 0) {
        beginArgs();
        bool first = true;
        for (const TraceArg &a : args) {
            if (!first)
                buf_ += ',';
            first = false;
            appendArg(a);
        }
        buf_ += '}';
    }
    end();
}

void
Tracer::counter(Track track, const char *name, const char *series,
                double value)
{
    if (isView()) {
        out_->counter(shift(track), name, series, value);
        return;
    }
    if (finished_ || level_ == TraceLevel::off)
        return;
    begin(track, name, "C");
    beginArgs();
    appendArg(TraceArg::real(series, value));
    buf_ += '}';
    end();
}

void
Tracer::finish()
{
    if (isView() || finished_)
        return;
    finished_ = true;
    buf_ += "],\"displayTimeUnit\":\"ns\"}\n";
    std::fwrite(buf_.data(), 1, buf_.size(), file_);
    buf_.clear();
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace fp::obs
