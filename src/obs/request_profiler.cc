#include "obs/request_profiler.hh"

#include <algorithm>

#include "util/json.hh"
#include "util/logging.hh"

namespace fp::obs
{

namespace
{

// Stage histogram shape: 1024 linear buckets of 250 ns cover latencies
// up to 256 us before the overflow bucket — wide enough for network
// backends, fine enough that DRAM-scale percentiles interpolate well.
constexpr std::size_t kStageBuckets = 1024;
constexpr double kStageWidthNs = 250.0;

} // anonymous namespace

RequestProfiler::RequestProfiler(const Tick *now,
                                 std::uint64_t bucket_bytes)
    : now_(now),
      addrQueueNs_(kStageBuckets, kStageWidthNs),
      labelQueueNs_(kStageBuckets, kStageWidthNs),
      pathReadNs_(kStageBuckets, kStageWidthNs),
      completionNs_(kStageBuckets, kStageWidthNs),
      totalNs_(kStageBuckets, kStageWidthNs),
      writebackNs_(kStageBuckets, kStageWidthNs),
      backendReadNs_(kStageBuckets, kStageWidthNs),
      backendWriteNs_(kStageBuckets, kStageWidthNs),
      labelResidencyNs_(kStageBuckets, kStageWidthNs),
      evictPerBucket_(16, 1.0),
      stats_("request_profiler")
{
    fp_assert(now_ != nullptr, "RequestProfiler: null clock");
    eff_.bucketBytes = bucket_bytes;
    stats_.regCounter("completed_requests", completed_,
                      "LLC requests with a full lifecycle record");
    stats_.regHistogram("addr_queue_ns", addrQueueNs_,
                        "arrival to issue (admission/hazard wait)");
    stats_.regHistogram("label_queue_ns", labelQueueNs_,
                        "issue to own path-read start");
    stats_.regHistogram("path_read_ns", pathReadNs_,
                        "path-read start to last bucket");
    stats_.regHistogram("completion_ns", completionNs_,
                        "read done to LLC response");
    stats_.regHistogram("total_ns", totalNs_,
                        "end-to-end request latency");
    stats_.regHistogram("writeback_ns", writebackNs_,
                        "refill (write phase) duration");
    stats_.regHistogram("backend_read_ns", backendReadNs_,
                        "memory-backend read service time");
    stats_.regHistogram("backend_write_ns", backendWriteNs_,
                        "memory-backend write service time");
    stats_.regHistogram("label_residency_ns", labelResidencyNs_,
                        "real label wait in the label queue");
    stats_.regHistogram("evict_per_bucket", evictPerBucket_,
                        "stash blocks evicted per refilled bucket");
    stats_.regCounter("merged_accesses", cMerged_,
                      "accesses whose read started above level 0");
    stats_.regCounter("read_levels_skipped", cReadSkipped_,
                      "path-read levels elided by merging");
    stats_.regCounter("write_levels_elided", cWriteElided_,
                      "refill levels elided by early stop");
    stats_.regCounter("writebacks_replaced", cReplaced_,
                      "dummy refill slots handed to real accesses");
    stats_.regCounter("pending_swaps", cSwaps_,
                      "real label swapped into the pending slot");
    stats_.regCounter("onchip_bucket_reads", cOnChip_,
                      "bucket reads served by treetop/MAC");
    stats_.regCounter("mac_data_hits", cMacData_,
                      "requests answered from the merging cache");
    stats_.regCounter("cache_victim_writes", cVictims_,
                      "MAC victims written back to the backend");
    stats_.regCounter("stash_shortcuts", cShortcuts_,
                      "requests answered from the stash");
}

void
RequestProfiler::setTracer(Tracer *tracer)
{
    trc_ = tracer;
    if (trc_)
        trc_->nameTrack(Track::requests, "requests");
}

void
RequestProfiler::sampleNs(fp::Histogram &h, Tick start, Tick end)
{
    fp_assert(end >= start, "RequestProfiler: negative span");
    h.sample(ticksToNs(end - start));
}

void
RequestProfiler::onArrival(std::uint64_t id)
{
    OpenRecord &r = open_[id];
    r.arrival = *now_;
    if (trc_)
        trc_->asyncBegin(Track::requests, "request", "request", id,
                         {TraceArg::num("id", id)});
}

void
RequestProfiler::onIssue(std::uint64_t id)
{
    auto it = open_.find(id);
    if (it == open_.end() || it->second.issued)
        return;
    it->second.issue = *now_;
    it->second.issued = true;
    if (trc_)
        trc_->asyncInstant(Track::requests, "issue", "request", id);
}

void
RequestProfiler::onReadStart(std::uint64_t id)
{
    auto it = open_.find(id);
    if (it == open_.end() || it->second.readStarted)
        return;
    // A request can reach its path read without an explicit issue
    // stamp (e.g. admitted and scheduled in the same pump); close the
    // earlier milestone here so the stage partition stays exact.
    if (!it->second.issued) {
        it->second.issue = *now_;
        it->second.issued = true;
    }
    it->second.readStart = *now_;
    it->second.readStarted = true;
    if (trc_)
        trc_->asyncInstant(Track::requests, "read_start", "request",
                           id);
}

void
RequestProfiler::onReadDone(std::uint64_t id)
{
    auto it = open_.find(id);
    if (it == open_.end() || it->second.readFinished)
        return;
    if (!it->second.readStarted)
        return;
    it->second.readDone = *now_;
    it->second.readFinished = true;
    if (trc_)
        trc_->asyncInstant(Track::requests, "read_done", "request",
                           id);
}

void
RequestProfiler::onComplete(std::uint64_t id)
{
    auto it = open_.find(id);
    if (it == open_.end())
        return;
    OpenRecord r = it->second;
    open_.erase(it);

    Tick done = *now_;
    // Requests answered without their own path read (forwarding,
    // stash shortcut, MAC data hit, piggyback) backfill the unset
    // milestones with the completion tick: the whole latency lands in
    // the earliest unset stage and the partition still sums exactly.
    if (!r.issued)
        r.issue = done;
    if (!r.readStarted)
        r.readStart = std::max(r.issue, done);
    if (!r.readFinished)
        r.readDone = std::max(r.readStart, done);

    sampleNs(addrQueueNs_, r.arrival, r.issue);
    sampleNs(labelQueueNs_, r.issue, r.readStart);
    sampleNs(pathReadNs_, r.readStart, r.readDone);
    sampleNs(completionNs_, r.readDone, done);
    sampleNs(totalNs_, r.arrival, done);
    completed_.inc();

    if (keepRecords_)
        records_.push_back(
            {id, r.arrival, r.issue, r.readStart, r.readDone, done});
    if (trc_)
        trc_->asyncEnd(
            Track::requests, "request", "request", id,
            {TraceArg::real("total_ns", ticksToNs(done - r.arrival))});
}

void
RequestProfiler::sampleWriteback(Tick start, Tick end)
{
    sampleNs(writebackNs_, start, end);
}

void
RequestProfiler::sampleBackendService(bool is_write, Tick start,
                                      Tick end)
{
    sampleNs(is_write ? backendWriteNs_ : backendReadNs_, start, end);
}

void
RequestProfiler::sampleLabelResidency(Tick enqueued, Tick selected)
{
    sampleNs(labelResidencyNs_, enqueued, selected);
}

void
RequestProfiler::sampleEvictedPerBucket(std::size_t blocks)
{
    evictPerBucket_.sample(static_cast<double>(blocks));
}

void
RequestProfiler::onAccessDone(bool dummy, unsigned read_start_level,
                              unsigned write_stop_level,
                              unsigned num_levels,
                              unsigned backend_buckets_read,
                              unsigned backend_buckets_written)
{
    ++eff_.totalAccesses;
    if (read_start_level > 0) {
        ++eff_.mergedAccesses;
        cMerged_.inc();
    }
    eff_.readLevelsSkipped += read_start_level;
    cReadSkipped_.inc(read_start_level);
    eff_.writeLevelsElided += write_stop_level;
    cWriteElided_.inc(write_stop_level);
    // The naive baseline reads and refills the full path every
    // access; dummies included, since a traditional ORAM cannot skip
    // them either.
    eff_.naivePathBuckets += 2ull * num_levels;
    eff_.backendBuckets += backend_buckets_read + backend_buckets_written;
    (void)dummy;
}

void
RequestProfiler::countWritebackReplaced()
{
    ++eff_.writebacksReplaced;
    cReplaced_.inc();
}

void
RequestProfiler::countPendingSwap()
{
    ++eff_.pendingSwaps;
    cSwaps_.inc();
}

void
RequestProfiler::countStashShortcut()
{
    ++eff_.stashShortcuts;
    cShortcuts_.inc();
}

void
RequestProfiler::countOnChipRead()
{
    ++eff_.onChipBucketReads;
    cOnChip_.inc();
}

void
RequestProfiler::countMacDataHit()
{
    ++eff_.macDataHits;
    cMacData_.inc();
}

void
RequestProfiler::countCacheVictim()
{
    ++eff_.cacheVictimWrites;
    cVictims_.inc();
}

void
RequestProfiler::merge(const RequestProfiler &other)
{
    fp_assert(other.open_.empty(),
              "RequestProfiler::merge: source still has %zu open "
              "requests",
              other.open_.size());
    fp_assert(eff_.bucketBytes == other.eff_.bucketBytes,
              "RequestProfiler::merge: bucket size mismatch "
              "(%llu vs %llu)",
              static_cast<unsigned long long>(eff_.bucketBytes),
              static_cast<unsigned long long>(other.eff_.bucketBytes));

    addrQueueNs_.merge(other.addrQueueNs_);
    labelQueueNs_.merge(other.labelQueueNs_);
    pathReadNs_.merge(other.pathReadNs_);
    completionNs_.merge(other.completionNs_);
    totalNs_.merge(other.totalNs_);
    writebackNs_.merge(other.writebackNs_);
    backendReadNs_.merge(other.backendReadNs_);
    backendWriteNs_.merge(other.backendWriteNs_);
    labelResidencyNs_.merge(other.labelResidencyNs_);
    evictPerBucket_.merge(other.evictPerBucket_);

    if (keepRecords_)
        records_.insert(records_.end(), other.records_.begin(),
                        other.records_.end());

    completed_.inc(other.completed_.value());
    cMerged_.inc(other.cMerged_.value());
    cReadSkipped_.inc(other.cReadSkipped_.value());
    cWriteElided_.inc(other.cWriteElided_.value());
    cReplaced_.inc(other.cReplaced_.value());
    cSwaps_.inc(other.cSwaps_.value());
    cOnChip_.inc(other.cOnChip_.value());
    cMacData_.inc(other.cMacData_.value());
    cVictims_.inc(other.cVictims_.value());
    cShortcuts_.inc(other.cShortcuts_.value());

    eff_.totalAccesses += other.eff_.totalAccesses;
    eff_.mergedAccesses += other.eff_.mergedAccesses;
    eff_.readLevelsSkipped += other.eff_.readLevelsSkipped;
    eff_.writeLevelsElided += other.eff_.writeLevelsElided;
    eff_.writebacksReplaced += other.eff_.writebacksReplaced;
    eff_.pendingSwaps += other.eff_.pendingSwaps;
    eff_.onChipBucketReads += other.eff_.onChipBucketReads;
    eff_.macDataHits += other.eff_.macDataHits;
    eff_.cacheVictimWrites += other.eff_.cacheVictimWrites;
    eff_.stashShortcuts += other.eff_.stashShortcuts;
    eff_.naivePathBuckets += other.eff_.naivePathBuckets;
    eff_.backendBuckets += other.eff_.backendBuckets;
}

const std::vector<std::string> &
RequestProfiler::stageNames()
{
    static const std::vector<std::string> names = {
        "addr_queue",    "label_queue",     "path_read",
        "completion",    "total",           "writeback",
        "backend_read",  "backend_write",   "label_residency",
        "evict_per_bucket",
    };
    return names;
}

const fp::Histogram &
RequestProfiler::stageHistogram(const std::string &stage) const
{
    if (stage == "addr_queue")
        return addrQueueNs_;
    if (stage == "label_queue")
        return labelQueueNs_;
    if (stage == "path_read")
        return pathReadNs_;
    if (stage == "completion")
        return completionNs_;
    if (stage == "total")
        return totalNs_;
    if (stage == "writeback")
        return writebackNs_;
    if (stage == "backend_read")
        return backendReadNs_;
    if (stage == "backend_write")
        return backendWriteNs_;
    if (stage == "label_residency")
        return labelResidencyNs_;
    if (stage == "evict_per_bucket")
        return evictPerBucket_;
    fp_fatal("RequestProfiler: unknown stage '%s'", stage.c_str());
}

std::vector<ProfileStageSummary>
RequestProfiler::stageSummaries() const
{
    std::vector<ProfileStageSummary> out;
    out.reserve(stageNames().size());
    for (const std::string &name : stageNames()) {
        const fp::Histogram &h = stageHistogram(name);
        ProfileStageSummary s;
        s.stage = name;
        s.count = h.count();
        s.meanNs = h.mean();
        s.maxNs = h.max();
        s.p50Ns = h.percentile(0.50);
        s.p95Ns = h.percentile(0.95);
        s.p99Ns = h.percentile(0.99);
        s.p999Ns = h.percentile(0.999);
        out.push_back(std::move(s));
    }
    return out;
}

std::string
RequestProfiler::reportJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "forkpath-profile-v1");
    w.field("completed_requests", completed_.value());
    w.field("open_requests",
            static_cast<std::uint64_t>(open_.size()));
    w.key("stages").beginArray();
    for (const ProfileStageSummary &s : stageSummaries()) {
        const fp::Histogram &h = stageHistogram(s.stage);
        w.beginObject()
            .field("stage", s.stage)
            .field("count", s.count)
            .field("mean_ns", s.meanNs)
            .field("max_ns", s.maxNs)
            .field("p50_ns", s.p50Ns)
            .field("p95_ns", s.p95Ns)
            .field("p99_ns", s.p99Ns)
            .field("p999_ns", s.p999Ns)
            .field("bucket_width", h.bucketWidth())
            .field("underflow", h.underflow())
            .field("overflow", h.overflow());
        w.key("buckets").beginArray();
        for (std::uint64_t b : h.buckets())
            w.value(b);
        w.endArray().endObject();
    }
    w.endArray();
    w.key("effectiveness").beginObject();
    w.field("total_accesses", eff_.totalAccesses)
        .field("merged_accesses", eff_.mergedAccesses)
        .field("read_levels_skipped", eff_.readLevelsSkipped)
        .field("write_levels_elided", eff_.writeLevelsElided)
        .field("writebacks_replaced", eff_.writebacksReplaced)
        .field("pending_swaps", eff_.pendingSwaps)
        .field("onchip_bucket_reads", eff_.onChipBucketReads)
        .field("mac_data_hits", eff_.macDataHits)
        .field("cache_victim_writes", eff_.cacheVictimWrites)
        .field("stash_shortcuts", eff_.stashShortcuts)
        .field("naive_path_buckets", eff_.naivePathBuckets)
        .field("backend_buckets", eff_.backendBuckets)
        .field("bucket_bytes", eff_.bucketBytes)
        .field("buckets_saved", eff_.bucketsSaved())
        .field("bytes_saved", eff_.bytesSaved());
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace fp::obs
