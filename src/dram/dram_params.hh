/**
 * @file
 * DDR3 timing, organization and energy parameters, DRAMSim2-style.
 *
 * All timing fields are in DRAM clock cycles; tCkTicks converts to the
 * global picosecond time base. The defaults model DDR3-1600 (800 MHz
 * clock, 11-11-11), the part the paper's DRAMSim2 configuration uses,
 * with 8 banks, 8 KB rows and a 64-bit channel (64 B per BL8 burst).
 *
 * Energy constants approximate a Micron DDR3 x8 power calculator at
 * the rank level; see DESIGN.md for why only their relative magnitude
 * matters for the reproduced figures.
 */

#ifndef FP_DRAM_DRAM_PARAMS_HH
#define FP_DRAM_DRAM_PARAMS_HH

#include <cstdint>

#include "util/types.hh"

namespace fp::dram
{

struct DramTiming
{
    Tick tCkTicks = 1250;   //!< 800 MHz DDR3-1600 clock.

    unsigned cl = 11;       //!< CAS latency (read).
    unsigned cwl = 8;       //!< CAS write latency.
    unsigned tRCD = 11;     //!< ACT to CAS.
    unsigned tRP = 11;      //!< PRE to ACT.
    unsigned tRAS = 28;     //!< ACT to PRE (minimum row open time).
    unsigned tBURST = 4;    //!< BL8 data transfer (4 clocks, 8 beats).
    unsigned tCCD = 4;      //!< CAS to CAS.
    unsigned tRRD = 6;      //!< ACT to ACT, different banks.
    unsigned tFAW = 32;     //!< Four-activate window.
    unsigned tWTR = 6;      //!< Write-to-read turnaround.
    unsigned tRTRS = 2;     //!< Bus turnaround (read-to-write gap).
    unsigned tRTP = 6;      //!< Read to PRE.
    unsigned tWR = 12;      //!< Write recovery before PRE.
    unsigned tREFI = 6240;  //!< Refresh interval (7.8 us).
    unsigned tRFC = 208;    //!< Refresh cycle time (260 ns).

    Tick cycles(unsigned n) const { return tCkTicks * n; }

    /**
     * Data-bus idle time forced between a read burst and a following
     * write burst. The earliest write CAS after a read CAS is
     * CL + tBURST + tRTRS - CWL cycles later (JEDEC read-to-write
     * spacing), so its data — CWL after the CAS — trails the end of
     * the read burst (CL + tBURST after the read CAS) by exactly
     * tRTRS. Distinct from tWTR, which constrains the *opposite*
     * switch (write data to read CAS) and is longer because the write
     * must reach the array before the bank can be read.
     */
    Tick readToWriteGap() const { return cycles(tRTRS); }
};

/** Row-buffer management policy. */
enum class PagePolicy
{
    open,   //!< Keep rows open; FR-FCFS exploits hits.
    closed, //!< Auto-precharge after every access.
};

/** Byte-address decomposition scheme. */
enum class AddressMapPolicy
{
    /** Rows interleave across channels, then banks (default: keeps
     *  one ORAM subtree inside one row of one channel). */
    rowInterleaved,
    /** Cache-line interleave across channels first (classic
     *  insecure-system mapping; scatters subtrees). */
    lineInterleaved,
};

struct DramOrganization
{
    unsigned channels = 2;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;
    std::uint64_t rowBytes = 8192;
    std::uint64_t burstBytes = 64;  //!< One BL8 burst on a x64 bus.
    AddressMapPolicy mapPolicy = AddressMapPolicy::rowInterleaved;

    unsigned banksTotal() const { return ranksPerChannel * banksPerRank; }

    /** Peak bandwidth in bytes/second across all channels. */
    double peakBandwidth(const DramTiming &t) const;
};

struct DramEnergyParams
{
    double actPreNj = 2.1;        //!< One ACT+PRE pair.
    double readBurstNj = 4.8;     //!< One 64 B read burst.
    double writeBurstNj = 5.2;    //!< One 64 B write burst.
    double refreshNj = 28.0;      //!< One all-bank refresh.
    double backgroundMwPerRank = 120.0; //!< Standby + periph power.
};

struct DramParams
{
    DramTiming timing;
    DramOrganization org;
    DramEnergyParams energy;

    /** Scheduler window: how deep FR-FCFS looks for a row hit. */
    unsigned schedulerWindow = 16;

    /** Row-buffer policy. */
    PagePolicy pagePolicy = PagePolicy::open;

    /** The paper's configuration: DDR3-1600, 2 channels. */
    static DramParams ddr3_1600(unsigned channels = 2);
};

} // namespace fp::dram

#endif // FP_DRAM_DRAM_PARAMS_HH
