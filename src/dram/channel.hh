/**
 * @file
 * One DRAM channel: a transaction queue scheduled FR-FCFS (first-ready
 * row hits bypass older row misses, within a bounded window), the
 * shared data bus, the tRRD/tFAW activate-rate window, and lazy
 * refresh accounting.
 */

#ifndef FP_DRAM_CHANNEL_HH
#define FP_DRAM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dram/address_mapping.hh"
#include "dram/bank.hh"
#include "dram/dram_params.hh"
#include "obs/tracer.hh"
#include "util/event_queue.hh"
#include "util/stats.hh"

namespace fp::dram
{

/** A memory transaction as seen by a channel. */
struct Transaction
{
    std::uint64_t row = 0;
    unsigned bank = 0;
    bool isWrite = false;
    unsigned bursts = 1;
    Tick enqueued = 0;
    std::function<void(Tick)> onComplete;
};

class Channel
{
  public:
    Channel(unsigned id, const DramParams &params, EventQueue &eq);

    /** Queue a transaction; the channel schedules it when ready. */
    void enqueue(Transaction tx);

    std::size_t queueDepth() const { return queue_.size(); }
    bool idle() const { return !issuing_ && queue_.empty(); }

    // --- statistics ---------------------------------------------------
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t readBursts() const { return readBursts_.value(); }
    std::uint64_t writeBursts() const { return writeBursts_.value(); }
    std::uint64_t activates() const { return rowMisses_.value(); }
    const fp::Histogram &latency() const { return latency_; }
    fp::StatGroup &stats() { return stats_; }
    void resetStats();

    /** Attach the event tracer (per-command track, level `full`). */
    void setTracer(obs::Tracer *tracer);

  private:
    /** Try to issue the next transaction if the scheduler is free. */
    void kick();

    /** FR-FCFS pick: index into queue_ of the transaction to issue. */
    std::size_t pickNext() const;

    /** Apply lazy refresh: close rows across a tREFI boundary and
     *  return the earliest start time given any in-progress refresh. */
    Tick refreshConstraint(Tick now);

    unsigned id_;
    DramParams p_;
    EventQueue &eq_;
    obs::Tracer *trc_ = nullptr;

    std::vector<Bank> banks_;
    std::deque<Transaction> queue_;

    bool issuing_ = false;
    Tick dataBusFreeAt_ = 0;
    Tick lastRefreshEpoch_ = 0;

    /** Completion times of the last ACTs, for tRRD/tFAW. */
    Tick lastActAt_ = 0;
    std::deque<Tick> actWindow_;

    /**
     * Direction of the last data transfer, for bus turnaround. The
     * two switch directions cost differently (write->read pays tWTR,
     * read->write only the tRTRS bus gap), and the very first
     * transfer pays nothing at all.
     */
    enum class BusDir { none, read, write };
    BusDir lastDir_ = BusDir::none;

    fp::Counter rowHits_;
    fp::Counter rowMisses_;
    fp::Counter readBursts_;
    fp::Counter writeBursts_;
    fp::Histogram latency_;
    fp::StatGroup stats_;
};

} // namespace fp::dram

#endif // FP_DRAM_CHANNEL_HH
