#include "dram/bank.hh"

#include <algorithm>

namespace fp::dram
{

Bank::Bank(const DramTiming &timing, PagePolicy policy)
    : t_(timing), policy_(policy)
{
}

AccessPlan
Bank::plan(std::uint64_t row, bool is_write, Tick earliest,
           Tick act_allowed_at) const
{
    AccessPlan p;
    if (openRowValid_ && openRow_ == row) {
        p.rowHit = true;
        p.casAt = std::max(earliest, nextCasAt_);
    } else {
        // Row miss: PRE (if a row is open) then ACT then CAS.
        Tick pre_at = earliest;
        Tick act_at;
        if (openRowValid_) {
            pre_at = std::max({earliest, preReadyAt_,
                               actTick_ + t_.cycles(t_.tRAS)});
            act_at = pre_at + t_.cycles(t_.tRP);
        } else {
            // Closed bank: wait out any in-flight auto-precharge.
            act_at = std::max(earliest, actReadyAt_);
        }
        act_at = std::max(act_at, act_allowed_at);
        p.actAt = act_at;
        p.casAt = act_at + t_.cycles(t_.tRCD);
    }
    p.firstData =
        p.casAt + t_.cycles(is_write ? t_.cwl : t_.cl);
    return p;
}

void
Bank::commit(const AccessPlan &plan, std::uint64_t row, bool is_write,
             unsigned num_bursts)
{
    if (!plan.rowHit)
        actTick_ = plan.actAt;
    openRowValid_ = true;
    openRow_ = row;

    Tick last_cas =
        plan.casAt + t_.cycles(t_.tCCD) * (num_bursts - 1);
    nextCasAt_ = last_cas + t_.cycles(t_.tCCD);

    if (is_write) {
        // PRE must wait for write recovery after the last data beat.
        preReadyAt_ = last_cas + t_.cycles(t_.cwl) +
                      t_.cycles(t_.tBURST) + t_.cycles(t_.tWR);
    } else {
        preReadyAt_ = last_cas + t_.cycles(t_.tRTP);
    }

    if (policy_ == PagePolicy::closed) {
        // Auto-precharge: the row closes itself after recovery; the
        // next ACT must additionally wait tRP from that point.
        openRowValid_ = false;
        actReadyAt_ = std::max({preReadyAt_,
                                actTick_ + t_.cycles(t_.tRAS)}) +
                      t_.cycles(t_.tRP);
    }
}

} // namespace fp::dram
