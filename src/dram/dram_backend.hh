/**
 * @file
 * The DRAM timing model behind the mem::MemoryBackend seam: a thin,
 * non-owning adapter that translates byte-sized BackendRequests into
 * burst-counted DramRequests. The adapter adds no timing of its own,
 * so a controller driven through it is cycle-identical to one that
 * talked to the DramSystem directly (tests/test_backend.cc pins this
 * with a golden RunResult).
 */

#ifndef FP_DRAM_DRAM_BACKEND_HH
#define FP_DRAM_DRAM_BACKEND_HH

#include "dram/dram_system.hh"
#include "mem/backend.hh"

namespace fp::dram
{

class DramBackend final : public mem::MemoryBackend
{
  public:
    explicit DramBackend(DramSystem &dram) : dram_(dram) {}

    void access(mem::BackendRequest req) override;

    bool idle() const override { return dram_.idle(); }
    std::size_t queueDepth() const override
    {
        return dram_.queueDepth();
    }

    mem::BackendStats statsSnapshot() const override;
    void setTracer(obs::Tracer *tracer) override
    {
        dram_.setTracer(tracer);
    }
    void setProfiler(obs::RequestProfiler *prof) override
    {
        prof_ = prof;
    }
    void resetStats() override { dram_.resetStats(); }

    std::uint64_t burstBytes() const override
    {
        return dram_.params().org.burstBytes;
    }
    std::uint64_t rowBytes() const override
    {
        return dram_.params().org.rowBytes;
    }
    const char *kind() const override { return "dram"; }

    DramSystem &dram() { return dram_; }

  private:
    DramSystem &dram_;
    obs::RequestProfiler *prof_ = nullptr;
};

} // namespace fp::dram

#endif // FP_DRAM_DRAM_BACKEND_HH
