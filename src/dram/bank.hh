/**
 * @file
 * Per-bank row-buffer state machine.
 *
 * The bank tracks its open row plus the earliest ticks at which the
 * next CAS, PRE and ACT may legally be issued given the previous
 * commands (tRCD/tRP/tRAS/tWR/tRTP/tCCD). The channel scheduler asks
 * the bank for the timeline of a candidate access without committing,
 * then commits the chosen one.
 */

#ifndef FP_DRAM_BANK_HH
#define FP_DRAM_BANK_HH

#include <cstdint>

#include "dram/dram_params.hh"
#include "util/types.hh"

namespace fp::dram
{

/** The command timeline of one scheduled access. */
struct AccessPlan
{
    bool rowHit = false;
    Tick actAt = 0;    //!< ACT issue time (0 and unused on a hit).
    Tick casAt = 0;    //!< First CAS issue time.
    Tick firstData = 0;//!< When the first burst may start (CAS + CL).
};

class Bank
{
  public:
    Bank(const DramTiming &timing,
         PagePolicy policy = PagePolicy::open);

    /**
     * Compute when an access to @p row could issue its commands if
     * started no earlier than @p earliest, given an ACT-rate
     * constraint @p act_allowed_at from the channel (tRRD/tFAW).
     * Does not modify the bank.
     */
    AccessPlan plan(std::uint64_t row, bool is_write, Tick earliest,
                    Tick act_allowed_at) const;

    /**
     * Commit a planned access of @p num_bursts bursts.
     * @return the tick at which the last data beat could complete if
     * the data bus were free (the channel applies bus contention on
     * top).
     */
    void commit(const AccessPlan &plan, std::uint64_t row,
                bool is_write, unsigned num_bursts);

    bool rowOpen() const { return openRowValid_; }
    std::uint64_t openRow() const { return openRow_; }

    /** Forget the open row (used to approximate refresh closure). */
    void closeRow() { openRowValid_ = false; }

  private:
    const DramTiming &t_;
    PagePolicy policy_;

    bool openRowValid_ = false;
    std::uint64_t openRow_ = 0;

    Tick actTick_ = 0;        //!< Last ACT time (for tRAS).
    Tick nextCasAt_ = 0;      //!< Earliest next CAS (tCCD chain).
    Tick preReadyAt_ = 0;     //!< Earliest PRE (tRTP / tWR rules).
    Tick actReadyAt_ = 0;     //!< Earliest ACT after auto-precharge.
};

} // namespace fp::dram

#endif // FP_DRAM_BANK_HH
