#include "dram/dram_system.hh"

#include "util/logging.hh"

namespace fp::dram
{

DramSystem::DramSystem(const DramParams &params, EventQueue &eq)
    : params_(params), eq_(eq), mapping_(params.org)
{
    for (unsigned c = 0; c < params_.org.channels; ++c)
        channels_.push_back(std::make_unique<Channel>(c, params_, eq));
}

void
DramSystem::access(DramRequest req)
{
    DramLocation loc = mapping_.decode(req.addr);
    Transaction tx;
    tx.row = loc.row;
    tx.bank = loc.bank;
    tx.isWrite = req.isWrite;
    tx.bursts = req.bursts;
    tx.onComplete = std::move(req.onComplete);
    channels_[loc.channel]->enqueue(std::move(tx));
}

bool
DramSystem::idle() const
{
    for (const auto &ch : channels_)
        if (!ch->idle())
            return false;
    return true;
}

std::size_t
DramSystem::queueDepth() const
{
    std::size_t total = 0;
    for (const auto &ch : channels_)
        total += ch->queueDepth();
    return total;
}

std::uint64_t
DramSystem::rowHits() const
{
    std::uint64_t v = 0;
    for (const auto &ch : channels_)
        v += ch->rowHits();
    return v;
}

std::uint64_t
DramSystem::rowMisses() const
{
    std::uint64_t v = 0;
    for (const auto &ch : channels_)
        v += ch->rowMisses();
    return v;
}

std::uint64_t
DramSystem::readBursts() const
{
    std::uint64_t v = 0;
    for (const auto &ch : channels_)
        v += ch->readBursts();
    return v;
}

std::uint64_t
DramSystem::writeBursts() const
{
    std::uint64_t v = 0;
    for (const auto &ch : channels_)
        v += ch->writeBursts();
    return v;
}

double
DramSystem::avgLatencyNs() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &ch : channels_) {
        sum += ch->latency().mean() *
               static_cast<double>(ch->latency().count());
        n += ch->latency().count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

EnergyBreakdown
DramSystem::energy(Tick now) const
{
    const auto &e = params_.energy;
    EnergyBreakdown out;
    out.activateNj =
        static_cast<double>(rowMisses()) * e.actPreNj;
    out.readNj = static_cast<double>(readBursts()) * e.readBurstNj;
    out.writeNj = static_cast<double>(writeBursts()) * e.writeBurstNj;

    double seconds = static_cast<double>(now) /
                     static_cast<double>(ticksPerSecond);
    double refreshes_per_ch =
        now == 0 ? 0.0
                 : static_cast<double>(now) /
                       static_cast<double>(
                           params_.timing.cycles(params_.timing.tREFI));
    out.refreshNj = refreshes_per_ch *
                    static_cast<double>(params_.org.channels) *
                    e.refreshNj;
    // 1 mW * 1 s = 1 mJ = 1e6 nJ.
    out.backgroundNj = e.backgroundMwPerRank *
                       static_cast<double>(params_.org.channels) *
                       static_cast<double>(params_.org.ranksPerChannel) *
                       seconds * 1e6;
    return out;
}

void
DramSystem::resetStats()
{
    for (auto &ch : channels_)
        ch->resetStats();
}

void
DramSystem::setTracer(obs::Tracer *tracer)
{
    for (auto &ch : channels_)
        ch->setTracer(tracer);
}

} // namespace fp::dram
