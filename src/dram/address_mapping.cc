#include "dram/address_mapping.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace fp::dram
{

AddressMapping::AddressMapping(const DramOrganization &org)
    : org_(org)
{
    fp_assert(org.channels > 0 && org.banksTotal() > 0 &&
                  org.rowBytes > 0,
              "AddressMapping: bad organization");
    if (org.mapPolicy == AddressMapPolicy::lineInterleaved) {
        // The line interleave places consecutive bursts of one channel
        // at consecutive burstBytes offsets of that channel's address
        // space, so a burst stays within one row only when rows are a
        // whole number of bursts. Otherwise decode() would charge a
        // row-straddling burst entirely to the row of its first byte,
        // silently mis-modelling row-buffer behaviour — reject the
        // organization up front instead.
        if (org.burstBytes == 0)
            fp_fatal("line-interleaved mapping needs a non-zero burst "
                     "size");
        if (org.rowBytes % org.burstBytes != 0)
            fp_fatal("line-interleaved mapping requires rowBytes (%llu) "
                     "to be a multiple of burstBytes (%llu); a burst "
                     "would straddle a row boundary but be charged to "
                     "a single row",
                     static_cast<unsigned long long>(org.rowBytes),
                     static_cast<unsigned long long>(org.burstBytes));
    }
}

DramLocation
AddressMapping::decode(Addr addr) const
{
    DramLocation loc;
    if (org_.mapPolicy == AddressMapPolicy::lineInterleaved) {
        // Burst-granularity channel interleave, then row/bank split
        // within the channel (classic bandwidth-first mapping).
        std::uint64_t line = addr / org_.burstBytes;
        loc.channel = static_cast<unsigned>(line % org_.channels);
        std::uint64_t per_ch_addr =
            (line / org_.channels) * org_.burstBytes +
            addr % org_.burstBytes;
        loc.column = per_ch_addr % org_.rowBytes;
        std::uint64_t row_id = per_ch_addr / org_.rowBytes;
        loc.bank = static_cast<unsigned>(row_id % org_.banksTotal());
        loc.row = row_id / org_.banksTotal();
        return loc;
    }

    loc.column = addr % org_.rowBytes;
    std::uint64_t row_id = addr / org_.rowBytes;
    loc.channel = static_cast<unsigned>(row_id % org_.channels);
    std::uint64_t per_ch = row_id / org_.channels;
    loc.bank = static_cast<unsigned>(per_ch % org_.banksTotal());
    loc.row = per_ch / org_.banksTotal();
    return loc;
}

BucketLayout::BucketLayout(const mem::TreeGeometry &geo,
                           std::uint64_t bucket_bytes,
                           std::uint64_t row_bytes,
                           LayoutPolicy policy)
    : geo_(geo), bucketBytes_(bucket_bytes), rowBytes_(row_bytes),
      policy_(policy)
{
    fp_assert(bucket_bytes > 0, "BucketLayout: zero bucket size");
    if (policy_ == LayoutPolicy::subtree) {
        // Deepest k with a padded 2^k-bucket subtree fitting one row.
        std::uint64_t per_row = row_bytes / bucket_bytes;
        if (per_row < 2)
            fp_fatal("subtree layout needs >= 2 buckets per DRAM row "
                     "(bucket %llu B, row %llu B); shrink the bucket "
                     "(payload bytes / Z) or use the linear layout",
                     static_cast<unsigned long long>(bucket_bytes),
                     static_cast<unsigned long long>(row_bytes));
        subtreeLevels_ = log2Floor(per_row);
        if (subtreeLevels_ > geo_.numLevels())
            subtreeLevels_ = geo_.numLevels();
    }
}

Addr
BucketLayout::physAddr(BucketIndex idx) const
{
    fp_assert(idx < geo_.numBuckets(), "physAddr: bad bucket index");
    if (policy_ == LayoutPolicy::linear)
        return idx * bucketBytes_;

    const unsigned k = subtreeLevels_;
    unsigned level = geo_.levelOf(idx);
    std::uint64_t offset = geo_.offsetInLevel(idx);

    // Super-level (which layer of subtrees) and level inside it.
    unsigned s = level / k;
    unsigned dl = level % k;

    // Index of this bucket's subtree within super-level s = the
    // offset of the subtree root within its tree level.
    std::uint64_t subtree_in_super = offset >> dl;

    // Number of subtrees in super-levels above s: super-level j holds
    // 2^(j*k) subtrees.
    std::uint64_t subtrees_above = 0;
    for (unsigned j = 0; j < s; ++j)
        subtrees_above += std::uint64_t{1} << (j * k);

    // Heap-order slot within the (padded) subtree.
    std::uint64_t local_off = offset & ((std::uint64_t{1} << dl) - 1);
    std::uint64_t local_id =
        ((std::uint64_t{1} << dl) - 1) + local_off;

    // Each subtree is padded to a full DRAM row so no subtree ever
    // straddles a row boundary, even when the row holds a
    // non-power-of-two number of buckets.
    std::uint64_t subtree_idx = subtrees_above + subtree_in_super;
    return subtree_idx * rowBytes_ + local_id * bucketBytes_;
}

} // namespace fp::dram
