#include "dram/dram_backend.hh"

#include <algorithm>
#include <utility>

#include "obs/request_profiler.hh"

namespace fp::dram
{

void
DramBackend::access(mem::BackendRequest req)
{
    DramRequest dreq;
    dreq.addr = req.addr;
    dreq.isWrite = req.isWrite;
    dreq.bursts = static_cast<unsigned>(
        std::max<std::uint64_t>(1, req.bytes / burstBytes()));
    if (prof_) {
        // The DramSystem has no notion of the backend seam, so the
        // service interval is sampled here by wrapping the completion:
        // issue tick now, completion tick from the callback.
        const Tick issued = prof_->now();
        const bool isWrite = req.isWrite;
        dreq.onComplete = [prof = prof_, issued, isWrite,
                           cb = std::move(req.onComplete)](Tick t) {
            prof->sampleBackendService(isWrite, issued, t);
            if (cb)
                cb(t);
        };
    } else {
        dreq.onComplete = std::move(req.onComplete);
    }
    dram_.access(std::move(dreq));
}

mem::BackendStats
DramBackend::statsSnapshot() const
{
    mem::BackendStats s;
    s.readBursts = dram_.readBursts();
    s.writeBursts = dram_.writeBursts();
    s.bytesRead = s.readBursts * burstBytes();
    s.bytesWritten = s.writeBursts * burstBytes();
    s.avgLatencyNs = dram_.avgLatencyNs();
    return s;
}

} // namespace fp::dram
