#include "dram/dram_backend.hh"

#include <algorithm>

namespace fp::dram
{

void
DramBackend::access(mem::BackendRequest req)
{
    DramRequest dreq;
    dreq.addr = req.addr;
    dreq.isWrite = req.isWrite;
    dreq.bursts = static_cast<unsigned>(
        std::max<std::uint64_t>(1, req.bytes / burstBytes()));
    dreq.onComplete = std::move(req.onComplete);
    dram_.access(std::move(dreq));
}

mem::BackendStats
DramBackend::statsSnapshot() const
{
    mem::BackendStats s;
    s.readBursts = dram_.readBursts();
    s.writeBursts = dram_.writeBursts();
    s.bytesRead = s.readBursts * burstBytes();
    s.bytesWritten = s.writeBursts * burstBytes();
    s.avgLatencyNs = dram_.avgLatencyNs();
    return s;
}

} // namespace fp::dram
