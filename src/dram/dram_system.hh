/**
 * @file
 * Front-end of the DRAM model: accepts byte-addressed requests,
 * decodes them to (channel, bank, row) and forwards to the per-channel
 * FR-FCFS schedulers. Also owns the energy accounting, which follows
 * the command counters (ACT/RD/WR/refresh) plus a background term.
 */

#ifndef FP_DRAM_DRAM_SYSTEM_HH
#define FP_DRAM_DRAM_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "dram/address_mapping.hh"
#include "dram/channel.hh"
#include "dram/dram_params.hh"
#include "util/event_queue.hh"

namespace fp::dram
{

/** A request at the DRAM boundary. */
struct DramRequest
{
    Addr addr = 0;
    bool isWrite = false;
    unsigned bursts = 1;             //!< 64 B bursts to transfer.
    std::function<void(Tick)> onComplete;
};

/** Aggregate energy breakdown in nanojoules. */
struct EnergyBreakdown
{
    double activateNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    double total() const
    {
        return activateNj + readNj + writeNj + refreshNj +
               backgroundNj;
    }
};

class DramSystem
{
  public:
    DramSystem(const DramParams &params, EventQueue &eq);

    /** Issue a request. The completion callback runs at data arrival
     *  (reads) or write completion (writes). */
    void access(DramRequest req);

    const DramParams &params() const { return params_; }
    const AddressMapping &mapping() const { return mapping_; }

    bool idle() const;
    std::size_t queueDepth() const;

    // --- aggregate statistics -----------------------------------------
    std::uint64_t rowHits() const;
    std::uint64_t rowMisses() const;
    std::uint64_t readBursts() const;
    std::uint64_t writeBursts() const;
    double avgLatencyNs() const;

    /** Energy consumed between tick 0 and @p now. */
    EnergyBreakdown energy(Tick now) const;

    Channel &channel(unsigned c) { return *channels_[c]; }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    void resetStats();

    /** Attach the event tracer; fans out to every channel. */
    void setTracer(obs::Tracer *tracer);

  private:
    DramParams params_;
    EventQueue &eq_;
    AddressMapping mapping_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace fp::dram

#endif // FP_DRAM_DRAM_SYSTEM_HH
