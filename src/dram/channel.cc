#include "dram/channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fp::dram
{

Channel::Channel(unsigned id, const DramParams &params, EventQueue &eq)
    : id_(id), p_(params), eq_(eq),
      latency_(64, fp::ticksToNs(params.timing.cycles(8))),
      stats_("dram.ch" + std::to_string(id))
{
    banks_.reserve(p_.org.banksTotal());
    for (unsigned b = 0; b < p_.org.banksTotal(); ++b)
        banks_.emplace_back(p_.timing, p_.pagePolicy);

    stats_.regCounter("row_hits", rowHits_, "row buffer hits");
    stats_.regCounter("row_misses", rowMisses_, "row buffer misses");
    stats_.regCounter("read_bursts", readBursts_, "64B read bursts");
    stats_.regCounter("write_bursts", writeBursts_, "64B write bursts");
    stats_.regHistogram("latency_ns", latency_,
                        "transaction latency (ns)");
    stats_.regGauge(
        "queue_depth", [this] { return double(queue_.size()); },
        "transactions waiting in the channel queue");
    stats_.regGauge(
        "row_hit_rate",
        [this] {
            auto total = rowHits_.value() + rowMisses_.value();
            return total ? static_cast<double>(rowHits_.value()) /
                               static_cast<double>(total)
                         : 0.0;
        },
        "cumulative row-buffer hit rate");
}

void
Channel::setTracer(obs::Tracer *tracer)
{
    trc_ = tracer;
    if (trc_ && trc_->on(obs::TraceLevel::full)) {
        std::string name = "dram.ch" + std::to_string(id_);
        trc_->nameTrack(
            static_cast<obs::Track>(
                static_cast<unsigned>(obs::Track::dram0) + id_),
            name.c_str());
    }
}

void
Channel::enqueue(Transaction tx)
{
    fp_assert(tx.bank < banks_.size(), "enqueue: bad bank %u", tx.bank);
    tx.enqueued = eq_.now();
    queue_.push_back(std::move(tx));
    kick();
}

void
Channel::resetStats()
{
    rowHits_.reset();
    rowMisses_.reset();
    readBursts_.reset();
    writeBursts_.reset();
    latency_.reset();
}

std::size_t
Channel::pickNext() const
{
    // FR-FCFS within the scheduler window: first queued transaction
    // whose bank has its row open; otherwise the oldest.
    std::size_t window =
        std::min<std::size_t>(queue_.size(), p_.schedulerWindow);
    for (std::size_t i = 0; i < window; ++i) {
        const Transaction &tx = queue_[i];
        const Bank &bank = banks_[tx.bank];
        if (bank.rowOpen() && bank.openRow() == tx.row)
            return i;
    }
    return 0;
}

Tick
Channel::refreshConstraint(Tick now)
{
    const Tick refi = p_.timing.cycles(p_.timing.tREFI);
    const Tick rfc = p_.timing.cycles(p_.timing.tRFC);
    Tick epoch = now / refi;
    if (epoch != lastRefreshEpoch_) {
        // One or more refreshes elapsed since the channel was last
        // used; they closed every row.
        for (auto &bank : banks_)
            bank.closeRow();
        lastRefreshEpoch_ = epoch;
    }
    // Refreshes fire at epoch boundaries after the first interval;
    // the bus is blocked for tRFC after each one.
    if (epoch == 0)
        return now;
    Tick refresh_start = epoch * refi;
    if (now < refresh_start + rfc)
        return refresh_start + rfc;
    return now;
}

void
Channel::kick()
{
    if (issuing_ || queue_.empty())
        return;

    std::size_t pick = pickNext();
    Transaction tx = std::move(queue_[pick]);
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(pick));

    Tick now = eq_.now();
    Tick earliest = refreshConstraint(now);

    // Activate-rate constraints: tRRD since the previous ACT and at
    // most four ACTs per tFAW window (no constraint before the first
    // ACT ever issued).
    Tick act_allowed =
        actWindow_.empty()
            ? 0
            : lastActAt_ + p_.timing.cycles(p_.timing.tRRD);
    if (actWindow_.size() >= 4) {
        act_allowed = std::max(
            act_allowed,
            actWindow_.front() + p_.timing.cycles(p_.timing.tFAW));
    }

    Bank &bank = banks_[tx.bank];
    AccessPlan plan = bank.plan(tx.row, tx.isWrite, earliest,
                                act_allowed);

    // Bus turnaround on direction switch: write->read pays tWTR (the
    // write must reach the array before the bank can be read),
    // read->write only the tRTRS bus gap. The first transfer on an
    // idle channel pays nothing.
    Tick bus_free = dataBusFreeAt_;
    if (lastDir_ == BusDir::write && !tx.isWrite)
        bus_free += p_.timing.cycles(p_.timing.tWTR);
    else if (lastDir_ == BusDir::read && tx.isWrite)
        bus_free += p_.timing.readToWriteGap();

    Tick first_burst = std::max(plan.firstData, bus_free);
    Tick last_burst_end =
        first_burst + p_.timing.cycles(p_.timing.tBURST) * tx.bursts;

    bank.commit(plan, tx.row, tx.isWrite, tx.bursts);
    if (!plan.rowHit) {
        rowMisses_.inc();
        lastActAt_ = plan.actAt;
        actWindow_.push_back(plan.actAt);
        while (actWindow_.size() > 4)
            actWindow_.pop_front();
    } else {
        rowHits_.inc();
    }
    if (tx.isWrite)
        writeBursts_.inc(tx.bursts);
    else
        readBursts_.inc(tx.bursts);

    dataBusFreeAt_ = last_burst_end;
    lastDir_ = tx.isWrite ? BusDir::write : BusDir::read;
    issuing_ = true;

    if (trc_ && trc_->on(obs::TraceLevel::full)) {
        trc_->complete(
            static_cast<obs::Track>(
                static_cast<unsigned>(obs::Track::dram0) + id_),
            tx.isWrite ? "WR" : "RD", now, last_burst_end,
            {obs::TraceArg::num("bank", tx.bank),
             obs::TraceArg::num("row", tx.row),
             obs::TraceArg::flag("row_hit", plan.rowHit),
             obs::TraceArg::num("bursts", tx.bursts)});
    }

    Tick enqueued = tx.enqueued;
    auto on_complete = std::move(tx.onComplete);
    eq_.schedule(last_burst_end, [this, enqueued, on_complete] {
        latency_.sample(fp::ticksToNs(eq_.now() - enqueued));
        issuing_ = false;
        if (on_complete)
            on_complete(eq_.now());
        kick();
    });
}

} // namespace fp::dram
