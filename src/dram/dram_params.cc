#include "dram/dram_params.hh"

namespace fp::dram
{

double
DramOrganization::peakBandwidth(const DramTiming &t) const
{
    // One burst of burstBytes every tBURST clocks per channel.
    double burst_seconds =
        static_cast<double>(t.cycles(t.tBURST)) /
        static_cast<double>(fp::ticksPerSecond);
    return static_cast<double>(burstBytes) / burst_seconds *
           static_cast<double>(channels);
}

DramParams
DramParams::ddr3_1600(unsigned channels)
{
    DramParams p;
    p.org.channels = channels;
    return p;
}

} // namespace fp::dram
