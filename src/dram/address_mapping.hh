/**
 * @file
 * Physical address decomposition and the ORAM bucket layouts.
 *
 * Two layers:
 *
 *  - AddressMapping: byte address -> (channel, bank, row, column),
 *    with row-granularity channel interleaving so that one ORAM
 *    subtree (= one row) lives entirely in one channel and
 *    consecutive subtrees rotate across channels and banks.
 *
 *  - BucketLayout: ORAM bucket index -> byte address. The `linear`
 *    policy packs buckets in heap order (a path touches ~L different
 *    rows). The `subtree` policy is Ren et al.'s layout, adopted by
 *    the paper: the tree is chopped into k-level subtrees, each padded
 *    to 2^k buckets so a whole subtree fits exactly in one DRAM row;
 *    a path then touches only ceil((L+1)/k) rows, which is where the
 *    row-buffer hit-rate advantage in Fig. 10 comes from.
 */

#ifndef FP_DRAM_ADDRESS_MAPPING_HH
#define FP_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>

#include "dram/dram_params.hh"
#include "mem/tree_geometry.hh"
#include "util/types.hh"

namespace fp::dram
{

/** Decoded location of a byte address. */
struct DramLocation
{
    unsigned channel = 0;
    unsigned bank = 0;      //!< Global bank id within the channel.
    std::uint64_t row = 0;
    std::uint64_t column = 0;  //!< Byte offset within the row.
};

class AddressMapping
{
  public:
    explicit AddressMapping(const DramOrganization &org);

    DramLocation decode(Addr addr) const;

  private:
    DramOrganization org_;
};

/** Bucket-to-byte-address layout policy. */
enum class LayoutPolicy
{
    linear,   //!< Heap order, no row awareness.
    subtree,  //!< k-level subtrees packed one-per-row (Ren et al.).
};

class BucketLayout
{
  public:
    /**
     * @param geo           Tree geometry.
     * @param bucket_bytes  Physical bytes per bucket (Z * block).
     * @param row_bytes     DRAM row size, determines subtree depth.
     * @param policy        Layout policy.
     */
    BucketLayout(const mem::TreeGeometry &geo,
                 std::uint64_t bucket_bytes, std::uint64_t row_bytes,
                 LayoutPolicy policy);

    /** Physical byte address of a bucket. */
    Addr physAddr(BucketIndex idx) const;

    /** Levels per subtree (1 for the linear policy). */
    unsigned subtreeLevels() const { return subtreeLevels_; }

    LayoutPolicy policy() const { return policy_; }
    std::uint64_t bucketBytes() const { return bucketBytes_; }

  private:
    mem::TreeGeometry geo_;
    std::uint64_t bucketBytes_;
    std::uint64_t rowBytes_;
    LayoutPolicy policy_;
    unsigned subtreeLevels_ = 1;
};

} // namespace fp::dram

#endif // FP_DRAM_ADDRESS_MAPPING_HH
