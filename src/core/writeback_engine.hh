/**
 * @file
 * Writeback stage of the access pipeline: one windowed refill phase
 * (paper Figure 1(c) write half). Buckets are filled from the stash
 * and issued leaf -> stop level with at most
 * ControllerParams::writeWindow outstanding, so the deepest (cheapest
 * to re-plan) levels commit first and the stop level can still be
 * deepened by dummy replacing while the shallow levels are unissued.
 */

#ifndef FP_CORE_WRITEBACK_ENGINE_HH
#define FP_CORE_WRITEBACK_ENGINE_HH

#include <functional>
#include <vector>

#include "core/pipeline.hh"
#include "util/stats.hh"

namespace fp::core
{

class WritebackEngine
{
  public:
    using DoneFn = std::function<void()>;

    explicit WritebackEngine(PipelineContext &ctx);

    /**
     * Begin the refill of @p acc's path down to @p stop_level.
     * @p on_done fires (synchronously from the last completion) after
     * the Merkle update and the profiler's writeback sample.
     */
    void start(const ActiveAccess &acc, unsigned stop_level,
               DoneFn on_done);

    /** Issue further buckets up to the window; called on completions
     *  and when the stop level deepens mid-phase. */
    void pump();

    /** A refill is in flight (the dummy-replacing window is open). */
    bool active() const { return active_; }

    /** Next level to issue (sweeping downward); levels strictly
     *  above are already committed to the command stream. */
    int nextLevel() const { return nextLevel_; }

    unsigned stopLevel() const { return stopLevel_; }

    /** Deepen/replace the stop level mid-phase (dummy replacing). */
    void setStopLevel(unsigned level) { stopLevel_ = level; }

    /** DRAM buckets written during the current/last phase. */
    unsigned dramBuckets() const { return dramBuckets_; }

    /** Bus-visible start tick of the current/last phase. */
    Tick startTick() const { return startTick_; }

    std::uint64_t bucketsWritten() const
    {
        return bucketsWritten_.value();
    }
    std::uint64_t dramBucketWrites() const
    {
        return dramBucketWrites_.value();
    }
    const fp::Counter &macVictimWritesStat() const
    {
        return macVictimWrites_;
    }
    std::uint64_t macVictimWrites() const
    {
        return macVictimWrites_.value();
    }

    fp::StatGroup &stats() { return stats_; }

  private:
    /** Refill one bucket of the current path (cache-aware). */
    void writeBucketAt(unsigned level);
    void checkDone();
    void finish();

    PipelineContext &ctx_;

    /** Per-level bucket captures for integrity. */
    std::vector<mem::Bucket> integrityWrite_;

    LeafLabel label_ = invalidLeaf;
    DoneFn onDone_;
    bool active_ = false;
    unsigned stopLevel_ = 0;
    int nextLevel_ = -1;      //!< Next level to issue (downward).
    unsigned outstanding_ = 0;
    unsigned dramBuckets_ = 0;
    Tick startTick_ = 0;

    fp::Counter refills_;
    fp::Counter bucketsWritten_;
    fp::Counter dramBucketWrites_;
    fp::Counter macVictimWrites_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_WRITEBACK_ENGINE_HH
