#include "core/writeback_engine.hh"

#include "core/merging_cache.hh"
#include "obs/request_profiler.hh"
#include "oram/integrity.hh"
#include "oram/treetop_cache.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

WritebackEngine::WritebackEngine(PipelineContext &ctx)
    : ctx_(ctx), stats_("writeback_engine")
{
    if (ctx_.params.enableIntegrity)
        integrityWrite_.resize(ctx_.geo.numLevels());

    stats_.regCounter("refills", refills_,
                      "write (refill) phases run");
    stats_.regCounter("buckets_written", bucketsWritten_,
                      "buckets refilled (on-chip included)");
    stats_.regCounter("dram_bucket_writes", dramBucketWrites_,
                      "bucket writes issued to the memory backend");
    stats_.regGauge(
        "outstanding", [this] { return double(outstanding_); },
        "bucket writes in flight");
}

void
WritebackEngine::start(const ActiveAccess &acc, unsigned stop_level,
                       DoneFn on_done)
{
    label_ = acc.label;
    onDone_ = std::move(on_done);
    active_ = true;
    startTick_ = ctx_.eq.now();
    dramBuckets_ = 0;
    fp_assert(outstanding_ == 0, "writes leak across accesses");
    stopLevel_ = stop_level;
    refills_.inc();

    fp_dtrace(oram, "write label=%llu stop_level=%u",
              static_cast<unsigned long long>(label_), stopLevel_);
    nextLevel_ = static_cast<int>(ctx_.geo.leafLevel());
    pump();
}

void
WritebackEngine::pump()
{
    if (!active_)
        return;
    while (outstanding_ < ctx_.params.writeWindow &&
           nextLevel_ >= static_cast<int>(stopLevel_)) {
        writeBucketAt(static_cast<unsigned>(nextLevel_));
        --nextLevel_;
    }
    checkDone();
}

void
WritebackEngine::writeBucketAt(unsigned level)
{
    BucketIndex idx = ctx_.geo.bucketAt(label_, level);
    bucketsWritten_.inc();

    mem::Bucket bucket(ctx_.params.oram.z);
    for (mem::Block &blk :
         ctx_.stash.evictForBucket(label_, level,
                                   ctx_.params.oram.z)) {
        bucket.add(std::move(blk));
    }
    if (ctx_.merkle)
        integrityWrite_[level] = bucket;

    if (ctx_.treetop && ctx_.treetop->covers(level)) {
        ctx_.store.writeBucket(idx, bucket);
        return; // on-chip, no DRAM traffic
    }

    bool dram_write = true;
    if (ctx_.mac && ctx_.mac->inRange(level)) {
        auto victim = ctx_.mac->insert(idx, std::move(bucket));
        dram_write = false;
        if (victim) {
            // Write the displaced bucket back to memory instead.
            ctx_.store.writeBucket(victim->idx,
                                   std::move(victim->bucket));
            macVictimWrites_.inc();
            idx = victim->idx;
            dram_write = true;
        }
    } else {
        ctx_.store.writeBucket(idx, bucket);
    }

    if (!dram_write)
        return;

    dramBucketWrites_.inc();
    ++dramBuckets_;
    ++outstanding_;
    mem::BackendRequest req;
    req.addr = ctx_.layout.physAddr(idx);
    req.isWrite = true;
    req.bytes = ctx_.params.bucketBytes();
    req.onComplete = [this](Tick) {
        fp_assert(outstanding_ > 0, "write completion underflow");
        --outstanding_;
        pump();
    };
    ctx_.fingerprintRequest(req.addr, req.isWrite, req.bytes);
    ctx_.mem.access(std::move(req));
}

void
WritebackEngine::checkDone()
{
    if (!active_)
        return;
    if (nextLevel_ >= static_cast<int>(stopLevel_))
        return;
    if (outstanding_ > 0)
        return;
    finish();
}

void
WritebackEngine::finish()
{
    active_ = false;

    if (ctx_.merkle && stopLevel_ < ctx_.geo.numLevels()) {
        std::vector<mem::Bucket> slice(
            integrityWrite_.begin() + stopLevel_,
            integrityWrite_.end());
        ctx_.merkle->updateSlice(label_, stopLevel_, slice);
    }
    if (ctx_.prof)
        ctx_.prof->sampleWriteback(startTick_, ctx_.eq.now());

    onDone_();
}

} // namespace fp::core
