#include "core/label_queue.hh"

#include <algorithm>

#include "obs/request_profiler.hh"
#include "util/logging.hh"

namespace fp::core
{

LabelQueue::LabelQueue(const mem::TreeGeometry &geo,
                       std::size_t capacity, unsigned aging_threshold,
                       DummySelectPolicy policy, std::uint64_t seed)
    : geo_(geo), capacity_(capacity),
      agingThreshold_(aging_threshold), policy_(policy), rng_(seed)
{
    fp_assert(capacity >= 1, "label queue needs capacity >= 1");
}

bool
LabelQueue::insertReal(LeafLabel label, std::uint64_t token,
                       bool allow_overflow)
{
    fp_assert(geo_.validLeaf(label), "insertReal: bad label");
    LabelEntry entry;
    entry.label = label;
    entry.dummy = false;
    entry.token = token;
    if (prof_)
        entry.enq = prof_->now();

    // Algorithm 1: a real request takes the slot of the first padding
    // dummy; the dummy was never revealed, so it simply vanishes.
    for (auto &e : entries_) {
        if (e.dummy) {
            e = entry;
            ++realCount_;
            return true;
        }
    }
    if (entries_.size() < capacity_ || allow_overflow) {
        entries_.push_back(entry);
        ++realCount_;
        return true;
    }
    return false;
}

void
LabelQueue::ensureFull()
{
    // Shrink back first: overflow inserts (chain spawns) may have
    // pushed the queue past capacity. Drop padding dummies — they were
    // never revealed — until we are back at capacity or only real
    // entries remain (real overflow drains through selectNext).
    while (entries_.size() > capacity_) {
        auto it = std::find_if(entries_.begin(), entries_.end(),
                               [](const LabelEntry &e) {
                                   return e.dummy;
                               });
        if (it == entries_.end())
            break;
        entries_.erase(it);
    }
    while (entries_.size() < capacity_) {
        LabelEntry e;
        e.label = rng_.uniformInt(geo_.numLeaves());
        e.dummy = true;
        entries_.push_back(e);
    }
}

bool
LabelQueue::hasSpaceForReal() const
{
    // An over-capacity queue (overflow insert not yet drained) has no
    // space regardless of dummy count; reporting space here would let
    // the queue ratchet past capacity permanently.
    if (entries_.size() > capacity_)
        return false;
    if (realCount_ < entries_.size())
        return true; // a dummy can be replaced
    return entries_.size() < capacity_;
}

std::optional<LabelEntry>
LabelQueue::selectNext(LeafLabel current)
{
    if (entries_.empty())
        return std::nullopt;

    std::size_t pick = entries_.size();

    // Starvation rule: an over-age real request preempts the overlap
    // heuristic; the oldest one goes first.
    unsigned best_age = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const LabelEntry &e = entries_[i];
        if (!e.dummy && e.age >= agingThreshold_ &&
            (pick == entries_.size() || e.age > best_age)) {
            pick = i;
            best_age = e.age;
        }
    }
    if (pick != entries_.size())
        agingPromotions_.inc();

    if (pick == entries_.size()) {
        bool restrict_to_real =
            policy_ == DummySelectPolicy::realFirst && realCount_ > 0;
        int best_overlap = -1;
        bool best_real = false;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const LabelEntry &e = entries_[i];
            if (restrict_to_real && e.dummy)
                continue;
            int ov = static_cast<int>(geo_.overlap(current, e.label));
            bool better =
                ov > best_overlap ||
                (ov == best_overlap && !e.dummy && !best_real);
            if (better) {
                best_overlap = ov;
                best_real = !e.dummy;
                pick = i;
            }
        }
    }

    fp_assert(pick < entries_.size(), "selectNext: nothing selected");
    LabelEntry out = entries_[pick];
    bool aged = !out.dummy && out.age >= agingThreshold_;
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    if (!out.dummy) {
        fp_assert(realCount_ > 0, "selectNext: real count underflow");
        --realCount_;
    }

    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->instant(
            obs::Track::schedule, out.dummy ? "select_dummy" : "select_real",
            {obs::TraceArg::num("label", out.label),
             obs::TraceArg::num("overlap", geo_.overlap(current,
                                                        out.label)),
             obs::TraceArg::flag("aging_promoted", aged),
             obs::TraceArg::num("queue_real", realCount_),
             obs::TraceArg::num("queue_total", entries_.size())});
        trc_->counter(obs::Track::queues, "label_queue", "real",
                      static_cast<double>(realCount_));
    }

    if (prof_ && !out.dummy)
        prof_->sampleLabelResidency(out.enq, prof_->now());

    selections_.inc();
    if (out.dummy) {
        dummySelected_.inc();
        // Cnt semantics: a real request ages when it loses a slot to
        // a padding dummy. Losing to another *real* request is not
        // starvation (the work still progresses), and counting it
        // would degrade overlap scheduling to FIFO under backlog.
        for (auto &e : entries_) {
            if (!e.dummy)
                ++e.age;
        }
    }
    return out;
}

} // namespace fp::core
