/**
 * @file
 * The address queue of the Fork Path controller (paper Section 4).
 *
 * Request scheduling reorders ORAM requests, so same-address hazards
 * must be resolved before requests reach the position map. The paper
 * gives four rules; we add one refinement (piggybacked duplicate
 * reads) needed for functional equivalence under reordering:
 *
 *  - Read-before-Read:   the paper needs no action; we piggyback the
 *    younger read on the older one's data so both complete together
 *    (performance-neutral: one path access instead of two).
 *  - Read-before-Write:  the write is held until the read's data is
 *    ready.
 *  - Write-before-Read:  the read returns immediately with the
 *    write's data (forwarding); it never becomes an ORAM request.
 *  - Write-before-Write: the older write is cancelled if it has not
 *    been issued yet, otherwise the younger write is held behind it.
 */

#ifndef FP_CORE_ADDRESS_QUEUE_HH
#define FP_CORE_ADDRESS_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "oram/path_oram.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace fp::core
{

/** A queued LLC request (the PA/R fields of paper Figure 9). */
struct AddressEntry
{
    std::uint64_t id = 0;
    BlockAddr addr = invalidBlockAddr;
    oram::Op op = oram::Op::read;
    std::vector<std::uint8_t> payload; //!< Write data.
    Tick arrival = 0;

    bool issued = false;      //!< Sent to the position map.
    bool dataReady = false;   //!< Completed (the R bit).
    bool cancelled = false;   //!< WbW-cancelled write.
    /** id of the older entry this one waits for (0 = none). */
    std::uint64_t blockedBy = 0;
    /** True for a read piggybacked on an older read's data. */
    bool piggybacked = false;
};

class AddressQueue
{
  public:
    explicit AddressQueue(std::size_t capacity);

    /** Result of inserting an LLC request. */
    struct InsertResult
    {
        bool accepted = false;
        /** WbR forwarding hit: complete immediately with this data. */
        bool forwarded = false;
        std::vector<std::uint8_t> forwardData;
        /** id of an older write cancelled by this insert (WbW). */
        std::uint64_t cancelledId = 0;
    };

    /** Apply the hazard rules and enqueue. */
    InsertResult insert(AddressEntry entry);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }

    /**
     * Oldest entry that is ready to be translated: not issued, not
     * cancelled, not piggybacked, not blocked. nullptr when none.
     */
    AddressEntry *nextIssuable();

    /** Number of issuable entries (for the controller's realWork). */
    std::size_t issuableCount() const;

    void markIssued(std::uint64_t id);

    /**
     * The ORAM access for @p id finished; releases dependents.
     * @param data Data read (used to satisfy piggybacked reads).
     * @return ids of piggybacked reads completed alongside.
     */
    std::vector<std::uint64_t>
    complete(std::uint64_t id, const std::vector<std::uint8_t> &data);

    /** Lookup by id; nullptr if retired. */
    AddressEntry *find(std::uint64_t id);

    std::uint64_t forwards() const { return forwards_.value(); }
    std::uint64_t cancels() const { return cancels_.value(); }
    std::uint64_t piggybacks() const { return piggybacks_.value(); }

  private:
    std::size_t capacity_;
    std::deque<AddressEntry> entries_;

    fp::Counter forwards_;
    fp::Counter cancels_;
    fp::Counter piggybacks_;
};

} // namespace fp::core

#endif // FP_CORE_ADDRESS_QUEUE_HH
