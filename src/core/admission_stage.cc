#include "core/admission_stage.hh"

#include "core/merging_cache.hh"
#include "core/plb.hh"
#include "obs/request_profiler.hh"
#include "oram/integrity.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

AdmissionStage::AdmissionStage(PipelineContext &ctx,
                               PathScheduler &sched)
    : ctx_(ctx), sched_(sched),
      addrQueue_(ctx.params.addressQueueSize), stats_("admission")
{
    stats_.regCounter("admitted", admitted_,
                      "address-queue entries issued downstream");
    stats_.regCounter("held_pumps", heldPumps_,
                      "pumps the policy held back (batching)");
    stats_.regCounter("mac_data_hits", macDataHits_,
                      "requests completed by a MAC data hit");
    stats_.regGauge(
        "issuable", [this] { return double(addrQueue_.issuableCount()); },
        "hazard-free entries awaiting admission");
}

void
AdmissionStage::pump(bool pipeline_busy)
{
    if (!sched_.policy().admitFrontend(addrQueue_.issuableCount(),
                                       pipeline_busy)) {
        if (addrQueue_.issuableCount() > 0) {
            heldPumps_.inc();
            if (ctx_.traceOn())
                ctx_.trc->instant(
                    obs::Track::admission, "batch_hold",
                    {obs::TraceArg::num(
                        "issuable", addrQueue_.issuableCount())});
        }
        return;
    }

    std::uint64_t admitted_before = admitted_.value();
    while (AddressEntry *e = addrQueue_.nextIssuable()) {
        // Step 1: stash shortcut.
        if (ctx_.params.oram.stashShortcut) {
            if (mem::Block *blk = ctx_.stash.find(e->addr)) {
                stashShortcuts_.inc();
                if (ctx_.prof)
                    ctx_.prof->countStashShortcut();
                if (ctx_.traceOn())
                    ctx_.trc->instant(
                        obs::Track::cache, "stash_shortcut",
                        {obs::TraceArg::num("addr", e->addr)});
                std::vector<std::uint8_t> data = blk->payload;
                if (e->op == oram::Op::write)
                    blk->payload = e->payload;
                addrQueue_.markIssued(e->id);
                hooks_.respond(e->id, data);
                continue;
            }
        }

        // Step 2: MAC data hit, completing without an ORAM access.
        if (ctx_.mac && tryMacDataHit(*e))
            continue;

        // Build the head of this request's access chain. With
        // modelled recursion the head is a position-map access with a
        // uniform label; otherwise it is the data access itself. A
        // PLB hit lets the chain start below the cached translation.
        ActiveAccess acc;
        acc.dummy = false;
        acc.llcId = e->id;
        acc.chainIndex =
            ctx_.plb ? ctx_.plb->lookupChainStart(e->addr) : 0;
        if (acc.chainIndex > 0 && ctx_.traceOn()) {
            ctx_.trc->instant(obs::Track::cache, "plb_hit",
                              {obs::TraceArg::num("addr", e->addr),
                               obs::TraceArg::num("chain_start",
                                                  acc.chainIndex)});
        }
        bool is_data = acc.chainIndex == ctx_.params.recursionDepth;
        if (is_data) {
            acc.addr = e->addr;
            acc.label = ctx_.posMap.lookupOrAssign(e->addr);
        } else {
            acc.label = ctx_.posMap.randomLabel();
        }

        // Admission: dummy-replace / swap into pending, else the
        // label queue proper.
        bool admitted = hooks_.tryReplaceOrSwap(acc);
        if (!admitted) {
            if (!sched_.hasSpaceForReal())
                break; // backpressure; retry on next pump
            if (is_data)
                acc.newLeaf = ctx_.posMap.remap(e->addr);
            sched_.enqueue(acc);
        } else if (is_data) {
            // Remap only once the access is definitely in flight.
            // (tryReplaceOrSwap cannot be reached before the label
            // lookup above, which it uses for the overlap.)
            sched_.pending()->newLeaf = ctx_.posMap.remap(e->addr);
        }
        addrQueue_.markIssued(e->id);
        admitted_.inc();
        if (ctx_.prof)
            ctx_.prof->onIssue(e->id);
    }

    std::uint64_t batch = admitted_.value() - admitted_before;
    if (batch > 0 && sched_.policy().kind() == PolicyKind::batched &&
        ctx_.traceOn()) {
        ctx_.trc->instant(obs::Track::admission, "batch_flush",
                          {obs::TraceArg::num("count", batch)});
    }
}

bool
AdmissionStage::tryMacDataHit(AddressEntry &entry)
{
    // The block, if not stashed, lives somewhere on the path of its
    // current label; probe the cached band's positions along it.
    LeafLabel label = ctx_.posMap.lookupOrAssign(entry.addr);
    for (unsigned level = ctx_.mac->m1(); level <= ctx_.mac->m2();
         ++level) {
        BucketIndex idx = ctx_.geo.bucketAt(label, level);
        auto blk = ctx_.mac->extractBlock(idx, entry.addr);
        if (!blk)
            continue;
        if (ctx_.merkle) {
            const mem::Bucket *rest = ctx_.mac->peek(idx);
            fp_assert(rest != nullptr, "MAC hit bucket vanished");
            ctx_.merkle->updateBucket(idx, *rest);
        }
        fp_dtrace(cache, "MAC data hit addr=%llu at level %u",
                  static_cast<unsigned long long>(entry.addr),
                  level);
        blk->leaf = ctx_.posMap.remap(entry.addr);
        std::vector<std::uint8_t> data = blk->payload;
        if (entry.op == oram::Op::write)
            blk->payload = entry.payload;
        ctx_.stash.insert(std::move(*blk));
        addrQueue_.markIssued(entry.id);
        macDataHits_.inc();
        hooks_.respond(entry.id, data);
        return true;
    }
    return false;
}

} // namespace fp::core
