/**
 * @file
 * Overlap analysis for Fork Path scheduling.
 *
 * The runtime overlap of two paths is pure geometry
 * (TreeGeometry::overlap). This header adds the closed-form
 * expectations used to (a) auto-configure the merging-aware cache's
 * bottom level m1 = len_overlap + 1 and (b) validate the paper's
 * Fig. 10 claim that the average accessed path length falls linearly
 * with log2(label queue size):
 *
 *   P[overlap(a, X) >= k] = 2^-(k-1)   for uniform X, k = 1..L+1
 *                                       (capped at 2^-L for k = L+1)
 *
 *   E[overlap]           = sum_k P[.. >= k]          ~= 2
 *   E[max of Q samples]  = sum_k (1 - (1 - 2^-(k-1))^Q)
 *                        ~= log2(Q) + 2
 */

#ifndef FP_CORE_OVERLAP_HH
#define FP_CORE_OVERLAP_HH

#include <cstdint>

#include "mem/tree_geometry.hh"

namespace fp::core
{

/** E[overlap(a, X)] for one uniform candidate X. */
double expectedPairwiseOverlap(const mem::TreeGeometry &geo);

/**
 * E[max over @p q uniform candidates of overlap(a, X_i)] — the
 * expected retained ("fork handle") length when scheduling selects
 * the best of a q-entry label queue.
 */
double expectedBestOverlap(const mem::TreeGeometry &geo,
                           unsigned q);

/**
 * The merging-aware cache's bottom cached level:
 * m1 = floor(expected best overlap) + 1 (paper Section 3.5, levels
 * below len_overlap are almost never fetched once merging is on).
 */
unsigned macBottomLevel(const mem::TreeGeometry &geo,
                        unsigned label_queue_size);

/**
 * Expected tree buckets a merged access saves over the naive 2L
 * (full read + full refill) baseline with a @p q-entry label queue:
 * the fork handle is skipped on the read AND elided from the previous
 * refill, so each access saves about twice the expected best overlap.
 * A loose analytic yardstick for the profiler's effectiveness
 * counters (tests and the smoke bench sanity-check against it), not
 * an exact model — dummy competition, aging promotions and chain
 * spawns all perturb the realized overlap.
 */
double expectedMergeSavedBuckets(const mem::TreeGeometry &geo,
                                 unsigned q);

} // namespace fp::core

#endif // FP_CORE_OVERLAP_HH
