/**
 * @file
 * Configuration of the staged ORAM access pipeline (the
 * core::OramController and its admission / scheduling / read /
 * writeback stages). Split out of oram_controller.hh so the stage
 * headers can share it without circular includes.
 */

#ifndef FP_CORE_CONTROLLER_PARAMS_HH
#define FP_CORE_CONTROLLER_PARAMS_HH

#include <cstdint>

#include "core/access_policy.hh"
#include "dram/address_mapping.hh"
#include "oram/oram_params.hh"
#include "util/types.hh"

namespace fp::core
{

enum class CachePolicy
{
    none,
    treetop,
    mac,
};

struct ControllerParams
{
    oram::OramParams oram;

    // --- scheduling policy ---------------------------------------------
    /**
     * The path-scheduling policy (see core/access_policy.hh).
     * `forkpath` is the paper's design and the default; `traditional`
     * is the baseline Path ORAM machine; `batched` drains the address
     * queue in fixed-size batches.
     */
    PolicyKind policy = PolicyKind::forkpath;
    unsigned labelQueueSize = 64;
    /**
     * Selection rounds a real request may lose to better-overlapping
     * entries before it is force-promoted (the Cnt threshold of
     * Figure 9). Small values bound the dummy-competition penalty of
     * low-intensity workloads; large values let the overlap
     * heuristic act freely under backlog.
     */
    unsigned agingThreshold = 4;
    DummySelectPolicy dummyPolicy = DummySelectPolicy::compete;
    /** Dummy replacing (forkpath only; the ablation's off-switch). */
    bool enableDummyReplacing = true;
    /** Admission batch of the `batched` policy (ignored otherwise). */
    unsigned batchSize = 8;

    // --- caching -------------------------------------------------------
    CachePolicy cachePolicy = CachePolicy::none;
    std::uint64_t cacheBudgetBytes = std::uint64_t{1} << 20;
    unsigned macBucketsPerSet = 2;
    /** Bottom MAC level; -1 derives m1 from the queue size. */
    int macM1 = -1;

    // --- structure -------------------------------------------------------
    /** Position-map recursion levels modelled as access chains. */
    unsigned recursionDepth = 0;
    /** Translations per posmap block (PLB geometry). */
    unsigned recursionFanout = 8;
    /** PLB capacity in translations (0 = no PLB). */
    std::size_t plbEntries = 0;
    std::size_t addressQueueSize = 128;

    /**
     * Background eviction (Ren et al.): while the stash is at or
     * above its soft capacity, keep running dummy accesses instead
     * of parking, draining blocks back into the tree.
     */
    bool backgroundEviction = true;

    /**
     * Maintain and check a Merkle hash tree over the ORAM tree
     * (paper Section 2.2's combinable integrity protection). A
     * failed verification is a detected active attack and panics.
     */
    bool enableIntegrity = false;

    // --- timing ----------------------------------------------------------
    /** Outstanding bucket writes during a refill (paces commitment). */
    unsigned writeWindow = 4;
    /** Gap between read and write phases (Figure 1(c) idle). */
    Tick idleGapTicks = 10'000; // 10 ns

    /**
     * Periodic (nonstop-stream) operation, paper Section 2.2: when
     * non-zero, an ORAM access starts every this many ticks whether
     * or not real requests exist, fully sealing the timing channel.
     * 0 = demand-driven operation (what the paper's evaluation
     * uses). In periodic mode the event queue never drains; drive
     * the simulation with a bounded run.
     */
    Tick periodicIntervalTicks = 0;
    /** DRAM footprint of one block (meta folded in). */
    std::uint64_t blockPhysBytes = 64;
    dram::LayoutPolicy layout = dram::LayoutPolicy::subtree;

    std::uint64_t bucketBytes() const
    {
        return blockPhysBytes * oram.z;
    }

    /** True when the selected policy performs path merging. */
    bool merging() const { return policy != PolicyKind::traditional; }

    /**
     * Reject configurations the pipeline cannot run (zero-sized
     * queues, a refill window that never issues, ...) with fp_fatal
     * instead of silently misbehaving. Called by every
     * OramController constructor, which covers sim::System,
     * SyncOram and core::ShardedOram alike.
     */
    void validate() const;

    /** The paper's traditional (baseline) Path ORAM configuration. */
    static ControllerParams traditional();

    /** The paper's default Fork Path configuration (queue 64). */
    static ControllerParams forkPath();
};

} // namespace fp::core

#endif // FP_CORE_CONTROLLER_PARAMS_HH
