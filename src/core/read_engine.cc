#include "core/read_engine.hh"

#include "core/merging_cache.hh"
#include "obs/request_profiler.hh"
#include "oram/integrity.hh"
#include "oram/treetop_cache.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

ReadEngine::ReadEngine(PipelineContext &ctx)
    : ctx_(ctx), forkLevelHist_(ctx.geo.numLevels() + 1, 1.0),
      stats_("read_engine")
{
    mergeSkipsPerLevel_.assign(ctx_.geo.numLevels(), 0);
    if (ctx_.params.enableIntegrity)
        integrityRead_.resize(ctx_.geo.numLevels());

    stats_.regCounter("phases", readsStarted_, "read phases run");
    stats_.regGauge(
        "outstanding", [this] { return double(outstanding_); },
        "bucket reads in flight");
}

void
ReadEngine::start(const ActiveAccess &acc, unsigned start_level,
                  DoneFn on_done)
{
    acc_ = acc;
    onDone_ = std::move(on_done);
    active_ = true;
    startTick_ = ctx_.eq.now();
    startLevel_ = start_level;
    forkLevelHist_.sample(static_cast<double>(startLevel_));
    if (startLevel_ > 0) {
        mergeSkippedLevels_.inc(startLevel_);
        for (unsigned l = 0; l < startLevel_; ++l)
            ++mergeSkipsPerLevel_[l];
    }
    fp_dtrace(oram, "read  label=%llu start_level=%u%s",
              static_cast<unsigned long long>(acc_.label),
              startLevel_, acc_.dummy ? " (dummy)" : "");
    if (ctx_.prof && !acc_.dummy &&
        acc_.chainIndex == ctx_.params.recursionDepth)
        ctx_.prof->onReadStart(acc_.llcId);
    dramBuckets_ = 0;
    fp_assert(outstanding_ == 0, "reads leak across accesses");
    readsStarted_.inc();

    for (unsigned level = startLevel_;
         level <= ctx_.geo.leafLevel(); ++level) {
        readBucketAt(level);
    }
    if (outstanding_ == 0) {
        // Entire read phase served on chip (or zero-length fork).
        ctx_.eq.scheduleIn(0, [this] {
            if (active_ && outstanding_ == 0)
                finish();
        });
    }
}

void
ReadEngine::readBucketAt(unsigned level)
{
    BucketIndex idx = ctx_.geo.bucketAt(acc_.label, level);

    if (ctx_.treetop && ctx_.treetop->covers(level)) {
        mem::Bucket bucket = ctx_.store.readBucket(idx);
        if (ctx_.merkle)
            integrityRead_[level] = bucket;
        ingestBucket(std::move(bucket));
        onChipBucketReads_.inc();
        if (ctx_.prof)
            ctx_.prof->countOnChipRead();
        return;
    }
    if (ctx_.mac && ctx_.mac->inRange(level)) {
        if (auto bucket = ctx_.mac->extract(idx)) {
            if (ctx_.merkle)
                integrityRead_[level] = *bucket;
            ingestBucket(std::move(*bucket));
            onChipBucketReads_.inc();
            if (ctx_.prof)
                ctx_.prof->countOnChipRead();
            return;
        }
    }

    {
        mem::Bucket bucket = ctx_.store.readBucket(idx);
        if (ctx_.merkle)
            integrityRead_[level] = bucket;
        ingestBucket(std::move(bucket));
    }
    ++dramBuckets_;
    ++outstanding_;
    mem::BackendRequest req;
    req.addr = ctx_.layout.physAddr(idx);
    req.isWrite = false;
    req.bytes = ctx_.params.bucketBytes();
    req.onComplete = [this](Tick) {
        fp_assert(outstanding_ > 0, "read completion underflow");
        if (--outstanding_ == 0 && active_)
            finish();
    };
    ctx_.fingerprintRequest(req.addr, req.isWrite, req.bytes);
    ctx_.mem.access(std::move(req));
}

void
ReadEngine::ingestBucket(mem::Bucket bucket)
{
    for (mem::Block &blk : bucket.takeAll())
        ctx_.stash.insertOrIgnore(std::move(blk));
}

void
ReadEngine::finish()
{
    fp_assert(active_, "finishRead out of phase");
    if (ctx_.merkle) {
        std::vector<mem::Bucket> slice(
            integrityRead_.begin() + startLevel_,
            integrityRead_.end());
        if (!ctx_.merkle->verifySlice(acc_.label, startLevel_,
                                      slice)) {
            fp_panic("integrity violation: path %llu failed Merkle "
                     "verification (active attack detected)",
                     static_cast<unsigned long long>(acc_.label));
        }
    }
    readLen_.sample(static_cast<double>(ctx_.geo.numLevels()) -
                    startLevel_);
    dramReadLen_.sample(static_cast<double>(dramBuckets_));
    doneTick_ = ctx_.eq.now();
    if (ctx_.prof && !acc_.dummy &&
        acc_.chainIndex == ctx_.params.recursionDepth)
        ctx_.prof->onReadDone(acc_.llcId);

    if (ctx_.traceOn()) {
        ctx_.trc->complete(
            obs::Track::controller,
            startLevel_ > 0 ? "read_merged" : "read", startTick_,
            doneTick_,
            {obs::TraceArg::num("label", acc_.label),
             obs::TraceArg::num("start_level", startLevel_),
             obs::TraceArg::flag("dummy", acc_.dummy),
             obs::TraceArg::num("dram_buckets", dramBuckets_)});
    }

    active_ = false;
    onDone_();
}

} // namespace fp::core
