/**
 * @file
 * Admission stage of the access pipeline: drains the address queue
 * (hazard-checked LLC requests) into the path scheduler. Per entry it
 * tries, in order: the stash shortcut, a MAC data hit, then builds
 * the head of the access chain (PLB-accelerated under modelled
 * recursion) and offers it to the scheduler — first as a
 * dummy-replacing candidate against the in-flight refill, else into
 * the label queue (with backpressure when the queue's real share is
 * full).
 *
 * The drain itself is policy-gated: AccessPolicy::admitFrontend is
 * consulted once per pump, which is how the `batched` policy holds
 * arrivals until a full batch is issuable while the backend is busy.
 */

#ifndef FP_CORE_ADMISSION_STAGE_HH
#define FP_CORE_ADMISSION_STAGE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/address_queue.hh"
#include "core/path_scheduler.hh"
#include "core/pipeline.hh"
#include "util/stats.hh"

namespace fp::core
{

class AdmissionStage
{
  public:
    /** Callbacks into the controller (LLC completion) and across to
     *  the replace/swap path, which needs the in-flight current. */
    struct Hooks
    {
        std::function<void(std::uint64_t,
                           const std::vector<std::uint8_t> &)>
            respond;
        std::function<bool(const ActiveAccess &)> tryReplaceOrSwap;
    };

    AdmissionStage(PipelineContext &ctx, PathScheduler &sched);

    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    AddressQueue &queue() { return addrQueue_; }
    const AddressQueue &queue() const { return addrQueue_; }

    /**
     * Drain issuable address-queue entries into the scheduler.
     * @p pipeline_busy is true while an ORAM access is in flight
     * (any phase, parked included) — the batched policy's hold
     * condition.
     */
    void pump(bool pipeline_busy);

    const fp::Counter &stashShortcutsStat() const
    {
        return stashShortcuts_;
    }
    std::uint64_t stashShortcuts() const
    {
        return stashShortcuts_.value();
    }
    /** Entries admitted into the scheduler (chain heads built). */
    std::uint64_t admitted() const { return admitted_.value(); }
    /** Pumps where the policy held issuable entries back. */
    std::uint64_t heldPumps() const { return heldPumps_.value(); }
    std::uint64_t macDataHits() const { return macDataHits_.value(); }

    fp::StatGroup &stats() { return stats_; }

  private:
    /**
     * MAC data hit (paper Section 4): the block may sit in a cached
     * bucket along its current path; if so it is promoted to the
     * stash and the request completes without a DRAM access, exactly
     * like a stash hit.
     */
    bool tryMacDataHit(AddressEntry &entry);

    PipelineContext &ctx_;
    PathScheduler &sched_;
    Hooks hooks_;

    AddressQueue addrQueue_;

    fp::Counter stashShortcuts_;
    fp::Counter admitted_;
    fp::Counter heldPumps_;
    fp::Counter macDataHits_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_ADMISSION_STAGE_HH
