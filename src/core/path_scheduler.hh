/**
 * @file
 * Scheduling stage of the access pipeline: owns the label queue, the
 * pool of admitted-but-unscheduled accesses and the AccessPolicy, and
 * makes every path decision —
 *
 *  - which access runs next when the backend goes idle (selectFresh);
 *  - which access is scheduled as `pending` at write issue, defining
 *    the refill stop level (scheduleWriteback);
 *  - whether a late-arriving real request may replace/steal the
 *    pending slot while the refill's crossing bucket is unissued
 *    (tryReplaceOrSwap — paper Section 3.3 Cases 1-3).
 *
 * The policy object decides padding and selection; the scheduler owns
 * the mechanics and the scheduling stats (overlap histogram, dummy
 * replacements, pending swaps).
 */

#ifndef FP_CORE_PATH_SCHEDULER_HH
#define FP_CORE_PATH_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/access_policy.hh"
#include "core/pipeline.hh"
#include "core/writeback_engine.hh"
#include "util/stats.hh"

namespace fp::core
{

class PathScheduler
{
  public:
    PathScheduler(PipelineContext &ctx, WritebackEngine &wb);

    const AccessPolicy &policy() const { return *policy_; }

    LabelQueue &labelQueue() { return labelQueue_; }
    const LabelQueue &labelQueue() const { return labelQueue_; }

    /** Room for another real entry without overflow. */
    bool hasSpaceForReal() const
    {
        return labelQueue_.hasSpaceForReal();
    }

    /** Park an admitted access in the pool + label queue. */
    void enqueue(const ActiveAccess &access);

    /** Pick a fresh access for an idle backend (policy selection);
     *  nullopt when the policy has nothing to run. */
    std::optional<ActiveAccess> selectFresh();

    /**
     * At write issue: schedule the next access as `pending` and
     * return the refill stop level of @p cur (0 for non-merging
     * policies, which leave `pending` empty).
     */
    unsigned scheduleWriteback(const ActiveAccess &cur);

    /**
     * Dummy replacing / pending swap against the in-flight refill of
     * @p current (Cases 1-3). True when @p incoming was absorbed into
     * the pending slot; false leaves it for the label queue.
     */
    bool tryReplaceOrSwap(const ActiveAccess &incoming,
                          const std::optional<ActiveAccess> &current);

    std::optional<ActiveAccess> &pending() { return pending_; }

    /** Hand the scheduled access over as the next current. */
    std::optional<ActiveAccess> takePending()
    {
        std::optional<ActiveAccess> p = std::move(pending_);
        pending_.reset();
        return p;
    }

    /** Record the finished access's revealed shape: its label is the
     *  next fork reference, its stop level the retained prefix. */
    void noteAccessDone(LeafLabel label, unsigned stop_level)
    {
        prevLabel_ = label;
        retainedLevels_ = stop_level;
    }

    /** Fork point: first level the next read phase must fetch. */
    unsigned retainedLevels() const { return retainedLevels_; }
    LeafLabel prevLabel() const { return prevLabel_; }

    /** Real work parked in this stage (queue or pending slot). */
    bool realWork() const
    {
        return labelQueue_.realCount() > 0 ||
               (pending_ && !pending_->dummy);
    }

    const fp::Counter &dummyReplacementsStat() const
    {
        return dummyReplacements_;
    }
    std::uint64_t dummyReplacements() const
    {
        return dummyReplacements_.value();
    }
    const fp::Counter &pendingSwapsStat() const
    {
        return pendingSwaps_;
    }
    std::uint64_t pendingSwaps() const
    {
        return pendingSwaps_.value();
    }
    const fp::Histogram &overlapHist() const { return overlapHist_; }

    fp::StatGroup &stats() { return stats_; }

  private:
    ActiveAccess toActive(const LabelEntry &entry);

    PipelineContext &ctx_;
    WritebackEngine &wb_;

    LabelQueue labelQueue_;
    std::unique_ptr<AccessPolicy> policy_;

    /** Real accesses parked in the label queue, keyed by token. */
    std::unordered_map<std::uint64_t, ActiveAccess> accessPool_;
    std::uint64_t nextToken_ = 1;

    std::optional<ActiveAccess> pending_;
    unsigned retainedLevels_ = 0;
    LeafLabel prevLabel_ = 0;

    fp::Counter scheduled_;
    fp::Counter dummyReplacements_;
    fp::Counter pendingSwaps_;
    fp::Histogram overlapHist_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_PATH_SCHEDULER_HH
