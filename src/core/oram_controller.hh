/**
 * @file
 * The Fork Path ORAM controller (paper Section 4, Figure 9), combining
 * every technique of the paper behind feature flags so the same
 * machine serves as the traditional-Path-ORAM baseline:
 *
 *  - an address queue with the four hazard rules;
 *  - a position map (flat on-chip; hierarchical recursion is modelled
 *    as chains of uniformly-labelled accesses per LLC miss);
 *  - a label queue with overlap scheduling, dummy padding, aging and
 *    dummy label replacing (Algorithm 1);
 *  - path merging: the write (refill) phase of the current access
 *    stops at its overlap with the scheduled next access, and the next
 *    read phase starts exactly there (the fork shape);
 *  - merging-aware or treetop caching between the stash and DRAM.
 *
 * The controller is event-driven against a mem::MemoryBackend for
 * timing (the DDR3 model behind dram::DramBackend, or mem::NetBackend
 * for a remote store) and carries real blocks through the
 * stash/TreeStore for functional correctness; both concerns are
 * exercised by one code path.
 *
 * Phase machine per ORAM access (Figure 1(c)):
 *
 *   readIssue -> [DRAM reads] -> readDone -(idle gap)-> writeIssue
 *     -> [windowed DRAM writes, leaf -> stop level] -> writeDone
 *
 * The scheduled next access is chosen at writeIssue (its overlap with
 * the current path defines the refill stop level); while the refill
 * has not yet issued the crossing bucket, a dummy `pending` may still
 * be replaced by a late-arriving real request (Cases 1-3 of Section
 * 3.3). When an access's write completes with a dummy `pending` and
 * no real work exists anywhere, the controller parks: the committed
 * dummy runs when the next real request arrives (its refill stop
 * already revealed it, so it cannot be skipped).
 */

#ifndef FP_CORE_ORAM_CONTROLLER_HH
#define FP_CORE_ORAM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/address_queue.hh"
#include "core/label_queue.hh"
#include "core/merging_cache.hh"
#include "core/plb.hh"
#include "dram/address_mapping.hh"
#include "mem/backend.hh"
#include "mem/tree_store.hh"
#include "obs/tracer.hh"
#include "oram/oram_params.hh"
#include "oram/integrity.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "oram/treetop_cache.hh"
#include "util/event_queue.hh"
#include "util/stats.hh"

namespace fp::dram
{
class DramSystem;
} // namespace fp::dram

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::core
{

enum class CachePolicy
{
    none,
    treetop,
    mac,
};

struct ControllerParams
{
    oram::OramParams oram;

    // --- Fork Path features -------------------------------------------
    bool enableMerging = true;
    unsigned labelQueueSize = 64;
    /**
     * Selection rounds a real request may lose to better-overlapping
     * entries before it is force-promoted (the Cnt threshold of
     * Figure 9). Small values bound the dummy-competition penalty of
     * low-intensity workloads; large values let the overlap
     * heuristic act freely under backlog.
     */
    unsigned agingThreshold = 4;
    DummySelectPolicy dummyPolicy = DummySelectPolicy::compete;
    bool enableDummyReplacing = true;

    // --- caching -------------------------------------------------------
    CachePolicy cachePolicy = CachePolicy::none;
    std::uint64_t cacheBudgetBytes = std::uint64_t{1} << 20;
    unsigned macBucketsPerSet = 2;
    /** Bottom MAC level; -1 derives m1 from the queue size. */
    int macM1 = -1;

    // --- structure -------------------------------------------------------
    /** Position-map recursion levels modelled as access chains. */
    unsigned recursionDepth = 0;
    /** Translations per posmap block (PLB geometry). */
    unsigned recursionFanout = 8;
    /** PLB capacity in translations (0 = no PLB). */
    std::size_t plbEntries = 0;
    std::size_t addressQueueSize = 128;

    /**
     * Background eviction (Ren et al.): while the stash is at or
     * above its soft capacity, keep running dummy accesses instead
     * of parking, draining blocks back into the tree.
     */
    bool backgroundEviction = true;

    /**
     * Maintain and check a Merkle hash tree over the ORAM tree
     * (paper Section 2.2's combinable integrity protection). A
     * failed verification is a detected active attack and panics.
     */
    bool enableIntegrity = false;

    // --- timing ----------------------------------------------------------
    /** Outstanding bucket writes during a refill (paces commitment). */
    unsigned writeWindow = 4;
    /** Gap between read and write phases (Figure 1(c) idle). */
    Tick idleGapTicks = 10'000; // 10 ns

    /**
     * Periodic (nonstop-stream) operation, paper Section 2.2: when
     * non-zero, an ORAM access starts every this many ticks whether
     * or not real requests exist, fully sealing the timing channel.
     * 0 = demand-driven operation (what the paper's evaluation
     * uses). In periodic mode the event queue never drains; drive
     * the simulation with a bounded run.
     */
    Tick periodicIntervalTicks = 0;
    /** DRAM footprint of one block (meta folded in). */
    std::uint64_t blockPhysBytes = 64;
    dram::LayoutPolicy layout = dram::LayoutPolicy::subtree;

    std::uint64_t bucketBytes() const
    {
        return blockPhysBytes * oram.z;
    }

    /** The paper's traditional (baseline) Path ORAM configuration. */
    static ControllerParams traditional();

    /** The paper's default Fork Path configuration (queue 64). */
    static ControllerParams forkPath();
};

/** Revealed (adversary-visible) shape of one ORAM access. */
struct RevealedAccess
{
    LeafLabel label = invalidLeaf;
    unsigned readStartLevel = 0;  //!< First level fetched (fork point).
    unsigned writeStopLevel = 0;  //!< Last level refilled toward root.
    bool dummy = false;
    Tick readStartTick = 0;       //!< Bus-visible start time.
};

class OramController
{
  public:
    using DataCallback =
        std::function<void(Tick, const std::vector<std::uint8_t> &)>;

    /** Drive the controller against any memory backend (the seam
     *  every production configuration uses). */
    OramController(const ControllerParams &params, EventQueue &eq,
                   mem::MemoryBackend &backend);
    /** Convenience: wrap @p dram in an owned DramBackend adapter —
     *  cycle-identical to driving the DramSystem directly. */
    OramController(const ControllerParams &params, EventQueue &eq,
                   dram::DramSystem &dram);
    ~OramController();

    /** True if a new LLC request can be accepted right now. */
    bool canAccept() const;

    /**
     * Submit an LLC request.
     * @return the request id (0 when rejected; retry later).
     */
    std::uint64_t request(oram::Op op, BlockAddr addr,
                          std::vector<std::uint8_t> payload,
                          DataCallback cb);

    /** Real requests accepted but not yet answered. */
    std::size_t inFlight() const { return outstandingLlc_; }
    bool busy() const { return outstandingLlc_ > 0; }

    // --- experiment metrics ---------------------------------------------
    /** Per-LLC-request completion latency (ns), queueing included. */
    const fp::Histogram &oramLatency() const { return llcLatency_; }

    /** Average tree-path length fetched per ORAM access (buckets). */
    double avgReadPathLength() const { return readLen_.mean(); }

    /** Average buckets actually fetched from DRAM per access. */
    double avgDramBucketsRead() const { return dramReadLen_.mean(); }

    /** Average DRAM busy time per ORAM access (ns, read+write). */
    double avgDramServiceNs() const { return dramService_.mean(); }

    // Underlying running averages, for cross-shard aggregation via
    // Average::merge (a mean of per-shard means would weight shards
    // equally regardless of how many accesses each one served).
    const fp::Average &readPathLengthStat() const { return readLen_; }
    const fp::Average &dramBucketsReadStat() const
    {
        return dramReadLen_;
    }
    const fp::Average &dramServiceStat() const { return dramService_; }

    std::uint64_t realAccesses() const { return realAccesses_.value(); }
    std::uint64_t dummyAccessesRun() const
    {
        return dummyAccesses_.value();
    }
    std::uint64_t totalAccesses() const
    {
        return realAccesses_.value() + dummyAccesses_.value();
    }
    std::uint64_t dummyReplacements() const
    {
        return dummyReplacements_.value();
    }
    std::uint64_t pendingSwaps() const { return pendingSwaps_.value(); }
    std::uint64_t stashShortcuts() const
    {
        return stashShortcuts_.value();
    }
    std::uint64_t bucketsReadTotal() const
    {
        return static_cast<std::uint64_t>(readLen_.sum());
    }
    std::uint64_t bucketsWrittenTotal() const
    {
        return bucketsWritten_.value();
    }
    std::uint64_t dramBucketWrites() const
    {
        return dramBucketWrites_.value();
    }
    std::uint64_t onChipBucketReads() const
    {
        return onChipBucketReads_.value();
    }
    /** Total tree levels skipped by path merging (summed forks). */
    std::uint64_t mergedLevelsSkipped() const
    {
        return mergeSkippedLevels_.value();
    }
    /** Accesses that skipped level l, indexed by l (merge benefit). */
    const std::vector<std::uint64_t> &mergeSkipsPerLevel() const
    {
        return mergeSkipsPerLevel_;
    }
    /**
     * FNV-1a fingerprint of every backend request this controller
     * has issued, folded over (addr, isWrite, bytes) in issue order.
     * Taken at the seam *above* any fault/retry decorators, so a
     * faulty run and a fault-free run of the same config must agree
     * — the obliviousness-under-retry check (docs/ROBUSTNESS.md).
     */
    std::uint64_t reqStreamFingerprint() const
    {
        return reqFingerprint_;
    }

    /** Distribution of read-phase fork levels. */
    const fp::Histogram &forkLevelHist() const { return forkLevelHist_; }
    /** Distribution of scheduled overlap (refill stop levels). */
    const fp::Histogram &overlapHist() const { return overlapHist_; }

    // --- component access (tests, examples) ------------------------------
    const ControllerParams &params() const { return params_; }
    const mem::TreeGeometry &geometry() const { return geo_; }
    oram::Stash &stash() { return stash_; }
    mem::TreeStore &store() { return store_; }
    oram::PositionMap &positionMap() { return posMap_; }
    LabelQueue &labelQueue() { return labelQueue_; }
    AddressQueue &addressQueue() { return addrQueue_; }
    MergingAwareCache *mac() { return mac_.get(); }
    const oram::TreetopCache *treetop() const { return treetop_.get(); }
    oram::MerkleTree *merkle() { return merkle_.get(); }
    PosmapLookasideBuffer *plb() { return plb_.get(); }
    mem::MemoryBackend &memory() { return mem_; }

    /** Record the adversary-visible access shapes (security tests). */
    void setRevealTraceEnabled(bool enabled)
    {
        revealTraceEnabled_ = enabled;
    }
    const std::vector<RevealedAccess> &revealTrace() const
    {
        return revealTrace_;
    }

    fp::StatGroup &stats() { return stats_; }

    /**
     * Attach the event tracer; fans out to the label queue, stash,
     * and MAC, and names every track. The revealed-access track the
     * tracer carries mirrors revealTrace() event for event.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Attach the per-request lifecycle profiler; fans out to the
     * label queue, stash, and MAC (the backend is wired separately by
     * the System, which owns both sides of that seam). Null detaches.
     */
    void setProfiler(obs::RequestProfiler *prof);

    /**
     * Make this controller hand out LLC request ids @p first,
     * @p first + @p stride, @p first + 2*@p stride, ... instead of
     * the default 1, 2, 3, ... Shard s of a core::ShardedOram uses
     * (s + 1, num_shards) so ids are globally unique across shards
     * (and never 0, the rejection sentinel) — required by the
     * profiler's async trace spans, which key on the id. Call before
     * the first request.
     */
    void setRequestIdStream(std::uint64_t first, std::uint64_t stride);

  private:
    /** One ORAM access being processed or scheduled next. */
    struct ActiveAccess
    {
        LeafLabel label = invalidLeaf;
        bool dummy = true;
        std::uint64_t llcId = 0;       //!< Owning LLC request.
        unsigned chainIndex = 0;       //!< Recursion chain position.
        BlockAddr addr = invalidBlockAddr; //!< Data element only.
        LeafLabel newLeaf = invalidLeaf;   //!< Remap target.
    };

    /** A live LLC request. */
    struct LlcRequest
    {
        std::uint64_t id = 0;
        BlockAddr addr = invalidBlockAddr;
        oram::Op op = oram::Op::read;
        std::vector<std::uint8_t> payload;
        Tick arrival = 0;
        DataCallback cb;
    };

    enum class Phase
    {
        idle,       //!< Nothing in the backend.
        readWait,   //!< Read phase scheduled, not yet started.
        reading,
        idleGap,    //!< Between read and write phases.
        writing,
        /**
         * Eager-read / lazy-refill park: a committed dummy has
         * finished its read phase with no real work anywhere, so its
         * refill waits. When a real request arrives, the refill runs
         * with that request as its merge target — the dummy's read
         * happened off the critical path during idle time.
         */
        writeParked,
    };

    /** Delegation target of both public constructors: exactly one of
     *  @p ext / @p owned is set. */
    OramController(const ControllerParams &params, EventQueue &eq,
                   mem::MemoryBackend *ext,
                   std::unique_ptr<mem::MemoryBackend> owned);

    // --- frontend --------------------------------------------------------
    void pumpFrontend();
    bool tryMacDataHit(AddressEntry &entry);
    bool tryReplaceOrSwapPending(const ActiveAccess &incoming);
    void enqueueAccess(const ActiveAccess &access);
    bool realWorkPending() const;
    bool shouldRunBackend() const;
    void respond(std::uint64_t llc_id,
                 const std::vector<std::uint8_t> &data);
    ActiveAccess toActive(const LabelEntry &entry);

    // --- backend phase machine --------------------------------------------
    void maybeStartBackend();
    void startRead();
    void finishRead();
    void startWrite();
    void issueMoreWrites();
    void checkWriteDone();
    void finishWrite();

    /** Fetch one bucket of the current path (cache-aware). */
    void readBucketAt(unsigned level);
    /** Refill one bucket of the current path (cache-aware). */
    void writeBucketAt(unsigned level);
    /** Move a fetched bucket's blocks into the stash. */
    void ingestBucket(mem::Bucket bucket);

    /** Set only by the DramSystem convenience constructor; must
     *  precede mem_ so the reference binds to a live object. */
    std::unique_ptr<mem::MemoryBackend> ownedMem_;

    ControllerParams params_;
    EventQueue &eq_;
    mem::MemoryBackend &mem_;

    mem::TreeGeometry geo_;
    oram::PositionMap posMap_;
    oram::Stash stash_;
    mem::TreeStore store_;
    dram::BucketLayout layout_;
    std::unique_ptr<oram::TreetopCache> treetop_;
    std::unique_ptr<MergingAwareCache> mac_;
    std::unique_ptr<oram::MerkleTree> merkle_;
    std::unique_ptr<PosmapLookasideBuffer> plb_;

    /** Per-phase bucket captures for integrity (indexed by level). */
    std::vector<mem::Bucket> integrityRead_;
    std::vector<mem::Bucket> integrityWrite_;

    AddressQueue addrQueue_;
    LabelQueue labelQueue_;
    Rng rng_;

    std::unordered_map<std::uint64_t, LlcRequest> llc_;
    std::uint64_t nextId_ = 1;
    std::uint64_t idStride_ = 1;
    std::size_t outstandingLlc_ = 0;

    /** Real accesses parked in the label queue, keyed by token. */
    std::unordered_map<std::uint64_t, ActiveAccess> accessPool_;
    std::uint64_t nextToken_ = 1;

    // Backend state.
    Phase phase_ = Phase::idle;
    std::optional<ActiveAccess> current_;
    std::optional<ActiveAccess> pending_;

    /** Fork point: first level the next read phase must fetch. */
    unsigned retainedLevels_ = 0;
    LeafLabel prevLabel_ = 0;

    /** Next access slot in periodic mode. */
    Tick periodicNextStart_ = 0;

    // Read phase bookkeeping.
    unsigned outstandingReads_ = 0;
    Tick readStartTick_ = 0;
    Tick readDoneTick_ = 0;
    unsigned readStartLevel_ = 0;
    unsigned dramBucketsThisRead_ = 0;

    // Write phase bookkeeping.
    unsigned dramBucketsThisWrite_ = 0;
    unsigned writeStopLevel_ = 0;
    int nextWriteLevel_ = -1;     //!< Next level to issue (downward).
    unsigned outstandingWrites_ = 0;
    Tick writeStartTick_ = 0;
    bool writePhaseActive_ = false;

    bool revealTraceEnabled_ = false;
    std::vector<RevealedAccess> revealTrace_;

    obs::Tracer *trc_ = nullptr;
    obs::RequestProfiler *prof_ = nullptr;

    // Stats.
    fp::Histogram llcLatency_;
    fp::Histogram forkLevelHist_;
    fp::Histogram overlapHist_;
    fp::Counter mergeSkippedLevels_;
    std::vector<std::uint64_t> mergeSkipsPerLevel_;
    fp::Average readLen_;
    fp::Average dramReadLen_;
    fp::Average dramService_;
    fp::Counter realAccesses_;
    fp::Counter dummyAccesses_;
    fp::Counter dummyReplacements_;
    fp::Counter pendingSwaps_;
    fp::Counter stashShortcuts_;
    fp::Counter onChipBucketReads_;
    fp::Counter macVictimWrites_;
    fp::Counter bucketsWritten_;
    fp::Counter dramBucketWrites_;
    fp::StatGroup stats_;

    /** Fold one issued request into reqFingerprint_. */
    void fingerprintRequest(Addr addr, bool is_write,
                            std::uint64_t bytes);
    std::uint64_t reqFingerprint_ = 14695981039346656037ULL;
};

} // namespace fp::core

#endif // FP_CORE_ORAM_CONTROLLER_HH
