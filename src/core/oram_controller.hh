/**
 * @file
 * The ORAM controller: owner and orchestrator of the staged access
 * pipeline (paper Section 4, Figure 9). The heavy lifting lives in
 * four stages sharing one PipelineContext —
 *
 *   AdmissionStage    address queue -> scheduler (core/admission_stage.hh)
 *   PathScheduler     label queue + AccessPolicy  (core/path_scheduler.hh)
 *   ReadEngine        fork-shaped path fetches    (core/read_engine.hh)
 *   WritebackEngine   windowed refills            (core/writeback_engine.hh)
 *
 * — while the controller keeps the LLC request table, the per-access
 * phase machine, and the run-level stats. Which of the paper's
 * techniques are active is decided by the ControllerParams::policy
 * scheduling policy (core/access_policy.hh): `traditional` is the
 * baseline Path ORAM machine, `forkpath` (default) the paper's
 * design, `batched` a batch-draining variant.
 *
 * The controller is event-driven against a mem::MemoryBackend for
 * timing (the DDR3 model behind dram::DramBackend, or mem::NetBackend
 * for a remote store) and carries real blocks through the
 * stash/TreeStore for functional correctness; both concerns are
 * exercised by one code path.
 *
 * Phase machine per ORAM access (Figure 1(c)):
 *
 *   readIssue -> [DRAM reads] -> readDone -(idle gap)-> writeIssue
 *     -> [windowed DRAM writes, leaf -> stop level] -> writeDone
 *
 * The scheduled next access is chosen at writeIssue (its overlap with
 * the current path defines the refill stop level); while the refill
 * has not yet issued the crossing bucket, a dummy `pending` may still
 * be replaced by a late-arriving real request (Cases 1-3 of Section
 * 3.3). When an access's write completes with a dummy `pending` and
 * no real work exists anywhere, the controller parks: the committed
 * dummy runs when the next real request arrives (its refill stop
 * already revealed it, so it cannot be skipped).
 */

#ifndef FP_CORE_ORAM_CONTROLLER_HH
#define FP_CORE_ORAM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/access_policy.hh"
#include "core/address_queue.hh"
#include "core/admission_stage.hh"
#include "core/controller_params.hh"
#include "core/label_queue.hh"
#include "core/merging_cache.hh"
#include "core/path_scheduler.hh"
#include "core/pipeline.hh"
#include "core/plb.hh"
#include "core/read_engine.hh"
#include "core/writeback_engine.hh"
#include "dram/address_mapping.hh"
#include "mem/backend.hh"
#include "mem/tree_store.hh"
#include "obs/tracer.hh"
#include "oram/oram_params.hh"
#include "oram/integrity.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "oram/treetop_cache.hh"
#include "util/event_queue.hh"
#include "util/stats.hh"

namespace fp::dram
{
class DramSystem;
} // namespace fp::dram

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::core
{

/** Revealed (adversary-visible) shape of one ORAM access. */
struct RevealedAccess
{
    LeafLabel label = invalidLeaf;
    unsigned readStartLevel = 0;  //!< First level fetched (fork point).
    unsigned writeStopLevel = 0;  //!< Last level refilled toward root.
    bool dummy = false;
    Tick readStartTick = 0;       //!< Bus-visible start time.
};

class OramController
{
  public:
    using DataCallback =
        std::function<void(Tick, const std::vector<std::uint8_t> &)>;

    /** Drive the controller against any memory backend (the seam
     *  every production configuration uses). */
    OramController(const ControllerParams &params, EventQueue &eq,
                   mem::MemoryBackend &backend);
    /** Convenience: wrap @p dram in an owned DramBackend adapter —
     *  cycle-identical to driving the DramSystem directly. */
    OramController(const ControllerParams &params, EventQueue &eq,
                   dram::DramSystem &dram);
    ~OramController();

    /** True if a new LLC request can be accepted right now. */
    bool canAccept() const;

    /**
     * Submit an LLC request.
     * @return the request id (0 when rejected; retry later).
     */
    std::uint64_t request(oram::Op op, BlockAddr addr,
                          std::vector<std::uint8_t> payload,
                          DataCallback cb);

    /** Real requests accepted but not yet answered. */
    std::size_t inFlight() const { return outstandingLlc_; }
    bool busy() const { return outstandingLlc_ > 0; }

    // --- experiment metrics ---------------------------------------------
    /** Per-LLC-request completion latency (ns), queueing included. */
    const fp::Histogram &oramLatency() const { return llcLatency_; }

    /** Average tree-path length fetched per ORAM access (buckets). */
    double avgReadPathLength() const
    {
        return read_.readLenStat().mean();
    }

    /** Average buckets actually fetched from DRAM per access. */
    double avgDramBucketsRead() const
    {
        return read_.dramReadLenStat().mean();
    }

    /** Average DRAM busy time per ORAM access (ns, read+write). */
    double avgDramServiceNs() const { return dramService_.mean(); }

    // Underlying running averages, for cross-shard aggregation via
    // Average::merge (a mean of per-shard means would weight shards
    // equally regardless of how many accesses each one served).
    const fp::Average &readPathLengthStat() const
    {
        return read_.readLenStat();
    }
    const fp::Average &dramBucketsReadStat() const
    {
        return read_.dramReadLenStat();
    }
    const fp::Average &dramServiceStat() const { return dramService_; }

    std::uint64_t realAccesses() const { return realAccesses_.value(); }
    std::uint64_t dummyAccessesRun() const
    {
        return dummyAccesses_.value();
    }
    std::uint64_t totalAccesses() const
    {
        return realAccesses_.value() + dummyAccesses_.value();
    }
    std::uint64_t dummyReplacements() const
    {
        return scheduler_.dummyReplacements();
    }
    std::uint64_t pendingSwaps() const
    {
        return scheduler_.pendingSwaps();
    }
    std::uint64_t stashShortcuts() const
    {
        return admission_.stashShortcuts();
    }
    std::uint64_t bucketsReadTotal() const
    {
        return static_cast<std::uint64_t>(read_.readLenStat().sum());
    }
    std::uint64_t bucketsWrittenTotal() const
    {
        return wb_.bucketsWritten();
    }
    std::uint64_t dramBucketWrites() const
    {
        return wb_.dramBucketWrites();
    }
    std::uint64_t onChipBucketReads() const
    {
        return read_.onChipBucketReads();
    }
    /** Total tree levels skipped by path merging (summed forks). */
    std::uint64_t mergedLevelsSkipped() const
    {
        return read_.mergedLevelsSkipped();
    }
    /** Accesses that skipped level l, indexed by l (merge benefit). */
    const std::vector<std::uint64_t> &mergeSkipsPerLevel() const
    {
        return read_.mergeSkipsPerLevel();
    }
    /**
     * FNV-1a fingerprint of every backend request this controller
     * has issued, folded over (addr, isWrite, bytes) in issue order.
     * Taken at the seam *above* any fault/retry decorators, so a
     * faulty run and a fault-free run of the same config must agree
     * — the obliviousness-under-retry check (docs/ROBUSTNESS.md).
     */
    std::uint64_t reqStreamFingerprint() const
    {
        return ctx_.reqFingerprint;
    }

    /** Distribution of read-phase fork levels. */
    const fp::Histogram &forkLevelHist() const
    {
        return read_.forkLevelHist();
    }
    /** Distribution of scheduled overlap (refill stop levels). */
    const fp::Histogram &overlapHist() const
    {
        return scheduler_.overlapHist();
    }

    // --- component access (tests, examples) ------------------------------
    const ControllerParams &params() const { return params_; }
    const mem::TreeGeometry &geometry() const { return geo_; }
    oram::Stash &stash() { return stash_; }
    mem::TreeStore &store() { return store_; }
    oram::PositionMap &positionMap() { return posMap_; }
    LabelQueue &labelQueue() { return scheduler_.labelQueue(); }
    AddressQueue &addressQueue() { return admission_.queue(); }
    MergingAwareCache *mac() { return mac_.get(); }
    const oram::TreetopCache *treetop() const { return treetop_.get(); }
    oram::MerkleTree *merkle() { return merkle_.get(); }
    PosmapLookasideBuffer *plb() { return plb_.get(); }
    mem::MemoryBackend &memory() { return mem_; }

    // --- pipeline stage access -------------------------------------------
    AdmissionStage &admission() { return admission_; }
    PathScheduler &scheduler() { return scheduler_; }
    ReadEngine &readEngine() { return read_; }
    WritebackEngine &writebackEngine() { return wb_; }
    /** The active scheduling policy (see core/access_policy.hh). */
    const AccessPolicy &policy() const { return scheduler_.policy(); }

    /** Record the adversary-visible access shapes (security tests). */
    void setRevealTraceEnabled(bool enabled)
    {
        revealTraceEnabled_ = enabled;
    }
    const std::vector<RevealedAccess> &revealTrace() const
    {
        return revealTrace_;
    }

    fp::StatGroup &stats() { return stats_; }

    /**
     * Attach the event tracer; fans out to the label queue, stash,
     * and MAC, and names every track. The revealed-access track the
     * tracer carries mirrors revealTrace() event for event.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Attach the per-request lifecycle profiler; fans out to the
     * label queue, stash, and MAC (the backend is wired separately by
     * the System, which owns both sides of that seam). Null detaches.
     */
    void setProfiler(obs::RequestProfiler *prof);

    /**
     * Make this controller hand out LLC request ids @p first,
     * @p first + @p stride, @p first + 2*@p stride, ... instead of
     * the default 1, 2, 3, ... Shard s of a core::ShardedOram uses
     * (s + 1, num_shards) so ids are globally unique across shards
     * (and never 0, the rejection sentinel) — required by the
     * profiler's async trace spans, which key on the id. Call before
     * the first request.
     */
    void setRequestIdStream(std::uint64_t first, std::uint64_t stride);

  private:
    /** A live LLC request. */
    struct LlcRequest
    {
        std::uint64_t id = 0;
        BlockAddr addr = invalidBlockAddr;
        oram::Op op = oram::Op::read;
        std::vector<std::uint8_t> payload;
        Tick arrival = 0;
        DataCallback cb;
    };

    enum class Phase
    {
        idle,       //!< Nothing in the backend.
        readWait,   //!< Read phase scheduled, not yet started.
        reading,
        idleGap,    //!< Between read and write phases.
        writing,
        /**
         * Eager-read / lazy-refill park: a committed dummy has
         * finished its read phase with no real work anywhere, so its
         * refill waits. When a real request arrives, the refill runs
         * with that request as its merge target — the dummy's read
         * happened off the critical path during idle time.
         */
        writeParked,
    };

    /** Delegation target of both public constructors: exactly one of
     *  @p ext / @p owned is set. */
    OramController(const ControllerParams &params, EventQueue &eq,
                   mem::MemoryBackend *ext,
                   std::unique_ptr<mem::MemoryBackend> owned);

    /** fp_fatal on invalid params, pass through otherwise. */
    static const ControllerParams &checked(const ControllerParams &p);

    // --- frontend --------------------------------------------------------
    void pumpFrontend();
    bool realWorkPending() const;
    bool shouldRunBackend() const;
    void respond(std::uint64_t llc_id,
                 const std::vector<std::uint8_t> &data);

    // --- backend phase machine --------------------------------------------
    void maybeStartBackend();
    void startRead();
    /** Stage boundary: the ReadEngine finished the current fetch. */
    void onReadDone();
    void startWrite();
    /** Stage boundary: the WritebackEngine finished the refill. */
    void onWriteDone();

    /** Set only by the DramSystem convenience constructor; must
     *  precede mem_ so the reference binds to a live object. */
    std::unique_ptr<mem::MemoryBackend> ownedMem_;

    ControllerParams params_;
    EventQueue &eq_;
    mem::MemoryBackend &mem_;

    mem::TreeGeometry geo_;
    oram::PositionMap posMap_;
    oram::Stash stash_;
    mem::TreeStore store_;
    dram::BucketLayout layout_;
    std::unique_ptr<oram::TreetopCache> treetop_;
    std::unique_ptr<MergingAwareCache> mac_;
    std::unique_ptr<oram::MerkleTree> merkle_;
    std::unique_ptr<PosmapLookasideBuffer> plb_;
    Rng rng_;

    /** Shared stage substrate; must follow the components above and
     *  precede the stages, whose constructors bind to it. */
    PipelineContext ctx_;
    WritebackEngine wb_;
    ReadEngine read_;
    PathScheduler scheduler_;
    AdmissionStage admission_;

    std::unordered_map<std::uint64_t, LlcRequest> llc_;
    std::uint64_t nextId_ = 1;
    std::uint64_t idStride_ = 1;
    std::size_t outstandingLlc_ = 0;

    // Backend state.
    Phase phase_ = Phase::idle;
    std::optional<ActiveAccess> current_;

    /** Next access slot in periodic mode. */
    Tick periodicNextStart_ = 0;

    bool revealTraceEnabled_ = false;
    std::vector<RevealedAccess> revealTrace_;

    // Run-level stats (per-phase stats live in the stages).
    fp::Histogram llcLatency_;
    fp::Average dramService_;
    fp::Counter realAccesses_;
    fp::Counter dummyAccesses_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_ORAM_CONTROLLER_HH
