#include "core/plb.hh"

#include "util/logging.hh"

namespace fp::core
{

PosmapLookasideBuffer::PosmapLookasideBuffer(unsigned depth,
                                             unsigned fanout,
                                             std::size_t capacity)
    : depth_(depth), fanout_(fanout), capacity_(capacity)
{
    fp_assert(depth >= 1, "PLB without recursion is meaningless");
    fp_assert(fanout >= 2, "PLB: fanout must be >= 2");
    fp_assert(capacity >= 1, "PLB: zero capacity");
}

std::uint64_t
PosmapLookasideBuffer::keyFor(BlockAddr addr,
                              unsigned chain_index) const
{
    // Chain element i consumes the translation group of recursion
    // level depth - i and produces the one of level depth - i - 1
    // (the data element, i = depth, produces nothing). The group id
    // is addr / fanout^(depth - i).
    unsigned level = depth_ - chain_index;
    std::uint64_t group = addr;
    for (unsigned j = 0; j < level; ++j)
        group /= fanout_;
    // Tag with the level so groups of different levels don't alias.
    return (group << 4) | level;
}

unsigned
PosmapLookasideBuffer::lookupChainStart(BlockAddr addr)
{
    // Find the deepest cached translation, scanning from the data
    // end of the chain upward. Element i can be skipped if the
    // translation produced by element i-1 is cached; we return the
    // first element that still must run.
    for (unsigned start = depth_; start >= 1; --start) {
        std::uint64_t key = keyFor(addr, start - 1);
        auto it = map_.find(key);
        if (it != map_.end()) {
            touch(key);
            hits_.inc();
            return start;
        }
    }
    misses_.inc();
    return 0;
}

void
PosmapLookasideBuffer::fill(BlockAddr addr, unsigned chain_index)
{
    if (chain_index >= depth_)
        return; // the data element produces no translation
    std::uint64_t key = keyFor(addr, chain_index);
    auto it = map_.find(key);
    if (it != map_.end()) {
        touch(key);
        return;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
    if (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
PosmapLookasideBuffer::touch(std::uint64_t key)
{
    auto it = map_.find(key);
    fp_assert(it != map_.end(), "PLB touch of absent key");
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
}

} // namespace fp::core
