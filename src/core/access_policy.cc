#include "core/access_policy.hh"

#include <string>

#include "core/controller_params.hh"
#include "util/logging.hh"

namespace fp::core
{

namespace
{

/** Baseline Path ORAM: no merging, no replacing, a depth-1 label
 *  queue acting as a plain staging slot. */
class TraditionalPolicy : public AccessPolicy
{
  public:
    PolicyKind kind() const override { return PolicyKind::traditional; }
    const char *name() const override { return "traditional"; }
    bool merging() const override { return false; }
    bool replacing() const override { return false; }

    std::optional<LabelEntry>
    selectNext(LabelQueue &queue, LeafLabel from) override
    {
        // No padding: an empty queue means no work (the controller
        // idles rather than spinning dummy accesses).
        return queue.selectNext(from);
    }
};

/** The paper's design: padded label queue + overlap scheduling +
 *  path merging, with dummy replacing as a separate knob so the
 *  ablation can disable it while keeping the rest. */
class ForkPathPolicy : public AccessPolicy
{
  public:
    explicit ForkPathPolicy(bool replacing) : replacing_(replacing) {}

    PolicyKind kind() const override { return PolicyKind::forkpath; }
    const char *name() const override { return "forkpath"; }
    bool merging() const override { return true; }
    bool replacing() const override { return replacing_; }

    std::optional<LabelEntry>
    selectNext(LabelQueue &queue, LeafLabel from) override
    {
        // Keep the pool at exactly capacity so the revealed overlap
        // statistics are independent of LLC intensity (Figure 7).
        queue.ensureFull();
        return queue.selectNext(from);
    }

  private:
    bool replacing_;
};

/**
 * Fork-path merging, but the address queue drains into the scheduler
 * in fixed-size batches: while an access is in flight, arrivals are
 * held until batchSize of them are issuable (giving the overlap
 * scheduler a full window to pick from); when the pipeline drains,
 * any partial batch is flushed so nothing starves. No replacing —
 * the batch boundary, not the refill window, is this policy's
 * admission control.
 */
class BatchedPolicy : public AccessPolicy
{
  public:
    explicit BatchedPolicy(unsigned batch) : batch_(batch) {}

    PolicyKind kind() const override { return PolicyKind::batched; }
    const char *name() const override { return "batched"; }
    bool merging() const override { return true; }
    bool replacing() const override { return false; }

    bool
    admitFrontend(std::size_t issuable,
                  bool pipeline_busy) const override
    {
        return !pipeline_busy || issuable >= batch_;
    }

    std::optional<LabelEntry>
    selectNext(LabelQueue &queue, LeafLabel from) override
    {
        queue.ensureFull();
        return queue.selectNext(from);
    }

  private:
    std::size_t batch_;
};

struct PolicyInfo
{
    PolicyKind kind;
    const char *name;
};

constexpr PolicyInfo kRegistry[] = {
    {PolicyKind::traditional, "traditional"},
    {PolicyKind::forkpath, "forkpath"},
    {PolicyKind::batched, "batched"},
};

} // anonymous namespace

PolicyKind
parsePolicyKind(const std::string &name)
{
    for (const PolicyInfo &info : kRegistry) {
        if (name == info.name)
            return info.kind;
    }
    std::string known;
    for (const PolicyInfo &info : kRegistry) {
        if (!known.empty())
            known += "|";
        known += info.name;
    }
    fp_fatal("unknown access policy '%s' (%s)", name.c_str(),
             known.c_str());
}

const char *
policyKindName(PolicyKind kind)
{
    for (const PolicyInfo &info : kRegistry) {
        if (kind == info.kind)
            return info.name;
    }
    fp_fatal("policyKindName: unregistered PolicyKind %d",
             static_cast<int>(kind));
}

std::vector<std::string>
accessPolicyNames()
{
    std::vector<std::string> names;
    for (const PolicyInfo &info : kRegistry)
        names.emplace_back(info.name);
    return names;
}

void
applyPolicyPreset(ControllerParams &params, PolicyKind kind)
{
    params.policy = kind;
    switch (kind) {
    case PolicyKind::traditional:
        params.enableDummyReplacing = false;
        params.labelQueueSize = 1;
        params.cachePolicy = CachePolicy::none;
        break;
    case PolicyKind::forkpath:
        params.enableDummyReplacing = true;
        params.labelQueueSize = 64;
        params.cachePolicy = CachePolicy::mac;
        break;
    case PolicyKind::batched:
        params.enableDummyReplacing = false;
        params.labelQueueSize = 64;
        params.cachePolicy = CachePolicy::mac;
        break;
    }
}

std::unique_ptr<AccessPolicy>
makeAccessPolicy(const ControllerParams &params)
{
    switch (params.policy) {
    case PolicyKind::traditional:
        return std::make_unique<TraditionalPolicy>();
    case PolicyKind::forkpath:
        return std::make_unique<ForkPathPolicy>(
            params.enableDummyReplacing);
    case PolicyKind::batched:
        return std::make_unique<BatchedPolicy>(params.batchSize);
    }
    fp_fatal("makeAccessPolicy: unregistered PolicyKind %d",
             static_cast<int>(params.policy));
}

} // namespace fp::core
