/**
 * @file
 * PosMap Lookaside Buffer (PLB), after Fletcher et al.'s Freecursive
 * ORAM — the work the paper's unified hierarchical baseline builds
 * on, which reports that a PLB removes ~95 % of position-map memory
 * accesses.
 *
 * With a hierarchical position map, an LLC miss becomes a chain of
 * ORAM accesses: outermost posmap level first, data last. The PLB
 * caches recent posmap translations by (recursion level, block
 * group); a hit at level j means the chain can skip every element at
 * level >= j and start right below it. In this simulator's modelled
 * recursion the skipped elements simply are not issued, shortening
 * the chain the timing model charges.
 *
 * Security note (from Freecursive): PLB hits change which tree is
 * accessed per miss; in the unified design all levels live in one
 * tree with indistinguishable accesses, so only the *number* of
 * accesses varies — the same class of information as the LLC
 * hit/miss count the baseline already accepts.
 */

#ifndef FP_CORE_PLB_HH
#define FP_CORE_PLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/stats.hh"
#include "util/types.hh"

namespace fp::core
{

class PosmapLookasideBuffer
{
  public:
    /**
     * @param depth    Recursion depth (posmap levels).
     * @param fanout   Translations per posmap block.
     * @param capacity Cached translations (LRU).
     */
    PosmapLookasideBuffer(unsigned depth, unsigned fanout,
                          std::size_t capacity);

    /**
     * Deepest chain element whose inputs are cached: returns the
     * chain index to start issuing from (0 = outermost posmap
     * element, depth = the data access itself).
     */
    unsigned lookupChainStart(BlockAddr addr);

    /**
     * Record that the chain element at @p chain_index completed for
     * @p addr, caching the translation it produced.
     */
    void fill(BlockAddr addr, unsigned chain_index);

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

  private:
    /** Key of the translation produced by chain element @p index. */
    std::uint64_t keyFor(BlockAddr addr, unsigned chain_index) const;

    void touch(std::uint64_t key);

    unsigned depth_;
    unsigned fanout_;
    std::size_t capacity_;

    /** LRU list of keys, most recent at the front. */
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        map_;

    fp::Counter hits_;
    fp::Counter misses_;
};

} // namespace fp::core

#endif // FP_CORE_PLB_HH
