#include "core/overlap.hh"

#include <cmath>

#include "util/logging.hh"

namespace fp::core
{

namespace
{

/** P[overlap(a, uniform X) >= k], k in [1, L+1]. */
double
probOverlapAtLeast(const mem::TreeGeometry &geo, unsigned k)
{
    fp_assert(k >= 1 && k <= geo.numLevels(),
              "probOverlapAtLeast: bad k");
    // Sharing >= k buckets means agreeing on the top k-1 label bits;
    // at k = L+1 the two labels are identical (probability 2^-L).
    unsigned bits = k - 1;
    if (bits >= geo.leafLevel())
        bits = geo.leafLevel();
    return std::ldexp(1.0, -static_cast<int>(bits));
}

} // anonymous namespace

double
expectedPairwiseOverlap(const mem::TreeGeometry &geo)
{
    double e = 0.0;
    for (unsigned k = 1; k <= geo.numLevels(); ++k)
        e += probOverlapAtLeast(geo, k);
    return e;
}

double
expectedBestOverlap(const mem::TreeGeometry &geo, unsigned q)
{
    fp_assert(q >= 1, "expectedBestOverlap: empty queue");
    double e = 0.0;
    for (unsigned k = 1; k <= geo.numLevels(); ++k) {
        double p = probOverlapAtLeast(geo, k);
        e += 1.0 - std::pow(1.0 - p, static_cast<double>(q));
    }
    return e;
}

double
expectedMergeSavedBuckets(const mem::TreeGeometry &geo, unsigned q)
{
    return 2.0 * expectedBestOverlap(geo, q);
}

unsigned
macBottomLevel(const mem::TreeGeometry &geo,
               unsigned label_queue_size)
{
    // len_overlap is the overlap any two *consecutive* merged paths
    // are guaranteed on average (the pairwise expectation, ~2), not
    // the best-of-queue mean: scheduling raises the average fork
    // level, but its distribution still reaches down to m1, and a
    // band that starts at the low tail is what lets MAC match
    // treetop's useful coverage. (With 256 B buckets the paper's
    // 1 MB budget then spans levels 2..11 almost exactly.)
    (void)label_queue_size;
    double len = expectedPairwiseOverlap(geo);
    auto m1 = static_cast<unsigned>(len) + 1;
    if (m1 > geo.leafLevel())
        m1 = geo.leafLevel();
    return m1;
}

} // namespace fp::core
