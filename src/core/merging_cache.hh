/**
 * @file
 * The merging-aware cache (MAC) of paper Section 3.5 / Figure 8(b).
 *
 * Once path merging is active, the top len_overlap levels of the tree
 * are almost never fetched from memory (they ride in the stash as the
 * fork handle), so treetop caching's budget is wasted there. MAC is a
 * set-associative LRU cache over the band of levels
 * [m1, m2], m1 = len_overlap + 1, holding decrypted buckets evicted
 * from the stash on write phases; read phases that hit promote the
 * bucket's blocks back to the stash.
 *
 * Set indexing follows the structure of the paper's Eq. (1): each
 * cached level owns a contiguous region of bucket frames, and a
 * bucket at (level x, offset y) maps into its level's region at
 * y mod region_size, with `ways` buckets per set and LRU within a
 * set. Levels are allocated bottom-up from m1: every level that fits
 * entirely (2^x frames) is fully covered, and the last level m2
 * receives whatever frames remain as a partial region. (Taken
 * literally, the printed allocation of 2^(x-m1+1) frames per level
 * would cover only 2^(1-m1) of each level and the cache could not
 * reproduce Figure 13; full-band coverage matches Figure 8(b)'s
 * shaded band and the reported treetop-equivalent performance.)
 *
 * Security: the cache is indexed purely by logical bucket position
 * and filled/emptied purely as a function of the revealed label
 * sequence, so its hit/miss pattern is a deterministic function of
 * public information (tested in tests/test_security.cc).
 */

#ifndef FP_CORE_MERGING_CACHE_HH
#define FP_CORE_MERGING_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/bucket.hh"
#include "mem/tree_geometry.hh"
#include "obs/tracer.hh"
#include "util/stats.hh"

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::core
{

struct MergingCacheParams
{
    unsigned m1 = 9;                  //!< Bottom cached level.
    std::uint64_t budgetBytes = 1 << 20;
    unsigned bucketsPerSet = 2;       //!< Associativity in buckets.
    std::uint64_t bucketBytes = 256;  //!< Z * physical block size.
    unsigned z = 4;                   //!< Slots per bucket.
};

class MergingAwareCache
{
  public:
    MergingAwareCache(const mem::TreeGeometry &geo,
                      const MergingCacheParams &params);

    /** True iff @p level falls in the cached band [m1, m2]. */
    bool inRange(unsigned level) const
    {
        return level >= m1_ && level <= m2_;
    }

    /**
     * Read-phase lookup: on a hit the bucket is removed from the
     * cache (its blocks move to the stash) and returned.
     */
    std::optional<mem::Bucket> extract(BucketIndex idx);

    /**
     * Data-hit lookup (paper Section 4 / Figure 9: each line stores
     * the blocks' program addresses, and pending requests that hit
     * promote their block back to the stash and complete without a
     * DRAM access). Searches the cached bucket at @p idx for @p addr
     * and removes just that block; the bucket line stays resident.
     */
    std::optional<mem::Block> extractBlock(BucketIndex idx,
                                           BlockAddr addr);

    /** A bucket displaced by an insertion, owed a DRAM write-back. */
    struct Victim
    {
        BucketIndex idx;
        mem::Bucket bucket;
    };

    /**
     * Write-phase insertion of a refilled bucket. Returns the LRU
     * victim if a valid line had to be displaced.
     */
    std::optional<Victim> insert(BucketIndex idx, mem::Bucket bucket);

    unsigned m1() const { return m1_; }
    unsigned m2() const { return m2_; }
    std::uint64_t numSets() const { return sets_.size(); }
    unsigned ways() const { return ways_; }
    std::uint64_t capacityBuckets() const { return capacity_; }
    std::uint64_t sizeBytes() const
    {
        return capacity_ * bucketBytes_;
    }

    /** Paper Eq. (1): set index of a cached-band bucket. */
    std::uint64_t setIndex(BucketIndex idx) const;

    /** Resident bucket contents at @p idx; nullptr on miss. */
    const mem::Bucket *peek(BucketIndex idx) const;

    /** Visit every valid cached bucket (tests, invariant checks). */
    void forEachBucket(
        const std::function<void(BucketIndex, const mem::Bucket &)>
            &fn) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t dataHits() const { return dataHits_.value(); }
    std::uint64_t insertions() const { return insertions_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }

    /** Attach the event tracer (cache hit/miss/eviction track). */
    void setTracer(obs::Tracer *tracer) { trc_ = tracer; }

    /** Attach the request profiler (data-hit / victim accounting). */
    void setProfiler(obs::RequestProfiler *prof) { prof_ = prof; }

  private:
    struct Line
    {
        bool valid = false;
        BucketIndex tag = 0;
        mem::Bucket bucket;
        std::uint64_t lastUse = 0;
    };

    mem::TreeGeometry geo_;
    unsigned m1_;
    unsigned m2_;
    unsigned ways_;
    std::uint64_t bucketBytes_;
    unsigned z_;
    std::uint64_t capacity_; //!< Total bucket frames.
    /** Per-level region sizes and bases, indexed by level - m1. */
    std::vector<std::uint64_t> levelAlloc_;
    std::vector<std::uint64_t> levelBase_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t useClock_ = 0;
    obs::Tracer *trc_ = nullptr;
    obs::RequestProfiler *prof_ = nullptr;

    fp::Counter hits_;
    fp::Counter misses_;
    fp::Counter insertions_;
    fp::Counter evictions_;
    fp::Counter dataHits_;
};

} // namespace fp::core

#endif // FP_CORE_MERGING_CACHE_HH
