/**
 * @file
 * Sharded ORAM front-end: S independent Fork Path ORAM shards behind
 * one dispatcher.
 *
 * A single OramController serializes every access behind one tree and
 * one backend pipe, so fork-path savings cannot translate into
 * throughput once the backend is the bottleneck. Partitioned ORAMs
 * (e.g. Palermo, and the cloud-storage Path ORAM variants) exploit the
 * observation that obliviousness is preserved per partition when the
 * block-to-partition assignment is a public function of the (already
 * revealed) block identifier: each shard is a complete, independent
 * ORAM — own TreeGeometry, OramController (stash, PLB, label queue),
 * and mem::MemoryBackend instance — and the adversary learns nothing
 * beyond which shard served an access, which the fixed hash already
 * made public.
 *
 * The dispatcher:
 *
 *  - routes a block address to shard splitmix64(addr) % S (a fixed,
 *    balanced, data-independent hash);
 *  - enforces a bounded per-shard inflight window so one hot shard
 *    cannot absorb the whole LLC request budget while others idle;
 *  - completes requests out of order: each shard answers through its
 *    own callback chain, in its own time;
 *  - leaves fork-path merging entirely inside each shard, where
 *    consecutive accesses to the same tree still overlap.
 *
 * Shard RNG streams are derived with splitmix64 over the shard index
 * (see shardSeed), so they are deterministic for a given config,
 * pairwise distinct, and independent of any host-side concurrency.
 */

#ifndef FP_CORE_SHARDED_ORAM_HH
#define FP_CORE_SHARDED_ORAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/oram_controller.hh"

namespace fp::core
{

struct ShardedOramParams
{
    /** Number of independent ORAM shards (>= 1). */
    unsigned shards = 2;
    /** Max LLC requests in flight per shard before the dispatcher
     *  rejects (backpressure toward the cores). */
    unsigned shardWindow = 16;
};

class ShardedOram
{
  public:
    using DataCallback = OramController::DataCallback;

    /**
     * Build S shards over @p ctrl_params. Each shard gets a derived
     * oram seed (shardSeed over the base seed), an id stream
     * (s + 1 step S, so ids are globally unique and never 0), and
     * exclusive use of backends[s]. Shard component StatGroups are
     * constructed under a StatNameScope "s<N>." prefix so one
     * StatRegistry can hold every shard without key collisions.
     *
     * @param backends One memory backend per shard; must outlive this.
     */
    ShardedOram(const ShardedOramParams &params,
                const ControllerParams &ctrl_params, EventQueue &eq,
                const std::vector<mem::MemoryBackend *> &backends);

    ShardedOram(const ShardedOram &) = delete;
    ShardedOram &operator=(const ShardedOram &) = delete;

    /** Home shard of a block: splitmix64(addr) % shards. */
    static unsigned shardOf(BlockAddr addr, unsigned shards);

    /**
     * Derived oram seed of shard @p shard over @p base_seed.
     * splitmix64 is bijective and the inputs base + (s+1) * gamma are
     * pairwise distinct, so no two shards can share a raw seed.
     */
    static std::uint64_t shardSeed(std::uint64_t base_seed,
                                   unsigned shard);

    /** True if at least one shard could take a request right now.
     *  The next request may still be rejected when its home shard is
     *  the saturated one — callers retry, as with a busy controller. */
    bool canAccept() const;

    /**
     * Submit an LLC request; routed to the home shard of @p addr.
     * @return the request id (0 when rejected: home-shard window
     *         full, or its address queue busy; retry later).
     */
    std::uint64_t request(oram::Op op, BlockAddr addr,
                          std::vector<std::uint8_t> payload,
                          DataCallback cb);

    /** Real requests accepted and not yet answered, all shards. */
    std::size_t inFlight() const;
    bool busy() const { return inFlight() > 0; }

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    OramController &shard(unsigned s) { return *shards_[s].ctrl; }
    const OramController &shard(unsigned s) const
    {
        return *shards_[s].ctrl;
    }

    /** Requests accepted into shard @p s. */
    std::uint64_t dispatched(unsigned s) const
    {
        return shards_[s].dispatched.value();
    }
    /** Rejections because the home shard's window was full. */
    std::uint64_t windowRejects() const
    {
        return windowRejects_.value();
    }
    /** Rejections because the home shard's controller was busy. */
    std::uint64_t busyRejects() const { return busyRejects_.value(); }

    /**
     * Deterministic FNV fold of the per-shard request-stream
     * fingerprints in shard order. Each shard's stream is internally
     * ordered and shards are independent, so folding per-shard
     * fingerprints (rather than one global issue-order stream, which
     * would depend on cross-shard interleaving) is the sharded
     * analogue of OramController::reqStreamFingerprint.
     */
    std::uint64_t reqStreamFingerprint() const;

    fp::StatGroup &stats() { return stats_; }

  private:
    struct Shard
    {
        std::unique_ptr<OramController> ctrl;
        std::size_t inflight = 0;
        fp::Counter dispatched;
    };

    ShardedOramParams params_;
    std::vector<Shard> shards_;
    fp::Counter windowRejects_;
    fp::Counter busyRejects_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_SHARDED_ORAM_HH
