/**
 * @file
 * The label queue of the Fork Path controller (paper Section 3.4 and
 * Figure 9): a fixed-capacity pool of pending ORAM path labels from
 * which the next request is scheduled by maximum path overlap with
 * the in-flight request.
 *
 * Security shape (Figure 7): the pool presented to the scheduler is
 * always exactly `capacity` entries; when fewer real requests are
 * pending it is padded with dummy labels, so the statistics of the
 * revealed overlap degrees are independent of LLC intensity. A real
 * request beats a dummy at equal overlap, and a per-entry age counter
 * (the Cnt field of Figure 9) force-promotes starved requests.
 *
 * Two selection policies are provided:
 *  - compete:   the paper's rule. Dummies genuinely compete on
 *               overlap (ties go to real requests), which keeps the
 *               revealed overlap distribution intensity-independent.
 *  - realFirst: dummies are only eligible when no real request is
 *               pending. Leaks intensity through the overlap degree
 *               (Figure 7a) but wastes no accesses; provided for the
 *               ablation study.
 */

#ifndef FP_CORE_LABEL_QUEUE_HH
#define FP_CORE_LABEL_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "mem/tree_geometry.hh"
#include "obs/tracer.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::core
{

enum class DummySelectPolicy
{
    compete,
    realFirst,
};

/** One pending ORAM request's scheduling entry. */
struct LabelEntry
{
    LeafLabel label = invalidLeaf;
    bool dummy = true;
    /** Opaque link to the owning access (0 for padding dummies). */
    std::uint64_t token = 0;
    /** Selection rounds lost to a dummy (the paper's Cnt field). */
    unsigned age = 0;
    /** Insertion tick (profiler residency; 0 when not profiling). */
    Tick enq = 0;
};

class LabelQueue
{
  public:
    /**
     * @param geo            Tree geometry (for overlap).
     * @param capacity       The label queue size M.
     * @param aging_threshold Age at which a real entry is
     *                       force-promoted past the overlap rule.
     * @param policy         Dummy eligibility policy.
     * @param seed           RNG seed for padding labels.
     */
    LabelQueue(const mem::TreeGeometry &geo, std::size_t capacity,
               unsigned aging_threshold, DummySelectPolicy policy,
               std::uint64_t seed);

    /**
     * Insert a real request: replaces the first padding dummy if any
     * (Algorithm 1), else appends. Chain spawns may transiently push
     * the queue one entry past capacity; padding never does.
     * @return false iff the queue is full of real entries.
     */
    bool insertReal(LeafLabel label, std::uint64_t token,
                    bool allow_overflow = false);

    /**
     * Restore the pool to exactly capacity entries: drop padding
     * dummies while an overflow insert has the queue over capacity,
     * then pad with fresh uniform dummy labels while under.
     */
    void ensureFull();

    /**
     * Pop the scheduled next request w.r.t. the in-flight path
     * @p current: an over-age real entry first (oldest), otherwise
     * maximum overlap with ties broken real-over-dummy then FIFO.
     * Ages the remaining real entries. Empty queue returns nullopt.
     */
    std::optional<LabelEntry> selectNext(LeafLabel current);

    /** True if a real insert would succeed without overflow. */
    bool hasSpaceForReal() const;

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::size_t realCount() const { return realCount_; }
    std::size_t dummyCount() const
    {
        return entries_.size() - realCount_;
    }

    /** Entries, oldest first (tests & the controller's swap rule). */
    const std::deque<LabelEntry> &entries() const { return entries_; }

    std::uint64_t selections() const { return selections_.value(); }
    std::uint64_t dummiesSelected() const
    {
        return dummySelected_.value();
    }
    std::uint64_t agingPromotions() const
    {
        return agingPromotions_.value();
    }

    /** Attach the event tracer (selection decision track). */
    void setTracer(obs::Tracer *tracer) { trc_ = tracer; }

    /** Attach the request profiler (real-entry residency sampling). */
    void setProfiler(obs::RequestProfiler *prof) { prof_ = prof; }

  private:
    mem::TreeGeometry geo_;
    std::size_t capacity_;
    unsigned agingThreshold_;
    DummySelectPolicy policy_;
    Rng rng_;
    obs::Tracer *trc_ = nullptr;
    obs::RequestProfiler *prof_ = nullptr;

    std::deque<LabelEntry> entries_;
    std::size_t realCount_ = 0;

    fp::Counter selections_;
    fp::Counter dummySelected_;
    fp::Counter agingPromotions_;
};

} // namespace fp::core

#endif // FP_CORE_LABEL_QUEUE_HH
