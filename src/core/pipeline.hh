/**
 * @file
 * Shared substrate of the staged ORAM access pipeline.
 *
 * The controller is decomposed into four stages (see
 * docs/ARCHITECTURE.md, "Access pipeline & scheduling policies"):
 *
 *   AdmissionStage   drains the address queue into the scheduler
 *                    (stash shortcut, MAC data hit, PLB chain start,
 *                    policy-gated batching);
 *   PathScheduler    owns the label queue, the access pool and the
 *                    AccessPolicy; picks paths and handles dummy
 *                    replacing / pending swaps;
 *   ReadEngine       runs one fork-shaped read phase against the
 *                    memory backend;
 *   WritebackEngine  runs one windowed refill phase.
 *
 * PipelineContext is the bag of references every stage shares: the
 * functional ORAM substrate (position map, stash, tree store, caches,
 * integrity tree), the timing seam (event queue + memory backend),
 * and the observability hooks. The OramController owns the
 * components, fills the context in its constructor, and orchestrates
 * the stages through the unchanged phase machine.
 */

#ifndef FP_CORE_PIPELINE_HH
#define FP_CORE_PIPELINE_HH

#include <cstdint>

#include "core/controller_params.hh"
#include "dram/address_mapping.hh"
#include "mem/backend.hh"
#include "mem/tree_store.hh"
#include "obs/tracer.hh"
#include "oram/position_map.hh"
#include "oram/stash.hh"
#include "util/event_queue.hh"

namespace fp::obs
{
class RequestProfiler;
} // namespace fp::obs

namespace fp::oram
{
class TreetopCache;
class MerkleTree;
} // namespace fp::oram

namespace fp::core
{

class MergingAwareCache;
class PosmapLookasideBuffer;

/** One ORAM access being processed or scheduled next. */
struct ActiveAccess
{
    LeafLabel label = invalidLeaf;
    bool dummy = true;
    std::uint64_t llcId = 0;       //!< Owning LLC request.
    unsigned chainIndex = 0;       //!< Recursion chain position.
    BlockAddr addr = invalidBlockAddr; //!< Data element only.
    LeafLabel newLeaf = invalidLeaf;   //!< Remap target.
};

/**
 * References to the shared pipeline substrate, owned by the
 * controller and outliving every stage. The cache/integrity pointers
 * are null when the corresponding feature is off; trc/prof are
 * mutable observability attachments (setTracer/setProfiler).
 */
struct PipelineContext
{
    const ControllerParams &params;
    EventQueue &eq;
    mem::MemoryBackend &mem;
    const mem::TreeGeometry &geo;
    oram::PositionMap &posMap;
    oram::Stash &stash;
    mem::TreeStore &store;
    const dram::BucketLayout &layout;

    oram::TreetopCache *treetop = nullptr;
    MergingAwareCache *mac = nullptr;
    oram::MerkleTree *merkle = nullptr;
    PosmapLookasideBuffer *plb = nullptr;

    obs::Tracer *trc = nullptr;
    obs::RequestProfiler *prof = nullptr;

    /**
     * FNV-1a fingerprint of every backend request the pipeline has
     * issued, folded over (addr, isWrite, bytes) in issue order.
     * Shared between the read and writeback engines so the stream is
     * fingerprinted exactly as the bus sees it.
     */
    std::uint64_t reqFingerprint = 14695981039346656037ULL;

    bool traceOn() const
    {
        return trc && trc->on(obs::TraceLevel::access);
    }

    /** Fold one issued request into reqFingerprint. */
    void fingerprintRequest(Addr addr, bool is_write,
                            std::uint64_t bytes)
    {
        constexpr std::uint64_t prime = 1099511628211ULL;
        auto fold = [this, prime](std::uint64_t v, unsigned bytes_of) {
            for (unsigned i = 0; i < bytes_of; ++i) {
                reqFingerprint ^= (v >> (8 * i)) & 0xffu;
                reqFingerprint *= prime;
            }
        };
        fold(addr, 8);
        fold(is_write ? 1 : 0, 1);
        fold(bytes, 8);
    }
};

} // namespace fp::core

#endif // FP_CORE_PIPELINE_HH
