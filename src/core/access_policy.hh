/**
 * @file
 * The scheduling-policy seam of the staged ORAM access pipeline.
 *
 * The Fork Path optimization (paper Section 3) is one point in a
 * family of path-scheduling strategies over the same Path ORAM
 * substrate; an AccessPolicy captures exactly the decisions that
 * family varies:
 *
 *  - whether path merging is in effect (fork-shaped read phases that
 *    start at the retained overlap with the previous refill);
 *  - whether a committed dummy / pending access may be replaced by a
 *    late-arriving real request (paper Cases 1-3);
 *  - when the admission stage may drain the address queue into the
 *    scheduler (the batched policy holds arrivals until a full batch
 *    is available while the backend is busy);
 *  - how the next access is selected from the label queue.
 *
 * Three policies are registered:
 *
 *   traditional  baseline Path ORAM: no merging, no replacing, plain
 *                FIFO-ish label-queue selection.
 *   forkpath     the paper's design (the default): label queue with
 *                dummy padding + overlap scheduling, path merging,
 *                dummy replacing (gated by
 *                ControllerParams::enableDummyReplacing so the
 *                ablation can switch it off independently).
 *   batched      merging without replacing, draining the address
 *                queue in fixed-size batches
 *                (ControllerParams::batchSize) — a deliberately
 *                simple third point proving the seam is real.
 *
 * Policies are constructed per controller instance (per shard under
 * core::ShardedOram) by makeAccessPolicy(); the registry functions
 * (parsePolicyKind / policyKindName / accessPolicyNames /
 * applyPolicyPreset) are the single construction path the CLI
 * (--policy=NAME) and the benches select by name.
 */

#ifndef FP_CORE_ACCESS_POLICY_HH
#define FP_CORE_ACCESS_POLICY_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/label_queue.hh"

namespace fp::core
{

struct ControllerParams;

/** The registered scheduling policies (see file comment). */
enum class PolicyKind
{
    traditional,
    forkpath,
    batched,
};

/**
 * One path-scheduling strategy, consulted by the admission stage
 * (admitFrontend) and the path scheduler (everything else). Policies
 * are stateless apart from configuration so a controller can be
 * replicated per shard without sharing.
 */
class AccessPolicy
{
  public:
    virtual ~AccessPolicy() = default;

    virtual PolicyKind kind() const = 0;
    virtual const char *name() const = 0;

    /** Fork-shaped path merging (read phases start at the retained
     *  overlap; the write phase stops at the scheduled overlap). */
    virtual bool merging() const = 0;

    /** Dummy replacing / pending swap (paper Section 3.3 Cases 1-3). */
    virtual bool replacing() const = 0;

    /**
     * May the admission stage drain the address queue right now?
     * Consulted once per pump with the number of issuable entries and
     * whether an ORAM access is currently in flight. Returning false
     * leaves the entries queued; a later pump (at the latest the one
     * that runs when the pipeline drains) flushes them.
     */
    virtual bool
    admitFrontend(std::size_t issuable, bool pipeline_busy) const
    {
        (void)issuable;
        (void)pipeline_busy;
        return true;
    }

    /**
     * Select the next access to run, w.r.t. the in-flight path
     * @p from (the previous label for a cold pick, the current
     * label at write issue). Merging policies restore the queue to
     * its padded capacity first so the revealed overlap statistics
     * stay intensity-independent.
     */
    virtual std::optional<LabelEntry>
    selectNext(LabelQueue &queue, LeafLabel from) = 0;
};

/** Parse a registry name ("traditional", "forkpath", "batched");
 *  unknown names are fatal with the list of valid ones. */
PolicyKind parsePolicyKind(const std::string &name);

/** The registry name of @p kind. */
const char *policyKindName(PolicyKind kind);

/** Every registered policy name, in registry order. */
std::vector<std::string> accessPolicyNames();

/**
 * Apply @p kind's canonical scheduling-family preset to @p params:
 * sets policy, enableDummyReplacing, labelQueueSize and cachePolicy,
 * leaving the ORAM geometry and every structural/timing knob alone.
 * This is the one construction path behind
 * ControllerParams::traditional()/forkPath(), the sim::with*
 * variant helpers and the --policy CLI flag.
 */
void applyPolicyPreset(ControllerParams &params, PolicyKind kind);

/** Build the policy object @p params selects (params.policy). */
std::unique_ptr<AccessPolicy>
makeAccessPolicy(const ControllerParams &params);

} // namespace fp::core

#endif // FP_CORE_ACCESS_POLICY_HH
