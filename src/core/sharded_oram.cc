#include "core/sharded_oram.hh"

#include <string>

#include "util/logging.hh"
#include "util/random.hh"

namespace fp::core
{

ShardedOram::ShardedOram(
    const ShardedOramParams &params,
    const ControllerParams &ctrl_params, EventQueue &eq,
    const std::vector<mem::MemoryBackend *> &backends)
    : params_(params), stats_("sharded_oram")
{
    fp_assert(params_.shards >= 1, "ShardedOram: zero shards");
    fp_assert(params_.shardWindow >= 1, "ShardedOram: zero window");
    fp_assert(backends.size() == params_.shards,
              "ShardedOram: %zu backends for %u shards",
              backends.size(), params_.shards);

    // Derived seeds must be pairwise distinct: every per-shard RNG
    // stream (leaf remapping, label queue, cipher key) hangs off the
    // shard's oram seed, and two shards sharing one would produce
    // correlated leaf sequences. splitmix64's bijectivity guarantees
    // this; the check keeps the guarantee honest if the derivation
    // ever changes.
    for (unsigned a = 0; a < params_.shards; ++a)
        for (unsigned b = a + 1; b < params_.shards; ++b)
            fp_assert(shardSeed(ctrl_params.oram.seed, a) !=
                          shardSeed(ctrl_params.oram.seed, b),
                      "ShardedOram: shards %u and %u derived the "
                      "same seed",
                      a, b);

    shards_.resize(params_.shards);
    for (unsigned s = 0; s < params_.shards; ++s) {
        fp_assert(backends[s] != nullptr,
                  "ShardedOram: null backend for shard %u", s);
        ControllerParams p = ctrl_params;
        p.oram.seed = shardSeed(ctrl_params.oram.seed, s);
        // Every StatGroup the shard's component stack constructs
        // (controller, label queue, stash, caches, ...) gets an
        // "s<N>." name prefix, keeping interval-stats JSON keys
        // unique across shards in the shared registry.
        StatNameScope scope("s" + std::to_string(s) + ".");
        shards_[s].ctrl = std::make_unique<OramController>(
            p, eq, *backends[s]);
        shards_[s].ctrl->setRequestIdStream(s + 1, params_.shards);
    }

    // Register only after shards_ has its final size: StatGroup holds
    // raw pointers into the vector's elements.
    for (unsigned s = 0; s < params_.shards; ++s)
        stats_.regCounter("dispatched_s" + std::to_string(s),
                          shards_[s].dispatched,
                          "requests routed to shard " +
                              std::to_string(s));
    stats_.regCounter("window_rejects", windowRejects_,
                      "requests bounced off a full shard window");
    stats_.regCounter("busy_rejects", busyRejects_,
                      "requests bounced off a busy shard controller");
    stats_.regGauge(
        "inflight",
        [this] { return static_cast<double>(inFlight()); },
        "LLC requests in flight across all shards");
}

unsigned
ShardedOram::shardOf(BlockAddr addr, unsigned shards)
{
    // A multiplicative hash rather than addr % shards: blocks of one
    // core's working set are contiguous, and a plain modulus would
    // stripe them in lockstep instead of spreading them.
    return static_cast<unsigned>(splitmix64(addr) % shards);
}

std::uint64_t
ShardedOram::shardSeed(std::uint64_t base_seed, unsigned shard)
{
    return splitmix64(base_seed +
                      (std::uint64_t{shard} + 1) *
                          0x9e3779b97f4a7c15ULL);
}

bool
ShardedOram::canAccept() const
{
    for (const Shard &sh : shards_)
        if (sh.inflight < params_.shardWindow && sh.ctrl->canAccept())
            return true;
    return false;
}

std::uint64_t
ShardedOram::request(oram::Op op, BlockAddr addr,
                     std::vector<std::uint8_t> payload, DataCallback cb)
{
    unsigned s = shardOf(addr, params_.shards);
    Shard &sh = shards_[s];
    if (sh.inflight >= params_.shardWindow) {
        windowRejects_.inc();
        return 0;
    }

    // Count the request in flight *before* submitting: forwarding and
    // shortcut paths complete synchronously inside request(), and the
    // completion callback must see the slot it is releasing.
    ++sh.inflight;
    std::uint64_t id = sh.ctrl->request(
        op, addr, std::move(payload),
        [this, s, cb = std::move(cb)](
            Tick t, const std::vector<std::uint8_t> &data) {
            fp_assert(shards_[s].inflight > 0,
                      "ShardedOram: completion without inflight");
            --shards_[s].inflight;
            if (cb)
                cb(t, data);
        });
    if (id == 0) {
        --sh.inflight;
        busyRejects_.inc();
        return 0;
    }
    sh.dispatched.inc();
    return id;
}

std::size_t
ShardedOram::inFlight() const
{
    std::size_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.inflight;
    return n;
}

std::uint64_t
ShardedOram::reqStreamFingerprint() const
{
    std::uint64_t fp = 14695981039346656037ULL;
    for (const Shard &sh : shards_) {
        fp ^= sh.ctrl->reqStreamFingerprint();
        fp *= 1099511628211ULL;
    }
    return fp;
}

} // namespace fp::core
