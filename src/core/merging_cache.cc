#include "core/merging_cache.hh"

#include <algorithm>

#include "obs/request_profiler.hh"
#include "util/logging.hh"

namespace fp::core
{

MergingAwareCache::MergingAwareCache(const mem::TreeGeometry &geo,
                                     const MergingCacheParams &params)
    : geo_(geo), m1_(params.m1), ways_(params.bucketsPerSet),
      bucketBytes_(params.bucketBytes), z_(params.z)
{
    fp_assert(ways_ >= 1, "MAC: associativity must be >= 1");
    fp_assert(bucketBytes_ > 0, "MAC: zero bucket size");
    fp_assert(m1_ <= geo_.leafLevel(), "MAC: m1 beyond leaf level");

    std::uint64_t budget_frames = params.budgetBytes / bucketBytes_;
    fp_assert(budget_frames >= ways_, "MAC: budget below one set");

    // Allocate levels bottom-up from m1: full coverage (2^x frames)
    // while the budget lasts, then a partial region for the last
    // level from the remaining frames (rounded to whole sets).
    std::uint64_t used = 0;
    unsigned x = m1_;
    while (x <= geo_.leafLevel()) {
        std::uint64_t full = std::uint64_t{1} << x;
        std::uint64_t remaining = budget_frames - used;
        std::uint64_t alloc = std::min(full, remaining);
        alloc -= alloc % ways_;
        if (alloc == 0)
            break;
        levelBase_.push_back(used);
        levelAlloc_.push_back(alloc);
        used += alloc;
        ++x;
        if (alloc < full)
            break; // partial level terminates the band
    }
    fp_assert(!levelAlloc_.empty(),
              "MAC: budget cannot hold one set of level m1");
    m2_ = m1_ + static_cast<unsigned>(levelAlloc_.size()) - 1;
    capacity_ = used;

    std::uint64_t num_sets =
        std::max<std::uint64_t>(1, capacity_ / ways_);
    sets_.assign(num_sets, std::vector<Line>(ways_));

    // Pre-warm the fully-covered levels: the tree starts all-dummy
    // and the controller initialised it, so it legitimately knows
    // those buckets' (empty) contents. This models the post-warmup
    // steady state, mirroring the idealised treetop cache whose
    // pinned levels never pay a fill cost.
    for (unsigned lvl = m1_; lvl <= m2_; ++lvl) {
        std::uint64_t alloc = levelAlloc_[lvl - m1_];
        if (alloc != (std::uint64_t{1} << lvl))
            continue; // partial level stays cold
        for (std::uint64_t y = 0; y < alloc; ++y) {
            BucketIndex idx =
                ((std::uint64_t{1} << lvl) - 1) + y;
            auto &set = sets_[setIndex(idx)];
            for (Line &line : set) {
                if (!line.valid) {
                    line.valid = true;
                    line.tag = idx;
                    line.bucket = mem::Bucket(z_);
                    break;
                }
            }
        }
    }
}

std::uint64_t
MergingAwareCache::setIndex(BucketIndex idx) const
{
    unsigned x = geo_.levelOf(idx);
    fp_assert(inRange(x), "setIndex: level outside cached band");
    std::uint64_t y = geo_.offsetInLevel(idx);

    std::uint64_t alloc = levelAlloc_[x - m1_];
    std::uint64_t frame = levelBase_[x - m1_] + (y % alloc);
    return (frame / ways_) % sets_.size();
}

const mem::Bucket *
MergingAwareCache::peek(BucketIndex idx) const
{
    const auto &set = sets_[setIndex(idx)];
    for (const Line &line : set) {
        if (line.valid && line.tag == idx)
            return &line.bucket;
    }
    return nullptr;
}

void
MergingAwareCache::forEachBucket(
    const std::function<void(BucketIndex, const mem::Bucket &)> &fn)
    const
{
    for (const auto &set : sets_) {
        for (const Line &line : set) {
            if (line.valid)
                fn(line.tag, line.bucket);
        }
    }
}

std::optional<mem::Bucket>
MergingAwareCache::extract(BucketIndex idx)
{
    auto &set = sets_[setIndex(idx)];
    for (Line &line : set) {
        if (line.valid && line.tag == idx) {
            hits_.inc();
            if (trc_ && trc_->on(obs::TraceLevel::access))
                trc_->instant(obs::Track::cache, "mac_hit",
                              {obs::TraceArg::num("bucket", idx)});
            line.valid = false;
            return std::move(line.bucket);
        }
    }
    misses_.inc();
    return std::nullopt;
}

std::optional<mem::Block>
MergingAwareCache::extractBlock(BucketIndex idx, BlockAddr addr)
{
    auto &set = sets_[setIndex(idx)];
    for (Line &line : set) {
        if (!line.valid || line.tag != idx)
            continue;
        // Rebuild the bucket without the requested block.
        mem::Bucket rest(line.bucket.z());
        std::optional<mem::Block> found;
        for (mem::Block &blk : line.bucket.takeAll()) {
            if (blk.addr == addr && !found)
                found = std::move(blk);
            else
                rest.add(std::move(blk));
        }
        line.bucket = std::move(rest);
        if (found) {
            dataHits_.inc();
            if (prof_)
                prof_->countMacDataHit();
            line.lastUse = ++useClock_;
            if (trc_ && trc_->on(obs::TraceLevel::access))
                trc_->instant(obs::Track::cache, "mac_data_hit",
                              {obs::TraceArg::num("bucket", idx),
                               obs::TraceArg::num("addr", addr)});
        }
        return found;
    }
    return std::nullopt;
}

std::optional<MergingAwareCache::Victim>
MergingAwareCache::insert(BucketIndex idx, mem::Bucket bucket)
{
    insertions_.inc();
    auto &set = sets_[setIndex(idx)];

    // Same-tag line (refreshed refill) or an invalid line first.
    Line *dest = nullptr;
    for (Line &line : set) {
        if (line.valid && line.tag == idx) {
            dest = &line;
            break;
        }
    }
    if (!dest) {
        for (Line &line : set) {
            if (!line.valid) {
                dest = &line;
                break;
            }
        }
    }

    std::optional<Victim> victim;
    if (!dest) {
        // LRU victim.
        dest = &*std::min_element(
            set.begin(), set.end(),
            [](const Line &a, const Line &b) {
                return a.lastUse < b.lastUse;
            });
        evictions_.inc();
        if (prof_)
            prof_->countCacheVictim();
        if (trc_ && trc_->on(obs::TraceLevel::access))
            trc_->instant(obs::Track::cache, "mac_evict",
                          {obs::TraceArg::num("victim", dest->tag),
                           obs::TraceArg::num("for", idx)});
        victim = Victim{dest->tag, std::move(dest->bucket)};
    }

    dest->valid = true;
    dest->tag = idx;
    dest->bucket = std::move(bucket);
    dest->lastUse = ++useClock_;
    return victim;
}

} // namespace fp::core
