#include "core/oram_controller.hh"

#include <algorithm>

#include "core/overlap.hh"
#include "dram/dram_backend.hh"
#include "obs/request_profiler.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

ControllerParams
ControllerParams::traditional()
{
    ControllerParams p;
    p.enableMerging = false;
    p.enableDummyReplacing = false;
    p.labelQueueSize = 1;
    p.cachePolicy = CachePolicy::none;
    return p;
}

ControllerParams
ControllerParams::forkPath()
{
    ControllerParams p;
    p.enableMerging = true;
    p.enableDummyReplacing = true;
    p.labelQueueSize = 64;
    p.cachePolicy = CachePolicy::mac;
    return p;
}

OramController::OramController(const ControllerParams &params,
                               EventQueue &eq,
                               mem::MemoryBackend &backend)
    : OramController(params, eq, &backend, nullptr)
{
}

OramController::OramController(const ControllerParams &params,
                               EventQueue &eq, dram::DramSystem &dram)
    : OramController(params, eq, nullptr,
                     std::make_unique<dram::DramBackend>(dram))
{
}

OramController::OramController(
    const ControllerParams &params, EventQueue &eq,
    mem::MemoryBackend *ext,
    std::unique_ptr<mem::MemoryBackend> owned)
    : ownedMem_(std::move(owned)), params_(params), eq_(eq),
      mem_(ext ? *ext : *ownedMem_),
      geo_(params.oram.geometry()),
      posMap_(geo_, params.oram.seed ^ 0xa11ce),
      stash_(geo_, params.oram.stashCapacity),
      store_(geo_, params.oram.z, params.oram.payloadBytes,
             params.oram.encrypt, params.oram.seed ^ 0xc1f3),
      layout_(geo_, params.bucketBytes(), mem_.rowBytes(),
              params.layout),
      addrQueue_(params.addressQueueSize),
      labelQueue_(geo_, params.labelQueueSize, params.agingThreshold,
                  params.dummyPolicy, params.oram.seed ^ 0x1abe1),
      rng_(params.oram.seed ^ 0xf0c4),
      llcLatency_(256, 100.0), // 100 ns buckets
      forkLevelHist_(geo_.numLevels() + 1, 1.0),
      overlapHist_(geo_.numLevels() + 1, 1.0),
      stats_("oram_controller")
{
    mergeSkipsPerLevel_.assign(geo_.numLevels(), 0);
    if (params_.cachePolicy == CachePolicy::treetop) {
        treetop_ = std::make_unique<oram::TreetopCache>(
            geo_, params_.bucketBytes(), params_.cacheBudgetBytes);
    } else if (params_.cachePolicy == CachePolicy::mac) {
        MergingCacheParams mp;
        mp.m1 = params_.macM1 >= 0
                    ? static_cast<unsigned>(params_.macM1)
                    : macBottomLevel(geo_, params_.labelQueueSize);
        mp.budgetBytes = params_.cacheBudgetBytes;
        mp.bucketsPerSet = params_.macBucketsPerSet;
        mp.bucketBytes = params_.bucketBytes();
        mp.z = params_.oram.z;
        mac_ = std::make_unique<MergingAwareCache>(geo_, mp);
    }
    if (params_.enableIntegrity) {
        merkle_ = std::make_unique<oram::MerkleTree>(
            geo_, params_.oram.seed ^ 0x3ec71e);
        integrityRead_.resize(geo_.numLevels());
        integrityWrite_.resize(geo_.numLevels());
    }
    if (params_.recursionDepth > 0 && params_.plbEntries > 0) {
        plb_ = std::make_unique<PosmapLookasideBuffer>(
            params_.recursionDepth, params_.recursionFanout,
            params_.plbEntries);
    }

    stats_.regHistogram("llc_latency_ns", llcLatency_,
                        "LLC request completion latency");
    stats_.regAverage("read_path_len", readLen_,
                      "tree levels fetched per access");
    stats_.regAverage("dram_buckets_read", dramReadLen_,
                      "buckets fetched from DRAM per access");
    stats_.regAverage("dram_service_ns", dramService_,
                      "read+write phase duration per access");
    stats_.regCounter("real_accesses", realAccesses_,
                      "real ORAM accesses performed");
    stats_.regCounter("dummy_accesses", dummyAccesses_,
                      "dummy ORAM accesses performed");
    stats_.regCounter("dummy_replacements", dummyReplacements_,
                      "pending dummies replaced by real requests");
    stats_.regCounter("pending_swaps", pendingSwaps_,
                      "pending real requests swapped for better overlap");
    stats_.regCounter("stash_shortcuts", stashShortcuts_,
                      "requests served directly from the stash");
    stats_.regCounter("onchip_bucket_reads", onChipBucketReads_,
                      "bucket reads served by treetop/MAC");
    stats_.regCounter("mac_victim_writes", macVictimWrites_,
                      "MAC evictions written back to DRAM");
    stats_.regHistogram("fork_level", forkLevelHist_,
                        "read-phase start level per access");
    stats_.regHistogram("overlap_level", overlapHist_,
                        "scheduled refill stop level per access");
    stats_.regCounter("merge_skipped_levels", mergeSkippedLevels_,
                      "tree levels skipped by path merging");
    stats_.regGauge(
        "stash_depth", [this] { return double(stash_.size()); },
        "blocks resident in the stash");
    stats_.regGauge(
        "label_queue_real",
        [this] { return double(labelQueue_.realCount()); },
        "real entries in the label queue");
    stats_.regGauge(
        "label_queue_total",
        [this] { return double(labelQueue_.size()); },
        "total entries in the label queue");
    stats_.regGauge(
        "addr_queue_depth",
        [this] { return double(addrQueue_.size()); },
        "entries in the address queue");

    setDebugTickSource(eq_.nowPtr());
}

OramController::~OramController()
{
    // Drop the thread's debug clock only if it still points at our
    // event queue (a later-constructed System may have replaced it).
    clearDebugTickSource(eq_.nowPtr());
}

void
OramController::setTracer(obs::Tracer *tracer)
{
    trc_ = tracer;
    labelQueue_.setTracer(tracer);
    stash_.setTracer(tracer);
    if (mac_)
        mac_->setTracer(tracer);
    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->nameTrack(obs::Track::controller, "controller");
        trc_->nameTrack(obs::Track::schedule, "scheduler");
        trc_->nameTrack(obs::Track::cache, "caches");
        trc_->nameTrack(obs::Track::revealed, "revealed");
        trc_->nameTrack(obs::Track::stash, "stash");
        trc_->nameTrack(obs::Track::queues, "queues");
    }
}

void
OramController::setProfiler(obs::RequestProfiler *prof)
{
    prof_ = prof;
    labelQueue_.setProfiler(prof);
    stash_.setProfiler(prof);
    if (mac_)
        mac_->setProfiler(prof);
}

bool
OramController::canAccept() const
{
    return !addrQueue_.full();
}

void
OramController::setRequestIdStream(std::uint64_t first,
                                   std::uint64_t stride)
{
    fp_assert(first != 0 && stride != 0,
              "setRequestIdStream: ids must be non-zero and advance");
    fp_assert(nextId_ == 1 && llc_.empty(),
              "setRequestIdStream: requests already issued");
    nextId_ = first;
    idStride_ = stride;
}

std::uint64_t
OramController::request(oram::Op op, BlockAddr addr,
                        std::vector<std::uint8_t> payload,
                        DataCallback cb)
{
    if (addrQueue_.full())
        return 0;

    std::uint64_t id = nextId_;
    nextId_ += idStride_;
    AddressEntry entry;
    entry.id = id;
    entry.addr = addr;
    entry.op = op;
    entry.payload = std::move(payload);
    entry.arrival = eq_.now();

    auto result = addrQueue_.insert(std::move(entry));
    fp_assert(result.accepted, "address queue rejected with space");
    if (prof_)
        prof_->onArrival(id);
    if (result.cancelledId != 0) {
        // The superseded write is acknowledged immediately; the
        // younger write carries the live data from here on.
        respond(result.cancelledId, {});
    }
    if (result.forwarded) {
        // Write-before-Read forwarding: done without an ORAM access.
        llcLatency_.sample(0.0);
        if (prof_)
            prof_->onComplete(id);
        if (cb)
            cb(eq_.now(), result.forwardData);
        return id;
    }

    LlcRequest req;
    req.id = id;
    req.addr = addr;
    req.op = op;
    req.payload = addrQueue_.find(id)->payload;
    req.arrival = eq_.now();
    req.cb = std::move(cb);
    llc_.emplace(id, std::move(req));
    ++outstandingLlc_;

    pumpFrontend();
    maybeStartBackend();
    return id;
}

bool
OramController::realWorkPending() const
{
    return addrQueue_.issuableCount() > 0 ||
           labelQueue_.realCount() > 0 ||
           (pending_ && !pending_->dummy);
}

bool
OramController::shouldRunBackend() const
{
    // Background eviction (Ren et al.): an over-full stash keeps the
    // dummy stream running so refills drain blocks into the tree.
    bool stash_pressure = params_.backgroundEviction &&
                          stash_.size() >=
                              params_.oram.stashCapacity;
    // Periodic mode never parks: the nonstop access stream is the
    // whole point (Section 2.2's timing-channel seal).
    return params_.periodicIntervalTicks != 0 ||
           realWorkPending() || stash_pressure;
}

void
OramController::respond(std::uint64_t llc_id,
                        const std::vector<std::uint8_t> &data)
{
    auto it = llc_.find(llc_id);
    fp_assert(it != llc_.end(), "respond: unknown LLC id");
    LlcRequest req = std::move(it->second);
    llc_.erase(it);

    llcLatency_.sample(fp::ticksToNs(eq_.now() - req.arrival));
    if (prof_)
        prof_->onComplete(llc_id);
    fp_assert(outstandingLlc_ > 0, "respond: LLC underflow");
    --outstandingLlc_;
    if (req.cb)
        req.cb(eq_.now(), data);

    // Releasing the address-queue entry may unblock held writes and
    // complete piggybacked reads.
    for (std::uint64_t pid : addrQueue_.complete(llc_id, data))
        respond(pid, data);
}

void
OramController::pumpFrontend()
{
    while (AddressEntry *e = addrQueue_.nextIssuable()) {
        // Step 1: stash shortcut.
        if (params_.oram.stashShortcut) {
            if (mem::Block *blk = stash_.find(e->addr)) {
                stashShortcuts_.inc();
                if (prof_)
                    prof_->countStashShortcut();
                if (trc_ && trc_->on(obs::TraceLevel::access))
                    trc_->instant(
                        obs::Track::cache, "stash_shortcut",
                        {obs::TraceArg::num("addr", e->addr)});
                std::vector<std::uint8_t> data = blk->payload;
                if (e->op == oram::Op::write)
                    blk->payload = e->payload;
                addrQueue_.markIssued(e->id);
                respond(e->id, data);
                continue;
            }
        }

        // MAC data hit (paper Section 4): the block may sit in a
        // cached bucket along its current path; if so it is promoted
        // to the stash and the request completes without a DRAM
        // access, exactly like a stash hit.
        if (mac_ && tryMacDataHit(*e))
            continue;

        // Build the head of this request's access chain. With
        // modelled recursion the head is a position-map access with a
        // uniform label; otherwise it is the data access itself. A
        // PLB hit lets the chain start below the cached translation.
        ActiveAccess acc;
        acc.dummy = false;
        acc.llcId = e->id;
        acc.chainIndex =
            plb_ ? plb_->lookupChainStart(e->addr) : 0;
        if (acc.chainIndex > 0 && trc_ &&
            trc_->on(obs::TraceLevel::access)) {
            trc_->instant(obs::Track::cache, "plb_hit",
                          {obs::TraceArg::num("addr", e->addr),
                           obs::TraceArg::num("chain_start",
                                              acc.chainIndex)});
        }
        bool is_data = acc.chainIndex == params_.recursionDepth;
        if (is_data) {
            acc.addr = e->addr;
            acc.label = posMap_.lookupOrAssign(e->addr);
        } else {
            acc.label = posMap_.randomLabel();
        }

        // Admission: dummy-replace / swap into pending, else the
        // label queue proper.
        bool admitted = tryReplaceOrSwapPending(acc);
        if (!admitted) {
            if (!labelQueue_.hasSpaceForReal())
                break; // backpressure; retry on next pump
            if (is_data)
                acc.newLeaf = posMap_.remap(e->addr);
            enqueueAccess(acc);
        } else if (is_data) {
            // Remap only once the access is definitely in flight.
            // (tryReplaceOrSwapPending cannot be reached before the
            // label lookup above, which it uses for the overlap.)
            pending_->newLeaf = posMap_.remap(e->addr);
        }
        addrQueue_.markIssued(e->id);
        if (prof_)
            prof_->onIssue(e->id);
    }
}

bool
OramController::tryMacDataHit(AddressEntry &entry)
{
    // The block, if not stashed, lives somewhere on the path of its
    // current label; probe the cached band's positions along it.
    LeafLabel label = posMap_.lookupOrAssign(entry.addr);
    for (unsigned level = mac_->m1(); level <= mac_->m2(); ++level) {
        BucketIndex idx = geo_.bucketAt(label, level);
        auto blk = mac_->extractBlock(idx, entry.addr);
        if (!blk)
            continue;
        if (merkle_) {
            const mem::Bucket *rest = mac_->peek(idx);
            fp_assert(rest != nullptr, "MAC hit bucket vanished");
            merkle_->updateBucket(idx, *rest);
        }
        fp_dtrace(cache, "MAC data hit addr=%llu at level %u",
                  static_cast<unsigned long long>(entry.addr),
                  level);
        blk->leaf = posMap_.remap(entry.addr);
        std::vector<std::uint8_t> data = blk->payload;
        if (entry.op == oram::Op::write)
            blk->payload = entry.payload;
        stash_.insert(std::move(*blk));
        addrQueue_.markIssued(entry.id);
        respond(entry.id, data);
        return true;
    }
    return false;
}

bool
OramController::tryReplaceOrSwapPending(const ActiveAccess &incoming)
{
    if (!params_.enableMerging || !params_.enableDummyReplacing)
        return false;
    if (!writePhaseActive_ || !pending_ || !current_)
        return false;

    unsigned k_in = geo_.overlap(current_->label, incoming.label);
    // The crossing bucket (deepest shared level, k_in - 1) must not
    // have been issued yet: the refill sweeps leaf -> root, so levels
    // strictly above nextWriteLevel_ are already committed to the
    // command stream (paper Cases 1-3).
    bool crossing_free =
        static_cast<int>(k_in) - 1 <= nextWriteLevel_;
    if (!crossing_free) {
        // Case 2: the crossing bucket is already in the command
        // stream, so the committed pending cannot change.
        if (trc_ && trc_->on(obs::TraceLevel::access))
            trc_->instant(
                obs::Track::schedule, "replace_reject",
                {obs::TraceArg::num("case", 2),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in)});
        return false;
    }

    if (pending_->dummy) {
        fp_dtrace(sched,
                  "replace dummy pending with label=%llu (k=%u)",
                  static_cast<unsigned long long>(incoming.label),
                  k_in);
        pending_ = incoming;
        writeStopLevel_ = std::min<unsigned>(k_in, geo_.numLevels());
        dummyReplacements_.inc();
        if (prof_)
            prof_->countWritebackReplaced();
        // Case 1: a not-yet-committed padding dummy gives its slot
        // to the late-arriving real request.
        if (trc_ && trc_->on(obs::TraceLevel::access))
            trc_->instant(
                obs::Track::schedule, "dummy_replace",
                {obs::TraceArg::num("case", 1),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in)});
        issueMoreWrites();
        return true;
    }

    unsigned k_pend = geo_.overlap(current_->label, pending_->label);
    if (k_in > k_pend) {
        // Swap: the better-overlapping incoming becomes pending; the
        // old pending rejoins the pool (Algorithm 1).
        ActiveAccess old_pending = *pending_;
        pending_ = incoming;
        writeStopLevel_ = std::min<unsigned>(k_in, geo_.numLevels());
        pendingSwaps_.inc();
        if (prof_)
            prof_->countPendingSwap();
        // Case 3: a real pending is displaced by a better-overlapping
        // real newcomer and rejoins the pool.
        if (trc_ && trc_->on(obs::TraceLevel::access))
            trc_->instant(
                obs::Track::schedule, "pending_swap",
                {obs::TraceArg::num("case", 3),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in),
                 obs::TraceArg::num("old_overlap", k_pend)});
        enqueueAccess(old_pending);
        issueMoreWrites();
        return true;
    }
    return false;
}

void
OramController::enqueueAccess(const ActiveAccess &access)
{
    std::uint64_t token = nextToken_++;
    accessPool_.emplace(token, access);
    bool ok = labelQueue_.insertReal(access.label, token,
                                     /*allow_overflow=*/true);
    fp_assert(ok, "label queue rejected an overflow insert");
}

void
OramController::maybeStartBackend()
{
    if (phase_ == Phase::writeParked) {
        // A real arrival resumes the lazily-parked dummy refill; its
        // write-phase selection will see the newcomer.
        if (shouldRunBackend()) {
            phase_ = Phase::idleGap;
            eq_.scheduleIn(params_.idleGapTicks, [this] {
                if (phase_ == Phase::idleGap)
                    startWrite();
            });
        }
        return;
    }
    if (phase_ != Phase::idle)
        return;

    if (!current_) {
        // Pick a fresh access from the label queue.
        if (params_.enableMerging) {
            if (!shouldRunBackend())
                return; // never spin pure-dummy cycles while idle
            labelQueue_.ensureFull();
        }
        auto entry = labelQueue_.selectNext(prevLabel_);
        if (entry) {
            current_ = toActive(*entry);
        } else if (params_.periodicIntervalTicks != 0) {
            // Non-merging periodic baseline: keep the stream alive
            // with a plain dummy access.
            ActiveAccess d;
            d.dummy = true;
            d.label = posMap_.randomLabel();
            current_ = d;
        } else {
            return;
        }
        // A cold pick never has retained levels beyond what the last
        // write left; retainedLevels_ already reflects that.
    }

    // A committed dummy's read runs eagerly even when idle (it is
    // off the critical path); its refill parks in finishRead.
    phase_ = Phase::readWait;
    Tick when = eq_.now() + params_.idleGapTicks;
    if (params_.periodicIntervalTicks != 0) {
        // Pace accesses onto the fixed data-independent grid.
        when = std::max(when, periodicNextStart_);
        periodicNextStart_ =
            when + params_.periodicIntervalTicks;
    }
    eq_.schedule(when, [this] {
        if (phase_ == Phase::readWait)
            startRead();
    });
}

OramController::ActiveAccess
OramController::toActive(const LabelEntry &entry)
{
    if (entry.dummy) {
        ActiveAccess acc;
        acc.dummy = true;
        acc.label = entry.label;
        return acc;
    }
    auto it = accessPool_.find(entry.token);
    fp_assert(it != accessPool_.end(), "label entry without access");
    ActiveAccess acc = it->second;
    accessPool_.erase(it);
    return acc;
}

void
OramController::startRead()
{
    fp_assert(current_.has_value(), "startRead without current");
    phase_ = Phase::reading;
    readStartTick_ = eq_.now();
    readStartLevel_ =
        params_.enableMerging ? retainedLevels_ : 0;
    forkLevelHist_.sample(static_cast<double>(readStartLevel_));
    if (readStartLevel_ > 0) {
        mergeSkippedLevels_.inc(readStartLevel_);
        for (unsigned l = 0; l < readStartLevel_; ++l)
            ++mergeSkipsPerLevel_[l];
    }
    fp_dtrace(oram, "read  label=%llu start_level=%u%s",
              static_cast<unsigned long long>(current_->label),
              readStartLevel_, current_->dummy ? " (dummy)" : "");
    if (prof_ && !current_->dummy &&
        current_->chainIndex == params_.recursionDepth)
        prof_->onReadStart(current_->llcId);
    dramBucketsThisRead_ = 0;
    fp_assert(outstandingReads_ == 0, "reads leak across accesses");

    for (unsigned level = readStartLevel_;
         level <= geo_.leafLevel(); ++level) {
        readBucketAt(level);
    }
    if (outstandingReads_ == 0) {
        // Entire read phase served on chip (or zero-length fork).
        eq_.scheduleIn(0, [this] {
            if (phase_ == Phase::reading && outstandingReads_ == 0)
                finishRead();
        });
    }
}

void
OramController::readBucketAt(unsigned level)
{
    BucketIndex idx = geo_.bucketAt(current_->label, level);

    if (treetop_ && treetop_->covers(level)) {
        mem::Bucket bucket = store_.readBucket(idx);
        if (merkle_)
            integrityRead_[level] = bucket;
        ingestBucket(std::move(bucket));
        onChipBucketReads_.inc();
        if (prof_)
            prof_->countOnChipRead();
        return;
    }
    if (mac_ && mac_->inRange(level)) {
        if (auto bucket = mac_->extract(idx)) {
            if (merkle_)
                integrityRead_[level] = *bucket;
            ingestBucket(std::move(*bucket));
            onChipBucketReads_.inc();
            if (prof_)
                prof_->countOnChipRead();
            return;
        }
    }

    {
        mem::Bucket bucket = store_.readBucket(idx);
        if (merkle_)
            integrityRead_[level] = bucket;
        ingestBucket(std::move(bucket));
    }
    ++dramBucketsThisRead_;
    ++outstandingReads_;
    mem::BackendRequest req;
    req.addr = layout_.physAddr(idx);
    req.isWrite = false;
    req.bytes = params_.bucketBytes();
    req.onComplete = [this](Tick) {
        fp_assert(outstandingReads_ > 0, "read completion underflow");
        if (--outstandingReads_ == 0 && phase_ == Phase::reading)
            finishRead();
    };
    fingerprintRequest(req.addr, req.isWrite, req.bytes);
    mem_.access(std::move(req));
}

void
OramController::fingerprintRequest(Addr addr, bool is_write,
                                   std::uint64_t bytes)
{
    constexpr std::uint64_t prime = 1099511628211ULL;
    auto fold = [this, prime](std::uint64_t v, unsigned bytes_of) {
        for (unsigned i = 0; i < bytes_of; ++i) {
            reqFingerprint_ ^= (v >> (8 * i)) & 0xffu;
            reqFingerprint_ *= prime;
        }
    };
    fold(addr, 8);
    fold(is_write ? 1 : 0, 1);
    fold(bytes, 8);
}

void
OramController::ingestBucket(mem::Bucket bucket)
{
    for (mem::Block &blk : bucket.takeAll())
        stash_.insertOrIgnore(std::move(blk));
}

void
OramController::finishRead()
{
    fp_assert(phase_ == Phase::reading, "finishRead out of phase");
    if (merkle_) {
        std::vector<mem::Bucket> slice(
            integrityRead_.begin() + readStartLevel_,
            integrityRead_.end());
        if (!merkle_->verifySlice(current_->label, readStartLevel_,
                                  slice)) {
            fp_panic("integrity violation: path %llu failed Merkle "
                     "verification (active attack detected)",
                     static_cast<unsigned long long>(
                         current_->label));
        }
    }
    readLen_.sample(static_cast<double>(geo_.numLevels()) -
                    readStartLevel_);
    dramReadLen_.sample(static_cast<double>(dramBucketsThisRead_));
    readDoneTick_ = eq_.now();
    if (prof_ && !current_->dummy &&
        current_->chainIndex == params_.recursionDepth)
        prof_->onReadDone(current_->llcId);

    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->complete(
            obs::Track::controller,
            readStartLevel_ > 0 ? "read_merged" : "read",
            readStartTick_, readDoneTick_,
            {obs::TraceArg::num("label", current_->label),
             obs::TraceArg::num("start_level", readStartLevel_),
             obs::TraceArg::flag("dummy", current_->dummy),
             obs::TraceArg::num("dram_buckets", dramBucketsThisRead_)});
    }

    ActiveAccess &acc = *current_;
    if (!acc.dummy) {
        if (acc.chainIndex < params_.recursionDepth) {
            // Position-map chain element: its "data" is the label of
            // the next chain element, which can now be issued.
            auto chain_it = llc_.find(acc.llcId);
            fp_assert(chain_it != llc_.end(),
                      "chain for retired LLC id");
            if (plb_)
                plb_->fill(chain_it->second.addr, acc.chainIndex);

            ActiveAccess next;
            next.dummy = false;
            next.llcId = acc.llcId;
            next.chainIndex = acc.chainIndex + 1;
            if (next.chainIndex == params_.recursionDepth) {
                next.addr = chain_it->second.addr;
                next.label = posMap_.lookupOrAssign(next.addr);
                next.newLeaf = posMap_.remap(next.addr);
            } else {
                next.label = posMap_.randomLabel();
            }
            if (!tryReplaceOrSwapPending(next))
                enqueueAccess(next);
        } else {
            // Data element: install the block and answer the LLC.
            auto it = llc_.find(acc.llcId);
            fp_assert(it != llc_.end(), "data access for retired id");
            LlcRequest &req = it->second;

            mem::Block *blk = stash_.find(acc.addr);
            if (!blk) {
                // First touch: materialise a zeroed block.
                stash_.insert(mem::Block(
                    acc.addr, acc.newLeaf,
                    std::vector<std::uint8_t>(
                        params_.oram.payloadBytes, 0)));
                blk = stash_.find(acc.addr);
            } else {
                blk->leaf = acc.newLeaf;
            }
            std::vector<std::uint8_t> data = blk->payload;
            if (req.op == oram::Op::write)
                blk->payload = req.payload;
            respond(acc.llcId, data);
        }
    }

    if (current_->dummy && !shouldRunBackend()) {
        // Lazy refill: hold the dummy's write phase until there is a
        // real request to merge it with (resumed by
        // maybeStartBackend on the next arrival).
        fp_dtrace(oram, "park  label=%llu awaiting real work",
                  static_cast<unsigned long long>(current_->label));
        if (trc_ && trc_->on(obs::TraceLevel::access))
            trc_->instant(
                obs::Track::controller, "park",
                {obs::TraceArg::num("label", current_->label)});
        phase_ = Phase::writeParked;
        return;
    }

    phase_ = Phase::idleGap;
    eq_.scheduleIn(params_.idleGapTicks, [this] {
        if (phase_ == Phase::idleGap)
            startWrite();
    });
}

void
OramController::startWrite()
{
    fp_assert(current_.has_value(), "startWrite without current");
    phase_ = Phase::writing;
    writePhaseActive_ = true;
    writeStartTick_ = eq_.now();
    dramBucketsThisWrite_ = 0;
    fp_assert(outstandingWrites_ == 0, "writes leak across accesses");

    if (params_.enableMerging) {
        labelQueue_.ensureFull();
        auto entry = labelQueue_.selectNext(current_->label);
        fp_assert(entry.has_value(), "full queue returned nothing");
        pending_ = toActive(*entry);
        writeStopLevel_ = std::min<unsigned>(
            geo_.overlap(current_->label, pending_->label),
            geo_.numLevels());
        fp_dtrace(sched,
                  "pending label=%llu%s overlap=%u (queue real=%zu)",
                  static_cast<unsigned long long>(pending_->label),
                  pending_->dummy ? " (dummy)" : "",
                  writeStopLevel_, labelQueue_.realCount());
    } else {
        pending_.reset();
        writeStopLevel_ = 0;
    }
    overlapHist_.sample(static_cast<double>(writeStopLevel_));

    fp_dtrace(oram, "write label=%llu stop_level=%u",
              static_cast<unsigned long long>(current_->label),
              writeStopLevel_);
    nextWriteLevel_ = static_cast<int>(geo_.leafLevel());
    issueMoreWrites();
}

void
OramController::issueMoreWrites()
{
    if (!writePhaseActive_)
        return;
    while (outstandingWrites_ < params_.writeWindow &&
           nextWriteLevel_ >= static_cast<int>(writeStopLevel_)) {
        writeBucketAt(static_cast<unsigned>(nextWriteLevel_));
        --nextWriteLevel_;
    }
    checkWriteDone();
}

void
OramController::writeBucketAt(unsigned level)
{
    BucketIndex idx = geo_.bucketAt(current_->label, level);
    bucketsWritten_.inc();

    mem::Bucket bucket(params_.oram.z);
    for (mem::Block &blk :
         stash_.evictForBucket(current_->label, level,
                               params_.oram.z)) {
        bucket.add(std::move(blk));
    }
    if (merkle_)
        integrityWrite_[level] = bucket;

    if (treetop_ && treetop_->covers(level)) {
        store_.writeBucket(idx, bucket);
        return; // on-chip, no DRAM traffic
    }

    bool dram_write = true;
    if (mac_ && mac_->inRange(level)) {
        auto victim = mac_->insert(idx, std::move(bucket));
        dram_write = false;
        if (victim) {
            // Write the displaced bucket back to memory instead.
            store_.writeBucket(victim->idx, std::move(victim->bucket));
            macVictimWrites_.inc();
            idx = victim->idx;
            dram_write = true;
        }
    } else {
        store_.writeBucket(idx, bucket);
    }

    if (!dram_write)
        return;

    dramBucketWrites_.inc();
    ++dramBucketsThisWrite_;
    ++outstandingWrites_;
    mem::BackendRequest req;
    req.addr = layout_.physAddr(idx);
    req.isWrite = true;
    req.bytes = params_.bucketBytes();
    req.onComplete = [this](Tick) {
        fp_assert(outstandingWrites_ > 0, "write completion underflow");
        --outstandingWrites_;
        issueMoreWrites();
    };
    fingerprintRequest(req.addr, req.isWrite, req.bytes);
    mem_.access(std::move(req));
}

void
OramController::checkWriteDone()
{
    if (!writePhaseActive_)
        return;
    if (nextWriteLevel_ >= static_cast<int>(writeStopLevel_))
        return;
    if (outstandingWrites_ > 0)
        return;
    finishWrite();
}

void
OramController::finishWrite()
{
    writePhaseActive_ = false;
    phase_ = Phase::idle;

    if (merkle_ && writeStopLevel_ < geo_.numLevels()) {
        std::vector<mem::Bucket> slice(
            integrityWrite_.begin() + writeStopLevel_,
            integrityWrite_.end());
        merkle_->updateSlice(current_->label, writeStopLevel_,
                             slice);
    }

    dramService_.sample(
        fp::ticksToNs((readDoneTick_ - readStartTick_) +
                      (eq_.now() - writeStartTick_)));
    if (current_->dummy)
        dummyAccesses_.inc();
    else
        realAccesses_.inc();
    if (prof_) {
        prof_->sampleWriteback(writeStartTick_, eq_.now());
        prof_->onAccessDone(current_->dummy, readStartLevel_,
                            writeStopLevel_, geo_.numLevels(),
                            dramBucketsThisRead_,
                            dramBucketsThisWrite_);
    }

    if (revealTraceEnabled_) {
        revealTrace_.push_back({current_->label, readStartLevel_,
                                writeStopLevel_, current_->dummy,
                                readStartTick_});
    }
    if (trc_ && trc_->on(obs::TraceLevel::access)) {
        trc_->complete(
            obs::Track::controller, "refill", writeStartTick_,
            eq_.now(),
            {obs::TraceArg::num("label", current_->label),
             obs::TraceArg::num("stop_level", writeStopLevel_)});
        // The revealed track carries exactly what an adversary on
        // the memory bus sees: one slice per access, shaped by the
        // revealTrace() fields (tests/test_obs.cc checks agreement).
        trc_->complete(
            obs::Track::revealed, "access", readStartTick_, eq_.now(),
            {obs::TraceArg::num("label", current_->label),
             obs::TraceArg::num("read_start", readStartLevel_),
             obs::TraceArg::num("write_stop", writeStopLevel_),
             obs::TraceArg::flag("dummy", current_->dummy)});
    }

    stash_.recordOccupancy();
    prevLabel_ = current_->label;
    retainedLevels_ = writeStopLevel_;

    if (params_.enableMerging) {
        current_ = pending_;
        pending_.reset();
    } else {
        current_.reset();
    }

    pumpFrontend();
    maybeStartBackend();
}

} // namespace fp::core
