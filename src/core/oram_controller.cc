#include "core/oram_controller.hh"

#include <algorithm>

#include "core/overlap.hh"
#include "dram/dram_backend.hh"
#include "obs/request_profiler.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

const ControllerParams &
OramController::checked(const ControllerParams &p)
{
    p.validate();
    return p;
}

OramController::OramController(const ControllerParams &params,
                               EventQueue &eq,
                               mem::MemoryBackend &backend)
    : OramController(params, eq, &backend, nullptr)
{
}

OramController::OramController(const ControllerParams &params,
                               EventQueue &eq, dram::DramSystem &dram)
    : OramController(params, eq, nullptr,
                     std::make_unique<dram::DramBackend>(dram))
{
}

OramController::OramController(
    const ControllerParams &params, EventQueue &eq,
    mem::MemoryBackend *ext,
    std::unique_ptr<mem::MemoryBackend> owned)
    : ownedMem_(std::move(owned)), params_(checked(params)), eq_(eq),
      mem_(ext ? *ext : *ownedMem_),
      geo_(params.oram.geometry()),
      posMap_(geo_, params.oram.seed ^ 0xa11ce),
      stash_(geo_, params.oram.stashCapacity),
      store_(geo_, params.oram.z, params.oram.payloadBytes,
             params.oram.encrypt, params.oram.seed ^ 0xc1f3),
      layout_(geo_, params.bucketBytes(), mem_.rowBytes(),
              params.layout),
      rng_(params.oram.seed ^ 0xf0c4),
      ctx_{params_, eq_, mem_, geo_, posMap_, stash_, store_, layout_},
      wb_(ctx_), read_(ctx_), scheduler_(ctx_, wb_),
      admission_(ctx_, scheduler_),
      llcLatency_(256, 100.0), // 100 ns buckets
      stats_("oram_controller")
{
    if (params_.cachePolicy == CachePolicy::treetop) {
        treetop_ = std::make_unique<oram::TreetopCache>(
            geo_, params_.bucketBytes(), params_.cacheBudgetBytes);
    } else if (params_.cachePolicy == CachePolicy::mac) {
        MergingCacheParams mp;
        mp.m1 = params_.macM1 >= 0
                    ? static_cast<unsigned>(params_.macM1)
                    : macBottomLevel(geo_, params_.labelQueueSize);
        mp.budgetBytes = params_.cacheBudgetBytes;
        mp.bucketsPerSet = params_.macBucketsPerSet;
        mp.bucketBytes = params_.bucketBytes();
        mp.z = params_.oram.z;
        mac_ = std::make_unique<MergingAwareCache>(geo_, mp);
    }
    if (params_.enableIntegrity) {
        merkle_ = std::make_unique<oram::MerkleTree>(
            geo_, params_.oram.seed ^ 0x3ec71e);
    }
    if (params_.recursionDepth > 0 && params_.plbEntries > 0) {
        plb_ = std::make_unique<PosmapLookasideBuffer>(
            params_.recursionDepth, params_.recursionFanout,
            params_.plbEntries);
    }
    ctx_.treetop = treetop_.get();
    ctx_.mac = mac_.get();
    ctx_.merkle = merkle_.get();
    ctx_.plb = plb_.get();

    AdmissionStage::Hooks hooks;
    hooks.respond = [this](std::uint64_t id,
                           const std::vector<std::uint8_t> &data) {
        respond(id, data);
    };
    hooks.tryReplaceOrSwap = [this](const ActiveAccess &incoming) {
        return scheduler_.tryReplaceOrSwap(incoming, current_);
    };
    admission_.setHooks(std::move(hooks));

    stats_.regHistogram("llc_latency_ns", llcLatency_,
                        "LLC request completion latency");
    stats_.regAverage("read_path_len", read_.readLenStat(),
                      "tree levels fetched per access");
    stats_.regAverage("dram_buckets_read", read_.dramReadLenStat(),
                      "buckets fetched from DRAM per access");
    stats_.regAverage("dram_service_ns", dramService_,
                      "read+write phase duration per access");
    stats_.regCounter("real_accesses", realAccesses_,
                      "real ORAM accesses performed");
    stats_.regCounter("dummy_accesses", dummyAccesses_,
                      "dummy ORAM accesses performed");
    stats_.regCounter("dummy_replacements",
                      scheduler_.dummyReplacementsStat(),
                      "pending dummies replaced by real requests");
    stats_.regCounter("pending_swaps", scheduler_.pendingSwapsStat(),
                      "pending real requests swapped for better overlap");
    stats_.regCounter("stash_shortcuts",
                      admission_.stashShortcutsStat(),
                      "requests served directly from the stash");
    stats_.regCounter("onchip_bucket_reads",
                      read_.onChipBucketReadsStat(),
                      "bucket reads served by treetop/MAC");
    stats_.regCounter("mac_victim_writes", wb_.macVictimWritesStat(),
                      "MAC evictions written back to DRAM");
    stats_.regHistogram("fork_level", read_.forkLevelHist(),
                        "read-phase start level per access");
    stats_.regHistogram("overlap_level", scheduler_.overlapHist(),
                        "scheduled refill stop level per access");
    stats_.regCounter("merge_skipped_levels",
                      read_.mergeSkippedLevelsStat(),
                      "tree levels skipped by path merging");
    stats_.regGauge(
        "stash_depth", [this] { return double(stash_.size()); },
        "blocks resident in the stash");
    stats_.regGauge(
        "label_queue_real",
        [this] { return double(scheduler_.labelQueue().realCount()); },
        "real entries in the label queue");
    stats_.regGauge(
        "label_queue_total",
        [this] { return double(scheduler_.labelQueue().size()); },
        "total entries in the label queue");
    stats_.regGauge(
        "addr_queue_depth",
        [this] { return double(admission_.queue().size()); },
        "entries in the address queue");

    setDebugTickSource(eq_.nowPtr());
}

OramController::~OramController()
{
    // Drop the thread's debug clock only if it still points at our
    // event queue (a later-constructed System may have replaced it).
    clearDebugTickSource(eq_.nowPtr());
}

void
OramController::setTracer(obs::Tracer *tracer)
{
    ctx_.trc = tracer;
    scheduler_.labelQueue().setTracer(tracer);
    stash_.setTracer(tracer);
    if (mac_)
        mac_->setTracer(tracer);
    if (tracer && tracer->on(obs::TraceLevel::access)) {
        tracer->nameTrack(obs::Track::controller, "controller");
        tracer->nameTrack(obs::Track::schedule, "scheduler");
        tracer->nameTrack(obs::Track::cache, "caches");
        tracer->nameTrack(obs::Track::revealed, "revealed");
        tracer->nameTrack(obs::Track::stash, "stash");
        tracer->nameTrack(obs::Track::queues, "queues");
        tracer->nameTrack(obs::Track::admission, "admission");
        tracer->instant(obs::Track::admission, "policy",
                        {obs::TraceArg::str(
                            "name", scheduler_.policy().name())});
    }
}

void
OramController::setProfiler(obs::RequestProfiler *prof)
{
    ctx_.prof = prof;
    scheduler_.labelQueue().setProfiler(prof);
    stash_.setProfiler(prof);
    if (mac_)
        mac_->setProfiler(prof);
}

bool
OramController::canAccept() const
{
    return !admission_.queue().full();
}

void
OramController::setRequestIdStream(std::uint64_t first,
                                   std::uint64_t stride)
{
    fp_assert(first != 0 && stride != 0,
              "setRequestIdStream: ids must be non-zero and advance");
    fp_assert(nextId_ == 1 && llc_.empty(),
              "setRequestIdStream: requests already issued");
    nextId_ = first;
    idStride_ = stride;
}

std::uint64_t
OramController::request(oram::Op op, BlockAddr addr,
                        std::vector<std::uint8_t> payload,
                        DataCallback cb)
{
    AddressQueue &aq = admission_.queue();
    if (aq.full())
        return 0;

    std::uint64_t id = nextId_;
    nextId_ += idStride_;
    AddressEntry entry;
    entry.id = id;
    entry.addr = addr;
    entry.op = op;
    entry.payload = std::move(payload);
    entry.arrival = eq_.now();

    auto result = aq.insert(std::move(entry));
    fp_assert(result.accepted, "address queue rejected with space");
    if (ctx_.prof)
        ctx_.prof->onArrival(id);
    if (result.cancelledId != 0) {
        // The superseded write is acknowledged immediately; the
        // younger write carries the live data from here on.
        respond(result.cancelledId, {});
    }
    if (result.forwarded) {
        // Write-before-Read forwarding: done without an ORAM access.
        llcLatency_.sample(0.0);
        if (ctx_.prof)
            ctx_.prof->onComplete(id);
        if (cb)
            cb(eq_.now(), result.forwardData);
        return id;
    }

    LlcRequest req;
    req.id = id;
    req.addr = addr;
    req.op = op;
    req.payload = aq.find(id)->payload;
    req.arrival = eq_.now();
    req.cb = std::move(cb);
    llc_.emplace(id, std::move(req));
    ++outstandingLlc_;

    pumpFrontend();
    maybeStartBackend();
    return id;
}

bool
OramController::realWorkPending() const
{
    return admission_.queue().issuableCount() > 0 ||
           scheduler_.realWork();
}

bool
OramController::shouldRunBackend() const
{
    // Background eviction (Ren et al.): an over-full stash keeps the
    // dummy stream running so refills drain blocks into the tree.
    bool stash_pressure = params_.backgroundEviction &&
                          stash_.size() >=
                              params_.oram.stashCapacity;
    // Periodic mode never parks: the nonstop access stream is the
    // whole point (Section 2.2's timing-channel seal).
    return params_.periodicIntervalTicks != 0 ||
           realWorkPending() || stash_pressure;
}

void
OramController::respond(std::uint64_t llc_id,
                        const std::vector<std::uint8_t> &data)
{
    auto it = llc_.find(llc_id);
    fp_assert(it != llc_.end(), "respond: unknown LLC id");
    LlcRequest req = std::move(it->second);
    llc_.erase(it);

    llcLatency_.sample(fp::ticksToNs(eq_.now() - req.arrival));
    if (ctx_.prof)
        ctx_.prof->onComplete(llc_id);
    fp_assert(outstandingLlc_ > 0, "respond: LLC underflow");
    --outstandingLlc_;
    if (req.cb)
        req.cb(eq_.now(), data);

    // Releasing the address-queue entry may unblock held writes and
    // complete piggybacked reads.
    for (std::uint64_t pid : admission_.queue().complete(llc_id, data))
        respond(pid, data);
}

void
OramController::pumpFrontend()
{
    admission_.pump(phase_ != Phase::idle);
}

void
OramController::maybeStartBackend()
{
    if (phase_ == Phase::writeParked) {
        // A real arrival resumes the lazily-parked dummy refill; its
        // write-phase selection will see the newcomer.
        if (shouldRunBackend()) {
            phase_ = Phase::idleGap;
            eq_.scheduleIn(params_.idleGapTicks, [this] {
                if (phase_ == Phase::idleGap)
                    startWrite();
            });
        }
        return;
    }
    if (phase_ != Phase::idle)
        return;

    if (!current_) {
        // Pick a fresh access via the scheduling policy.
        if (scheduler_.policy().merging() && !shouldRunBackend())
            return; // never spin pure-dummy cycles while idle
        if (auto acc = scheduler_.selectFresh()) {
            current_ = *acc;
        } else if (params_.periodicIntervalTicks != 0) {
            // Non-merging periodic baseline: keep the stream alive
            // with a plain dummy access.
            ActiveAccess d;
            d.dummy = true;
            d.label = posMap_.randomLabel();
            current_ = d;
        } else {
            return;
        }
        // A cold pick never has retained levels beyond what the last
        // write left; the scheduler's retained prefix reflects that.
    }

    // A committed dummy's read runs eagerly even when idle (it is
    // off the critical path); its refill parks in onReadDone.
    phase_ = Phase::readWait;
    Tick when = eq_.now() + params_.idleGapTicks;
    if (params_.periodicIntervalTicks != 0) {
        // Pace accesses onto the fixed data-independent grid.
        when = std::max(when, periodicNextStart_);
        periodicNextStart_ =
            when + params_.periodicIntervalTicks;
    }
    eq_.schedule(when, [this] {
        if (phase_ == Phase::readWait)
            startRead();
    });
}

void
OramController::startRead()
{
    fp_assert(current_.has_value(), "startRead without current");
    phase_ = Phase::reading;
    unsigned start_level = scheduler_.policy().merging()
                               ? scheduler_.retainedLevels()
                               : 0;
    read_.start(*current_, start_level, [this] { onReadDone(); });
}

void
OramController::onReadDone()
{
    ActiveAccess &acc = *current_;
    if (!acc.dummy) {
        if (acc.chainIndex < params_.recursionDepth) {
            // Position-map chain element: its "data" is the label of
            // the next chain element, which can now be issued.
            auto chain_it = llc_.find(acc.llcId);
            fp_assert(chain_it != llc_.end(),
                      "chain for retired LLC id");
            if (plb_)
                plb_->fill(chain_it->second.addr, acc.chainIndex);

            ActiveAccess next;
            next.dummy = false;
            next.llcId = acc.llcId;
            next.chainIndex = acc.chainIndex + 1;
            if (next.chainIndex == params_.recursionDepth) {
                next.addr = chain_it->second.addr;
                next.label = posMap_.lookupOrAssign(next.addr);
                next.newLeaf = posMap_.remap(next.addr);
            } else {
                next.label = posMap_.randomLabel();
            }
            if (!scheduler_.tryReplaceOrSwap(next, current_))
                scheduler_.enqueue(next);
        } else {
            // Data element: install the block and answer the LLC.
            auto it = llc_.find(acc.llcId);
            fp_assert(it != llc_.end(), "data access for retired id");
            LlcRequest &req = it->second;

            mem::Block *blk = stash_.find(acc.addr);
            if (!blk) {
                // First touch: materialise a zeroed block.
                stash_.insert(mem::Block(
                    acc.addr, acc.newLeaf,
                    std::vector<std::uint8_t>(
                        params_.oram.payloadBytes, 0)));
                blk = stash_.find(acc.addr);
            } else {
                blk->leaf = acc.newLeaf;
            }
            std::vector<std::uint8_t> data = blk->payload;
            if (req.op == oram::Op::write)
                blk->payload = req.payload;
            respond(acc.llcId, data);
        }
    }

    if (current_->dummy && !shouldRunBackend()) {
        // Lazy refill: hold the dummy's write phase until there is a
        // real request to merge it with (resumed by
        // maybeStartBackend on the next arrival).
        fp_dtrace(oram, "park  label=%llu awaiting real work",
                  static_cast<unsigned long long>(current_->label));
        if (ctx_.traceOn())
            ctx_.trc->instant(
                obs::Track::controller, "park",
                {obs::TraceArg::num("label", current_->label)});
        phase_ = Phase::writeParked;
        return;
    }

    phase_ = Phase::idleGap;
    eq_.scheduleIn(params_.idleGapTicks, [this] {
        if (phase_ == Phase::idleGap)
            startWrite();
    });
}

void
OramController::startWrite()
{
    fp_assert(current_.has_value(), "startWrite without current");
    phase_ = Phase::writing;
    unsigned stop_level = scheduler_.scheduleWriteback(*current_);
    wb_.start(*current_, stop_level, [this] { onWriteDone(); });
}

void
OramController::onWriteDone()
{
    phase_ = Phase::idle;

    dramService_.sample(
        fp::ticksToNs((read_.doneTick() - read_.startTick()) +
                      (eq_.now() - wb_.startTick())));
    if (current_->dummy)
        dummyAccesses_.inc();
    else
        realAccesses_.inc();
    if (ctx_.prof) {
        ctx_.prof->onAccessDone(current_->dummy, read_.startLevel(),
                                wb_.stopLevel(), geo_.numLevels(),
                                read_.dramBuckets(),
                                wb_.dramBuckets());
    }

    if (revealTraceEnabled_) {
        revealTrace_.push_back({current_->label, read_.startLevel(),
                                wb_.stopLevel(), current_->dummy,
                                read_.startTick()});
    }
    if (ctx_.traceOn()) {
        ctx_.trc->complete(
            obs::Track::controller, "refill", wb_.startTick(),
            eq_.now(),
            {obs::TraceArg::num("label", current_->label),
             obs::TraceArg::num("stop_level", wb_.stopLevel())});
        // The revealed track carries exactly what an adversary on
        // the memory bus sees: one slice per access, shaped by the
        // revealTrace() fields (tests/test_obs.cc checks agreement).
        ctx_.trc->complete(
            obs::Track::revealed, "access", read_.startTick(),
            eq_.now(),
            {obs::TraceArg::num("label", current_->label),
             obs::TraceArg::num("read_start", read_.startLevel()),
             obs::TraceArg::num("write_stop", wb_.stopLevel()),
             obs::TraceArg::flag("dummy", current_->dummy)});
    }

    stash_.recordOccupancy();
    scheduler_.noteAccessDone(current_->label, wb_.stopLevel());

    if (scheduler_.policy().merging()) {
        current_ = scheduler_.takePending();
    } else {
        current_.reset();
    }

    pumpFrontend();
    maybeStartBackend();
}

} // namespace fp::core
