#include "core/address_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fp::core
{

AddressQueue::AddressQueue(std::size_t capacity)
    : capacity_(capacity)
{
    fp_assert(capacity >= 1, "address queue needs capacity >= 1");
}

AddressQueue::InsertResult
AddressQueue::insert(AddressEntry entry)
{
    InsertResult result;
    if (full())
        return result;
    fp_assert(entry.id != 0, "address queue ids must be nonzero");

    // Walk same-address entries youngest-first. An incoming write may
    // cancel an unissued older write (WbW) and must then keep
    // scanning: the hazard against the next-older live entry (e.g. a
    // still-pending read) still applies.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->addr != entry.addr || it->cancelled)
            continue;
        AddressEntry *prior = &*it;

        if (entry.op == oram::Op::read) {
            if (prior->op == oram::Op::write || prior->dataReady) {
                // Write-before-Read forwarding (also covers reading
                // from a completed-but-resident read's data).
                forwards_.inc();
                result.accepted = true;
                result.forwarded = true;
                result.forwardData = prior->payload;
                return result;
            }
            // Read-before-Read: ride on the older read's data.
            entry.piggybacked = true;
            entry.blockedBy = prior->id;
            piggybacks_.inc();
            break;
        }

        if (prior->op == oram::Op::read) {
            // Read-before-Write: hold the write until data ready.
            if (!prior->dataReady)
                entry.blockedBy = prior->id;
            break;
        }
        if (!prior->issued) {
            // Write-before-Write: cancel the older write, then keep
            // scanning for a yet-older hazard.
            prior->cancelled = true;
            cancels_.inc();
            result.cancelledId = prior->id;
            continue;
        }
        // Older write already translating: order behind it.
        entry.blockedBy = prior->id;
        break;
    }

    entries_.push_back(std::move(entry));
    result.accepted = true;
    return result;
}

AddressEntry *
AddressQueue::nextIssuable()
{
    for (auto &e : entries_) {
        if (!e.issued && !e.cancelled && !e.piggybacked &&
            e.blockedBy == 0) {
            return &e;
        }
    }
    return nullptr;
}

std::size_t
AddressQueue::issuableCount() const
{
    std::size_t n = 0;
    for (const auto &e : entries_) {
        if (!e.issued && !e.cancelled && !e.piggybacked &&
            e.blockedBy == 0) {
            ++n;
        }
    }
    return n;
}

void
AddressQueue::markIssued(std::uint64_t id)
{
    AddressEntry *e = find(id);
    fp_assert(e != nullptr, "markIssued: unknown id");
    e->issued = true;
}

std::vector<std::uint64_t>
AddressQueue::complete(std::uint64_t id,
                       const std::vector<std::uint8_t> &data)
{
    std::vector<std::uint64_t> released;
    AddressEntry *done = find(id);
    if (done == nullptr) {
        // Already retired: completions can arrive through both the
        // piggyback release path and the caller's own bookkeeping.
        return released;
    }
    done->dataReady = true;
    if (done->op == oram::Op::read)
        done->payload = data; // so later reads can forward from it

    for (auto &e : entries_) {
        if (e.blockedBy != id)
            continue;
        e.blockedBy = 0;
        if (e.piggybacked) {
            e.dataReady = true;
            e.payload = data;
            released.push_back(e.id);
        }
    }

    // Retire completed entries that nothing still blocks on; an
    // entry with live dependents must stay resident so its id keeps
    // resolving.
    auto retired = [](const AddressEntry &e) {
        return e.cancelled || e.dataReady;
    };
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&](const AddressEntry &e) {
                           if (!retired(e))
                               return false;
                           for (const auto &other : entries_) {
                               if (other.blockedBy == e.id)
                                   return false;
                           }
                           return true;
                       }),
        entries_.end());
    return released;
}

AddressEntry *
AddressQueue::find(std::uint64_t id)
{
    for (auto &e : entries_) {
        if (e.id == id)
            return &e;
    }
    return nullptr;
}

} // namespace fp::core
