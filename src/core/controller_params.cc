#include "core/controller_params.hh"

#include "util/logging.hh"

namespace fp::core
{

void
ControllerParams::validate() const
{
    if (oram.z == 0)
        fp_fatal("ControllerParams: oram.z must be positive");
    if (labelQueueSize == 0)
        fp_fatal("ControllerParams: labelQueueSize must be positive "
                 "(policy '%s' schedules from the label queue)",
                 policyKindName(policy));
    if (addressQueueSize == 0)
        fp_fatal("ControllerParams: addressQueueSize must be "
                 "positive");
    if (recursionFanout == 0)
        fp_fatal("ControllerParams: recursionFanout must be positive "
                 "(posmap blocks hold at least one translation)");
    if (writeWindow == 0)
        fp_fatal("ControllerParams: writeWindow must be positive "
                 "(a zero window never issues a refill)");
    if (policy == PolicyKind::batched && batchSize == 0)
        fp_fatal("ControllerParams: batchSize must be positive for "
                 "the batched policy");
    if (cachePolicy == CachePolicy::mac && macBucketsPerSet == 0)
        fp_fatal("ControllerParams: macBucketsPerSet must be "
                 "positive with the MAC cache");
    if (blockPhysBytes == 0)
        fp_fatal("ControllerParams: blockPhysBytes must be positive");
}

ControllerParams
ControllerParams::traditional()
{
    ControllerParams p;
    applyPolicyPreset(p, PolicyKind::traditional);
    return p;
}

ControllerParams
ControllerParams::forkPath()
{
    ControllerParams p;
    applyPolicyPreset(p, PolicyKind::forkpath);
    return p;
}

} // namespace fp::core
