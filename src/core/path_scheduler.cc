#include "core/path_scheduler.hh"

#include <algorithm>

#include "obs/request_profiler.hh"
#include "util/debug.hh"
#include "util/logging.hh"

namespace fp::core
{

PathScheduler::PathScheduler(PipelineContext &ctx,
                             WritebackEngine &wb)
    : ctx_(ctx), wb_(wb),
      labelQueue_(ctx.geo, ctx.params.labelQueueSize,
                  ctx.params.agingThreshold, ctx.params.dummyPolicy,
                  ctx.params.oram.seed ^ 0x1abe1),
      policy_(makeAccessPolicy(ctx.params)),
      overlapHist_(ctx.geo.numLevels() + 1, 1.0),
      stats_("path_scheduler")
{
    stats_.regCounter("writebacks_scheduled", scheduled_,
                      "pending selections at write issue");
    stats_.regGauge(
        "selections",
        [this] { return double(labelQueue_.selections()); },
        "label-queue selections performed");
    stats_.regGauge(
        "dummies_selected",
        [this] { return double(labelQueue_.dummiesSelected()); },
        "selections that picked a padding dummy");
    stats_.regGauge(
        "aging_promotions",
        [this] { return double(labelQueue_.agingPromotions()); },
        "real entries force-promoted by aging");
}

void
PathScheduler::enqueue(const ActiveAccess &access)
{
    std::uint64_t token = nextToken_++;
    accessPool_.emplace(token, access);
    bool ok = labelQueue_.insertReal(access.label, token,
                                     /*allow_overflow=*/true);
    fp_assert(ok, "label queue rejected an overflow insert");
}

std::optional<ActiveAccess>
PathScheduler::selectFresh()
{
    auto entry = policy_->selectNext(labelQueue_, prevLabel_);
    if (!entry)
        return std::nullopt;
    return toActive(*entry);
}

unsigned
PathScheduler::scheduleWriteback(const ActiveAccess &cur)
{
    unsigned stop = 0;
    if (policy_->merging()) {
        auto entry = policy_->selectNext(labelQueue_, cur.label);
        fp_assert(entry.has_value(), "full queue returned nothing");
        pending_ = toActive(*entry);
        stop = std::min<unsigned>(
            ctx_.geo.overlap(cur.label, pending_->label),
            ctx_.geo.numLevels());
        fp_dtrace(sched,
                  "pending label=%llu%s overlap=%u (queue real=%zu)",
                  static_cast<unsigned long long>(pending_->label),
                  pending_->dummy ? " (dummy)" : "", stop,
                  labelQueue_.realCount());
    } else {
        pending_.reset();
        stop = 0;
    }
    scheduled_.inc();
    overlapHist_.sample(static_cast<double>(stop));
    return stop;
}

bool
PathScheduler::tryReplaceOrSwap(
    const ActiveAccess &incoming,
    const std::optional<ActiveAccess> &current)
{
    if (!policy_->replacing())
        return false;
    if (!wb_.active() || !pending_ || !current)
        return false;

    unsigned k_in = ctx_.geo.overlap(current->label, incoming.label);
    // The crossing bucket (deepest shared level, k_in - 1) must not
    // have been issued yet: the refill sweeps leaf -> root, so levels
    // strictly above wb_.nextLevel() are already committed to the
    // command stream (paper Cases 1-3).
    bool crossing_free =
        static_cast<int>(k_in) - 1 <= wb_.nextLevel();
    if (!crossing_free) {
        // Case 2: the crossing bucket is already in the command
        // stream, so the committed pending cannot change.
        if (ctx_.traceOn())
            ctx_.trc->instant(
                obs::Track::schedule, "replace_reject",
                {obs::TraceArg::num("case", 2),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in)});
        return false;
    }

    if (pending_->dummy) {
        fp_dtrace(sched,
                  "replace dummy pending with label=%llu (k=%u)",
                  static_cast<unsigned long long>(incoming.label),
                  k_in);
        pending_ = incoming;
        wb_.setStopLevel(
            std::min<unsigned>(k_in, ctx_.geo.numLevels()));
        dummyReplacements_.inc();
        if (ctx_.prof)
            ctx_.prof->countWritebackReplaced();
        // Case 1: a not-yet-committed padding dummy gives its slot
        // to the late-arriving real request.
        if (ctx_.traceOn())
            ctx_.trc->instant(
                obs::Track::schedule, "dummy_replace",
                {obs::TraceArg::num("case", 1),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in)});
        wb_.pump();
        return true;
    }

    unsigned k_pend =
        ctx_.geo.overlap(current->label, pending_->label);
    if (k_in > k_pend) {
        // Swap: the better-overlapping incoming becomes pending; the
        // old pending rejoins the pool (Algorithm 1).
        ActiveAccess old_pending = *pending_;
        pending_ = incoming;
        wb_.setStopLevel(
            std::min<unsigned>(k_in, ctx_.geo.numLevels()));
        pendingSwaps_.inc();
        if (ctx_.prof)
            ctx_.prof->countPendingSwap();
        // Case 3: a real pending is displaced by a better-overlapping
        // real newcomer and rejoins the pool.
        if (ctx_.traceOn())
            ctx_.trc->instant(
                obs::Track::schedule, "pending_swap",
                {obs::TraceArg::num("case", 3),
                 obs::TraceArg::num("label", incoming.label),
                 obs::TraceArg::num("overlap", k_in),
                 obs::TraceArg::num("old_overlap", k_pend)});
        enqueue(old_pending);
        wb_.pump();
        return true;
    }
    return false;
}

ActiveAccess
PathScheduler::toActive(const LabelEntry &entry)
{
    if (entry.dummy) {
        ActiveAccess acc;
        acc.dummy = true;
        acc.label = entry.label;
        return acc;
    }
    auto it = accessPool_.find(entry.token);
    fp_assert(it != accessPool_.end(), "label entry without access");
    ActiveAccess acc = it->second;
    accessPool_.erase(it);
    return acc;
}

} // namespace fp::core
