/**
 * @file
 * Read stage of the access pipeline: one fork-shaped path fetch
 * (paper Figure 1(c) read half). Under a merging policy the fetch
 * starts at the fork point — the levels retained by the previous
 * refill — instead of the root; every fetched bucket's blocks are
 * ingested into the stash, and the phase completes when the last
 * outstanding DRAM read returns (or immediately, off a zero-delay
 * event, when the whole path was served on chip).
 */

#ifndef FP_CORE_READ_ENGINE_HH
#define FP_CORE_READ_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pipeline.hh"
#include "util/stats.hh"

namespace fp::core
{

class ReadEngine
{
  public:
    using DoneFn = std::function<void()>;

    explicit ReadEngine(PipelineContext &ctx);

    /**
     * Fetch @p acc's path from @p start_level (the fork point) to the
     * leaf. @p on_done fires after integrity verification, the
     * per-phase stats, the profiler readDone milestone and the trace
     * slice — i.e. at the stage boundary.
     */
    void start(const ActiveAccess &acc, unsigned start_level,
               DoneFn on_done);

    /** A read phase is in flight. */
    bool active() const { return active_; }

    /** Fork point of the current/last phase. */
    unsigned startLevel() const { return startLevel_; }

    /** DRAM buckets fetched during the current/last phase. */
    unsigned dramBuckets() const { return dramBuckets_; }

    /** Bus-visible start tick of the current/last phase. */
    Tick startTick() const { return startTick_; }

    /** Completion tick of the last phase. */
    Tick doneTick() const { return doneTick_; }

    // Stage-owned stats, re-exported under the controller's legacy
    // stat names for cross-shard aggregation and plotting.
    const fp::Average &readLenStat() const { return readLen_; }
    const fp::Average &dramReadLenStat() const { return dramReadLen_; }
    const fp::Histogram &forkLevelHist() const
    {
        return forkLevelHist_;
    }
    const fp::Counter &onChipBucketReadsStat() const
    {
        return onChipBucketReads_;
    }
    std::uint64_t onChipBucketReads() const
    {
        return onChipBucketReads_.value();
    }
    const fp::Counter &mergeSkippedLevelsStat() const
    {
        return mergeSkippedLevels_;
    }
    std::uint64_t mergedLevelsSkipped() const
    {
        return mergeSkippedLevels_.value();
    }
    const std::vector<std::uint64_t> &mergeSkipsPerLevel() const
    {
        return mergeSkipsPerLevel_;
    }

    fp::StatGroup &stats() { return stats_; }

  private:
    /** Fetch one bucket of the current path (cache-aware). */
    void readBucketAt(unsigned level);
    /** Move a fetched bucket's blocks into the stash. */
    void ingestBucket(mem::Bucket bucket);
    void finish();

    PipelineContext &ctx_;

    /** Per-level bucket captures for integrity. */
    std::vector<mem::Bucket> integrityRead_;

    ActiveAccess acc_;
    DoneFn onDone_;
    bool active_ = false;
    unsigned outstanding_ = 0;
    unsigned startLevel_ = 0;
    unsigned dramBuckets_ = 0;
    Tick startTick_ = 0;
    Tick doneTick_ = 0;

    fp::Counter readsStarted_;
    fp::Histogram forkLevelHist_;
    fp::Counter mergeSkippedLevels_;
    std::vector<std::uint64_t> mergeSkipsPerLevel_;
    fp::Average readLen_;
    fp::Average dramReadLen_;
    fp::Counter onChipBucketReads_;
    fp::StatGroup stats_;
};

} // namespace fp::core

#endif // FP_CORE_READ_ENGINE_HH
